"""Cross-protocol conformance: one contract, every registered protocol.

Parametrized directly over the protocol registry, so registering a new
:class:`~repro.protocols.ProtocolSpec` automatically subjects it to the
same battery: a sequential write/read sim schedule judged by the MWMR
safety checker (Definition 1), a multi-writer concurrency schedule
(skipped for single-writer specs via the capability flag, never by
name), Byzantine sim schedules for specs whose fault model tolerates
them, and a flaky-links chaos soak on live TCP for runtime-capable
specs.  No test here may compare an algorithm string -- gating is
always through the spec's declared capabilities, which is the whole
point of the registry.
"""

import asyncio
import importlib.util
import os

import pytest

from repro.chaos import run_soak
from repro.consistency import check_safety
from repro.core.register import RegisterSystem
from repro.errors import ConfigurationError
from repro.protocols import BYZANTINE, get_spec, names, runtime_names, specs

ALL = list(names())
BYZ = [s.name for s in specs() if s.fault_model == BYZANTINE]
MULTI_WRITER = [s.name for s in specs() if not s.single_writer]
RUNTIME = list(runtime_names())


# -- registry invariants -------------------------------------------------------

def test_registry_covers_the_expected_protocols():
    assert set(ALL) >= {"bsr", "bsr-history", "bsr-2round", "bcsr",
                        "rb", "abd", "mpr", "rb2"}
    assert set(RUNTIME) <= set(ALL)


def test_lint_names_match_registry():
    """tools/check_protocol_dispatch.py keeps its own literal name set so
    it can run even when the package is broken; it must track the
    registry."""
    root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    spec = importlib.util.spec_from_file_location(
        "check_protocol_dispatch",
        os.path.join(root, "tools", "check_protocol_dispatch.py"))
    lint = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(lint)
    assert lint.PROTOCOL_NAMES == frozenset(ALL)


@pytest.mark.parametrize("algorithm", ALL)
def test_spec_metadata_is_coherent(algorithm):
    spec = get_spec(algorithm)
    assert spec.name == algorithm
    floor = spec.min_servers(1)
    assert floor > 1
    assert spec.min_servers(2) > floor  # bound grows with the budget
    spec.validate_config(floor, 1)
    with pytest.raises(ConfigurationError):
        spec.validate_config(floor - 1, 1)


# -- fault-free schedules ------------------------------------------------------

@pytest.mark.parametrize("algorithm", ALL)
def test_sequential_write_read_is_safe(algorithm):
    """One writer, reads between writes: every read returns the latest
    value and the trace satisfies Definition 1."""
    system = RegisterSystem(algorithm, f=1, seed=42)
    system.write(b"alpha", writer=0, at=0.0)
    first = system.read(reader=0, at=50.0)
    system.write(b"bravo", writer=0, at=100.0)
    second = system.read(reader=1, at=150.0)
    trace = system.run()
    assert first.value == b"alpha"
    assert second.value == b"bravo"
    assert check_safety(trace, initial_value=b"").ok


@pytest.mark.parametrize("algorithm", MULTI_WRITER)
def test_concurrent_writers_stay_safe(algorithm):
    """Two writers racing plus a concurrent reader: safety must hold,
    and a read after both writes settles on one of them."""
    system = RegisterSystem(algorithm, f=1, seed=7)
    system.write(b"left", writer=0, at=0.0)
    system.write(b"right", writer=1, at=0.0)
    during = system.read(reader=0, at=0.5)
    after = system.read(reader=1, at=200.0)
    trace = system.run()
    assert during.done and after.done
    assert after.value in (b"left", b"right")
    assert check_safety(trace, initial_value=b"").ok


# -- Byzantine schedules (gated by the spec's fault model) ---------------------

@pytest.mark.parametrize("behavior", ["silent", "stale", "forge_tag"])
@pytest.mark.parametrize("algorithm", BYZ)
def test_byzantine_budget_is_tolerated(algorithm, behavior):
    """f misbehaving servers -- omission, stale replays, forged
    timestamps -- must cost neither liveness nor safety."""
    system = RegisterSystem(algorithm, f=1, seed=3,
                            byzantine={0: behavior})
    system.write(b"genuine", writer=0, at=0.0)
    read = system.read(reader=0, at=100.0)
    trace = system.run()
    assert read.done, f"{algorithm} read blocked by one {behavior} server"
    assert read.value == b"genuine"
    assert check_safety(trace, initial_value=b"").ok


def test_crash_only_specs_are_excluded_from_byzantine_runs():
    """The gate is the declared fault model, not a name comparison."""
    crash_only = [s.name for s in specs() if s.fault_model != BYZANTINE]
    assert crash_only  # abd at minimum
    assert not set(crash_only) & set(BYZ)


# -- live TCP under flaky links (runtime-capable specs) ------------------------

@pytest.mark.parametrize("algorithm", RUNTIME)
def test_flaky_links_soak_conformance(algorithm):
    """Dropped/delayed/duplicated frames on live TCP: every operation
    completes and the trace stays safe, for every runtime protocol."""
    result = asyncio.run(run_soak(
        algorithm=algorithm, f=1, schedule="flaky-links", ops=10,
        read_ratio=0.5, seed=5, start=0.2, period=0.3, timeout=12.0,
    ))
    assert result.errors == [], f"liveness failures: {result.errors}"
    assert result.safety.ok, str(result.safety)
    assert result.ops_completed >= 10
