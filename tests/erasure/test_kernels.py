"""Unit and differential tests for the bulk GF(256) kernels.

The vectorized codec must be byte-identical to the scalar reference --
same output, same :class:`DecodingError` behavior -- across value sizes,
code shapes, corruption and erasure patterns.  The scalar path is the
specification; the kernels are only an execution strategy.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.erasure import kernels
from repro.erasure.gf256 import GF256
from repro.erasure.rs import ReedSolomon
from repro.erasure.striping import CodedElement, StripedCodec
from repro.errors import DecodingError
from repro.sim.rng import SimRng


# -- primitive kernels --------------------------------------------------------

def test_mul_table_matches_scalar_mul():
    for c in (0, 1, 2, 3, 0x1D, 128, 255):
        table = kernels.mul_table(c)
        assert len(table) == 256
        assert list(table) == [GF256.mul(c, x) for x in range(256)]


def test_mul_table_is_cached():
    assert kernels.mul_table(37) is kernels.mul_table(37)


def test_mul_column_matches_per_byte():
    column = bytes(range(256)) * 3
    for c in (0, 1, 7, 255):
        expected = bytes(GF256.mul(c, b) for b in column)
        assert kernels.mul_column(c, column) == expected


def test_xor_columns():
    a, b = b"\x00\xff\x12\x34", b"\xff\xff\x00\x34"
    assert kernels.xor_columns(a, b) == b"\xff\x00\x12\x00"
    assert kernels.xor_columns(b"", b"") == b""
    with pytest.raises(ValueError):
        kernels.xor_columns(b"a", b"ab")


def test_matvec_matches_scalar_double_loop():
    rng = SimRng(11, "matvec")
    for _ in range(20):
        m = rng.randint(1, 5)
        width = rng.randint(1, 5)
        length = rng.randint(0, 40)
        rows = [[rng.randint(0, 255) for _ in range(width)] for _ in range(m)]
        cols = [bytes(rng.randint(0, 255) for _ in range(length))
                for _ in range(width)]
        out = kernels.matvec(rows, cols)
        for r, row in enumerate(rows):
            for s in range(length):
                acc = 0
                for coeff, col in zip(row, cols):
                    acc ^= GF256.mul(coeff, col[s])
                assert out[r][s] == acc


def test_matvec_rejects_ragged_columns():
    with pytest.raises(ValueError):
        kernels.matvec([[1, 1]], [b"ab", b"abc"])


def test_diff_indices_exact_positions():
    a = bytearray(1000)
    b = bytearray(1000)
    # Mismatches straddling chunk boundaries and at the extremes.
    for pos in (0, 255, 256, 257, 511, 999):
        b[pos] ^= 0x40
    assert kernels.diff_indices(bytes(a), bytes(b)) == [0, 255, 256, 257, 511, 999]
    assert kernels.diff_indices(bytes(a), bytes(a)) == []
    with pytest.raises(ValueError):
        kernels.diff_indices(b"x", b"xy")


def test_interleave_roundtrip():
    buf = bytes(range(30))
    for k in (1, 2, 3, 5, 6):
        cols = kernels.deinterleave(buf, k)
        assert len(cols) == k
        assert bytes(kernels.interleave(cols)) == buf
    with pytest.raises(ValueError):
        kernels.deinterleave(b"abc", 2)


# -- column APIs on ReedSolomon ----------------------------------------------

def test_encode_columns_matches_per_stripe_encode():
    rs = ReedSolomon(9, 4)
    rng = SimRng(3, "enc-cols")
    stripes = [[rng.randint(0, 255) for _ in range(4)] for _ in range(50)]
    codewords = [rs.encode(stripe) for stripe in stripes]
    cols = [bytes(stripe[i] for stripe in stripes) for i in range(4)]
    out = rs.encode_columns(cols)
    assert len(out) == 9
    for i in range(9):
        assert out[i] == bytes(cw[i] for cw in codewords)


def test_encode_columns_rejects_wrong_count():
    with pytest.raises(ValueError):
        ReedSolomon(6, 3).encode_columns([b"ab", b"ab"])


def test_decode_fast_columns_flags_exactly_bad_stripes():
    rs = ReedSolomon(8, 3)
    rng = SimRng(5, "dec-cols")
    stripes = [[rng.randint(0, 255) for _ in range(3)] for _ in range(40)]
    codewords = [rs.encode(stripe) for stripe in stripes]
    positions = (0, 2, 3, 5, 7)
    cols = [bytearray(cw[p] for cw in codewords) for p in positions]
    # Corrupt a received symbol at stripes 7 and 31 only.
    cols[1][7] ^= 0x21
    cols[4][31] ^= 0x03
    message, bad = rs.decode_fast_columns(positions,
                                          [bytes(c) for c in cols])
    assert bad == {7, 31}
    for s in range(40):
        if s in bad:
            continue
        assert [col[s] for col in message] == stripes[s]
        # The scalar fast path agrees stripe by stripe.
        assert rs.decode_fast(positions,
                              [col[s] for col in cols]) == stripes[s]


def test_decode_fast_columns_needs_k_positions():
    rs = ReedSolomon(6, 3)
    with pytest.raises(DecodingError):
        rs.decode_fast_columns((0, 1), [b"a", b"b"])


# -- codec differential tests -------------------------------------------------

def _differential_case(seed: int, size: int) -> None:
    """One randomized encode/decode comparison of both codec paths.

    Corruption goes up to the per-stripe budget ``(N - k) // 2`` (the
    ``2f`` of the BCSR regime when ``N = n - f``) and erasures up to
    ``n - N``; both paths must produce identical bytes or raise
    :class:`DecodingError` on identical inputs.
    """
    rng = SimRng(seed, f"kernel-diff-{size}")
    n = rng.randint(2, 14)
    k = rng.randint(1, n)
    value = bytes(rng.randint(0, 255) for _ in range(size))
    fast = StripedCodec(n, k, kernels=True)
    slow = StripedCodec(n, k, kernels=False)
    encoded = fast.encode(value)
    assert [(e.index, e.data) for e in encoded] == \
        [(e.index, e.data) for e in slow.encode(value)]

    received_count = rng.randint(k, n)
    chosen = rng.sample(encoded, received_count)
    budget = (received_count - k) // 2
    # Deliberately allow corruption *beyond* the budget sometimes so the
    # DecodingError behavior is compared too.
    error_count = rng.randint(0, min(received_count, budget + 1))
    targets = set(rng.sample(range(received_count), error_count))
    received = [
        CodedElement(e.index, bytes(b ^ 0xA7 for b in e.data))
        if i in targets else e
        for i, e in enumerate(chosen)
    ]
    try:
        got_fast = fast.decode(received)
    except DecodingError:
        got_fast = DecodingError
    try:
        got_slow = slow.decode(received)
    except DecodingError:
        got_slow = DecodingError
    assert got_fast == got_slow
    if error_count <= budget and got_fast is not DecodingError:
        assert got_fast == value


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=0, max_value=10_000),
       st.integers(min_value=0, max_value=300))
def test_differential_small_values(seed, size):
    _differential_case(seed, size)


@pytest.mark.parametrize("size", [1024, 2048, 8192, 8191, 8193])
def test_differential_large_values(size):
    """Sizes up to 8 KiB including non-multiples of k."""
    for seed in range(3):
        _differential_case(seed * 7919 + size, size)


def test_differential_bcsr_regime_2f_errors_f_erasures():
    """The paper's exact counting: N = n - f received, 2f corrupted."""
    for n, f in ((11, 2), (16, 3), (6, 1)):
        k = n - 5 * f
        fast = StripedCodec(n, k, kernels=True)
        slow = StripedCodec(n, k, kernels=False)
        rng = SimRng(n * 100 + f, "bcsr-regime")
        value = bytes(rng.randint(0, 255) for _ in range(999))
        encoded = fast.encode(value)
        received = rng.sample(encoded, n - f)          # f erasures
        corrupt = set(rng.sample(range(n - f), 2 * f))  # 2f errors
        received = [
            CodedElement(e.index, bytes(b ^ 0xFF for b in e.data))
            if i in corrupt else e
            for i, e in enumerate(received)
        ]
        assert fast.decode(received, max_errors=2 * f) == value
        assert slow.decode(received, max_errors=2 * f) == value


def test_differential_error_behavior_identical_beyond_budget():
    fast = StripedCodec(6, 2, kernels=True)
    slow = StripedCodec(6, 2, kernels=False)
    value = b"beyond-the-budget" * 10
    encoded = fast.encode(value)
    received = [
        CodedElement(e.index, bytes(b ^ 0x13 for b in e.data))
        if i < 3 else e  # 3 errors, budget is (6-2)//2 = 2
        for i, e in enumerate(encoded)
    ]
    with pytest.raises(DecodingError):
        fast.decode(received)
    with pytest.raises(DecodingError):
        slow.decode(received)


def test_kernel_flag_recorded():
    assert StripedCodec(5, 2).kernels is True
    assert StripedCodec(5, 2, kernels=False).kernels is False
