"""Unit and property tests for the Reed-Solomon code and its decoder."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.erasure.gf256 import GF256
from repro.erasure.rs import ReedSolomon, solve_linear_system
from repro.errors import ConfigurationError, DecodingError
from repro.sim.rng import SimRng


# -- linear solver -----------------------------------------------------------

def test_solver_identity_system():
    matrix = [[1, 0], [0, 1]]
    assert solve_linear_system(matrix, [7, 9]) == [7, 9]


def test_solver_singular_consistent_system():
    # Second row is a multiple of the first -> consistent, underdetermined.
    matrix = [[1, 2], [2, 4]]
    rhs = [3, 6]
    solution = solve_linear_system(matrix, rhs)
    assert solution is not None
    a, b = solution
    assert GF256.add(GF256.mul(1, a), GF256.mul(2, b)) == 3


def test_solver_inconsistent_system_returns_none():
    matrix = [[1, 2], [1, 2]]
    rhs = [3, 4]
    assert solve_linear_system(matrix, rhs) is None


# -- construction -------------------------------------------------------------

def test_invalid_dimensions_rejected():
    with pytest.raises(ConfigurationError):
        ReedSolomon(5, 0)
    with pytest.raises(ConfigurationError):
        ReedSolomon(5, 6)
    with pytest.raises(ConfigurationError):
        ReedSolomon(300, 3)


def test_systematic_prefix():
    rs = ReedSolomon(8, 3)
    message = [10, 20, 30]
    codeword = rs.encode(message)
    assert codeword[:3] == message
    assert len(codeword) == 8


def test_encode_rejects_wrong_length():
    with pytest.raises(ValueError):
        ReedSolomon(8, 3).encode([1, 2])


def test_max_correctable_errors():
    assert ReedSolomon(11, 1).max_correctable_errors == 5
    assert ReedSolomon(10, 4).max_correctable_errors == 3


# -- decoding ------------------------------------------------------------------

def test_decode_full_clean_codeword():
    rs = ReedSolomon(7, 3)
    message = [1, 2, 3]
    codeword = rs.encode(message)
    received = list(enumerate(codeword))
    assert rs.decode(received) == message


def test_decode_from_any_k_elements():
    rs = ReedSolomon(7, 3)
    message = [9, 8, 7]
    codeword = rs.encode(message)
    # erasure-only: any k of the n elements suffice
    for positions in ((0, 1, 2), (4, 5, 6), (0, 3, 6)):
        received = [(p, codeword[p]) for p in positions]
        assert rs.decode(received) == message


def test_decode_with_max_budget_errors():
    rs = ReedSolomon(12, 4)  # full codeword corrects (12-4)//2 = 4 errors
    message = [5, 6, 7, 8]
    codeword = rs.encode(message)
    received = list(enumerate(codeword))
    for i in range(4):
        pos, sym = received[i]
        received[i] = (pos, sym ^ 0xFF)
    assert rs.decode(received) == message


def test_decode_mixed_errors_and_erasures():
    # BCSR regime: n=11, f=2, k=n-5f=1; read sees n-f=9 elements, 2f=4 wrong.
    rs = ReedSolomon(11, 1)
    message = [123]
    codeword = rs.encode(message)
    received = [(i, codeword[i]) for i in range(9)]   # 2 erasures
    for i in range(4):                                 # 4 errors
        pos, sym = received[i]
        received[i] = (pos, sym ^ 0x42)
    assert rs.decode(received) == message


def test_decode_beyond_budget_fails():
    rs = ReedSolomon(6, 2)  # with all 6: budget (6-2)//2 = 2
    message = [1, 2]
    codeword = rs.encode(message)
    received = list(enumerate(codeword))
    for i in range(3):  # 3 errors, one too many
        pos, sym = received[i]
        received[i] = (pos, sym ^ 0x99)
    with pytest.raises(DecodingError):
        rs.decode(received)


def test_decode_too_few_elements_fails():
    rs = ReedSolomon(6, 3)
    codeword = rs.encode([1, 2, 3])
    with pytest.raises(DecodingError):
        rs.decode([(0, codeword[0]), (1, codeword[1])])


def test_decode_duplicate_positions_rejected():
    rs = ReedSolomon(6, 2)
    codeword = rs.encode([1, 2])
    with pytest.raises(ValueError):
        rs.decode([(0, codeword[0]), (0, codeword[0]), (1, codeword[1])])


def test_decode_out_of_range_position_rejected():
    rs = ReedSolomon(6, 2)
    with pytest.raises(ValueError):
        rs.decode([(0, 1), (7, 2)])


def test_max_errors_parameter_restricts_budget():
    rs = ReedSolomon(8, 2)
    message = [3, 4]
    codeword = rs.encode(message)
    received = list(enumerate(codeword))
    pos, sym = received[0]
    received[0] = (pos, sym ^ 0x10)
    received[1] = (received[1][0], received[1][1] ^ 0x20)
    # 2 errors but caller only allows 1 -> must fail rather than mis-decode.
    with pytest.raises(DecodingError):
        rs.decode(received, max_errors=1)
    assert rs.decode(received) == message  # default budget handles it


# -- shared tables and the recovery LRU ---------------------------------------

def test_parity_matrix_shared_across_instances():
    # Two instances of the same [n, k] shape share one parity matrix, so
    # short-lived codec objects never rebuild tables.
    assert ReedSolomon(13, 4)._parity() is ReedSolomon(13, 4)._parity()
    assert ReedSolomon(13, 4)._parity() is not ReedSolomon(13, 5)._parity()


def test_recovery_cache_shared_across_instances():
    a, b = ReedSolomon(21, 2), ReedSolomon(21, 2)
    a._recovery_cache.clear()
    a._recovery_for((0, 1, 2))
    assert (0, 1, 2) in b._recovery_cache


def test_recovery_cache_is_a_bounded_lru():
    from repro.erasure.rs import _RECOVERY_CACHE_SIZE

    rs = ReedSolomon(200, 1)
    cache = rs._recovery_cache
    cache.clear()
    for p in range(_RECOVERY_CACHE_SIZE):
        rs._recovery_for((p,))
    assert len(cache) == _RECOVERY_CACHE_SIZE
    # A hit moves the entry to the MRU end...
    rs._recovery_for((0,))
    # ...so the next insert evicts the oldest *untouched* entry, not (0,).
    rs._recovery_for((199,))
    assert len(cache) == _RECOVERY_CACHE_SIZE
    assert (0,) in cache
    assert (1,) not in cache
    assert (199,) in cache


def test_recovery_cache_hit_returns_same_matrices():
    rs = ReedSolomon(9, 3)
    first = rs._recovery_for((1, 3, 5, 7))
    assert rs._recovery_for((1, 3, 5, 7)) is first


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_decode_roundtrip_random_patterns(data):
    n = data.draw(st.integers(min_value=4, max_value=24), label="n")
    k = data.draw(st.integers(min_value=1, max_value=n - 2), label="k")
    rs = ReedSolomon(n, k)
    message = data.draw(
        st.lists(st.integers(min_value=0, max_value=255),
                 min_size=k, max_size=k),
        label="message",
    )
    codeword = rs.encode(message)
    received_count = data.draw(st.integers(min_value=k, max_value=n), label="N")
    rng = SimRng(data.draw(st.integers(min_value=0, max_value=10_000)), "rs")
    positions = rng.sample(range(n), received_count)
    budget = (received_count - k) // 2
    error_count = data.draw(st.integers(min_value=0, max_value=budget),
                            label="errors")
    error_positions = set(rng.sample(positions, error_count))
    received = [
        (p, codeword[p] ^ 0x3C if p in error_positions else codeword[p])
        for p in positions
    ]
    assert rs.decode(received) == message


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=1000))
def test_lemma4_regime_always_decodes(seed):
    """Lemma 4's counting: n >= 5f+1, N = n-f received, <= 2f wrong."""
    rng = SimRng(seed, "lemma4")
    f = rng.randint(1, 3)
    n = 5 * f + 1 + rng.randint(0, 4)
    k = n - 5 * f
    rs = ReedSolomon(n, k)
    message = [rng.randint(0, 255) for _ in range(k)]
    codeword = rs.encode(message)
    positions = rng.sample(range(n), n - f)
    wrong = set(rng.sample(positions, 2 * f))
    received = [
        (p, (codeword[p] + 1) % 256 if p in wrong else codeword[p])
        for p in positions
    ]
    assert rs.decode(received, max_errors=2 * f) == message
