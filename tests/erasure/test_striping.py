"""Unit and property tests for byte-value striping."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.erasure.striping import CodedElement, StripedCodec
from repro.errors import DecodingError
from repro.sim.rng import SimRng


def test_encode_produces_n_elements():
    codec = StripedCodec(7, 2)
    elements = codec.encode(b"hello world")
    assert len(elements) == 7
    assert [e.index for e in elements] == list(range(7))


def test_element_sizes_shrink_with_k():
    value = b"x" * 1200
    size_k1 = StripedCodec(11, 1).encode(value)[0]
    size_k6 = StripedCodec(11, 6).encode(value)[0]
    assert len(size_k6) < len(size_k1)
    # roughly 1/k of the value (plus the 4-byte frame)
    assert len(size_k6.data) == StripedCodec(11, 6).element_size(1200)


def test_roundtrip_all_elements():
    codec = StripedCodec(6, 3)
    value = b"some register contents!"
    assert codec.decode(codec.encode(value)) == value


def test_roundtrip_empty_value():
    codec = StripedCodec(6, 3)
    assert codec.decode(codec.encode(b"")) == b""


def test_roundtrip_from_any_k_elements():
    codec = StripedCodec(7, 3)
    elements = codec.encode(b"value-123456")
    assert codec.decode(elements[4:]) == b"value-123456"
    assert codec.decode([elements[0], elements[3], elements[6]]) == b"value-123456"


def test_decode_with_corrupted_elements():
    codec = StripedCodec(11, 1)  # n=11, f=2 regime
    value = b"the quick brown fox" * 4
    elements = codec.encode(value)
    received = elements[:9]  # n - f
    corrupted = [
        CodedElement(received[0].index, bytes(b ^ 0xFF for b in received[0].data)),
        CodedElement(received[1].index, bytes(b ^ 0x11 for b in received[1].data)),
        CodedElement(received[2].index, bytes(b ^ 0x22 for b in received[2].data)),
        CodedElement(received[3].index, bytes(b ^ 0x33 for b in received[3].data)),
    ] + list(received[4:])
    assert codec.decode(corrupted, max_errors=4) == value


def test_decode_too_few_elements():
    codec = StripedCodec(7, 4)
    elements = codec.encode(b"abcdef")
    with pytest.raises(DecodingError):
        codec.decode(elements[:3])


def test_decode_duplicate_index_rejected():
    codec = StripedCodec(5, 2)
    elements = codec.encode(b"abc")
    with pytest.raises(ValueError):
        codec.decode([elements[0], elements[0], elements[1]])


def test_decode_out_of_range_index_rejected():
    codec = StripedCodec(5, 2)
    with pytest.raises(ValueError):
        codec.decode([CodedElement(9, b"xx"), CodedElement(0, b"yy")])


def test_wrong_length_elements_filtered_by_majority():
    codec = StripedCodec(6, 1)
    value = b"consistent"
    elements = codec.encode(value)
    # One Byzantine element with a bogus length must not break decoding.
    received = list(elements[:5])
    received[0] = CodedElement(received[0].index, b"\x01")
    assert codec.decode(received) == value


def test_majority_length_tie_prefers_larger_length():
    """Regression: a 2-vs-2 length tie must resolve deterministically.

    ``max`` over a ``set`` of lengths used to break ties by hash iteration
    order; the tie-break now always prefers the larger length, so honest
    full-size elements survive truncated Byzantine ones.
    """
    codec = StripedCodec(7, 1)
    value = b"tie-breaking-must-be-deterministic"
    elements = codec.encode(value)
    truncated = [CodedElement(e.index, e.data[:-1]) for e in elements[2:4]]
    received = list(elements[:2]) + truncated
    # 2 elements of the true length vs 2 one-byte-shorter: the larger
    # length wins the tie, so decoding recovers the value.
    assert codec.decode(received) == value
    # Same outcome regardless of element arrival order.
    assert codec.decode(list(reversed(received))) == value


def test_all_wrong_lengths_fails_cleanly():
    codec = StripedCodec(6, 3)
    with pytest.raises(DecodingError):
        codec.decode([
            CodedElement(0, b"a"), CodedElement(1, b"bb"),
            CodedElement(2, b"ccc"), CodedElement(3, b"dddd"),
        ])


def test_encode_rejects_non_bytes():
    codec = StripedCodec(5, 2)
    with pytest.raises(TypeError):
        codec.encode("not bytes")


def test_element_size_accounting():
    codec = StripedCodec(10, 5)
    value = b"z" * 100
    elements = codec.encode(value)
    assert all(len(e.data) == codec.element_size(100) for e in elements)
    # (100 + 4 frame bytes) / k=5 -> 21 stripes
    assert codec.element_size(100) == 21


@settings(max_examples=40, deadline=None)
@given(st.binary(max_size=200), st.integers(min_value=0, max_value=500))
def test_roundtrip_random_values_with_errors(value, seed):
    rng = SimRng(seed, "striping")
    n = rng.randint(4, 14)
    k = rng.randint(1, n - 2)
    codec = StripedCodec(n, k)
    elements = codec.encode(value)
    received_count = rng.randint(k, n)
    chosen = rng.sample(elements, received_count)
    budget = (received_count - k) // 2
    error_count = rng.randint(0, budget)
    corrupt_targets = set(rng.sample(range(received_count), error_count))
    received = [
        CodedElement(e.index, bytes((b + 1) % 256 for b in e.data))
        if i in corrupt_targets else e
        for i, e in enumerate(chosen)
    ]
    assert codec.decode(received) == value
