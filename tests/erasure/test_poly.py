"""Unit and property tests for polynomial algebra over GF(256)."""

import pytest
from hypothesis import given, strategies as st

from repro.erasure.gf256 import GF256
from repro.erasure.poly import Poly

coeff_lists = st.lists(st.integers(min_value=0, max_value=255), max_size=8)


def poly(coeffs):
    return Poly(coeffs)


def test_trailing_zeros_trimmed():
    assert Poly([1, 2, 0, 0]).coeffs == (1, 2)
    assert Poly([0, 0]).is_zero()


def test_zero_polynomial_degree():
    assert Poly.zero().degree == -1
    assert Poly.constant(5).degree == 0
    assert Poly.monomial(3).degree == 3


def test_monomial_rejects_negative_degree():
    with pytest.raises(ValueError):
        Poly.monomial(-1)


def test_coefficient_beyond_degree_is_zero():
    p = Poly([1, 2, 3])
    assert p.coefficient(0) == 1
    assert p.coefficient(2) == 3
    assert p.coefficient(10) == 0


def test_evaluate_constant_and_linear():
    assert Poly.constant(9).evaluate(123) == 9
    # p(x) = 3 + 2x at x=1: 3 + 2 = 1 (XOR in GF(2^8))
    assert Poly([3, 2]).evaluate(1) == GF256.add(3, 2)


def test_addition_is_coefficientwise_xor():
    a = Poly([1, 2, 3])
    b = Poly([4, 5])
    assert (a + b).coeffs == (1 ^ 4, 2 ^ 5, 3)


def test_addition_cancels_equal_polynomials():
    p = Poly([7, 8, 9])
    assert (p + p).is_zero()


def test_multiplication_by_zero_and_one():
    p = Poly([5, 6])
    assert (p * Poly.zero()).is_zero()
    assert (p * Poly.constant(1)) == p


def test_known_product():
    # (1 + x) * (1 + x) = 1 + x^2 in characteristic 2
    p = Poly([1, 1])
    assert (p * p).coeffs == (1, 0, 1)


def test_scale():
    p = Poly([1, 2])
    assert p.scale(0).is_zero()
    assert p.scale(1) == p
    doubled = p.scale(2)
    assert doubled.coeffs == (GF256.mul(1, 2), GF256.mul(2, 2))


def test_divmod_recovers_factors():
    a = Poly([3, 7, 1])       # quadratic
    b = Poly([5, 1])          # linear
    product = a * b
    quotient, remainder = product.divmod(b)
    assert remainder.is_zero()
    assert quotient == a


def test_divmod_with_remainder():
    numerator = Poly([1, 0, 0, 1])   # 1 + x^3
    divisor = Poly([1, 1])           # 1 + x
    quotient, remainder = numerator.divmod(divisor)
    assert quotient * divisor + remainder == numerator


def test_division_by_zero_raises():
    with pytest.raises(ZeroDivisionError):
        Poly([1]).divmod(Poly.zero())


def test_floordiv_and_mod_operators():
    a = Poly([2, 3, 4])
    b = Poly([1, 1])
    assert (a // b) * b + (a % b) == a


def test_interpolate_through_points():
    points = [(1, 17), (2, 99), (3, 4), (7, 200)]
    p = Poly.interpolate(points)
    assert p.degree < len(points)
    for x, y in points:
        assert p.evaluate(x) == y


def test_interpolate_rejects_duplicate_x():
    with pytest.raises(ValueError):
        Poly.interpolate([(1, 2), (1, 3)])


def test_equality_and_hash():
    assert Poly([1, 2]) == Poly([1, 2, 0])
    assert hash(Poly([1, 2])) == hash(Poly([1, 2, 0]))
    assert Poly([1]) != Poly([2])


@given(coeff_lists, coeff_lists)
def test_add_commutative(a, b):
    assert Poly(a) + Poly(b) == Poly(b) + Poly(a)


@given(coeff_lists, coeff_lists)
def test_mul_commutative(a, b):
    assert Poly(a) * Poly(b) == Poly(b) * Poly(a)


@given(coeff_lists, coeff_lists, st.integers(min_value=0, max_value=255))
def test_evaluation_is_ring_homomorphism(a, b, x):
    pa, pb = Poly(a), Poly(b)
    assert (pa + pb).evaluate(x) == GF256.add(pa.evaluate(x), pb.evaluate(x))
    assert (pa * pb).evaluate(x) == GF256.mul(pa.evaluate(x), pb.evaluate(x))


@given(st.lists(st.tuples(st.integers(min_value=0, max_value=255),
                          st.integers(min_value=0, max_value=255)),
                min_size=1, max_size=10,
                unique_by=lambda point: point[0]))
def test_interpolation_roundtrip(points):
    p = Poly.interpolate(points)
    for x, y in points:
        assert p.evaluate(x) == y
