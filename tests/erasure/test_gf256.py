"""Unit and property tests for GF(2^8) arithmetic.

The property tests verify the field axioms over random elements; the unit
tests pin down edge cases (zero, one, the generator).
"""

import pytest
from hypothesis import given, strategies as st

from repro.erasure.gf256 import GF256

elements = st.integers(min_value=0, max_value=255)
nonzero = st.integers(min_value=1, max_value=255)


def test_add_is_xor():
    assert GF256.add(0b1010, 0b0110) == 0b1100


def test_add_identity_and_self_inverse():
    for a in range(256):
        assert GF256.add(a, 0) == a
        assert GF256.add(a, a) == 0  # characteristic 2


def test_sub_equals_add():
    assert GF256.sub(17, 99) == GF256.add(17, 99)


def test_mul_by_zero_and_one():
    for a in range(256):
        assert GF256.mul(a, 0) == 0
        assert GF256.mul(a, 1) == a


def test_div_by_zero_raises():
    with pytest.raises(ZeroDivisionError):
        GF256.div(5, 0)


def test_inv_of_zero_raises():
    with pytest.raises(ZeroDivisionError):
        GF256.inv(0)


def test_every_nonzero_element_has_inverse():
    for a in range(1, 256):
        assert GF256.mul(a, GF256.inv(a)) == 1


def test_pow_edge_cases():
    assert GF256.pow(0, 0) == 1
    assert GF256.pow(0, 5) == 0
    assert GF256.pow(7, 0) == 1
    with pytest.raises(ZeroDivisionError):
        GF256.pow(0, -1)


def test_pow_negative_is_inverse_power():
    for a in (1, 2, 37, 255):
        assert GF256.mul(GF256.pow(a, -1), a) == 1
        assert GF256.pow(a, -2) == GF256.inv(GF256.mul(a, a))


def test_generator_powers_cover_nonzero_elements():
    seen = {GF256.generator_power(i) for i in range(255)}
    assert seen == set(range(1, 256))


def test_validate():
    assert GF256.validate(200) == 200
    with pytest.raises(ValueError):
        GF256.validate(256)
    with pytest.raises(ValueError):
        GF256.validate(-1)
    with pytest.raises(ValueError):
        GF256.validate(1.5)


@given(elements, elements)
def test_mul_commutative(a, b):
    assert GF256.mul(a, b) == GF256.mul(b, a)


@given(elements, elements, elements)
def test_mul_associative(a, b, c):
    assert GF256.mul(GF256.mul(a, b), c) == GF256.mul(a, GF256.mul(b, c))


@given(elements, elements, elements)
def test_distributivity(a, b, c):
    left = GF256.mul(a, GF256.add(b, c))
    right = GF256.add(GF256.mul(a, b), GF256.mul(a, c))
    assert left == right


@given(elements, nonzero)
def test_div_inverts_mul(a, b):
    assert GF256.div(GF256.mul(a, b), b) == a


@given(nonzero, st.integers(min_value=-300, max_value=300))
def test_pow_matches_repeated_mul(a, e):
    expected = 1
    base = a if e >= 0 else GF256.inv(a)
    for _ in range(abs(e)):
        expected = GF256.mul(expected, base)
    assert GF256.pow(a, e) == expected
