"""OpSpan/OpTracer: phases, quorum waits, outcomes, sinks."""

import json

from repro.obs import (
    JsonlSink,
    MemorySink,
    MetricRegistry,
    OpTracer,
    phase_name,
)


def make_tracer(sink=None):
    registry = MetricRegistry()
    return registry, OpTracer(registry, sink=sink, client_id="w000",
                              algorithm="bsr")


def test_span_records_phases_and_quorum_waits():
    registry, tracer = make_tracer(sink=MemorySink())
    span = tracer.start(kind="write", op_id=7, witness=2, quorum=4, now=0.0)
    span.begin_phase("get-tag", 0.0)
    span.record_reply("s000", 0.010)
    span.record_reply("s001", 0.020)   # witness threshold (f + 1 = 2)
    span.record_reply("s001", 0.025)   # duplicate: ignored
    span.record_reply("s002", 0.030)
    span.record_reply("s003", 0.040)   # quorum threshold (n - f = 4)
    span.begin_phase("put-data", 0.050)
    span.record_reply("s000", 0.060)
    span.finish("ok", 0.100)
    span.finish("error", 9.9)          # idempotent: first outcome wins

    [record] = tracer.sink.records
    assert record["kind"] == "write" and record["outcome"] == "ok"
    assert record["latency"] == 0.100
    get_tag, put_data = record["phases"]
    assert get_tag["phase"] == "get-tag"
    assert get_tag["witness_wait"] == 0.020
    assert get_tag["quorum_wait"] == 0.040
    assert len(get_tag["replies"]) == 4  # the duplicate was dropped
    assert put_data["phase"] == "put-data"
    assert put_data["duration"] == 0.050  # closed by finish()

    assert registry.counter_value("client_ops_total", op="write",
                                  outcome="ok") == 1
    [histogram] = registry.histograms_named("client_op_seconds")
    assert histogram.count == 1
    phase_histograms = registry.histograms_named("client_phase_seconds")
    assert {dict(h.labels)["phase"] for h in phase_histograms} == {
        "get-tag", "put-data"}


def test_throttle_and_resend_counters_land_in_record():
    _, tracer = make_tracer(sink=MemorySink())
    span = tracer.start(kind="read", op_id=1, witness=2, quorum=4, now=0.0)
    span.begin_phase("get-data", 0.0)
    span.note_throttle()
    span.note_resend(3)
    span.finish("throttled", 1.0)
    [record] = tracer.sink.records
    assert record["throttles"] == 1 and record["resends"] == 3


def test_jsonl_sink_appends_parseable_lines(tmp_path):
    path = tmp_path / "trace.jsonl"
    sink = JsonlSink(str(path))
    _, tracer = make_tracer()
    tracer.sink = sink
    for index in range(2):
        span = tracer.start(kind="read", op_id=index, witness=2, quorum=4,
                            now=0.0)
        span.begin_phase("get-data", 0.0)
        span.finish("ok", 0.5)
    sink.close()
    lines = path.read_text().strip().splitlines()
    assert len(lines) == 2
    assert all(json.loads(line)["algorithm"] == "bsr" for line in lines)


def test_phase_names_cover_algorithm_rounds():
    assert phase_name("write", 1) == "get-tag"
    assert phase_name("write", 2) == "put-data"
    assert phase_name("read", 1, "bsr") == "get-data"
    assert phase_name("read", 1, "bsr-history") == "get-history"
    assert phase_name("read", 1, "bsr-2round") == "get-tag-history"
    assert phase_name("read", 2, "bsr-2round") == "get-value"
    assert phase_name("read", 2, "abd") == "write-back"
    assert phase_name("read", 3, "bsr") == "round-3"
