"""HTTP metrics exporter: endpoints, merging, error handling."""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs import MetricRegistry, MetricsExporter


def _get(port, path):
    with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}",
                                timeout=5.0) as reply:
        return reply.status, reply.headers.get("Content-Type"), reply.read()


@pytest.fixture
def exporter():
    registry_a, registry_b = MetricRegistry(), MetricRegistry()
    registry_a.counter("node_frames_total", node="s000").inc(3)
    registry_b.counter("node_frames_total", node="s001").inc(4)

    def scrape():
        return [registry_a.snapshot(), registry_b.snapshot()]

    def lookup(op_id):
        if op_id == 64:
            return [{"op_id": 64, "node": "s000", "phase": "get-tag"}]
        return []

    with MetricsExporter(scrape, trace_lookup=lookup, port=0) as server:
        yield server


def test_metrics_merges_all_scraped_nodes(exporter):
    status, content_type, body = _get(exporter.port, "/metrics")
    assert status == 200
    assert content_type.startswith("text/plain; version=0.0.4")
    text = body.decode()
    assert 'repro_node_frames_total{node="s000"} 3' in text
    assert 'repro_node_frames_total{node="s001"} 4' in text


def test_metrics_json_round_trips(exporter):
    status, content_type, body = _get(exporter.port, "/metrics.json")
    assert status == 200 and content_type == "application/json"
    snapshot = json.loads(body)
    assert len(snapshot["counters"]) == 2


def test_healthz(exporter):
    status, _, body = _get(exporter.port, "/healthz")
    assert status == 200 and body == b"ok\n"


def test_trace_endpoint_serves_known_op(exporter):
    status, _, body = _get(exporter.port, "/traces/64")
    assert status == 200
    assert json.loads(body)[0]["node"] == "s000"


def test_trace_endpoint_404_on_unknown_op(exporter):
    with pytest.raises(urllib.error.HTTPError) as info:
        _get(exporter.port, "/traces/999")
    assert info.value.code == 404


def test_trace_endpoint_400_on_non_integer(exporter):
    with pytest.raises(urllib.error.HTTPError) as info:
        _get(exporter.port, "/traces/abc")
    assert info.value.code == 400


def test_unknown_path_404(exporter):
    with pytest.raises(urllib.error.HTTPError) as info:
        _get(exporter.port, "/nope")
    assert info.value.code == 404


def test_scrape_failure_becomes_500_not_a_crash():
    def broken():
        raise RuntimeError("node exploded")

    with MetricsExporter(broken, port=0) as server:
        with pytest.raises(urllib.error.HTTPError) as info:
            _get(server.port, "/metrics")
        assert info.value.code == 500
        # The server survives the failed request.
        status, _, _ = _get(server.port, "/healthz")
        assert status == 200


def test_trace_404_when_lookup_not_configured():
    with MetricsExporter(lambda: [], port=0) as server:
        with pytest.raises(urllib.error.HTTPError) as info:
            _get(server.port, "/traces/1")
        assert info.value.code == 404


def test_stop_is_idempotent_and_start_returns_address():
    exporter = MetricsExporter(lambda: [], port=0)
    host, port = exporter.start()
    assert host == "127.0.0.1" and port > 0
    assert exporter.start() == (host, port)  # second start is a no-op
    exporter.stop()
    exporter.stop()
