"""Flight recorder ring and the matching client-side sampling sink."""

import pytest

from repro.obs import FlightRecorder, MemorySink, SamplingSink


def _entry(op_id, node="s000", phase="get-tag", recv=1.0):
    return {"op_id": op_id, "node": node, "phase": phase, "recv": recv,
            "queue_wait": 0.001, "service": 0.002, "verdict": "served",
            "repeat": False}


# -- sampling predicate ------------------------------------------------------

def test_wants_is_deterministic_modulus():
    recorder = FlightRecorder(sample=8)
    assert [op for op in range(1, 33) if recorder.wants(op)] == [8, 16, 24, 32]


def test_sample_zero_disables_recording():
    recorder = FlightRecorder(sample=0)
    assert not recorder.wants(64)
    assert not recorder.wants(0)


def test_sample_one_records_everything():
    recorder = FlightRecorder(sample=1)
    assert all(recorder.wants(op) for op in range(1, 10))


def test_wants_rejects_non_int_op_ids():
    recorder = FlightRecorder(sample=1)
    assert not recorder.wants(None)
    assert not recorder.wants("64")
    assert not recorder.wants(64.0)


def test_client_and_server_sample_the_same_ops():
    """The whole point: SamplingSink and FlightRecorder agree, so every
    client-kept span has matching server records to stitch against."""
    recorder = FlightRecorder(sample=16)
    memory = MemorySink()
    sink = SamplingSink(memory, sample=16)
    for op in range(1, 100):
        sink.emit({"op_id": op})
    client_kept = {r["op_id"] for r in memory.records}
    server_kept = {op for op in range(1, 100) if recorder.wants(op)}
    assert client_kept == server_kept


# -- ring bounds and dumps ---------------------------------------------------

def test_ring_evicts_oldest_but_total_keeps_counting():
    recorder = FlightRecorder(capacity=4, sample=1)
    for op in range(10):
        recorder.record(_entry(op))
    assert len(recorder) == 4
    assert recorder.total == 10
    assert [r["op_id"] for r in recorder.dump()] == [6, 7, 8, 9]


def test_dump_filters_by_op_id():
    recorder = FlightRecorder(sample=1)
    recorder.record(_entry(5, phase="get-tag"))
    recorder.record(_entry(6))
    recorder.record(_entry(5, phase="put-data"))
    assert [r["phase"] for r in recorder.dump(5)] == ["get-tag", "put-data"]
    assert recorder.dump(-1) == recorder.dump()  # -1 == all (wire default)
    assert recorder.dump(999) == []


def test_dump_limit_keeps_newest_after_filtering():
    recorder = FlightRecorder(sample=1)
    for op in range(6):
        recorder.record(_entry(op))
    assert [r["op_id"] for r in recorder.dump(limit=2)] == [4, 5]


def test_clear_resets_ring_not_total():
    recorder = FlightRecorder(sample=1)
    recorder.record(_entry(1))
    recorder.clear()
    assert len(recorder) == 0
    assert recorder.total == 1


def test_invalid_construction_rejected():
    with pytest.raises(ValueError):
        FlightRecorder(capacity=0)
    with pytest.raises(ValueError):
        FlightRecorder(sample=-1)
    with pytest.raises(ValueError):
        SamplingSink(MemorySink(), sample=0)


def test_sampling_sink_close_propagates():
    class Closable:
        closed = False

        def emit(self, record):
            pass

        def close(self):
            self.closed = True

    inner = Closable()
    SamplingSink(inner, sample=4).close()
    assert inner.closed
