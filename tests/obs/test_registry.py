"""MetricRegistry: counters, gauges, histograms, snapshots, exposition."""

import json

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    MetricRegistry,
    merge_snapshots,
    render_prometheus,
    summarize_histogram_snapshot,
)
from repro.obs.stats import (
    bucket_percentile,
    nearest_rank,
    percentile,
    summarize_latencies,
)


# -- shared order statistics ------------------------------------------------

def test_nearest_rank_matches_list_percentile():
    sample = sorted([0.4, 0.1, 0.9, 0.2, 0.7])
    assert percentile(sample, 0.5) == 0.4
    assert percentile(sample, 0.99) == 0.9
    assert nearest_rank(5, 0.5) == 2
    with pytest.raises(ValueError):
        nearest_rank(5, 1.5)


def test_summarize_latencies_empty_and_filled():
    empty = summarize_latencies([])
    assert empty.count == 0 and empty.p99 == 0.0
    summary = summarize_latencies([0.1, 0.2, 0.3, 0.4])
    assert summary.count == 4
    assert summary.mean == pytest.approx(0.25)
    assert summary.minimum == 0.1 and summary.maximum == 0.4


def test_bucket_percentile_clamps_to_observed_maximum():
    bounds = (0.1, 1.0)
    # 3 observations in the first bucket, 1 in overflow; max seen 1.7.
    assert bucket_percentile(bounds, [3, 0, 1], 0.5, maximum=0.07) == 0.07
    assert bucket_percentile(bounds, [3, 0, 1], 0.99, maximum=1.7) == 1.7


# -- registry ----------------------------------------------------------------

def test_counter_and_gauge_basics():
    registry = MetricRegistry()
    counter = registry.counter("frames_total", node="s000")
    counter.inc()
    counter.inc(2)
    assert registry.counter("frames_total", node="s000") is counter
    assert registry.counter_value("frames_total", node="s000") == 3
    with pytest.raises(ValueError):
        counter.inc(-1)
    gauge = registry.gauge("connections", node="s000")
    gauge.set(4)
    gauge.dec()
    assert gauge.value == 3


def test_histogram_summary_tracks_exact_extremes():
    registry = MetricRegistry()
    histogram = registry.histogram("lat", buckets=(0.01, 0.1, 1.0))
    for value in (0.005, 0.02, 0.02, 0.5, 3.0):
        histogram.observe(value)
    summary = histogram.summary()
    assert summary.count == 5
    assert summary.minimum == 0.005
    assert summary.maximum == 3.0  # overflow bucket reports the exact max
    assert summary.mean == pytest.approx(sum((0.005, 0.02, 0.02, 0.5, 3.0)) / 5)
    assert summary.p99 == 3.0
    assert summary.p50 <= 0.1  # bucket upper bound containing the median


def test_snapshot_is_json_serializable_and_complete():
    registry = MetricRegistry()
    registry.counter("ops_total", op="read").inc()
    registry.gauge("depth").set(2)
    registry.histogram("lat", op="read").observe(0.02)
    snapshot = registry.snapshot()
    parsed = json.loads(json.dumps(snapshot))
    assert parsed["namespace"] == "repro"
    assert parsed["counters"][0] == {
        "name": "ops_total", "labels": {"op": "read"}, "value": 1}
    [histogram] = parsed["histograms"]
    assert histogram["buckets"] == list(DEFAULT_LATENCY_BUCKETS)
    assert sum(histogram["counts"]) == 1
    assert summarize_histogram_snapshot(histogram).count == 1


def test_prometheus_rendering_cumulative_buckets():
    registry = MetricRegistry()
    registry.counter("ops_total", op="read", outcome="ok").inc(7)
    histogram = registry.histogram("lat", buckets=(0.1, 1.0))
    histogram.observe(0.05)
    histogram.observe(0.5)
    histogram.observe(5.0)
    text = registry.to_prometheus()
    assert '# TYPE repro_ops_total counter' in text
    assert 'repro_ops_total{op="read",outcome="ok"} 7' in text
    assert 'repro_lat_bucket{le="0.1"} 1' in text
    assert 'repro_lat_bucket{le="1"} 2' in text
    assert 'repro_lat_bucket{le="+Inf"} 3' in text
    assert 'repro_lat_count 3' in text
    # Render from a round-tripped snapshot too (the scrape path).
    assert render_prometheus(json.loads(json.dumps(registry.snapshot()))) == text


def test_merge_snapshots_concatenates():
    a, b = MetricRegistry(), MetricRegistry()
    a.counter("frames_total", node="s000").inc()
    b.counter("frames_total", node="s001").inc(2)
    merged = merge_snapshots([a.snapshot(), b.snapshot()])
    values = {entry["labels"]["node"]: entry["value"]
              for entry in merged["counters"]}
    assert values == {"s000": 1, "s001": 2}


def test_prometheus_escapes_adversarial_label_values():
    """Label values are attacker-influenced (key names, client ids); the
    exposition must escape backslashes, quotes and newlines per the
    Prometheus text format or one hostile key corrupts the whole page."""
    registry = MetricRegistry()
    registry.counter("ops_total", key='evil"} repro_fake 1 #').inc()
    registry.counter("ops_total", key="back\\slash").inc(2)
    registry.counter("ops_total", key="multi\nline").inc(3)
    text = registry.to_prometheus()
    assert 'key="evil\\"} repro_fake 1 #"' in text
    assert 'key="back\\\\slash"' in text
    assert 'key="multi\\nline"' in text
    # No raw newline smuggled into the middle of a sample line: every
    # non-comment line still parses as `name{labels} value`.
    for line in text.splitlines():
        if line and not line.startswith("#"):
            assert line.rstrip().rsplit(" ", 1)[1].replace(".", "").isdigit()
