"""LogGate: per-reason warning rate limits with counted suppression."""

import logging

from repro.obs import LogGate, MetricRegistry


def make_gate(caplog_logger="test.loglimit", rate=1.0, burst=2.0):
    now = [0.0]
    registry = MetricRegistry()
    gate = LogGate(logging.getLogger(caplog_logger), registry,
                   component="node/s000", rate=rate, burst=burst,
                   clock=lambda: now[0])
    return gate, registry, now


def test_burst_passes_then_flood_is_suppressed_and_counted(caplog):
    gate, registry, now = make_gate()
    with caplog.at_level(logging.WARNING, logger="test.loglimit"):
        results = [gate.warning("bad-frame", "bad frame %d", i)
                   for i in range(10)]
    assert results[:2] == [True, True]
    assert not any(results[2:])
    assert gate.suppressed("bad-frame") == 8
    assert registry.counter_value(
        "log_suppressed_total", component="node/s000",
        reason="bad-frame") == 8
    # The gate announces itself once: 2 real warnings + 1 marker line.
    assert len(caplog.records) == 3
    assert "suppressing further" in caplog.records[2].getMessage()


def test_refill_reopens_the_gate(caplog):
    gate, _, now = make_gate()
    with caplog.at_level(logging.WARNING, logger="test.loglimit"):
        assert gate.warning("r", "a") and gate.warning("r", "b")
        assert not gate.warning("r", "c")
        now[0] += 1.0  # refills one token at rate=1/s
        assert gate.warning("r", "d")


def test_reasons_are_independent():
    gate, registry, _ = make_gate(burst=1.0)
    assert gate.warning("one", "x")
    assert not gate.warning("one", "x")
    assert gate.warning("two", "y")  # a different reason has its own bucket
    assert gate.suppressed("two") == 0
