"""Causal trace stitching: client spans joined with flight records."""

from repro.obs import format_timeline, slowest, stitch, stitch_op
from repro.obs.stitch import ALIGNMENT_SLACK


def _client_record(op_id=64, ts=100.010, latency=0.010, kind="write",
                   phases=None):
    if phases is None:
        phases = [
            {"phase": "get-tag", "duration": 0.006,
             "witness_wait": 0.002, "quorum_wait": 0.005,
             "replies": {"s000": 0.001, "s001": 0.002, "s002": 0.004,
                         "s003": 0.005}},
            {"phase": "put-data", "duration": 0.004,
             "witness_wait": 0.002, "quorum_wait": 0.003,
             "replies": {"s000": 0.001, "s001": 0.002, "s002": 0.0025,
                         "s003": 0.003}},
        ]
    return {"ts": ts, "client": "w000", "algorithm": "bsr", "kind": kind,
            "op_id": op_id, "outcome": "ok", "latency": latency,
            "throttles": 0, "resends": 0, "inflight": 1, "phases": phases}


def _flight(op_id=64, node="s000", phase="get-tag", recv=100.0005):
    return {"op_id": op_id, "node": node, "phase": phase, "recv": recv,
            "queue_wait": 0.0001, "service": 0.0002, "verdict": "served",
            "repeat": False}


def test_stitch_builds_absolute_phase_timeline():
    op = stitch_op(64, [_client_record()], [_flight()])
    assert op is not None
    assert op.started == 100.0
    assert op.finished == 100.010
    first, second = op.phases
    assert first["start"] == 100.0
    assert first["witness_at"] == 100.002   # f+1 witness instant
    assert first["quorum_at"] == 100.005    # n-f quorum instant
    assert second["start"] == 100.006       # phases are contiguous
    assert op.dominant_phase == "get-tag"


def test_events_order_witness_before_quorum():
    op = stitch_op(64, [_client_record()], [_flight()])
    texts = [text for _, _, text in op.events()]
    witness = texts.index("witness reached (f+1 replies)")
    quorum = texts.index("quorum reached (n-f replies)")
    assert witness < quorum
    assert texts[0].startswith("op start")
    assert texts[-1].startswith("op finish")
    offsets = [offset for offset, _, _ in op.events()]
    assert offsets == sorted(offsets)


def test_out_of_order_server_records_are_sorted():
    records = [_flight(node="s002", recv=100.004),
               _flight(node="s000", recv=100.0005),
               _flight(node="s001", recv=100.002)]
    op = stitch_op(64, [_client_record()], records)
    assert [r["node"] for r in op.servers] == ["s000", "s001", "s002"]
    assert op.aligned


def test_byzantine_withholding_leaves_a_visible_gap():
    """A node that answered the client but produced no flight record is
    named in ``missing_servers`` -- a gap, never an error."""
    records = [_flight(node="s000"), _flight(node="s001")]
    op = stitch_op(64, [_client_record()], records)
    assert op.missing_servers == ["s002", "s003"]
    assert "no server-side records from: s002, s003" in format_timeline(op)


def test_unaligned_clocks_fall_back_to_durations():
    far = _flight(recv=100.0 + ALIGNMENT_SLACK + 5.0)
    op = stitch_op(64, [_client_record()], [far])
    assert not op.aligned
    # No absolute server event on the timeline...
    assert all(actor == "client" for _, actor, _ in op.events())
    # ...but the record still renders with durations only.
    rendered = format_timeline(op)
    assert "server clocks not aligned" in rendered
    assert "queue 0.100ms" in rendered


def test_stitch_drops_unmatched_server_records():
    stitched = stitch([_client_record(op_id=64)],
                      [_flight(op_id=64), _flight(op_id=128)])
    assert len(stitched) == 1
    assert all(r["op_id"] == 64 for r in stitched[0].servers)


def test_stitch_op_returns_none_without_client_record():
    assert stitch_op(7, [_client_record(op_id=64)], [_flight(op_id=7)]) is None


def test_stitch_tolerates_wire_tuples():
    """TraceAck records decode as tuples of dicts; stitching accepts them."""
    op = stitch_op(64, [_client_record()], (_flight(),))
    assert op.servers


def test_slowest_ranks_by_latency():
    fast = _client_record(op_id=1, latency=0.001, ts=100.001)
    slow = _client_record(op_id=2, latency=0.050, ts=100.050)
    mid = _client_record(op_id=3, latency=0.010, ts=100.010)
    ranked = slowest(stitch([fast, slow, mid], []), top=2)
    assert [op.op_id for op in ranked] == [2, 3]


def test_timeline_renders_witness_and_quorum_instants():
    op = stitch_op(64, [_client_record()],
                   [_flight(node="s000", phase="get-tag"),
                    _flight(node="s001", phase="put-data", recv=100.007)])
    rendered = format_timeline(op)
    assert "witness reached (f+1 replies)" in rendered
    assert "quorum reached (n-f replies)" in rendered
    assert "recv get-tag" in rendered and "recv put-data" in rendered
    assert rendered.splitlines()[0].startswith("op 64 write by w000")


def test_throttle_line_and_repeat_marker():
    record = _client_record()
    record["throttles"] = 2
    shed = _flight()
    shed.update(verdict="throttled", repeat=True)
    rendered = format_timeline(stitch_op(64, [record], [shed]))
    assert "throttles=2" in rendered
    assert "[repeat]" in rendered and "throttled" in rendered
