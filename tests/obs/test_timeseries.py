"""Snapshot aggregation and the JSON-lines time-series sidecar."""

import io
import json

import pytest

from repro.obs import (
    MetricRegistry,
    SnapshotLog,
    aggregate_histograms,
    iter_snapshot_log,
    merge_registry_snapshots,
    read_snapshot_log,
)
from repro.obs.stats import bucket_percentile


def _worker_registry(values, ops=1):
    registry = MetricRegistry()
    registry.counter("ops_total", op="read").inc(ops)
    registry.gauge("backlog").set(len(values))
    hist = registry.histogram("op_seconds", op="read")
    for value in values:
        hist.observe(value)
    return registry


# -- merge_registry_snapshots ----------------------------------------------

def test_merge_folds_counters_and_gauges_by_identity():
    merged = merge_registry_snapshots([
        _worker_registry([0.1], ops=3).snapshot(),
        _worker_registry([0.2], ops=4).snapshot(),
    ])
    [counter] = [c for c in merged["counters"] if c["name"] == "ops_total"]
    assert counter["value"] == 7
    assert counter["labels"] == {"op": "read"}
    [gauge] = merged["gauges"]
    assert gauge["value"] == 2  # gauges sum too (backlogs add up)


def test_merged_histogram_equals_single_registry_of_all_samples():
    """Percentiles from the merged histogram match a single registry
    that observed every worker's samples -- aggregation, not averaging."""
    worker_a = [0.010, 0.020, 0.500]
    worker_b = [0.001, 0.250]
    merged = merge_registry_snapshots([
        _worker_registry(worker_a).snapshot(),
        _worker_registry(worker_b).snapshot(),
    ])
    oracle = _worker_registry(worker_a + worker_b).snapshot()
    [got] = merged["histograms"]
    [want] = oracle["histograms"]
    assert got["counts"] == list(want["counts"])
    assert got["sum"] == pytest.approx(want["sum"])
    assert got["min"] == want["min"] == 0.001
    assert got["max"] == want["max"] == 0.500
    for fraction in (0.5, 0.99):
        assert (bucket_percentile(got["buckets"], got["counts"], fraction,
                                  got["max"])
                == bucket_percentile(want["buckets"], list(want["counts"]),
                                     fraction, want["max"]))


def test_merge_adopts_extrema_from_first_non_empty_histogram():
    empty = _worker_registry([]).snapshot()
    filled = _worker_registry([0.3]).snapshot()
    [entry] = merge_registry_snapshots([empty, filled])["histograms"]
    assert entry["min"] == 0.3 and entry["max"] == 0.3


def test_merge_rejects_mismatched_bucket_bounds():
    registry = MetricRegistry()
    registry.histogram("op_seconds", op="read",
                       buckets=(1.0, 2.0)).observe(0.5)
    with pytest.raises(ValueError):
        merge_registry_snapshots([
            _worker_registry([0.1]).snapshot(), registry.snapshot()])


def test_merge_keeps_distinct_labels_apart():
    registry = MetricRegistry()
    registry.counter("ops_total", op="read").inc(1)
    registry.counter("ops_total", op="write").inc(2)
    merged = merge_registry_snapshots([registry.snapshot(),
                                       registry.snapshot()])
    by_op = {c["labels"]["op"]: c["value"] for c in merged["counters"]}
    assert by_op == {"read": 2, "write": 4}


# -- aggregate_histograms ---------------------------------------------------

def test_aggregate_histograms_folds_subset_label_matches():
    registry = MetricRegistry()
    registry.histogram("op_seconds", op="read", window="measure").observe(0.1)
    registry.histogram("op_seconds", op="write",
                       window="measure").observe(0.2)
    registry.histogram("op_seconds", op="read", window="warmup").observe(9.0)
    snapshot = registry.snapshot()
    folded = aggregate_histograms(snapshot, "op_seconds", window="measure")
    assert sum(folded["counts"]) == 2
    assert folded["max"] == 0.2          # warmup's 9.0 excluded
    reads = aggregate_histograms(snapshot, "op_seconds", op="read",
                                 window="measure")
    assert sum(reads["counts"]) == 1
    assert aggregate_histograms(snapshot, "nope") is None


# -- SnapshotLog ------------------------------------------------------------

def test_snapshot_log_round_trips_through_a_file(tmp_path):
    path = str(tmp_path / "series.jsonl")
    registry = _worker_registry([0.1])
    with SnapshotLog(path) as log:
        log.append(registry.snapshot(), ts=100.0)
        log.append(registry.snapshot(), ts=101.0, extra={"worker": 3})
        assert log.lines == 2
    # Append mode: a second run extends the series.
    with SnapshotLog(path) as log:
        log.append(registry.snapshot(), ts=102.0)
    records = read_snapshot_log(path)
    assert [r["ts"] for r in records] == [100.0, 101.0, 102.0]
    assert records[1]["worker"] == 3
    assert records[0]["snapshot"]["counters"]
    assert list(iter_snapshot_log(path))[2]["ts"] == 102.0


def test_snapshot_log_leaves_caller_streams_open():
    stream = io.StringIO()
    log = SnapshotLog(stream)
    log.append({"counters": []}, ts=5.0)
    log.close()
    assert not stream.closed
    record = json.loads(stream.getvalue())
    assert record["ts"] == 5.0


# -- partial scrapes ---------------------------------------------------------

def test_merge_registry_snapshots_of_nothing_is_empty():
    merged = merge_registry_snapshots([])
    assert merged["counters"] == []
    assert merged["histograms"] == []


def test_merge_tolerates_empty_and_missing_sections():
    """A partially-scraped cluster mixes full snapshots with empty ones
    (node just restarted) and ones missing whole sections."""
    merged = merge_registry_snapshots([
        _worker_registry([0.1], ops=2).snapshot(),
        {"namespace": "repro", "counters": [], "gauges": [],
         "histograms": []},
        {"namespace": "repro"},  # no sections at all
    ])
    [counter] = [c for c in merged["counters"] if c["name"] == "ops_total"]
    assert counter["value"] == 2
    [hist] = merged["histograms"]
    assert sum(hist["counts"]) == 1


def test_merge_missing_node_keeps_remaining_series_intact():
    """Dropping one node's snapshot (scrape timeout) only loses that
    node's series -- per-node labels keep entries disjoint."""
    def node_snapshot(node, frames):
        registry = MetricRegistry()
        registry.counter("node_frames_total", node=node).inc(frames)
        return registry.snapshot()

    full = merge_registry_snapshots(
        [node_snapshot("s000", 5), node_snapshot("s001", 7)])
    partial = merge_registry_snapshots([node_snapshot("s000", 5)])
    by_node = {c["labels"]["node"]: c["value"] for c in full["counters"]}
    assert by_node == {"s000": 5, "s001": 7}
    [survivor] = partial["counters"]
    assert survivor["labels"]["node"] == "s000"
    assert survivor["value"] == 5


def test_aggregate_histograms_skips_snapshots_without_histograms():
    assert aggregate_histograms({}, "op_seconds") is None
    assert aggregate_histograms({"histograms": []}, "op_seconds") is None


# -- rotation ----------------------------------------------------------------

def _fill(log, count, start=0.0):
    for i in range(count):
        log.append({"counters": [{"name": "x", "labels": {},
                                  "value": i}]}, ts=start + i)


def test_rotation_rolls_segments_and_reads_across_them(tmp_path):
    import os

    path = str(tmp_path / "series.jsonl")
    with SnapshotLog(path, max_bytes=200, keep=3) as log:
        _fill(log, 12)
    assert os.path.exists(path + ".1")
    records = read_snapshot_log(path)
    # Oldest segments beyond ``keep`` were dropped, order is preserved.
    stamps = [r["ts"] for r in records]
    assert stamps == sorted(stamps)
    assert stamps[-1] == 11.0
    assert len(records) < 12
    assert not os.path.exists(path + ".4")


def test_rotation_never_splits_a_record(tmp_path):
    path = str(tmp_path / "series.jsonl")
    with SnapshotLog(path, max_bytes=120, keep=2) as log:
        _fill(log, 8)
    for segment in [path, path + ".1", path + ".2"]:
        with open(segment) as fh:
            for line in fh:
                json.loads(line)  # every line is complete JSON


def test_rotation_requires_a_path_target():
    with pytest.raises(ValueError):
        SnapshotLog(io.StringIO(), max_bytes=100)


def test_rotation_validates_limits(tmp_path):
    path = str(tmp_path / "series.jsonl")
    with pytest.raises(ValueError):
        SnapshotLog(path, max_bytes=0)
    with pytest.raises(ValueError):
        SnapshotLog(path, keep=0)


def test_reading_a_missing_log_yields_nothing(tmp_path):
    assert read_snapshot_log(str(tmp_path / "absent.jsonl")) == []


# -- windowed percentile deltas ----------------------------------------------

def test_windows_store_deltas_and_summaries_come_at_read_time(tmp_path):
    path = str(tmp_path / "series.jsonl")
    registry = _worker_registry([0.010, 0.020])
    with SnapshotLog(path, windows=True) as log:
        log.append(registry.snapshot(), ts=1.0)
        registry.histogram("op_seconds", op="read").observe(0.500)
        log.append(registry.snapshot(), ts=2.0)
        log.append(registry.snapshot(), ts=3.0)  # quiet interval
    first, second, third = read_snapshot_log(path, windows=True)
    # First window = the whole cumulative state (first sight).
    [w1] = first["window"]["histograms"]
    assert sum(w1["counts"]) == 2
    # Second window = just the one new observation.
    [w2] = second["window"]["histograms"]
    assert sum(w2["counts"]) == 1
    assert w2["summary"]["count"] == 1
    assert w2["summary"]["p50"] >= 0.25  # the 0.5s sample, bucketed
    assert {"count", "mean", "p50", "p99", "p999"} <= set(w2["summary"])
    # Quiet interval: zero-delta windows are not stored.
    assert "window" not in third


def test_windows_adopt_fresh_counts_after_counter_reset(tmp_path):
    path = str(tmp_path / "series.jsonl")
    with SnapshotLog(path, windows=True) as log:
        log.append(_worker_registry([0.1, 0.2, 0.3]).snapshot(), ts=1.0)
        # Restarted process: cumulative counts shrink.
        log.append(_worker_registry([0.1]).snapshot(), ts=2.0)
    _, after_reset = read_snapshot_log(path, windows=True)
    [window] = after_reset["window"]["histograms"]
    assert sum(window["counts"]) == 1  # fresh totals, not negative deltas


def test_windows_keep_interleaved_series_apart(tmp_path):
    """Per-worker appends interleave; each ``extra`` keys its own
    baseline so worker A's delta never subtracts worker B's counts."""
    path = str(tmp_path / "series.jsonl")
    worker_a = _worker_registry([0.1])
    worker_b = _worker_registry([0.1, 0.2])
    with SnapshotLog(path, windows=True) as log:
        log.append(worker_a.snapshot(), ts=1.0, extra={"worker": 0})
        log.append(worker_b.snapshot(), ts=1.1, extra={"worker": 1})
        worker_a.histogram("op_seconds", op="read").observe(0.3)
        log.append(worker_a.snapshot(), ts=2.0, extra={"worker": 0})
    records = read_snapshot_log(path, windows=True)
    [w] = records[2]["window"]["histograms"]
    assert sum(w["counts"]) == 1  # only worker A's new sample


def test_window_summary_handles_degenerate_entries():
    from repro.obs import window_summary

    empty = {"name": "x", "labels": {}, "buckets": [1.0], "counts": [0, 0],
             "sum": 0.0, "max": 0.0}
    summary = window_summary(empty)
    assert summary["count"] == 0 and summary["mean"] == 0.0
