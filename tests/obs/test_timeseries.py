"""Snapshot aggregation and the JSON-lines time-series sidecar."""

import io
import json

import pytest

from repro.obs import (
    MetricRegistry,
    SnapshotLog,
    aggregate_histograms,
    iter_snapshot_log,
    merge_registry_snapshots,
    read_snapshot_log,
)
from repro.obs.stats import bucket_percentile


def _worker_registry(values, ops=1):
    registry = MetricRegistry()
    registry.counter("ops_total", op="read").inc(ops)
    registry.gauge("backlog").set(len(values))
    hist = registry.histogram("op_seconds", op="read")
    for value in values:
        hist.observe(value)
    return registry


# -- merge_registry_snapshots ----------------------------------------------

def test_merge_folds_counters_and_gauges_by_identity():
    merged = merge_registry_snapshots([
        _worker_registry([0.1], ops=3).snapshot(),
        _worker_registry([0.2], ops=4).snapshot(),
    ])
    [counter] = [c for c in merged["counters"] if c["name"] == "ops_total"]
    assert counter["value"] == 7
    assert counter["labels"] == {"op": "read"}
    [gauge] = merged["gauges"]
    assert gauge["value"] == 2  # gauges sum too (backlogs add up)


def test_merged_histogram_equals_single_registry_of_all_samples():
    """Percentiles from the merged histogram match a single registry
    that observed every worker's samples -- aggregation, not averaging."""
    worker_a = [0.010, 0.020, 0.500]
    worker_b = [0.001, 0.250]
    merged = merge_registry_snapshots([
        _worker_registry(worker_a).snapshot(),
        _worker_registry(worker_b).snapshot(),
    ])
    oracle = _worker_registry(worker_a + worker_b).snapshot()
    [got] = merged["histograms"]
    [want] = oracle["histograms"]
    assert got["counts"] == list(want["counts"])
    assert got["sum"] == pytest.approx(want["sum"])
    assert got["min"] == want["min"] == 0.001
    assert got["max"] == want["max"] == 0.500
    for fraction in (0.5, 0.99):
        assert (bucket_percentile(got["buckets"], got["counts"], fraction,
                                  got["max"])
                == bucket_percentile(want["buckets"], list(want["counts"]),
                                     fraction, want["max"]))


def test_merge_adopts_extrema_from_first_non_empty_histogram():
    empty = _worker_registry([]).snapshot()
    filled = _worker_registry([0.3]).snapshot()
    [entry] = merge_registry_snapshots([empty, filled])["histograms"]
    assert entry["min"] == 0.3 and entry["max"] == 0.3


def test_merge_rejects_mismatched_bucket_bounds():
    registry = MetricRegistry()
    registry.histogram("op_seconds", op="read",
                       buckets=(1.0, 2.0)).observe(0.5)
    with pytest.raises(ValueError):
        merge_registry_snapshots([
            _worker_registry([0.1]).snapshot(), registry.snapshot()])


def test_merge_keeps_distinct_labels_apart():
    registry = MetricRegistry()
    registry.counter("ops_total", op="read").inc(1)
    registry.counter("ops_total", op="write").inc(2)
    merged = merge_registry_snapshots([registry.snapshot(),
                                       registry.snapshot()])
    by_op = {c["labels"]["op"]: c["value"] for c in merged["counters"]}
    assert by_op == {"read": 2, "write": 4}


# -- aggregate_histograms ---------------------------------------------------

def test_aggregate_histograms_folds_subset_label_matches():
    registry = MetricRegistry()
    registry.histogram("op_seconds", op="read", window="measure").observe(0.1)
    registry.histogram("op_seconds", op="write",
                       window="measure").observe(0.2)
    registry.histogram("op_seconds", op="read", window="warmup").observe(9.0)
    snapshot = registry.snapshot()
    folded = aggregate_histograms(snapshot, "op_seconds", window="measure")
    assert sum(folded["counts"]) == 2
    assert folded["max"] == 0.2          # warmup's 9.0 excluded
    reads = aggregate_histograms(snapshot, "op_seconds", op="read",
                                 window="measure")
    assert sum(reads["counts"]) == 1
    assert aggregate_histograms(snapshot, "nope") is None


# -- SnapshotLog ------------------------------------------------------------

def test_snapshot_log_round_trips_through_a_file(tmp_path):
    path = str(tmp_path / "series.jsonl")
    registry = _worker_registry([0.1])
    with SnapshotLog(path) as log:
        log.append(registry.snapshot(), ts=100.0)
        log.append(registry.snapshot(), ts=101.0, extra={"worker": 3})
        assert log.lines == 2
    # Append mode: a second run extends the series.
    with SnapshotLog(path) as log:
        log.append(registry.snapshot(), ts=102.0)
    records = read_snapshot_log(path)
    assert [r["ts"] for r in records] == [100.0, 101.0, 102.0]
    assert records[1]["worker"] == 3
    assert records[0]["snapshot"]["counters"]
    assert list(iter_snapshot_log(path))[2]["ts"] == 102.0


def test_snapshot_log_leaves_caller_streams_open():
    stream = io.StringIO()
    log = SnapshotLog(stream)
    log.append({"counters": []}, ts=5.0)
    log.close()
    assert not stream.closed
    record = json.loads(stream.getvalue())
    assert record["ts"] == 5.0
