"""Coordinator and report shaping: merged metrics, SLO verdicts, e2e."""

import asyncio

import pytest

from repro.errors import ConfigurationError
from repro.load.coordinator import PassOutcome, _rebuild_trace, run_load
from repro.load.profile import LoadProfile, SloPolicy
from repro.load.report import LoadReport, pass_metrics
from repro.obs import MetricRegistry
from repro.sim.trace import OpKind


def _synthetic_outcome():
    registry = MetricRegistry()
    registry.counter("load_arrivals_total", window="measure").inc(100)
    for outcome, count in (("ok", 90), ("timeout", 6), ("error", 2),
                           ("abandoned", 2)):
        registry.counter("load_ops_total", op="read", window="measure",
                         outcome=outcome).inc(count)
    op_hist = registry.histogram("load_op_seconds", op="read",
                                 window="measure")
    service_hist = registry.histogram("load_service_seconds", op="read",
                                      window="measure")
    for _ in range(100):
        op_hist.observe(0.040)
        service_hist.observe(0.010)
    registry.histogram("load_queue_delay_seconds",
                       window="measure").observe(0.030)
    registry.counter("load_ops_queued_total").inc(7)
    return PassOutcome(
        label="main", target_rps=50.0, measure_duration=2.0,
        snapshot=registry.snapshot(),
        summaries=[{"max_backlog": 12}], trace_records=[],
        wall_time=3.0, violations=0, safety_detail="ok", sampled=True)


def test_pass_metrics_rates_and_percentiles():
    metrics = pass_metrics(_synthetic_outcome(), SloPolicy())
    assert metrics["offered_rps"] == pytest.approx(50.0)
    assert metrics["achieved_rps"] == pytest.approx(45.0)
    assert metrics["error_rate"] == pytest.approx(0.10)
    assert metrics["ops"] == {"ok": 90, "error": 2, "timeout": 6,
                              "abandoned": 2}
    # All observations were 40ms; the bucketed estimate is clamped by
    # the exact maximum, so every percentile lands on it.
    assert metrics["p50_ms"] == pytest.approx(40.0)
    assert metrics["p99_ms"] == pytest.approx(40.0)
    assert metrics["p999_ms"] == pytest.approx(40.0)
    assert metrics["service_p99_ms"] == pytest.approx(10.0)
    assert metrics["queue_delay_p99_ms"] == pytest.approx(30.0)
    assert metrics["queued"] == 7
    assert metrics["max_backlog"] == 12
    # 10% errors busts the 0.5% SLO clause even with a fine p99.
    assert metrics["slo"]["clauses"]["p99"]
    assert not metrics["slo"]["clauses"]["errors"]
    assert not metrics["slo"]["ok"]


def test_load_report_build_and_schema():
    outcome = _synthetic_outcome()
    profile = LoadProfile(users=4, rps=50.0)
    report = LoadReport.build(profile=profile, slo=SloPolicy(),
                              outcomes=[outcome], procs=False, workers=1,
                              sweep="none")
    assert report.main["pass"] == "main"
    assert report.max_sustainable_rps == 0.0       # errors failed the SLO
    assert report.safety_ok                        # but no violations
    document = report.to_dict()
    assert document["experiment"] == "E21-load"
    assert isinstance(document["results"], list) and document["results"]
    assert document["safety"] == {"ok": True, "detail": "ok"}
    assert "max_sustainable_rps" in document
    rendered = report.format()
    assert "max sustainable throughput" in rendered
    assert "honest p99" in rendered


def test_rebuild_trace_keeps_failed_writes_incomplete():
    records = [
        {"client": "c0", "kind": "write", "key": "key-0001",
         "start": 1.0, "end": 2.0, "value": "key-0001|c0|1"},
        {"client": "c0", "kind": "write", "key": "key-0001",
         "start": 3.0, "end": None, "value": "key-0001|c0|2"},
        {"client": "c1", "kind": "read", "key": "key-0001",
         "start": 4.0, "end": 5.0, "value": "key-0001|c0|1"},
    ]
    trace = _rebuild_trace(records, per_register=True)
    records_out = list(trace)
    assert len(records_out) == 3
    kinds = [r.kind for r in records_out]
    assert kinds == [OpKind.WRITE, OpKind.WRITE, OpKind.READ]
    assert records_out[0].responded_at == 2.0
    assert records_out[1].responded_at is None     # stays incomplete
    assert records_out[2].value == b"key-0001|c0|1"


def test_run_load_rejects_bad_arguments():
    profile = LoadProfile(users=2, rps=10.0, duration=1.0)
    with pytest.raises(ConfigurationError):
        asyncio.run(run_load(profile, sweep="bogus"))
    with pytest.raises(ConfigurationError):
        asyncio.run(run_load(profile, workers=0))


def test_run_load_inline_end_to_end():
    """A tiny but complete run: cluster, workers, merge, safety check."""
    profile = LoadProfile(users=8, rps=40.0, keys=8, duration=1.5,
                          warmup=0.25, cooldown=0.1, timeout=5.0,
                          clients_per_worker=2, seed=11)
    report = asyncio.run(run_load(profile, workers=1, inline=True,
                                  sweep="none"))
    main = report.main
    assert main["arrivals"] > 20                  # ~60 expected
    assert main["ops"]["ok"] > 0
    assert main["violations"] == 0
    assert report.safety_ok
    assert "sampled ops" in report.safety_detail  # full check really ran
    assert main["offered_rps"] > 0
    assert main["p99_ms"] > 0
    # Honest latency can never undercut the closed-loop view.
    assert main["p99_ms"] >= main["service_p99_ms"] - 1e-6
    document = report.to_dict()
    assert document["config"]["profile"]["keys"] == 8
    assert document["results"][0]["pass"] == "main"
