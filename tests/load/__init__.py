"""Tests for the open-loop load rig (repro.load)."""
