"""LoadProfile / SloPolicy / mix parsing."""

import pytest

from repro.errors import ConfigurationError
from repro.load.profile import LoadProfile, SloPolicy, parse_mix


def test_parse_mix_pairs_and_bare_ratios():
    assert parse_mix("90/10") == pytest.approx(0.9)
    assert parse_mix("9/1") == pytest.approx(0.9)
    assert parse_mix("50/50") == pytest.approx(0.5)
    assert parse_mix("100/0") == pytest.approx(1.0)
    assert parse_mix("0/100") == pytest.approx(0.0)
    assert parse_mix("0.75") == pytest.approx(0.75)


@pytest.mark.parametrize("bad", ["", "abc", "1/2/3", "-1/2", "0/0", "1.5"])
def test_parse_mix_rejects_garbage(bad):
    with pytest.raises(ConfigurationError):
        parse_mix(bad)


def test_profile_validation():
    for kwargs in ({"users": 0}, {"rps": 0.0}, {"read_ratio": 1.5},
                   {"keys": 0}, {"duration": 0.0},
                   {"clients_per_worker": 0}):
        with pytest.raises(ConfigurationError):
            LoadProfile(**kwargs)


def test_worker_slice_splits_users_and_rate_exactly():
    profile = LoadProfile(users=10, rps=99.0, seed=7, keys=8)
    slices = [profile.worker_slice(i, 3) for i in range(3)]
    assert [s.users for s in slices] == [4, 3, 3]
    assert sum(s.users for s in slices) == profile.users
    assert sum(s.rps for s in slices) == pytest.approx(profile.rps)
    assert all(s.seed == 7 and s.keys == 8 for s in slices)
    with pytest.raises(ConfigurationError):
        profile.worker_slice(3, 3)


def test_profile_round_trips_and_rejects_unknown_keys():
    profile = LoadProfile(users=5, rps=42.0, keys=16,
                          sample_keys=["key-0001"])
    assert LoadProfile.from_dict(profile.to_dict()) == profile
    with pytest.raises(ConfigurationError):
        LoadProfile.from_dict({"users": 5, "bogus": 1})


def test_slo_policy_clauses():
    slo = SloPolicy(p99_ms=100.0, max_error_rate=0.01)
    verdict = slo.evaluate(p99_ms=50.0, error_rate=0.0, violations=0)
    assert verdict["ok"] and all(verdict["clauses"].values())
    assert not slo.evaluate(150.0, 0.0, 0)["ok"]
    assert not slo.evaluate(50.0, 0.02, 0)["ok"]
    bad = slo.evaluate(50.0, 0.0, 2)
    assert not bad["ok"] and not bad["clauses"]["consistency"]
