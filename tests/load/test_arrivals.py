"""Arrival schedules: Poisson determinism, windows, sampled key ranks."""

import pytest

from repro.core.keys import key_name
from repro.sim.rng import SimRng
from repro.workloads.arrivals import (
    COOLDOWN,
    MEASURE,
    WARMUP,
    Windows,
    generate_arrivals,
    poisson_offsets,
    sample_key_ranks,
    sample_keys,
)


# -- Poisson offsets --------------------------------------------------------

def test_poisson_offsets_deterministic_under_fixed_seed():
    first = poisson_offsets(200.0, 5.0, SimRng(7, "load/worker000"))
    second = poisson_offsets(200.0, 5.0, SimRng(7, "load/worker000"))
    assert first == second           # byte-exact replay, not approximate
    assert len(first) > 500          # ~1000 expected at rate 200 over 5s
    assert all(0.0 <= x < 5.0 for x in first)
    assert all(a < b for a, b in zip(first, first[1:]))


def test_poisson_offsets_vary_with_seed_and_stream():
    base = poisson_offsets(100.0, 2.0, SimRng(7, "load/worker000"))
    other_seed = poisson_offsets(100.0, 2.0, SimRng(8, "load/worker000"))
    other_worker = poisson_offsets(100.0, 2.0, SimRng(7, "load/worker001"))
    assert base != other_seed
    assert base != other_worker


def test_poisson_offsets_validation():
    with pytest.raises(ValueError):
        poisson_offsets(0.0, 1.0, SimRng(1, "x"))
    with pytest.raises(ValueError):
        poisson_offsets(10.0, 0.0, SimRng(1, "x"))


# -- full schedules ---------------------------------------------------------

def test_generate_arrivals_deterministic_and_mixed():
    windows = Windows(warmup=1.0, measure=4.0, cooldown=0.5)
    make = lambda: generate_arrivals(  # noqa: E731 - local shorthand
        300.0, windows, 0.9, SimRng(3, "load/worker000"),
        num_keys=32, zipf_s=0.99)
    first, second = make(), make()
    assert first == second
    kinds = [a.kind for a in first]
    reads = kinds.count("read")
    assert 0.8 < reads / len(kinds) < 0.97   # Bernoulli(0.9) around 90%
    keys = {a.key for a in first}
    assert keys <= {key_name(i) for i in range(32)}
    assert len(keys) > 4                     # Zipf still touches a spread


def test_generate_arrivals_single_register_has_no_keys():
    windows = Windows(warmup=0.0, measure=1.0)
    arrivals = generate_arrivals(100.0, windows, 0.5,
                                 SimRng(1, "load/worker000"))
    assert arrivals and all(a.key is None for a in arrivals)


def test_generate_arrivals_validation():
    windows = Windows(warmup=0.0, measure=1.0)
    rng = SimRng(1, "x")
    with pytest.raises(ValueError):
        generate_arrivals(10.0, windows, 1.5, rng)
    with pytest.raises(ValueError):
        generate_arrivals(10.0, windows, 0.5, rng, num_keys=0)


# -- windows ----------------------------------------------------------------

def test_windows_label_uses_scheduled_offset():
    windows = Windows(warmup=2.0, measure=10.0, cooldown=1.0)
    assert windows.total == 13.0
    assert windows.measure_start == 2.0
    assert windows.measure_end == 12.0
    assert windows.label(0.0) == WARMUP
    assert windows.label(1.999) == WARMUP
    assert windows.label(2.0) == MEASURE          # inclusive lower bound
    assert windows.label(11.999) == MEASURE
    assert windows.label(12.0) == COOLDOWN        # exclusive upper bound
    assert windows.label(99.0) == COOLDOWN


def test_windows_validation():
    with pytest.raises(ValueError):
        Windows(warmup=-1.0, measure=1.0)
    with pytest.raises(ValueError):
        Windows(warmup=0.0, measure=0.0)


# -- sampled key ranks ------------------------------------------------------

def test_sample_key_ranks_exclude_hottest_and_stay_in_range():
    for num_keys in (2, 8, 64, 1024):
        ranks = sample_key_ranks(num_keys, 4)
        assert ranks, num_keys
        assert 0 not in ranks                 # hottest key never sampled
        assert all(1 <= r < num_keys for r in ranks)
        assert len(ranks) == len(set(ranks))  # deduplicated


def test_sample_key_ranks_degenerate_cases():
    assert sample_key_ranks(1, 4) == []
    assert sample_key_ranks(64, 0) == []


def test_sample_keys_are_key_names():
    keys = sample_keys(64, 4)
    assert keys == [key_name(r) for r in sample_key_ranks(64, 4)]
    assert all(k.startswith("key-") for k in keys)
