"""OpenLoopEngine: coordinated omission, late ops, abandoned backlog.

These tests drive the engine with synthetic slow clients, so the only
system under test is the measurement discipline itself: latency charged
from the *scheduled* instant, late arrivals recorded as queued rather
than skipped, and leftover backlog abandoned with lower-bound latencies
instead of silently dropped.
"""

import asyncio

import pytest

from repro.load.worker import OpenLoopEngine, make_value, value_anomaly
from repro.obs import MetricRegistry, aggregate_histograms
from repro.workloads.arrivals import Arrival, Windows


class SlowClient:
    """Fixed service time per op; remembers values per register."""

    def __init__(self, client_id, delay, read_value=None, fail=None):
        self.client_id = client_id
        self.delay = delay
        self.read_value = read_value
        self.fail = fail
        self.store = {}
        self.calls = 0

    async def _serve(self):
        self.calls += 1
        await asyncio.sleep(self.delay)
        if self.fail is not None:
            raise self.fail

    async def write(self, value, register=None):
        await self._serve()
        self.store[register] = value

    async def read(self, register=None):
        await self._serve()
        if self.read_value is not None:
            return self.read_value
        return self.store.get(register, b"")


def run(coro):
    return asyncio.run(coro)


def _counter_total(snapshot, name, **labels):
    return sum(entry["value"] for entry in snapshot["counters"]
               if entry["name"] == name
               and all(entry["labels"].get(k) == v
                       for k, v in labels.items()))


def test_open_loop_latency_includes_queueing_delay():
    """Under overload the honest histogram diverges from the service one.

    Offered 500/s against a capacity of 100/s (2 sessions x 20ms): a
    closed-loop driver would report ~20ms forever; the open-loop numbers
    must charge the growing backlog to each op's scheduled instant.
    """
    async def scenario():
        windows = Windows(warmup=0.0, measure=1.0)
        arrivals = [Arrival(offset=i * 0.002, kind="read")
                    for i in range(60)]
        registry = MetricRegistry()
        client = SlowClient("slow-0", delay=0.02)
        engine = OpenLoopEngine(arrivals, windows, [client], registry,
                                users=2, drain_grace=30.0)
        summary = await engine.run()
        snapshot = registry.snapshot()
        honest = aggregate_histograms(snapshot, "load_op_seconds",
                                      window="measure")
        service = aggregate_histograms(snapshot, "load_service_seconds",
                                       window="measure")
        # Every arrival executed: counted once, none skipped.
        assert client.calls == 60
        assert _counter_total(snapshot, "load_ops_total",
                              window="measure") == 60
        assert summary["arrivals"]["measure"] == 60
        assert summary["abandoned"] == 0
        # Most dequeues ran late, and each was recorded as queued.
        assert summary["queued"] > 30
        assert summary["max_backlog"] > 5
        # The open-loop tail saw the backlog; the closed-loop one did not.
        assert honest["max"] > 0.3
        assert honest["max"] > service["max"] * 2
        assert service["max"] < honest["max"]

    run(scenario())


def test_backlog_is_abandoned_not_dropped():
    """Whatever the drain grace cannot finish is counted as abandoned."""
    async def scenario():
        windows = Windows(warmup=0.0, measure=1.0)
        arrivals = [Arrival(offset=0.0, kind="read") for _ in range(5)]
        registry = MetricRegistry()
        client = SlowClient("stuck-0", delay=30.0)
        engine = OpenLoopEngine(arrivals, windows, [client], registry,
                                users=1, drain_grace=0.05)
        summary = await engine.run()
        snapshot = registry.snapshot()
        # 1 in-flight (cancelled) + 4 queued: all 5 accounted for.
        assert summary["abandoned"] == 5
        assert _counter_total(snapshot, "load_ops_total",
                              outcome="abandoned") == 5
        assert _counter_total(snapshot, "load_ops_total") == 5
        honest = aggregate_histograms(snapshot, "load_op_seconds",
                                      window="measure")
        assert honest is not None and sum(honest["counts"]) == 5

    run(scenario())


def test_errors_and_timeouts_still_observe_latency():
    async def scenario():
        windows = Windows(warmup=0.0, measure=1.0)
        arrivals = [Arrival(offset=0.0, kind="read") for _ in range(3)]
        registry = MetricRegistry()
        client = SlowClient("err-0", delay=0.0, fail=RuntimeError("boom"))
        engine = OpenLoopEngine(arrivals, windows, [client], registry,
                                users=3, drain_grace=5.0)
        summary = await engine.run()
        snapshot = registry.snapshot()
        assert summary["abandoned"] == 0
        assert _counter_total(snapshot, "load_ops_total",
                              outcome="error") == 3
        assert _counter_total(snapshot, "load_errors_total",
                              kind="RuntimeError") == 3
        honest = aggregate_histograms(snapshot, "load_op_seconds",
                                      window="measure")
        assert sum(honest["counts"]) == 3

    run(scenario())


def test_sampled_writes_logged_before_attempt_and_reads_checked():
    """Sampled writes stay incomplete on failure; bad reads count."""
    async def scenario():
        windows = Windows(warmup=0.0, measure=1.0)
        registry = MetricRegistry()
        ok = SlowClient("ok-0", delay=0.0)
        engine = OpenLoopEngine(
            [Arrival(offset=0.0, kind="write", key="key-0007")],
            windows, [ok], registry, users=1,
            sample_keys=["key-0007"], drain_grace=5.0)
        await engine.run()
        [entry] = engine.trace
        assert entry["kind"] == "write" and entry["key"] == "key-0007"
        assert entry["end"] is not None
        assert entry["value"].startswith("key-0007|ok-0|")

        registry2 = MetricRegistry()
        bad = SlowClient("bad-0", delay=0.0, fail=RuntimeError("boom"))
        engine2 = OpenLoopEngine(
            [Arrival(offset=0.0, kind="write", key="key-0007")],
            windows, [bad], registry2, users=1,
            sample_keys=["key-0007"], drain_grace=5.0)
        await engine2.run()
        [entry2] = engine2.trace
        assert entry2["end"] is None    # failed write stays incomplete

        registry3 = MetricRegistry()
        liar = SlowClient("liar-0", delay=0.0,
                          read_value=b"key-9999|other|1...")
        engine3 = OpenLoopEngine(
            [Arrival(offset=0.0, kind="read", key="key-0007")],
            windows, [liar], registry3, users=1,
            sample_keys=["key-0007"], drain_grace=5.0)
        summary3 = await engine3.run()
        assert summary3["anomalies"] == 1

    run(scenario())


def test_make_value_and_value_anomaly():
    value = make_value("key-0003", "w0", 17, 64)
    assert len(value) == 64
    assert value.startswith(b"key-0003|w0|17")
    assert value_anomaly("key-0003", value) is None
    assert value_anomaly("key-0003", b"") is None          # initial value
    assert value_anomaly("key-0003", b"seed", b"seed") is None
    assert value_anomaly("key-0003", make_value("key-0004", "w0", 1, 32))
    assert value_anomaly("key-0003", "not-bytes")
    assert value_anomaly("key-0003", b"garbage")


def test_engine_validates_inputs():
    windows = Windows(warmup=0.0, measure=1.0)
    with pytest.raises(ValueError):
        OpenLoopEngine([], windows, [SlowClient("c", 0.0)],
                       MetricRegistry(), users=0)
    with pytest.raises(ValueError):
        OpenLoopEngine([], windows, [], MetricRegistry(), users=1)
