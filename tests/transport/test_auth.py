"""Unit tests for HMAC message authentication."""

import pytest

from repro.errors import AuthenticationError
from repro.transport.auth import Authenticator, KeyChain


@pytest.fixture
def auth():
    return Authenticator(KeyChain.from_secret(b"secret", ["a", "b"]))


def test_sign_verify_roundtrip(auth):
    signature = auth.sign("a", b"payload")
    auth.verify("a", b"payload", signature)  # no exception


def test_tampered_payload_rejected(auth):
    signature = auth.sign("a", b"payload")
    with pytest.raises(AuthenticationError):
        auth.verify("a", b"PAYLOAD", signature)


def test_wrong_sender_rejected(auth):
    """A process cannot impersonate another: keys differ per process."""
    signature = auth.sign("a", b"payload")
    with pytest.raises(AuthenticationError):
        auth.verify("b", b"payload", signature)


def test_seal_open_roundtrip(auth):
    sealed = auth.seal("a", b"hello")
    assert auth.open(sealed) == ("a", b"hello")


def test_open_rejects_truncated(auth):
    with pytest.raises(AuthenticationError):
        auth.open(b"\x00")
    with pytest.raises(AuthenticationError):
        auth.open(b"\x00\x05abc")


def test_open_rejects_flipped_bit(auth):
    sealed = bytearray(auth.seal("a", b"hello"))
    sealed[-1] ^= 0x01
    with pytest.raises(AuthenticationError):
        auth.open(bytes(sealed))


def test_keychain_without_secret_rejects_unknown():
    chain = KeyChain({"a": b"k" * 32})
    assert chain.key_for("a") == b"k" * 32
    with pytest.raises(AuthenticationError):
        chain.key_for("stranger")


def test_keychain_with_secret_derives_on_demand():
    chain = KeyChain.from_secret(b"s")
    key1 = chain.key_for("newcomer")
    key2 = KeyChain.from_secret(b"s").key_for("newcomer")
    assert key1 == key2
    assert chain.key_for("other") != key1


def test_keychain_add_and_contains():
    chain = KeyChain({})
    assert "x" not in chain
    chain.add("x", b"key")
    assert "x" in chain


def test_different_secrets_do_not_interoperate():
    a = Authenticator(KeyChain.from_secret(b"one"))
    b = Authenticator(KeyChain.from_secret(b"two"))
    sealed = a.seal("p", b"data")
    with pytest.raises(AuthenticationError):
        b.open(sealed)


def test_empty_payload_and_unicode_sender():
    auth = Authenticator(KeyChain.from_secret(b"s"))
    sealed = auth.seal("ünïcode", b"")
    assert auth.open(sealed) == ("ünïcode", b"")
