"""Zero-copy frame assembly: views, compaction, and the buffer cap."""

import pytest

from repro.errors import ProtocolError
from repro.transport.codec import MAX_FRAME_BYTES, FrameAssembler


def frame(payload: bytes) -> bytes:
    return len(payload).to_bytes(4, "big") + payload


def test_single_frame_roundtrip():
    asm = FrameAssembler()
    frames = asm.feed(frame(b"hello"))
    assert [bytes(f) for f in frames] == [b"hello"]
    assert len(asm) == 0


def test_frames_are_memoryviews_not_copies():
    asm = FrameAssembler()
    frames = asm.feed(frame(b"zero-copy"))
    assert all(isinstance(f, memoryview) for f in frames)
    assert frames[0] == b"zero-copy"   # views compare against bytes


def test_many_frames_in_one_chunk():
    payloads = [bytes([i]) * i for i in range(1, 40)]
    asm = FrameAssembler()
    frames = asm.feed(b"".join(frame(p) for p in payloads))
    assert [bytes(f) for f in frames] == payloads


def test_byte_at_a_time_drip_feed():
    payloads = [b"abc", b"", b"\x00" * 17]
    blob = b"".join(frame(p) for p in payloads)
    asm = FrameAssembler()
    got = []
    for i in range(len(blob)):
        got.extend(bytes(f) for f in asm.feed(blob[i:i + 1]))
    assert got == payloads
    assert len(asm) == 0


def test_split_header_across_chunks():
    blob = frame(b"payload")
    asm = FrameAssembler()
    assert asm.feed(blob[:2]) == []
    assert len(asm) == 2
    frames = asm.feed(blob[2:])
    assert [bytes(f) for f in frames] == [b"payload"]


def test_buffer_grows_past_initial_capacity():
    big = b"x" * (FrameAssembler.INITIAL_CAPACITY * 2)
    asm = FrameAssembler()
    blob = frame(big) + frame(b"tail")
    # Feed in two chunks so the first one leaves a large partial frame.
    mid = len(blob) // 2
    frames = list(asm.feed(blob[:mid])) + list(asm.feed(blob[mid:]))
    assert [bytes(f) for f in frames] == [big, b"tail"]


def test_compaction_preserves_partial_frame():
    asm = FrameAssembler(max_frame_bytes=1 << 20)
    # Drain many small frames to advance the start offset, then leave a
    # partial frame that forces compaction on the next feed.
    for _ in range(100):
        asm.feed(frame(b"y" * 600))
    tail = frame(b"z" * 500)
    asm.feed(tail[:100])
    frames = asm.feed(tail[100:] + frame(b"after"))
    assert [bytes(f) for f in frames] == [b"z" * 500, b"after"]


def test_declared_length_over_cap_raises_immediately():
    asm = FrameAssembler(max_frame_bytes=1024)
    bogus = (4096).to_bytes(4, "big")
    with pytest.raises(ProtocolError):
        asm.feed(bogus)


def test_drip_fed_bogus_length_dies_at_the_header():
    """A peer drip-feeding a giant length is stopped before buffering it.

    The cap must be enforced against the *declared* length the moment
    the 4-byte header completes -- not after ``max_frame_bytes`` of
    garbage have been buffered.
    """
    asm = FrameAssembler(max_frame_bytes=1024)
    header = (1 << 30).to_bytes(4, "big")
    for byte in header[:3]:
        asm.feed(bytes([byte]))
    with pytest.raises(ProtocolError):
        asm.feed(header[3:])
    # Nothing beyond the 4 header bytes was ever buffered.
    assert len(asm) <= 4


def test_buffered_total_never_exceeds_cap_plus_header():
    asm = FrameAssembler(max_frame_bytes=256)
    blob = frame(b"q" * 256)
    for i in range(0, len(blob), 7):
        asm.feed(blob[i:i + 7])
        assert len(asm) <= 256 + 4


def test_default_cap_is_max_frame_bytes():
    asm = FrameAssembler()
    with pytest.raises(ProtocolError):
        asm.feed((MAX_FRAME_BYTES + 1).to_bytes(4, "big"))


def test_views_valid_until_next_feed():
    asm = FrameAssembler()
    first = asm.feed(frame(b"one"))
    payload = bytes(first[0])     # consumed before the next feed
    asm.feed(frame(b"two"))
    assert payload == b"one"
