"""Binary codec v2: differential equivalence with v1, fuzz, garbage.

The v2 codec is only acceptable if it is *bit-exact at the object
level* with the JSON codec: for every registered message type and every
payload shape the protocols emit, ``decode(encode_v2(m))`` must equal
``decode(encode_v1(m))`` must equal ``m``.  These tests enumerate the
full registry with representative instances, fuzz the value space with
hypothesis, and confirm malformed inputs die with ``ProtocolError``
rather than arbitrary exceptions.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.messages import (
    BaseMessage,
    DataReply,
    HealthAck,
    HealthPing,
    HistoryReply,
    MprEcho,
    MprWrite,
    PushData,
    PutAck,
    PutData,
    QueryData,
    QueryHistory,
    QueryTag,
    QueryTagHistory,
    QueryValue,
    RBEcho,
    RBReady,
    RBSend,
    Rb2Send,
    Rb2Witness,
    StatsAck,
    StatsPing,
    TagHistoryReply,
    TagReply,
    Throttled,
    TraceAck,
    TraceDump,
    ValueReply,
)
from repro.core.namespace import NamespacedMessage
from repro.core.tags import Tag, TaggedValue
from repro.erasure.striping import CodedElement
from repro.errors import ProtocolError
from repro.transport.codec import MESSAGE_TYPES, decode_message, encode_message
from repro.transport.codec2 import (
    MAGIC_V2,
    decode_message_v2,
    encode_message_v2,
)

TAG = Tag(7, "w001")

#: One representative instance per registered message type.  The test
#: below asserts this map covers the registry exactly, so adding a new
#: message type without extending the differential suite fails loudly.
SAMPLES = {
    "BaseMessage": BaseMessage(op_id=0),
    "QueryTag": QueryTag(op_id=1),
    "TagReply": TagReply(op_id=2, tag=TAG),
    "PutData": PutData(op_id=3, tag=TAG, payload=b"value"),
    "PutAck": PutAck(op_id=4, tag=TAG),
    "QueryData": QueryData(op_id=5),
    "DataReply": DataReply(op_id=6, tag=TAG,
                           payload=CodedElement(2, b"\x00\xff coded")),
    "QueryHistory": QueryHistory(op_id=7),
    "HistoryReply": HistoryReply(op_id=8, history=(
        TaggedValue(Tag(0, ""), b""), TaggedValue(TAG, b"v2"))),
    "QueryTagHistory": QueryTagHistory(op_id=9),
    "TagHistoryReply": TagHistoryReply(op_id=10, tags=(Tag(0, ""), TAG)),
    "QueryValue": QueryValue(op_id=11, tag=TAG),
    "ValueReply": ValueReply(op_id=12, tag=TAG, payload=None),
    "RBSend": RBSend(op_id=13, tag=TAG, payload=b"rb", source="w001"),
    "RBEcho": RBEcho(op_id=14, tag=TAG, payload=b"rb", source="s000"),
    "RBReady": RBReady(op_id=15, tag=TAG, payload=None, source="s001"),
    "Rb2Send": Rb2Send(op_id=25, tag=TAG, payload=b"ir2", source="w002"),
    "Rb2Witness": Rb2Witness(op_id=26, tag=TAG, payload=b"ir2",
                             source="w002"),
    "MprWrite": MprWrite(op_id=27, tag=TAG, payload=b"mpr", source="w003"),
    "MprEcho": MprEcho(op_id=28, tag=TAG, payload=None, source="w003"),
    "PushData": PushData(op_id=16, tag=TAG, payload=b"push"),
    "HealthPing": HealthPing(op_id=17),
    "HealthAck": HealthAck(op_id=18, node_id="s000", history_len=3,
                           frames=100, throttled=2, snapshot_age=1.5),
    "StatsPing": StatsPing(op_id=19),
    "StatsAck": StatsAck(op_id=20, node_id="s001", metrics={
        "counters": [{"name": "frames", "labels": {"node": "s001"},
                      "value": 41.0}],
        "histograms": [],
    }),
    "Throttled": Throttled(op_id=21, retry_after=0.25, dropped="PutData"),
    # records must be a tuple: both codecs restore top-level lists to
    # tuples, and the roundtrip asserts decoded == original.
    "TraceDump": TraceDump(op_id=23, target_op=128, limit=16),
    "TraceAck": TraceAck(op_id=24, node_id="s002", records=(
        {"op_id": 128, "node": "s002", "phase": "get-data", "recv": 12.5,
         "queue_wait": 0.001, "service": 0.002, "verdict": "served",
         "repeat": False},), total=5),
    "NamespacedMessage": NamespacedMessage(
        register="accounts/7", inner=PutData(op_id=22, tag=TAG, payload=b"x")),
}


def test_samples_cover_the_whole_registry():
    assert set(SAMPLES) == set(MESSAGE_TYPES)


@pytest.mark.parametrize("name", sorted(SAMPLES))
def test_differential_roundtrip(name):
    """v2 and v1 agree on every registered message type."""
    message = SAMPLES[name]
    blob = encode_message_v2(message)
    assert blob[0] == MAGIC_V2
    via_v2 = decode_message(blob)
    via_v1 = decode_message(encode_message(message))
    assert via_v2 == message
    assert via_v1 == message
    assert via_v2 == via_v1
    # Dispatch and the direct entry point agree.
    assert decode_message_v2(blob) == message


@pytest.mark.parametrize("name", sorted(SAMPLES))
def test_v2_is_smaller_or_equal(name):
    """The binary encoding never loses to JSON on size."""
    message = SAMPLES[name]
    assert len(encode_message_v2(message)) <= len(encode_message(message))


def test_decode_accepts_memoryview():
    message = PutData(op_id=1, tag=TAG, payload=b"\x00\x01\xfe\xff")
    blob = encode_message_v2(message)
    assert decode_message(memoryview(blob)) == message
    assert decode_message_v2(memoryview(bytearray(blob))) == message


def test_empty_and_large_bytes_payloads():
    for payload in (b"", b"\x00" * 100, bytes(range(256)) * 4096):
        message = PutData(op_id=9, tag=TAG, payload=payload)
        decoded = decode_message(encode_message_v2(message))
        assert decoded == message
        assert isinstance(decoded.payload, bytes)


def test_deeply_nested_namespaced_message():
    inner = DataReply(op_id=4, tag=TAG, payload=b"deep")
    wrapped = NamespacedMessage(
        register="outer",
        inner=NamespacedMessage(register="inner", inner=inner))
    assert decode_message(encode_message_v2(wrapped)) == wrapped
    assert decode_message(encode_message(wrapped)) == wrapped


def test_extreme_integers_and_floats():
    message = HealthAck(op_id=2**63, node_id="s000",
                        history_len=-12345, frames=0, throttled=2**40,
                        snapshot_age=-1.0)
    assert decode_message(encode_message_v2(message)) == message
    inf = Throttled(op_id=0, retry_after=float("inf"), dropped="")
    assert decode_message(encode_message_v2(inf)) == inf


def test_tuples_survive_as_tuples():
    message = TagHistoryReply(op_id=1, tags=(TAG, Tag(8, "w002")))
    decoded = decode_message(encode_message_v2(message))
    assert isinstance(decoded.tags, tuple)
    assert decoded == message


@pytest.mark.parametrize("blob", [
    b"",                                  # nothing
    b"\xb2",                              # magic only
    b"\xb2\xff",                          # unterminated type-id varint
    b"\xb2\xf0\x01",                      # unknown type id
    b"\xb2\x00",                          # type ok, missing field count
    b"\xb2\x00\x05",                      # wrong field count
    encode_message_v2(QueryTag(op_id=1))[:-1],   # truncated last field
    encode_message_v2(QueryTag(op_id=1)) + b"!",  # trailing bytes
    b"\xb2" + b"\xff" * 32,               # varint bomb
])
def test_garbage_raises_protocol_error(blob):
    with pytest.raises(ProtocolError):
        decode_message_v2(blob)
    if blob[:1] == b"\xb2":
        with pytest.raises(ProtocolError):
            decode_message(blob)


def test_unknown_value_tag_raises():
    good = encode_message_v2(TagReply(op_id=1, tag=TAG))
    # Clobber the first field's value tag with an unassigned byte.
    bad = bytearray(good)
    bad[3] = 0x7E
    with pytest.raises(ProtocolError):
        decode_message_v2(bytes(bad))


def test_unregistered_type_rejected_at_encode():
    with pytest.raises(ProtocolError):
        encode_message_v2(object())
    with pytest.raises(ProtocolError):
        encode_message_v2(Tag(1, "w"))   # a value, not a message


@settings(max_examples=200, deadline=None)
@given(st.binary(min_size=0, max_size=64))
def test_fuzz_arbitrary_bytes_never_crash(noise):
    """Random (non-)payloads die with ProtocolError, nothing else."""
    try:
        decode_message_v2(b"\xb2" + noise)
    except ProtocolError:
        pass


op_ids = st.integers(min_value=0, max_value=2**62)
writers = st.text(alphabet="abcdefw0123456789", min_size=0, max_size=8)
tags = st.builds(Tag, st.integers(min_value=0, max_value=2**31), writers)
payloads = st.one_of(
    st.none(),
    st.binary(max_size=300),
    st.builds(CodedElement, st.integers(min_value=0, max_value=254),
              st.binary(max_size=100)),
)
tagged_values = st.builds(TaggedValue, tags, st.binary(max_size=64))

fuzz_messages = st.one_of(
    st.builds(PutData, op_id=op_ids, tag=tags, payload=payloads),
    st.builds(DataReply, op_id=op_ids, tag=tags, payload=payloads),
    st.builds(HistoryReply, op_id=op_ids,
              history=st.lists(tagged_values, max_size=5).map(tuple)),
    st.builds(TagHistoryReply, op_id=op_ids,
              tags=st.lists(tags, max_size=8).map(tuple)),
    st.builds(Throttled, op_id=op_ids,
              retry_after=st.floats(allow_nan=False), dropped=writers),
)


@settings(max_examples=200, deadline=None)
@given(fuzz_messages)
def test_fuzz_differential_equivalence(message):
    """Random messages: both codecs decode to the identical object."""
    assert decode_message(encode_message_v2(message)) == message
    assert decode_message(encode_message(message)) == message


@settings(max_examples=60, deadline=None)
@given(st.text(alphabet="abcxyz.-_/0123456789", min_size=1, max_size=32),
       fuzz_messages)
def test_fuzz_namespaced(register, message):
    wrapped = NamespacedMessage(register=register, inner=message)
    assert decode_message(encode_message_v2(wrapped)) == wrapped
