"""Unit tests for message serialization."""

import pytest

from repro.core.messages import (
    DataReply,
    HistoryReply,
    PutAck,
    PutData,
    QueryData,
    QueryTag,
    QueryTagHistory,
    QueryValue,
    RBSend,
    TagHistoryReply,
    TagReply,
    ValueReply,
)
from repro.core.tags import TAG_ZERO, Tag, TaggedValue
from repro.erasure.striping import CodedElement
from repro.errors import ProtocolError
from repro.transport.codec import MESSAGE_TYPES, decode_message, encode_message

ROUNDTRIP_MESSAGES = [
    QueryTag(op_id=1),
    QueryData(op_id=2),
    QueryTagHistory(op_id=3),
    TagReply(op_id=4, tag=Tag(7, "w001")),
    TagReply(op_id=4, tag=TAG_ZERO),
    PutData(op_id=5, tag=Tag(1, "w000"), payload=b"\x00\x01binary\xff"),
    PutData(op_id=5, tag=Tag(1, "w000"), payload=CodedElement(3, b"\x01\x02")),
    PutAck(op_id=6, tag=Tag(1, "w000")),
    DataReply(op_id=7, tag=Tag(2, "w001"), payload=b"value"),
    DataReply(op_id=7, tag=Tag(2, "w001"), payload=CodedElement(0, b"")),
    HistoryReply(op_id=8, history=(
        TaggedValue(TAG_ZERO, b""),
        TaggedValue(Tag(1, "w000"), b"v1"),
    )),
    TagHistoryReply(op_id=9, tags=(TAG_ZERO, Tag(1, "w"), Tag(2, "w"))),
    QueryValue(op_id=10, tag=Tag(1, "w")),
    ValueReply(op_id=11, tag=Tag(1, "w"), payload=None),
    ValueReply(op_id=11, tag=Tag(1, "w"), payload=b"x"),
    RBSend(op_id=12, tag=Tag(1, "w"), payload=b"v", source="w000"),
]


@pytest.mark.parametrize("message", ROUNDTRIP_MESSAGES,
                         ids=lambda m: f"{type(m).__name__}-{m.op_id}")
def test_roundtrip(message):
    assert decode_message(encode_message(message)) == message


def test_registry_covers_all_message_classes():
    assert "QueryTag" in MESSAGE_TYPES
    assert "HistoryReply" in MESSAGE_TYPES
    assert "PushData" in MESSAGE_TYPES


def test_encode_rejects_unregistered_types():
    with pytest.raises(ProtocolError):
        encode_message("not a message")


def test_encode_rejects_unserializable_payload():
    message = PutData(op_id=1, tag=Tag(1, "w"), payload=object())
    with pytest.raises(ProtocolError):
        encode_message(message)


def test_decode_rejects_garbage():
    with pytest.raises(ProtocolError):
        decode_message(b"not json at all")
    with pytest.raises(ProtocolError):
        decode_message(b'{"type": "Nonexistent", "fields": {}}')
    with pytest.raises(ProtocolError):
        decode_message(b'{"type": "QueryTag", "fields": {"bogus": 1}}')


def test_decoded_history_is_tuple():
    message = HistoryReply(op_id=1, history=(TaggedValue(TAG_ZERO, b"a"),))
    decoded = decode_message(encode_message(message))
    assert isinstance(decoded.history, tuple)
    assert decoded == message


def test_large_binary_payload_roundtrips():
    payload = bytes(range(256)) * 100
    message = PutData(op_id=1, tag=Tag(1, "w"), payload=payload)
    assert decode_message(encode_message(message)).payload == payload
