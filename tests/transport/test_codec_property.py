"""Property-based codec tests: random messages must round-trip exactly."""

from hypothesis import given, settings, strategies as st

from repro.core.messages import (
    DataReply,
    HistoryReply,
    PutAck,
    PutData,
    QueryData,
    QueryTag,
    QueryValue,
    TagHistoryReply,
    TagReply,
    ValueReply,
)
from repro.core.namespace import NamespacedMessage
from repro.core.tags import Tag, TaggedValue
from repro.erasure.striping import CodedElement
from repro.transport.auth import Authenticator, KeyChain
from repro.transport.codec import decode_message, encode_message

op_ids = st.integers(min_value=0, max_value=2**31)
writers = st.text(alphabet="abcdefw0123456789", min_size=0, max_size=8)
tags = st.builds(Tag, st.integers(min_value=0, max_value=2**31), writers)
payloads = st.one_of(st.none(), st.binary(max_size=300),
                     st.builds(CodedElement,
                               st.integers(min_value=0, max_value=254),
                               st.binary(max_size=100)))
tagged_values = st.builds(TaggedValue, tags, st.binary(max_size=64))

messages = st.one_of(
    st.builds(QueryTag, op_id=op_ids),
    st.builds(QueryData, op_id=op_ids),
    st.builds(TagReply, op_id=op_ids, tag=tags),
    st.builds(PutData, op_id=op_ids, tag=tags, payload=payloads),
    st.builds(PutAck, op_id=op_ids, tag=tags),
    st.builds(DataReply, op_id=op_ids, tag=tags, payload=payloads),
    st.builds(QueryValue, op_id=op_ids, tag=tags),
    st.builds(ValueReply, op_id=op_ids, tag=tags, payload=payloads),
    st.builds(HistoryReply, op_id=op_ids,
              history=st.lists(tagged_values, max_size=5).map(tuple)),
    st.builds(TagHistoryReply, op_id=op_ids,
              tags=st.lists(tags, max_size=8).map(tuple)),
)


@settings(max_examples=150, deadline=None)
@given(messages)
def test_any_message_roundtrips(message):
    assert decode_message(encode_message(message)) == message


@settings(max_examples=60, deadline=None)
@given(st.text(alphabet="abcxyz.-_/0123456789", min_size=1, max_size=32),
       messages)
def test_namespaced_messages_roundtrip(register, message):
    wrapped = NamespacedMessage(register=register, inner=message)
    assert decode_message(encode_message(wrapped)) == wrapped


@settings(max_examples=60, deadline=None)
@given(st.binary(max_size=500),
       st.text(alphabet="rws0123456789", min_size=1, max_size=10))
def test_sealed_envelopes_roundtrip(payload, sender):
    auth = Authenticator(KeyChain.from_secret(b"prop-secret"))
    assert auth.open(auth.seal(sender, payload)) == (sender, payload)
