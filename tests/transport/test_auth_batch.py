"""Batched HMAC sealing: one MAC per burst, tamper-evident throughout."""

import pytest

from repro.errors import AuthenticationError
from repro.transport.auth import (
    BATCH_MARKER,
    MAX_BATCH_BYTES,
    MAX_SENDER_BYTES,
    Authenticator,
    KeyChain,
)


@pytest.fixture
def auth():
    return Authenticator(KeyChain.from_secret(b"secret", ["a", "b"]))


def test_batch_roundtrip(auth):
    payloads = [b"one", b"", b"three" * 100, b"\x00\xff"]
    sealed = auth.seal_batch("a", payloads)
    sender, got = auth.open_batch(sealed)
    assert sender == "a"
    assert [bytes(p) for p in got] == payloads


def test_batch_envelope_starts_with_marker(auth):
    sealed = auth.seal_batch("a", [b"x", b"y"])
    assert sealed[:2] == BATCH_MARKER


def test_open_any_dispatches_both_shapes(auth):
    single = auth.seal("a", b"solo")
    batch = auth.seal_batch("b", [b"p1", b"p2"])
    sender, payloads = auth.open_any(single)
    assert (sender, [bytes(p) for p in payloads]) == ("a", [b"solo"])
    sender, payloads = auth.open_any(batch)
    assert (sender, [bytes(p) for p in payloads]) == ("b", [b"p1", b"p2"])


def test_batch_tamper_any_payload_rejected(auth):
    sealed = bytearray(auth.seal_batch("a", [b"first", b"second"]))
    sealed[-2] ^= 0x01          # flip a bit inside the *last* payload
    with pytest.raises(AuthenticationError):
        auth.open_batch(bytes(sealed))


def test_batch_reorder_rejected(auth):
    """Swapping two equal-length payloads breaks the single MAC."""
    sealed = auth.seal_batch("a", [b"AAAA", b"BBBB"])
    head_len = len(sealed) - (4 + 8 + 8 + 8)   # body = count + 2*(len+4B)
    body = bytearray(sealed[head_len:])
    body[8:12], body[16:20] = body[16:20], body[8:12]
    with pytest.raises(AuthenticationError):
        auth.open_batch(bytes(sealed[:head_len]) + bytes(body))


def test_batch_truncation_rejected(auth):
    sealed = auth.seal_batch("a", [b"one", b"two"])
    with pytest.raises(AuthenticationError):
        auth.open_batch(sealed[:-1])
    with pytest.raises(AuthenticationError):
        auth.open_batch(sealed[:10])


def test_batch_wrong_key_rejected(auth):
    other = Authenticator(KeyChain.from_secret(b"different"))
    sealed = other.seal_batch("a", [b"x"])
    with pytest.raises(AuthenticationError):
        auth.open_batch(sealed)


def test_seal_frames_single_payload_uses_single_envelope(auth):
    frames = auth.seal_frames("a", [b"only"])
    assert len(frames) == 1
    assert frames[0][:2] != BATCH_MARKER
    assert auth.open(frames[0]) == ("a", b"only")


def test_seal_frames_batch_false_is_v1_compatible(auth):
    frames = auth.seal_frames("a", [b"x", b"y"], batch=False)
    assert len(frames) == 2
    assert [auth.open(f) for f in frames] == [("a", b"x"), ("a", b"y")]


def test_seal_frames_splits_oversized_bursts(auth):
    chunk = b"z" * (MAX_BATCH_BYTES // 2)
    frames = auth.seal_frames("a", [chunk, chunk, chunk])
    assert len(frames) >= 2
    recovered = []
    for frame in frames:
        _, payloads = auth.open_any(frame)
        recovered.extend(bytes(p) for p in payloads)
    assert recovered == [chunk, chunk, chunk]


def test_open_rejects_absurd_name_length(auth):
    # name_len 0x6f6d ("om") = 28525 -- garbage that must die before
    # slicing, not by walking 28 KiB past the envelope.
    with pytest.raises(AuthenticationError):
        auth.open(b"omplete garbage" + b"\x00" * 40)
    bogus = (MAX_SENDER_BYTES + 1).to_bytes(2, "big") + b"x" * 400
    with pytest.raises(AuthenticationError):
        auth.open(bogus)


def test_open_batch_rejects_absurd_name_length(auth):
    bogus = BATCH_MARKER + (MAX_SENDER_BYTES + 1).to_bytes(2, "big")
    with pytest.raises(AuthenticationError):
        auth.open_batch(bogus + b"x" * 400)


def test_seal_rejects_oversized_sender_name():
    auth = Authenticator(KeyChain.from_secret(b"s"))
    with pytest.raises(AuthenticationError):
        auth.seal("w" * (MAX_SENDER_BYTES + 1), b"payload")


def test_batch_length_field_mismatch_rejected(auth):
    """A count that overruns the body is caught by the length checks."""
    sealed = bytearray(auth.seal_batch("a", [b"pp"]))
    # The MAC covers the count, so inflating it also fails the verify;
    # craft the failure *before* the MAC by truncating the body instead.
    with pytest.raises(AuthenticationError):
        auth.open_batch(bytes(sealed[:-3]))


def test_key_rotation_invalidates_cached_state():
    chain = KeyChain.from_secret(b"s", ["a"])
    auth = Authenticator(chain)
    sealed_old = auth.seal("a", b"before")
    assert auth.open(sealed_old)[0] == "a"
    chain.add("a", b"fresh-key-32-bytes-fresh-key-32!")
    sealed_new = auth.seal("a", b"after")
    assert auth.open(sealed_new) == ("a", b"after")
    with pytest.raises(AuthenticationError):
        auth.open(sealed_old)


def test_batch_of_one_roundtrips(auth):
    sealed = auth.seal_batch("a", [b"lonely"])
    sender, payloads = auth.open_any(sealed)
    assert (sender, [bytes(p) for p in payloads]) == ("a", [b"lonely"])


def test_batch_payload_views_are_zero_copy(auth):
    sealed = auth.seal_batch("a", [b"view-me"])
    _, payloads = auth.open_batch(sealed)
    assert isinstance(payloads[0], memoryview)
