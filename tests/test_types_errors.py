"""Unit tests for shared types and the exception hierarchy."""

import pytest

from repro import errors
from repro.types import (
    FailureMode,
    Role,
    SystemConfig,
    reader_id,
    server_id,
    writer_id,
)


def test_canonical_ids_are_ordered_and_distinct():
    assert server_id(0) == "s000" and server_id(42) == "s042"
    assert writer_id(3) == "w003"
    assert reader_id(7) == "r007"
    # Lexicographic order matches numeric order within a role.
    assert server_id(2) < server_id(10)
    # Roles never collide.
    assert len({server_id(1), writer_id(1), reader_id(1)}) == 3


def test_system_config_accessors():
    config = SystemConfig(n=5, f=1, num_writers=2, num_readers=3)
    assert len(config.servers) == 5
    assert len(config.writers) == 2
    assert len(config.readers) == 3
    assert config.quorum == 4


def test_system_config_validation():
    with pytest.raises(ValueError):
        SystemConfig(n=0, f=0)
    with pytest.raises(ValueError):
        SystemConfig(n=3, f=-1)
    with pytest.raises(ValueError):
        SystemConfig(n=3, f=1, num_writers=-1)


def test_enums():
    assert Role.SERVER.value == "server"
    assert FailureMode.BYZANTINE.value == "byzantine"


def test_error_hierarchy():
    assert issubclass(errors.QuorumError, errors.ConfigurationError)
    assert issubclass(errors.ConfigurationError, errors.ReproError)
    assert issubclass(errors.AuthenticationError, errors.ProtocolError)
    assert issubclass(errors.LivenessError, errors.SimulationError)
    assert issubclass(errors.DecodingError, errors.ReproError)
    assert issubclass(errors.ConsistencyViolation, errors.ReproError)


def test_consistency_violation_carries_operations():
    violation = errors.ConsistencyViolation("bad", operations=(1, 2))
    assert violation.operations == (1, 2)


def test_single_except_clause_catches_everything():
    for exc in (errors.QuorumError("x"), errors.DecodingError("x"),
                errors.LivenessError("x"), errors.ProtocolError("x")):
        with pytest.raises(errors.ReproError):
            raise exc
