"""Unit tests for the Definition-1 (safety) checker on hand-built traces."""

import pytest

from repro.consistency import check_safety
from repro.consistency.safety import admissible_read_values, value_domain
from repro.errors import ConsistencyViolation
from repro.sim.trace import OpKind, Trace

V0 = b"v0"


def write(trace, client, t0, t1, value):
    record = trace.begin(client, OpKind.WRITE, t0, value=value)
    if t1 is not None:
        trace.complete(record, t1)
    return record


def read(trace, client, t0, t1, value):
    record = trace.begin(client, OpKind.READ, t0)
    trace.complete(record, t1, value=value)
    return record


def test_empty_trace_is_safe():
    assert check_safety(Trace(), initial_value=V0).ok


def test_read_of_latest_preceding_write_is_safe():
    trace = Trace()
    write(trace, "w", 0, 1, b"a")
    read(trace, "r", 2, 3, b"a")
    assert check_safety(trace, initial_value=V0).ok


def test_read_of_initial_value_before_any_write_is_safe():
    trace = Trace()
    read(trace, "r", 0, 1, V0)
    write(trace, "w", 5, 6, b"later")
    assert check_safety(trace, initial_value=V0).ok


def test_stale_read_violates_safety():
    trace = Trace()
    write(trace, "w", 0, 1, b"a")
    write(trace, "w", 2, 3, b"b")   # falls completely between "a" and the read
    read(trace, "r", 4, 5, b"a")
    result = check_safety(trace, initial_value=V0)
    assert not result.ok
    assert "clause (i)" in str(result.violations[0])


def test_initial_value_after_completed_write_violates_safety():
    trace = Trace()
    write(trace, "w", 0, 1, b"a")
    read(trace, "r", 2, 3, V0)
    assert not check_safety(trace, initial_value=V0).ok


def test_read_concurrent_with_write_may_return_anything_in_domain():
    trace = Trace()
    write(trace, "w1", 0, 1, b"a")
    write(trace, "w2", 2, 10, b"b")       # overlaps the read
    read(trace, "r", 4, 5, V0)            # even v0 is fine under clause (ii)
    assert check_safety(trace, initial_value=V0).ok


def test_read_concurrent_with_incomplete_write_is_clause_ii():
    trace = Trace()
    write(trace, "w1", 0, 1, b"a")
    write(trace, "w2", 2, None, b"b")     # never completes -> concurrent
    read(trace, "r", 4, 5, b"b")
    assert check_safety(trace, initial_value=V0).ok


def test_fabricated_value_violates_validity():
    trace = Trace()
    write(trace, "w1", 0, 1, b"a")
    write(trace, "w2", 2, None, b"b")
    read(trace, "r", 4, 5, b"NEVER-WRITTEN")
    result = check_safety(trace, initial_value=V0)
    assert not result.ok
    assert "validity" in str(result.violations[0])


def test_two_admissible_writes_without_ordering():
    # Two concurrent writes, both complete before the read: either is legal.
    trace = Trace()
    write(trace, "w1", 0, 5, b"a")
    write(trace, "w2", 1, 4, b"b")
    read(trace, "r", 6, 7, b"a")
    assert check_safety(trace, initial_value=V0).ok
    trace2 = Trace()
    write(trace2, "w1", 0, 5, b"a")
    write(trace2, "w2", 1, 4, b"b")
    read(trace2, "r", 6, 7, b"b")
    assert check_safety(trace2, initial_value=V0).ok


def test_admissible_read_values_helper():
    trace = Trace()
    w1 = write(trace, "w1", 0, 1, b"a")
    w2 = write(trace, "w2", 2, 3, b"b")
    r = read(trace, "r", 4, 5, b"b")
    assert admissible_read_values(r, trace, V0) == {b"b"}


def test_value_domain_includes_extras():
    trace = Trace()
    write(trace, "w", 0, 1, b"a")
    domain = value_domain(trace, V0, extra_values=[b"bonus"])
    assert domain == {V0, b"a", b"bonus"}


def test_raise_if_violated():
    trace = Trace()
    write(trace, "w", 0, 1, b"a")
    read(trace, "r", 2, 3, V0)
    with pytest.raises(ConsistencyViolation):
        check_safety(trace, initial_value=V0).raise_if_violated()


def test_incomplete_reads_are_ignored():
    trace = Trace()
    write(trace, "w", 0, 1, b"a")
    pending = trace.begin("r", OpKind.READ, 2)
    result = check_safety(trace, initial_value=V0)
    assert result.ok and result.reads_checked == 0
