"""Unit tests for the tag-based atomicity checker."""

from repro.consistency import check_atomicity_by_tags
from repro.core.tags import TAG_ZERO, Tag
from repro.sim.trace import OpKind, Trace


def write(trace, client, t0, t1, value, tag):
    record = trace.begin(client, OpKind.WRITE, t0, value=value)
    if t1 is not None:
        trace.complete(record, t1, tag=tag)
    else:
        record.tag = tag
    return record


def read(trace, client, t0, t1, value, tag):
    record = trace.begin(client, OpKind.READ, t0)
    trace.complete(record, t1, value=value, tag=tag)
    return record


def test_clean_sequential_history_is_atomic():
    trace = Trace()
    write(trace, "w", 0, 1, b"a", Tag(1, "w"))
    read(trace, "r", 2, 3, b"a", Tag(1, "w"))
    write(trace, "w", 4, 5, b"b", Tag(2, "w"))
    read(trace, "r", 6, 7, b"b", Tag(2, "w"))
    assert check_atomicity_by_tags(trace).ok


def test_stale_read_flagged():
    trace = Trace()
    write(trace, "w", 0, 1, b"a", Tag(1, "w"))
    write(trace, "w", 2, 3, b"b", Tag(2, "w"))
    read(trace, "r", 4, 5, b"a", Tag(1, "w"))
    result = check_atomicity_by_tags(trace)
    assert any("older than preceding write" in str(v) for v in result.violations)


def test_new_old_inversion_flagged():
    trace = Trace()
    write(trace, "w", 0, 10, b"b", Tag(2, "w"))       # concurrent with reads
    read(trace, "r1", 1, 2, b"b", Tag(2, "w"))        # sees the new value
    read(trace, "r2", 3, 4, b"", TAG_ZERO)            # later read sees old
    result = check_atomicity_by_tags(trace)
    assert any("inversion" in str(v) for v in result.violations)


def test_unknown_tag_flagged():
    trace = Trace()
    read(trace, "r", 0, 1, b"x", Tag(7, "ghost"))
    result = check_atomicity_by_tags(trace)
    assert any("unknown tag" in str(v) for v in result.violations)


def test_read_from_the_future_flagged():
    trace = Trace()
    read(trace, "r", 0, 1, b"x", Tag(1, "w"))
    write(trace, "w", 5, 6, b"x", Tag(1, "w"))   # invoked after the read ended
    result = check_atomicity_by_tags(trace)
    assert any("after the read responded" in str(v) for v in result.violations)


def test_initial_tag_reads_are_fine_before_writes():
    trace = Trace()
    read(trace, "r", 0, 1, b"", TAG_ZERO)
    assert check_atomicity_by_tags(trace).ok


def test_concurrent_reads_may_disagree():
    # r1 and r2 overlap: either order is a valid linearization.
    trace = Trace()
    write(trace, "w", 0, 10, b"b", Tag(1, "w"))
    read(trace, "r1", 1, 5, b"b", Tag(1, "w"))
    read(trace, "r2", 2, 6, b"", TAG_ZERO)
    assert check_atomicity_by_tags(trace).ok


def test_records_without_tags_are_skipped():
    trace = Trace()
    record = trace.begin("r", OpKind.READ, 0)
    trace.complete(record, 1, value=b"x")  # no tag
    result = check_atomicity_by_tags(trace)
    assert result.ok and result.reads_checked == 0
