"""Unit tests for the CheckResult/Violation containers."""

import pytest

from repro.consistency.result import CheckResult, Violation
from repro.errors import ConsistencyViolation
from repro.sim.trace import OpKind, Trace


def test_ok_when_empty():
    result = CheckResult(condition="test")
    assert result.ok
    assert result.raise_if_violated() is result


def test_record_adds_violation_with_operations():
    trace = Trace()
    op = trace.begin("c", OpKind.READ, 0.0)
    result = CheckResult(condition="test")
    result.record("something is off", op)
    assert not result.ok
    assert result.violations[0].operations == (op,)
    assert "something is off" in str(result.violations[0])


def test_raise_if_violated_includes_condition_and_count():
    result = CheckResult(condition="my-condition")
    result.record("first problem")
    result.record("second problem")
    with pytest.raises(ConsistencyViolation) as excinfo:
        result.raise_if_violated()
    assert "my-condition" in str(excinfo.value)
    assert "2 violation(s)" in str(excinfo.value)
    assert "first problem" in str(excinfo.value)


def test_str_summarizes():
    result = CheckResult(condition="safety")
    result.reads_checked = 3
    assert "OK" in str(result)
    result.record("boom")
    assert "1 violation(s)" in str(result)
