"""Tests for the finite-run liveness checker."""

from repro import RegisterSystem
from repro.consistency import check_liveness
from repro.sim.delays import ConstantDelay


def test_all_complete_is_live():
    system = RegisterSystem("bsr", f=1, seed=1, delay_model=ConstantDelay(1.0))
    system.write(b"v", at=0.0)
    system.read(at=10.0)
    trace = system.run()
    check_liveness(trace).raise_if_violated()


def test_crashed_client_flagged_unless_allowed():
    system = RegisterSystem("bsr", f=1, seed=2, delay_model=ConstantDelay(2.0))
    system.write(b"doomed", writer=0, at=0.0)
    system.crash_client("w000", at=1.0)
    trace = system.run()
    assert not check_liveness(trace).ok
    check_liveness(trace, allowed_incomplete=["w000"]).raise_if_violated()


def test_too_many_crashed_servers_flagged():
    system = RegisterSystem("bsr", f=1, seed=3, delay_model=ConstantDelay(1.0))
    system.crash_server(0, at=0.1)
    system.crash_server(1, at=0.1)  # f + 1 crashes: beyond the budget
    write = system.write(b"stuck", writer=0, at=1.0)
    system.sim.run_for(50.0)
    assert not write.done
    result = check_liveness(system.trace)
    assert not result.ok
    assert "never completed" in str(result.violations[0])
