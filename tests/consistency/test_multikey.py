"""Per-key consistency over interleaved multi-key histories.

The register abstraction composes: operations on different keys never
interact, so a multi-key history is safe/regular/atomic iff every key's
projection is.  These tests interleave operations across many keys of a
sharded system and check each guarantee key by key.
"""

import pytest

from repro import RegisterSystem
from repro.consistency import (
    check_atomicity_by_tags,
    check_atomicity_per_register,
    check_regularity_per_register,
    check_safety_per_register,
)
from repro.sharding import KeyspaceConfig, key_name
from repro.sim.delays import UniformDelay
from repro.sim.rng import SimRng
from repro.workloads import WorkloadSpec, apply_schedule, generate_schedule


def run_keyed(algorithm, checker, seed, keys=8, ops=160, **system_kwargs):
    spec = WorkloadSpec(num_ops=ops, read_ratio=0.6, keys=keys, zipf_s=1.1,
                        num_writers=2, num_readers=2, mean_interarrival=2.0)
    schedule = generate_schedule(spec, SimRng(seed, "multikey"))
    system = RegisterSystem(
        algorithm, f=1, seed=seed, num_writers=2, num_readers=2,
        keyspace=KeyspaceConfig(group_size=9, seed=seed),
        n=9, delay_model=UniformDelay(0.3, 1.0), **system_kwargs)
    handles = apply_schedule(system, schedule)
    trace = system.run()
    assert all(handle.done for handle in handles)
    return checker(trace)


def test_bsr_interleaved_keys_are_safe_per_key():
    result = run_keyed("bsr", check_safety_per_register, seed=11)
    assert result.ok, result.violations
    assert result.reads_checked > 0


def test_bsr_history_interleaved_keys_are_regular_per_key():
    result = run_keyed("bsr-history", check_regularity_per_register, seed=12)
    assert result.ok, result.violations
    assert result.reads_checked > 0


def test_abd_interleaved_keys_are_atomic_per_key():
    result = run_keyed("abd", check_atomicity_per_register, seed=13)
    assert result.ok, result.violations
    assert result.reads_checked > 0


def test_sharded_groups_preserve_safety():
    # Groups smaller than the fleet: each key runs on its own 5 of 9.
    spec = WorkloadSpec(num_ops=120, read_ratio=0.6, keys=12, zipf_s=1.0,
                        num_writers=2, num_readers=2, mean_interarrival=2.0)
    schedule = generate_schedule(spec, SimRng(21, "multikey-groups"))
    system = RegisterSystem(
        "bsr", f=1, n=9, seed=21, num_writers=2, num_readers=2,
        keyspace=KeyspaceConfig(group_size=5, seed=21),
        delay_model=UniformDelay(0.3, 1.0))
    handles = apply_schedule(system, schedule)
    trace = system.run()
    assert all(handle.done for handle in handles)
    result = check_safety_per_register(trace, initial_value=b"")
    assert result.ok, result.violations


def test_per_key_split_is_required_for_atomicity():
    """Tags restart at zero per key, so the whole-trace tag checker sees
    spurious duplicate-tag/ordering conflicts a per-key split does not."""
    system = RegisterSystem(
        "abd", f=1, seed=31, num_writers=2, num_readers=2,
        keyspace=KeyspaceConfig(group_size=3, seed=31), n=3,
        delay_model=UniformDelay(0.3, 1.0))
    # Key A advances to tag (2, w000); key B's first write only reaches
    # tag (1, w001).  A later read of B then *looks* stale to a checker
    # comparing tags across the whole trace, though per key all is well.
    system.write(b"a1", writer=0, at=0.0, register=key_name(0))
    system.write(b"a2", writer=0, at=10.0, register=key_name(0))
    system.write(b"b1", writer=1, at=20.0, register=key_name(1))
    system.read(reader=1, at=30.0, register=key_name(1))
    trace = system.run()
    whole = check_atomicity_by_tags(trace)
    split = check_atomicity_per_register(trace)
    assert not whole.ok      # cross-key tag comparison misfires
    assert split.ok, split.violations


def test_cross_key_reads_never_leak_values():
    system = RegisterSystem(
        "bsr", f=1, n=9, seed=41, num_writers=1, num_readers=1,
        keyspace=KeyspaceConfig(group_size=5, seed=41),
        delay_model=UniformDelay(0.3, 1.0))
    system.write(b"only-on-a", at=0.0, register="a")
    read = system.read(at=10.0, register="b")
    system.run()
    assert read.value == b""  # b is untouched; a's value must not appear


def test_eviction_does_not_break_per_key_safety():
    # A residency cap far below the key count forces constant demotion
    # and rehydration during the run.
    spec = WorkloadSpec(num_ops=150, read_ratio=0.5, keys=20, zipf_s=0.5,
                        num_writers=2, num_readers=2, mean_interarrival=2.0)
    schedule = generate_schedule(spec, SimRng(51, "multikey-evict"))
    system = RegisterSystem(
        "bsr", f=1, n=9, seed=51, num_writers=2, num_readers=2,
        keyspace=KeyspaceConfig(group_size=5, seed=51, max_resident=3),
        delay_model=UniformDelay(0.3, 1.0))
    handles = apply_schedule(system, schedule)
    trace = system.run()
    assert all(handle.done for handle in handles)
    result = check_safety_per_register(trace, initial_value=b"")
    assert result.ok, result.violations
    evictions = sum(
        len(protocol.archived_keys)
        for protocol in system.server_protocols.values())
    assert evictions > 0  # the cap actually bit during the run
