"""Unit tests for the Definition-2 (regularity) checker."""

from repro.consistency import check_regularity, check_safety
from repro.consistency.regularity import fresh_read_values
from repro.core.tags import Tag
from repro.sim.trace import OpKind, Trace

V0 = b"v0"


def write(trace, client, t0, t1, value, tag=None):
    record = trace.begin(client, OpKind.WRITE, t0, value=value)
    if t1 is not None:
        trace.complete(record, t1, tag=tag)
    elif tag is not None:
        record.tag = tag
    return record


def read(trace, client, t0, t1, value, tag=None):
    record = trace.begin(client, OpKind.READ, t0)
    trace.complete(record, t1, value=value, tag=tag)
    return record


def test_fresh_read_is_regular():
    trace = Trace()
    write(trace, "w", 0, 1, b"a", tag=Tag(1, "w"))
    read(trace, "r", 2, 3, b"a", tag=Tag(1, "w"))
    assert check_regularity(trace, initial_value=V0).ok


def test_concurrent_write_value_is_regular():
    trace = Trace()
    write(trace, "w1", 0, 1, b"a", tag=Tag(1, "w1"))
    write(trace, "w2", 2, None, b"b", tag=Tag(2, "w2"))  # concurrent with read
    read(trace, "r", 3, 4, b"b", tag=Tag(2, "w2"))
    assert check_regularity(trace, initial_value=V0).ok


def test_initial_value_after_completed_write_is_not_regular():
    """The exact shape of Theorem 3: safe, but not regular."""
    trace = Trace()
    write(trace, "w1", 0, 1, b"v1", tag=Tag(1, "w1"))
    for i in range(2, 6):
        write(trace, f"w{i}", 2, None, f"v{i}".encode(), tag=Tag(2, f"w{i}"))
    read(trace, "r", 3, 4, V0)
    assert check_safety(trace, initial_value=V0).ok          # clause (ii)
    assert not check_regularity(trace, initial_value=V0).ok  # stale v0


def test_superseded_value_is_not_regular():
    trace = Trace()
    write(trace, "w", 0, 1, b"a", tag=Tag(1, "w"))
    write(trace, "w", 2, 3, b"b", tag=Tag(2, "w"))
    read(trace, "r", 4, 5, b"a", tag=Tag(1, "w"))
    assert not check_regularity(trace, initial_value=V0).ok


def test_duplicate_write_tags_flagged():
    trace = Trace()
    write(trace, "w1", 0, 1, b"a", tag=Tag(1, "x"))
    write(trace, "w2", 2, 3, b"b", tag=Tag(1, "x"))
    result = check_regularity(trace, initial_value=V0)
    assert any("share tag" in str(v) for v in result.violations)


def test_read_tag_mismatch_flagged():
    trace = Trace()
    write(trace, "w", 0, 1, b"a", tag=Tag(1, "w"))
    read(trace, "r", 2, 3, b"a", tag=Tag(9, "zz"))
    result = check_regularity(trace, initial_value=V0)
    assert any("tag" in str(v) for v in result.violations)


def test_fresh_read_values_helper():
    trace = Trace()
    write(trace, "w", 0, 1, b"old", tag=Tag(1, "w"))
    write(trace, "w", 2, 3, b"new", tag=Tag(2, "w"))
    ongoing = write(trace, "w2", 4, None, b"inflight", tag=Tag(3, "w2"))
    r = read(trace, "r", 5, 6, b"new", tag=Tag(2, "w"))
    allowed = fresh_read_values(r, trace, V0)
    assert allowed == {b"new", b"inflight"}  # "old" superseded, v0 excluded


def test_initial_value_allowed_while_no_write_completed():
    trace = Trace()
    write(trace, "w", 0, None, b"pending", tag=Tag(1, "w"))
    r = read(trace, "r", 1, 2, V0)
    assert check_regularity(trace, initial_value=V0).ok
