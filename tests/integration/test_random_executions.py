"""Randomized adversarial executions, checked mechanically.

These are the strongest tests in the repository: random workloads, random
delays and random Byzantine behaviour, with Definition 1 / Definition 2
verified on every resulting trace.  Theorems 2 and 4 say the checks can
never fail at (or above) the resilience bounds; any counterexample found
here would be a bug in either the algorithms or the paper.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import RegisterSystem
from repro.consistency import check_regularity, check_safety
from repro.sim.delays import ExponentialDelay, UniformDelay
from repro.sim.failures import random_failure_schedule
from repro.sim.rng import SimRng
from repro.workloads import WorkloadSpec, apply_schedule, generate_schedule

BEHAVIORS = ("silent", "stale", "forge_tag", "corrupt_value", "equivocate",
             "multi_reply", "flip_flop", "random")


def run_random_execution(algorithm, seed, f=1, n=None, read_ratio=0.7,
                         num_ops=40):
    rng = SimRng(seed, f"exec-{algorithm}")
    spec = WorkloadSpec(num_ops=num_ops, read_ratio=read_ratio,
                        num_writers=2, num_readers=2,
                        mean_interarrival=rng.uniform(0.5, 4.0),
                        value_size=rng.randint(8, 64))
    system = RegisterSystem(
        algorithm, f=f, n=n, seed=seed, num_writers=2, num_readers=2,
        initial_value=b"v0",
        delay_model=ExponentialDelay(mean=rng.uniform(0.2, 1.5), floor=0.05),
    )
    schedule = generate_schedule(spec, rng.fork("schedule"))
    handles = apply_schedule(system, schedule)
    trace = system.run()
    assert all(handle.done for handle in handles), "liveness violated"
    return trace


@settings(max_examples=12, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_bsr_random_fault_free_executions_are_safe(seed):
    trace = run_random_execution("bsr", seed)
    check_safety(trace, initial_value=b"v0").raise_if_violated()


@settings(max_examples=8, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_bcsr_random_fault_free_executions_are_safe(seed):
    trace = run_random_execution("bcsr", seed, num_ops=25)
    check_safety(trace, initial_value=b"v0").raise_if_violated()


@settings(max_examples=8, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_regular_variants_random_executions_are_regular(seed):
    for algorithm in ("bsr-history", "bsr-2round"):
        trace = run_random_execution(algorithm, seed, num_ops=25)
        check_regularity(trace, initial_value=b"v0").raise_if_violated()


def run_byzantine_execution(algorithm, seed, f=1, n=None, num_ops=30):
    rng = SimRng(seed, f"byz-{algorithm}")
    system_probe = RegisterSystem(algorithm, f=f, n=n)
    schedule_of_failures = random_failure_schedule(
        system_probe.server_ids, f, rng.fork("failures"), behaviors=BEHAVIORS,
    )
    byzantine = {event.pid: event.behavior
                 for event in schedule_of_failures.events}
    system = RegisterSystem(
        algorithm, f=f, n=n, seed=seed, num_writers=2, num_readers=2,
        initial_value=b"v0", byzantine=byzantine,
        delay_model=UniformDelay(0.1, rng.uniform(0.5, 3.0)),
    )
    spec = WorkloadSpec(num_ops=num_ops, read_ratio=0.7, num_writers=2,
                        num_readers=2, mean_interarrival=2.0)
    handles = apply_schedule(system, generate_schedule(spec, rng.fork("wl")))
    trace = system.run()
    assert all(handle.done for handle in handles), "liveness violated"
    return trace


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_bsr_random_byzantine_executions_are_safe(seed):
    trace = run_byzantine_execution("bsr", seed)
    check_safety(trace, initial_value=b"v0").raise_if_violated()


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_bcsr_random_byzantine_executions_are_safe(seed):
    trace = run_byzantine_execution("bcsr", seed, num_ops=20)
    check_safety(trace, initial_value=b"v0").raise_if_violated()


@settings(max_examples=8, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_history_variant_byzantine_executions_are_regular(seed):
    trace = run_byzantine_execution("bsr-history", seed, num_ops=20)
    check_regularity(trace, initial_value=b"v0").raise_if_violated()


@settings(max_examples=8, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_two_round_variant_byzantine_executions_are_regular(seed):
    trace = run_byzantine_execution("bsr-2round", seed, num_ops=20)
    check_regularity(trace, initial_value=b"v0").raise_if_violated()


@settings(max_examples=6, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_rb_baseline_byzantine_executions_are_safe(seed):
    trace = run_byzantine_execution("rb", seed, num_ops=20)
    check_safety(trace, initial_value=b"v0").raise_if_violated()


def test_larger_f_byzantine_execution():
    """f = 2 with two differently-misbehaving servers (n = 9)."""
    system = RegisterSystem(
        "bsr", f=2, seed=5, num_writers=2, num_readers=2,
        initial_value=b"v0", byzantine={0: "forge_tag", 5: "equivocate"},
        delay_model=UniformDelay(0.2, 1.0),
    )
    spec = WorkloadSpec(num_ops=40, read_ratio=0.6, num_writers=2, num_readers=2)
    handles = apply_schedule(system, generate_schedule(spec, SimRng(5, "wl")))
    trace = system.run()
    assert all(handle.done for handle in handles)
    check_safety(trace, initial_value=b"v0").raise_if_violated()


def test_crash_and_byzantine_combined_within_budget():
    """One Byzantine server (the budget) plus crash-faulty *clients*."""
    system = RegisterSystem(
        "bsr", f=1, seed=6, num_writers=3, num_readers=2,
        initial_value=b"v0", byzantine={1: "stale"},
        delay_model=UniformDelay(0.2, 1.0),
    )
    system.write(b"w-a", writer=0, at=0.0)
    doomed = system.write(b"w-b", writer=1, at=5.0)
    system.crash_client("w001", at=5.5)   # crashes mid-write
    system.write(b"w-c", writer=2, at=10.0)
    read = system.read(reader=0, at=30.0)
    trace = system.run()
    assert not doomed.done
    assert read.done
    check_safety(trace, initial_value=b"v0").raise_if_violated()
