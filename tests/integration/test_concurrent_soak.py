"""Acceptance: one multiplexed client under the flaky-links schedule.

A single :class:`AsyncRegisterClient` keeps 64 mixed reads/writes in
flight while the nemesis degrades (drops/delays/duplicates) and then
severs one server's links.  Every operation must complete with a correct
result and the recorded execution must satisfy the paper's safety
definition -- the multiplexed runtime may not trade safety for depth.
"""

import asyncio

from repro.chaos.nemesis import Nemesis, build_schedule
from repro.chaos.soak import run_soak
from repro.consistency import check_safety
from repro.runtime import LocalCluster
from repro.sim.trace import OpKind, Trace


def test_single_client_sustains_64_concurrent_ops_under_flaky_links():
    async def scenario():
        cluster = LocalCluster("bsr", f=1, chaos=True, chaos_seed=11)
        await cluster.start()
        try:
            steps = build_schedule("flaky-links", cluster.server_ids, 1,
                                   seed=11, start=0.2, period=0.5)
            nemesis = Nemesis(cluster, steps, registry=cluster.registry)
            client = cluster.client("w000", timeout=20.0,
                                    backoff_base=0.05, backoff_max=0.5,
                                    drain_timeout=0.5)
            await client.connect()
            trace = Trace()
            loop = asyncio.get_running_loop()

            async def one(index: int) -> None:
                if index % 4 == 0:  # 16 writes among 64 ops
                    value = f"cc:{index}".encode().ljust(32, b".")
                    record = trace.begin("w000", OpKind.WRITE, loop.time(),
                                         value=value)
                    tag = await client.write(value)
                    trace.complete(record, loop.time(), tag=tag)
                else:
                    record = trace.begin("w000", OpKind.READ, loop.time())
                    value = await client.read()
                    trace.complete(record, loop.time(), value=value)

            nemesis_task = asyncio.ensure_future(nemesis.run())
            await asyncio.gather(*(one(index) for index in range(64)))
            await nemesis_task
            cluster.chaos_plan.heal()
            safety = check_safety(trace, initial_value=cluster.initial_value)
        finally:
            await cluster.stop()
        return trace, safety, client.stats()

    trace, safety, stats = asyncio.run(scenario())
    assert len(trace.completed) == 64  # every op finished in time
    assert safety.ok, f"safety violated: {safety}"
    assert stats["inflight"] == 0


def test_soak_open_loop_concurrency_stays_safe():
    """The soak harness's concurrency knob: open-loop load, safety held."""
    result = asyncio.run(run_soak(
        algorithm="bsr", schedule="flaky-links", ops=24, seed=3,
        period=0.4, timeout=20.0, concurrency=4,
        client_kwargs={"max_inflight": 8},
    ))
    assert result.ok, (result.errors, result.safety)
    assert result.ops_completed == 24
