"""End-to-end runs against a real process-per-node cluster (``procs``).

The acceptance path for the deployment subsystem: a 5-node BSR (f=1)
cluster as five OS processes driven from one :class:`ClusterSpec`, with
the nemesis delivering *real* SIGKILLs and the supervisor restarting
victims from their snapshots, judged by the paper's safety checker.
"""

import asyncio

import pytest

from repro.chaos import run_soak
from repro.deploy import ClusterSpec, ClusterSupervisor, health_ping

pytestmark = pytest.mark.procs


def run(coro):
    return asyncio.run(coro)


def test_sigkill_mid_write_recovers_from_snapshot(tmp_path):
    """A node killed mid-write rejoins from its snapshot, reads stay safe."""
    async def scenario():
        spec = ClusterSpec(algorithm="bsr", f=1, max_history=8,
                           snapshot_dir=str(tmp_path / "snaps"),
                           secret="sigkill-mid-write")
        supervisor = ClusterSupervisor(spec)
        await supervisor.start()
        try:
            writer = supervisor.client("w000", timeout=10.0)
            reader = supervisor.client("r000", timeout=10.0)
            await writer.connect()
            await reader.connect()
            await writer.write(b"before-crash")

            victim = spec.node_ids[1]

            async def kill_mid_write():
                # Land the SIGKILL inside the write's two round trips.
                await asyncio.sleep(0.01)
                await supervisor.crash(victim)

            results = await asyncio.gather(
                writer.write(b"during-crash"), kill_mid_write())
            assert results[0] is not None  # write completed despite the kill

            # More writes while the victim is down: n - 1 >= n - f servers
            # remain, so the cluster stays live (Lemma 6).
            await writer.write(b"while-down")
            assert await reader.read() == b"while-down"

            await supervisor.restart(victim)
            assert await supervisor.healthy(victim)
            # The restarted node restored a *bounded* history: max_history
            # capped what the snapshot carried.
            ack = await health_ping(supervisor.handles[victim].address,
                                    spec.authenticator())
            assert 1 <= ack.history_len <= 8

            await writer.write(b"after-recovery")
            assert await reader.read() == b"after-recovery"
        finally:
            await supervisor.stop()

    run(scenario())


def test_acceptance_soak_procs_crash_restart(tmp_path):
    """ISSUE acceptance: procs soak with SIGKILL crash-restart, zero
    safety violations, bounded snapshots, reconnects recorded."""
    result = run(run_soak(
        algorithm="bsr", f=1, schedule="crash-restart", ops=16,
        read_ratio=0.6, seed=5, start=0.4, period=0.9, timeout=15.0,
        snapshot_dir=str(tmp_path / "snaps"), max_history=6, procs=True,
    ))
    assert result.procs
    assert result.errors == [], f"liveness failures: {result.errors}"
    assert result.safety.ok, str(result.safety)
    assert result.ops_completed >= 16
    assert any("crash" in event for event in result.nemesis_events)
    assert any("restart" in event for event in result.nemesis_events)
    # Real crashes severed TCP connections; clients had to re-dial.
    reconnects = sum(stats.get("reconnects", 0)
                     for stats in result.client_stats.values())
    assert reconnects > 0
    # max_history bounded the on-disk snapshots: with 6 entries of
    # 32-byte values a snapshot stays well under 2 KiB per node.
    assert set(result.snapshot_bytes) == {f"s{i:03d}" for i in range(5)}
    assert all(0 < size < 2048 for size in result.snapshot_bytes.values())


def test_procs_soak_rejects_proxy_schedules(tmp_path):
    from repro.errors import ConfigurationError
    with pytest.raises(ConfigurationError):
        run(run_soak(algorithm="bsr", f=1, schedule="rolling-partition",
                     procs=True, snapshot_dir=str(tmp_path / "snaps")))
