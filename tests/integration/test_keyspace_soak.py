"""Multi-key chaos: sharded keyspaces under nemesis schedules.

The quick test runs in tier-1; the 1000-key soak (``soak`` marker, see
``make chaos-soak``) is the acceptance run for the keyspace subsystem:
a Zipf-skewed workload over a thousand keys while links flap, with zero
per-register safety violations and every operation completing.
"""

import asyncio

import pytest

from repro.chaos import run_soak
from repro.consistency.registers import REGISTER_META


def run(coro):
    return asyncio.run(coro)


def test_keyed_flaky_links_soak_safe():
    result = run(run_soak(
        algorithm="bsr", f=1, schedule="flaky-links", ops=24,
        read_ratio=0.6, seed=17, start=0.3, period=0.4, timeout=10.0,
        keys=25, zipf_s=1.1,
    ))
    assert result.errors == [], f"liveness failures: {result.errors}"
    assert result.safety.ok, str(result.safety)
    assert result.keys == 25
    assert "per register" in result.safety.condition
    touched = {op.meta.get(REGISTER_META) for op in result.trace.operations}
    assert len(touched) > 1  # the workload really spanned keys
    assert all(key is not None for key in touched)


def test_keyed_soak_determinism():
    runs = [
        run(run_soak(algorithm="bsr", f=1, schedule="flaky-links", ops=12,
                     seed=23, start=0.2, period=0.3, timeout=10.0,
                     keys=10, zipf_s=1.0))
        for _ in range(2)
    ]
    keyed = [[op.meta.get(REGISTER_META) for op in r.trace.operations]
             for r in runs]
    assert sorted(k for k in keyed[0] if k) == sorted(
        k for k in keyed[1] if k)
    for result in runs:
        assert result.errors == []
        assert result.safety.ok


def test_keyed_soak_rejects_unknown_algorithms():
    from repro.errors import ConfigurationError
    with pytest.raises(ConfigurationError):
        run(run_soak(algorithm="no-such-algo", keys=5))


def test_keyed_soak_runs_peer_links_algorithms():
    """The registry's per-key factories lifted the old rb prohibition:
    each key gets its own broadcast instance over its placement group."""
    result = run(run_soak(
        algorithm="rb", f=1, schedule="flaky-links", ops=10,
        read_ratio=0.5, seed=29, start=0.2, period=0.3, timeout=12.0,
        keys=5, zipf_s=1.0,
    ))
    assert result.errors == [], f"liveness failures: {result.errors}"
    assert result.safety.ok, str(result.safety)
    assert result.keys == 5


@pytest.mark.soak
def test_thousand_key_flaky_links_soak():
    """ISSUE acceptance: 1k keys, flaky links, zero violations."""
    result = run(run_soak(
        algorithm="bsr", f=1, schedule="flaky-links", ops=120,
        read_ratio=0.6, seed=29, start=0.3, period=0.5, timeout=20.0,
        keys=1000, zipf_s=1.1, concurrency=4,
    ))
    assert result.errors == [], f"liveness failures: {result.errors}"
    assert result.safety.ok, str(result.safety)
    assert result.ops_completed >= 120
