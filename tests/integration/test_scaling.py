"""Integration at larger scales: bigger f, extra servers, larger values.

The unit and f = 1 tests pin behaviour; these confirm the quorum
arithmetic holds as the deployment grows -- the regime a production
operator actually runs (over-provisioned n, multi-fault budgets).
"""

import pytest

from repro import RegisterSystem
from repro.consistency import check_liveness, check_regularity, check_safety
from repro.sim.delays import UniformDelay
from repro.sim.rng import SimRng
from repro.workloads import WorkloadSpec, apply_schedule, generate_schedule


@pytest.mark.parametrize("f", [2, 3])
def test_bsr_at_higher_fault_budgets(f):
    behaviors = ["forge_tag", "stale", "equivocate"][:f]
    system = RegisterSystem(
        "bsr", f=f, seed=f, initial_value=b"v0",
        byzantine={i: behaviors[i % len(behaviors)] for i in range(f)},
        delay_model=UniformDelay(0.2, 1.5),
    )
    assert system.n == 4 * f + 1
    system.write(b"scaled", writer=0, at=0.0)
    read = system.read(reader=0, at=30.0)
    trace = system.run()
    assert read.value == b"scaled"
    check_safety(trace, initial_value=b"v0").raise_if_violated()
    check_liveness(trace).raise_if_violated()


@pytest.mark.parametrize("extra", [1, 3, 6])
def test_bsr_with_servers_beyond_the_minimum(extra):
    """Over-provisioning must never hurt correctness."""
    f = 1
    system = RegisterSystem("bsr", f=f, n=4 * f + 1 + extra, seed=extra,
                            initial_value=b"v0",
                            byzantine={0: "forge_tag"},
                            delay_model=UniformDelay(0.2, 1.0))
    for i in range(3):
        system.write(f"gen-{i}".encode(), writer=i % 2, at=i * 10.0)
    read = system.read(at=40.0)
    trace = system.run()
    assert read.value == b"gen-2"
    check_safety(trace, initial_value=b"v0").raise_if_violated()


def test_bcsr_f2_with_two_corrupting_servers():
    system = RegisterSystem("bcsr", f=2, seed=9, initial_value=b"v0",
                            byzantine={0: "corrupt_value", 1: "corrupt_value"},
                            delay_model=UniformDelay(0.2, 1.0))
    assert system.n == 11
    blob = bytes(range(256)) * 4
    system.write(blob, writer=0, at=0.0)
    read = system.read(at=20.0)
    trace = system.run()
    assert read.value == blob
    check_safety(trace, initial_value=b"v0").raise_if_violated()


def test_bcsr_wide_code_with_large_value():
    """n = 16, f = 2 -> k = 6: real striping across a 100 KiB value."""
    system = RegisterSystem("bcsr", f=2, n=16, seed=10,
                            byzantine={3: "corrupt_value", 7: "stale"},
                            delay_model=UniformDelay(0.2, 1.0))
    blob = b"\xab" * 100_000
    system.write(blob, writer=0, at=0.0)
    read = system.read(at=20.0)
    system.run()
    assert read.value == blob
    # 1/k storage per server (plus frame overhead).
    per_server = max(system.storage_bytes().values())
    assert per_server < len(blob) / 5


@pytest.mark.parametrize("algorithm", ["bsr-history", "bsr-2round"])
def test_regular_variants_at_f2_under_coalition(algorithm):
    from repro.byzantine.collusion import ColludingStaleBehavior, make_coalition
    coalition = make_coalition(ColludingStaleBehavior, 2)
    system = RegisterSystem(algorithm, f=2, seed=11, initial_value=b"v0",
                            byzantine={i: coalition[i] for i in range(2)},
                            delay_model=UniformDelay(0.2, 1.2))
    for i in range(4):
        system.write(f"r-{i}".encode(), writer=i % 2, at=i * 15.0)
        system.read(reader=i % 2, at=i * 15.0 + 7.0)
    trace = system.run()
    check_regularity(trace, initial_value=b"v0").raise_if_violated()


def test_mixed_workload_f2_full_stack():
    """Workload generator + namespaces + byzantine + checkers, f = 2."""
    spec = WorkloadSpec(num_ops=80, read_ratio=0.75, num_keys=4,
                        num_writers=2, num_readers=3, mean_interarrival=2.0)
    schedule = generate_schedule(spec, SimRng(12, "scale"))
    system = RegisterSystem("bsr", f=2, seed=12, namespaced=True,
                            num_writers=2, num_readers=3, initial_value=b"",
                            byzantine={2: "random", 6: "flip_flop"},
                            delay_model=UniformDelay(0.2, 1.0))
    handles = apply_schedule(system, schedule)
    trace = system.run()
    assert all(handle.done for handle in handles)
    from repro.consistency import check_safety_per_register
    check_safety_per_register(trace, initial_value=b"").raise_if_violated()
