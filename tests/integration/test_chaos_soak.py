"""Chaos soak: mixed workloads under nemesis schedules on live TCP.

The acceptance run for the chaos subsystem: a seeded schedule with ``f``
crash-restarts (snapshot recovery) and a rolling link partition over a
mixed read/write workload, on both the replicated (``bsr``) and the
MDS-coded (``bcsr``) cluster.  Every operation must complete within its
liveness timeout (the schedules keep ``n - f`` servers reachable,
Lemma 6) with zero safety violations (Definition 1), and replaying a
schedule with the same seed must inject the same fault sequence.
"""

import asyncio

import pytest

from repro.chaos import run_soak


def run(coro):
    return asyncio.run(coro)


@pytest.mark.parametrize("algorithm", ["bsr", "bcsr"])
def test_combo_soak_safe_and_live(algorithm):
    """f crash-restarts + rolling partition: safety and liveness hold."""
    result = run(run_soak(
        algorithm=algorithm, f=1, schedule="combo", ops=18, read_ratio=0.6,
        seed=7, start=0.3, period=0.45, timeout=10.0,
    ))
    assert result.errors == [], f"liveness failures: {result.errors}"
    assert result.safety.ok, str(result.safety)
    assert result.ops_completed == len(result.trace.operations)
    assert result.ops_completed >= 18
    # The schedule really did inject the advertised faults.
    assert any("crash" in event for event in result.nemesis_events)
    assert any("partition" in event for event in result.nemesis_events)
    # Crashing and partitioning severed links, so clients had to heal.
    reconnects = sum(stats.get("reconnects", 0)
                     for stats in result.client_stats.values())
    assert reconnects > 0
    # Liveness the strict way: no completed op came close to its timeout.
    for op in result.trace.completed:
        assert op.latency < 10.0


def test_same_seed_replays_same_fault_sequence():
    """Determinism check: identical seeds inject identical fault sequences."""
    runs = [
        run(run_soak(algorithm="bsr", f=1, schedule="crash-restart", ops=8,
                     seed=21, start=0.2, period=0.4, timeout=10.0))
        for _ in range(2)
    ]
    assert runs[0].nemesis_events == runs[1].nemesis_events
    assert runs[0].nemesis_events  # the schedule was not empty
    for result in runs:
        assert result.errors == []
        assert result.safety.ok


def test_flaky_links_soak_safe():
    """Dropped/delayed/duplicated frames on one link never break safety."""
    result = run(run_soak(
        algorithm="bsr", f=1, schedule="flaky-links", ops=14, read_ratio=0.5,
        seed=3, start=0.2, period=0.4, timeout=10.0,
    ))
    assert result.errors == []
    assert result.safety.ok
    # The degraded link actually faulted frames.
    assert sum(result.fault_counts.values()) > 0


def test_f_concurrent_soak_stays_live():
    """The whole fault budget down at once (f=2 of 9) must not cost
    liveness: n - f servers remain reachable (Lemma 6)."""
    result = run(run_soak(
        algorithm="bsr", f=2, schedule="f-concurrent", ops=12,
        read_ratio=0.5, seed=13, start=0.3, period=0.6, timeout=12.0,
    ))
    assert result.errors == [], f"liveness failures: {result.errors}"
    assert result.safety.ok, str(result.safety)
    # Both cycles really crashed two servers simultaneously.
    concurrent = [e for e in result.nemesis_events
                  if "crash" in e and "," in e]
    assert len(concurrent) == 2


def test_exceed_f_soak_loses_liveness_but_not_safety():
    """f + 1 servers down is past the budget: operations inside the
    window must time out (the negative test), yet every operation that
    does complete still satisfies Definition 1."""
    result = run(run_soak(
        algorithm="bsr", f=1, schedule="exceed-f", ops=10, read_ratio=0.5,
        seed=17, start=0.3, period=1.0, timeout=1.2,
    ))
    assert result.errors, "expected timeouts while f+1 servers were down"
    assert not result.ok
    assert result.safety.ok, str(result.safety)  # safety never bends
    assert any("crash" in e for e in result.nemesis_events)


@pytest.mark.soak
@pytest.mark.parametrize("algorithm", ["bsr", "bcsr"])
@pytest.mark.parametrize("schedule", ["crash-restart", "rolling-partition",
                                      "flaky-links", "combo"])
def test_long_soak(algorithm, schedule):
    """Extended soak, kept out of tier-1 (run via ``make chaos-soak``)."""
    result = run(run_soak(
        algorithm=algorithm, f=1, schedule=schedule, ops=80, read_ratio=0.6,
        seed=11, start=0.5, period=0.8, timeout=20.0,
    ))
    assert result.errors == [], f"liveness failures: {result.errors}"
    assert result.safety.ok, str(result.safety)
    assert result.ops_completed >= 80
