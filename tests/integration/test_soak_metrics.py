"""Soak results expose live histograms, not just the post-hoc trace."""

import asyncio

from repro.chaos import run_soak


def run(coro):
    return asyncio.run(coro)


def test_soak_result_carries_live_histograms():
    result = run(run_soak(
        algorithm="bsr", f=1, schedule="none", ops=12, read_ratio=0.5,
        seed=5, start=0.2, period=0.4, timeout=10.0,
    ))
    assert result.errors == []

    # The raw registry snapshot rode back with the result.
    histogram_names = {h["name"] for h in result.metrics["histograms"]}
    assert "client_op_seconds" in histogram_names
    assert "client_phase_seconds" in histogram_names
    assert "node_phase_seconds" in histogram_names

    # latency_summary() keeps its Dict[op, OperationSummary] shape but the
    # latencies now come from the histograms: counts match the trace.
    summary = result.latency_summary()
    assert summary["read"].latency.count == len(result.trace.reads())
    assert summary["write"].latency.count == len(
        result.trace.writes(completed_only=True))
    assert summary["read"].latency.p99 > 0
    assert summary["write"].latency.p99 > 0

    # Per-phase breakdown distinguishes the paper's rounds.
    phases = result.phase_summary()
    assert set(phases["write"]) == {"get-tag", "put-data"}
    assert set(phases["read"]) == {"get-data"}
    writes = len(result.trace.writes(completed_only=True))
    assert phases["write"]["get-tag"].count == writes
    assert phases["write"]["put-data"].count == writes

    # A fault-free soak finishes every operation cleanly.
    outcomes = result.outcome_counts()
    assert outcomes["write"] == {"ok": writes}
    assert sum(outcomes["read"].values()) == 12 - writes


def test_soak_outcomes_count_retries_under_chaos():
    result = run(run_soak(
        algorithm="bsr", f=1, schedule="crash-restart", ops=10,
        read_ratio=0.5, seed=21, start=0.2, period=0.4, timeout=10.0,
    ))
    assert result.errors == []
    outcomes = result.outcome_counts()
    # Every completed operation shows up under a known outcome label;
    # whether a crash lands mid-operation (-> "retried") is timing
    # dependent, so only the totals are asserted.
    finished = sum(count for per_op in outcomes.values()
                   for count in per_op.values())
    assert finished == result.ops_completed
    labels = {label for per_op in outcomes.values() for label in per_op}
    assert labels <= {"ok", "retried", "throttled"}
    # The crashes really severed connections: clients had to heal.
    reconnects = sum(stats.get("reconnects", 0)
                     for stats in result.client_stats.values())
    assert reconnects > 0


def test_soak_timeseries_sidecar_appends_windowed_snapshots(tmp_path):
    from repro.obs import read_snapshot_log

    path = str(tmp_path / "soak-series.jsonl")
    result = run(run_soak(
        algorithm="bsr", f=1, schedule="none", ops=10, read_ratio=0.5,
        seed=7, start=0.2, period=0.4, timeout=10.0,
        timeseries_path=path, timeseries_interval=0.2,
    ))
    assert result.errors == []
    records = read_snapshot_log(path, windows=True)
    assert records, "the soak appended no snapshots"
    assert all(r["schedule"] == "none" for r in records)
    # At least one window saw traffic, and windowed entries summarize
    # to percentiles at read time.
    summaries = [entry["summary"]
                 for record in records
                 for entry in record.get("window", {}).get("histograms", ())
                 if entry["name"] == "client_op_seconds"]
    assert summaries
    assert all(s["count"] > 0 for s in summaries)
    assert any(s["p99"] > 0 for s in summaries)
    # Windows partition the run: their counts sum to the ops completed.
    total = sum(s["count"] for s in summaries)
    assert total == result.ops_completed
