"""Cross-cutting observability: event log + trace + stats agree."""

import pytest

from repro import RegisterSystem
from repro.byzantine.scenarios import theorem3_regularity_violation
from repro.sim.delays import ConstantDelay
from repro.sim.eventlog import EventLog


def test_eventlog_shows_theorem3_scatter():
    """The adversarial schedule is visible in the captured message flow."""
    from repro.byzantine import scenarios as sc
    from repro.core.messages import PutData
    from repro.sim.delays import RuleBasedDelays
    from repro.types import server_id, writer_id

    delays = RuleBasedDelays(fallback=ConstantDelay(0.1))
    for i in range(1, 5):
        writer, fast_server = writer_id(i), server_id(i)

        def match(src, dst, msg, writer=writer, fast_server=fast_server):
            return (isinstance(msg, PutData) and src == writer
                    and dst != fast_server)

        delays.hold(match)
    system = RegisterSystem("bsr", f=1, n=5, num_writers=5, num_readers=1,
                            seed=0, delay_model=delays, initial_value=b"v0")
    log = EventLog.attach(system.sim)
    system.write(b"v1", writer=0, at=0.0)
    for i in range(1, 5):
        system.write(f"v{i + 1}".encode(), writer=i, at=10.0)
    read = system.read(reader=0, at=20.0)
    system.run(release_held_at_end=False)

    # Every writer broadcast PUT-DATA to all five servers...
    assert log.count(kind="send", message_type="PutData") == 25
    # ...but the held copies were never delivered during the run window:
    # writer w001..w004's puts reached exactly one server each.
    for i in range(1, 5):
        delivered = log.count(kind="deliver", src=f"w{i:03d}",
                              message_type="PutData")
        assert delivered == 1
    assert read.value == b"v0"


def test_eventlog_counts_match_network_stats_per_type():
    system = RegisterSystem("bcsr", f=1, seed=2, delay_model=ConstantDelay(1.0))
    log = EventLog.attach(system.sim)
    system.write(b"counted", at=0.0)
    system.read(at=10.0)
    system.run()
    stats = system.network_stats()
    for message_type, count in stats.per_type_count.items():
        assert log.count(kind="send", message_type=message_type) == count


def test_eventlog_namespaced_messages():
    system = RegisterSystem("bsr", f=1, seed=3, namespaced=True,
                            delay_model=ConstantDelay(1.0))
    log = EventLog.attach(system.sim)
    system.write(b"n", at=0.0, register="inventory")
    system.run()
    sends = log.filter(kind="send", message_type="NamespacedMessage")
    assert sends
    assert "register='inventory'" in log.render(message_type="NamespacedMessage")


def test_trace_and_handles_agree():
    system = RegisterSystem("bsr", f=1, seed=4, delay_model=ConstantDelay(1.0))
    handles = [system.write(b"a", at=0.0), system.read(at=10.0)]
    trace = system.run()
    assert len(trace.completed) == len(handles) == 2
    for handle in handles:
        assert handle.record in trace.operations
        assert handle.latency == handle.record.latency
