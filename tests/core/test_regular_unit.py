"""Unit tests for the regular-register extensions (Section III-C)."""

import pytest

from repro.core.bsr import BSRReaderState
from repro.core.messages import (
    HistoryReply,
    PutData,
    QueryHistory,
    QueryTagHistory,
    QueryValue,
    TagHistoryReply,
    ValueReply,
)
from repro.core.regular import (
    HistoryReadOperation,
    RegularBSRServer,
    TwoRoundReadOperation,
)
from repro.core.tags import TAG_ZERO, Tag, TaggedValue

SERVERS = [f"s{i:03d}" for i in range(5)]
F = 1


def loaded_server(pid="s000"):
    server = RegularBSRServer(pid, initial_value=b"v0")
    server.handle("w000", PutData(op_id=1, tag=Tag(1, "w000"), payload=b"v1"))
    server.handle("w001", PutData(op_id=2, tag=Tag(2, "w001"), payload=b"v2"))
    return server


# -- server extensions --------------------------------------------------------

def test_query_history_returns_whole_list():
    server = loaded_server()
    [(_, reply)] = server.handle("r000", QueryHistory(op_id=5))
    assert isinstance(reply, HistoryReply)
    assert [pair.value for pair in reply.history] == [b"v0", b"v1", b"v2"]


def test_query_tag_history_returns_all_tags():
    server = loaded_server()
    [(_, reply)] = server.handle("r000", QueryTagHistory(op_id=5))
    assert reply.tags == (TAG_ZERO, Tag(1, "w000"), Tag(2, "w001"))


def test_query_value_known_tag():
    server = loaded_server()
    [(_, reply)] = server.handle("r000", QueryValue(op_id=5, tag=Tag(1, "w000")))
    assert isinstance(reply, ValueReply)
    assert reply.payload == b"v1"


def test_query_value_unknown_tag_returns_none_payload():
    server = loaded_server()
    [(_, reply)] = server.handle("r000", QueryValue(op_id=5, tag=Tag(9, "zz")))
    assert reply.payload is None


def test_regular_server_still_answers_plain_bsr():
    from repro.core.messages import QueryData
    server = loaded_server()
    [(_, reply)] = server.handle("r000", QueryData(op_id=5))
    assert reply.payload == b"v2"


# -- history reads ----------------------------------------------------------------

def history_reply(op, pairs):
    return HistoryReply(op_id=op.op_id, history=tuple(pairs))


def test_history_read_witnesses_across_histories():
    op = HistoryReadOperation("r000", SERVERS, F)
    op.start()
    shared = TaggedValue(Tag(1, "w000"), b"v1")
    # Each server has a different latest value but all share (1, v1).
    for i, sid in enumerate(SERVERS[:4]):
        unique = TaggedValue(Tag(2, f"w{i}"), f"x{i}".encode())
        op.on_reply(sid, history_reply(op, [shared, unique]))
    assert op.done
    assert op.result == b"v1"  # the only pair with >= f+1 witnesses


def test_history_read_prefers_highest_witnessed_pair():
    op = HistoryReadOperation("r000", SERVERS, F)
    op.start()
    old = TaggedValue(Tag(1, "w000"), b"old")
    new = TaggedValue(Tag(2, "w001"), b"new")
    for sid in SERVERS[:2]:
        op.on_reply(sid, history_reply(op, [old, new]))
    for sid in SERVERS[2:4]:
        op.on_reply(sid, history_reply(op, [old]))
    assert op.result == b"new"


def test_history_read_duplicate_pairs_in_one_history_count_once():
    op = HistoryReadOperation("r000", SERVERS, F)
    op.start()
    pair = TaggedValue(Tag(1, "w000"), b"dup")
    # One server repeating a pair must not fabricate a second witness.
    op.on_reply(SERVERS[0], history_reply(op, [pair, pair, pair]))
    for i, sid in enumerate(SERVERS[1:4]):
        op.on_reply(sid, history_reply(op, [TaggedValue(Tag(3, f"w{i}"),
                                                        f"u{i}".encode())]))
    assert op.done
    assert op.result == b""  # nothing reached f+1 witnesses


def test_history_read_ignores_junk_entries():
    op = HistoryReadOperation("r000", SERVERS, F)
    op.start()
    good = TaggedValue(Tag(1, "w000"), b"ok")
    op.on_reply(SERVERS[0], history_reply(op, ["junk", good]))
    op.on_reply(SERVERS[1], history_reply(op, [good]))
    op.on_reply(SERVERS[2], history_reply(op, []))
    op.on_reply(SERVERS[3], history_reply(op, []))
    assert op.result == b"ok"


# -- two-round reads -----------------------------------------------------------------

def tag_history(op, tags):
    return TagHistoryReply(op_id=op.op_id, tags=tuple(tags))


def test_two_round_read_happy_path():
    op = TwoRoundReadOperation("r000", SERVERS, F)
    round1 = op.start()
    assert all(isinstance(m, QueryTagHistory) for _, m in round1)
    target = Tag(2, "w001")
    for sid in SERVERS[:3]:
        out = op.on_reply(sid, tag_history(op, [TAG_ZERO, Tag(1, "w000"), target]))
    out = op.on_reply(SERVERS[3], tag_history(op, [TAG_ZERO, Tag(1, "w000"), target]))
    # Round 2 queries the highest tag with >= 2f+1 witnesses.
    assert all(isinstance(m, QueryValue) and m.tag == target for _, m in out)
    assert op.rounds == 2
    op.on_reply(SERVERS[0], ValueReply(op_id=op.op_id, tag=target, payload=b"v2"))
    assert not op.done  # one matching reply is not enough
    op.on_reply(SERVERS[1], ValueReply(op_id=op.op_id, tag=target, payload=b"v2"))
    assert op.done and op.result == b"v2"


def test_two_round_read_needs_2f_plus_1_tag_witnesses():
    op = TwoRoundReadOperation("r000", SERVERS, F)
    op.start()
    rare = Tag(7, "wx")  # appears at only 2 servers (< 2f+1 = 3)
    op.on_reply(SERVERS[0], tag_history(op, [TAG_ZERO, rare]))
    op.on_reply(SERVERS[1], tag_history(op, [TAG_ZERO, rare]))
    op.on_reply(SERVERS[2], tag_history(op, [TAG_ZERO]))
    out = op.on_reply(SERVERS[3], tag_history(op, [TAG_ZERO]))
    # Falls back to TAG_ZERO, which every correct server can serve.
    assert all(m.tag == TAG_ZERO for _, m in out)


def test_two_round_read_mismatched_values_do_not_complete():
    op = TwoRoundReadOperation("r000", SERVERS, F)
    op.start()
    target = Tag(1, "w000")
    for sid in SERVERS[:4]:
        op.on_reply(sid, tag_history(op, [TAG_ZERO, target]))
    op.on_reply(SERVERS[0], ValueReply(op_id=op.op_id, tag=target, payload=b"a"))
    op.on_reply(SERVERS[1], ValueReply(op_id=op.op_id, tag=target, payload=b"b"))
    assert not op.done
    op.on_reply(SERVERS[2], ValueReply(op_id=op.op_id, tag=target, payload=b"a"))
    assert op.done and op.result == b"a"


def test_two_round_read_ignores_none_payloads():
    op = TwoRoundReadOperation("r000", SERVERS, F)
    op.start()
    target = Tag(1, "w000")
    for sid in SERVERS[:4]:
        op.on_reply(sid, tag_history(op, [TAG_ZERO, target]))
    op.on_reply(SERVERS[0], ValueReply(op_id=op.op_id, tag=target, payload=None))
    op.on_reply(SERVERS[1], ValueReply(op_id=op.op_id, tag=target, payload=b"v"))
    op.on_reply(SERVERS[2], ValueReply(op_id=op.op_id, tag=target, payload=b"v"))
    assert op.done and op.result == b"v"


def test_two_round_read_duplicate_tags_per_server_count_once():
    op = TwoRoundReadOperation("r000", SERVERS, F)
    op.start()
    inflated = Tag(9, "byz")
    op.on_reply(SERVERS[0], tag_history(op, [inflated] * 10 + [TAG_ZERO]))
    for sid in SERVERS[1:4]:
        out = op.on_reply(sid, tag_history(op, [TAG_ZERO]))
    # inflated has only 1 witness; TAG_ZERO is the target.
    assert all(m.tag == TAG_ZERO for _, m in out)


def test_reader_state_shared_with_two_round_reads():
    state = BSRReaderState(b"v0")
    op = TwoRoundReadOperation("r000", SERVERS, F, reader_state=state)
    op.start()
    target = Tag(4, "w002")
    for sid in SERVERS[:4]:
        op.on_reply(sid, tag_history(op, [TAG_ZERO, target]))
    for sid in SERVERS[:2]:
        op.on_reply(sid, ValueReply(op_id=op.op_id, tag=target, payload=b"current"))
    assert state.local == TaggedValue(target, b"current")
