"""Unit tests for protocol messages and wire-size accounting."""

from repro.core.messages import (
    DataReply,
    HEADER_BYTES,
    HistoryReply,
    PushData,
    PutAck,
    PutData,
    QueryData,
    QueryHistory,
    QueryTag,
    QueryTagHistory,
    QueryValue,
    RBEcho,
    RBReady,
    RBSend,
    TAG_BYTES,
    TagHistoryReply,
    TagReply,
    ValueReply,
    payload_size,
)
from repro.core.tags import Tag, TaggedValue
from repro.erasure.striping import CodedElement


def test_payload_size_bytes():
    assert payload_size(b"12345") == 5
    assert payload_size(None) == 0
    assert payload_size("abc") == 3


def test_payload_size_coded_element():
    # data + 4-byte index + 4-byte length: the actual encoded length.
    assert payload_size(CodedElement(3, b"12345678")) == 16
    assert payload_size(CodedElement(3, b"12345678")) == \
        CodedElement(3, b"12345678").wire_size()


def test_payload_size_tagged_value():
    pair = TaggedValue(Tag(1, "w"), b"123")
    assert payload_size(pair) == TAG_BYTES + 3


def test_payload_size_tagged_coded_element_nests():
    pair = TaggedValue(Tag(2, "w"), CodedElement(1, b"abcdef"))
    assert payload_size(pair) == TAG_BYTES + 8 + 6
    # No repr-based charging for protocol payload types.
    assert payload_size(pair) != len(repr(pair))


def test_query_messages_are_headers_only():
    for message in (QueryTag(op_id=1), QueryData(op_id=1),
                    QueryHistory(op_id=1), QueryTagHistory(op_id=1)):
        assert message.wire_size() == HEADER_BYTES


def test_tag_reply_size():
    assert TagReply(op_id=1, tag=Tag(1, "w")).wire_size() == HEADER_BYTES + TAG_BYTES


def test_put_data_size_scales_with_value():
    small = PutData(op_id=1, tag=Tag(1, "w"), payload=b"x")
    large = PutData(op_id=1, tag=Tag(1, "w"), payload=b"x" * 1000)
    assert large.wire_size() - small.wire_size() == 999


def test_data_reply_with_coded_element_is_smaller_than_full_value():
    value = b"v" * 1000
    full = DataReply(op_id=1, tag=Tag(1, "w"), payload=value)
    coded = DataReply(op_id=1, tag=Tag(1, "w"),
                      payload=CodedElement(0, value[:100]))
    assert coded.wire_size() < full.wire_size()


def test_history_reply_size_sums_entries():
    history = (
        TaggedValue(Tag(0, ""), b"aa"),
        TaggedValue(Tag(1, "w"), b"bbbb"),
    )
    reply = HistoryReply(op_id=1, history=history)
    assert reply.wire_size() == HEADER_BYTES + 2 * TAG_BYTES + 2 + 4


def test_tag_history_reply_size():
    reply = TagHistoryReply(op_id=1, tags=(Tag(0, ""), Tag(1, "w"), Tag(2, "w")))
    assert reply.wire_size() == HEADER_BYTES + 3 * TAG_BYTES


def test_value_reply_with_none_payload():
    reply = ValueReply(op_id=1, tag=Tag(1, "w"), payload=None)
    assert reply.wire_size() == HEADER_BYTES + TAG_BYTES


def test_rb_messages_carry_source():
    for cls in (RBSend, RBEcho, RBReady):
        message = cls(op_id=1, tag=Tag(1, "w"), payload=b"v", source="w000")
        assert message.source == "w000"
        assert message.wire_size() >= HEADER_BYTES + TAG_BYTES + 1


def test_messages_are_frozen():
    import dataclasses
    import pytest
    message = QueryTag(op_id=1)
    with pytest.raises(dataclasses.FrozenInstanceError):
        message.op_id = 2


def test_ack_and_push():
    assert PutAck(op_id=2, tag=Tag(1, "w")).wire_size() == HEADER_BYTES + TAG_BYTES
    push = PushData(op_id=2, tag=Tag(1, "w"), payload=b"12")
    assert push.wire_size() == HEADER_BYTES + TAG_BYTES + 2
