"""Tests for server snapshot/restore."""

import pytest

from repro.baselines.abd import ABDServer
from repro.core.bcsr import BCSRServer, make_codec
from repro.core.bsr import BSRServer
from repro.core.messages import PutData, QueryData, QueryTag
from repro.core.persistence import restore_server, snapshot_server
from repro.core.regular import RegularBSRServer
from repro.core.tags import TAG_ZERO, Tag
from repro.errors import ProtocolError


def populated(cls):
    server = cls("s007", initial_value=b"v0")
    server.handle("w0", PutData(op_id=1, tag=Tag(1, "w0"), payload=b"first"))
    server.handle("w1", PutData(op_id=2, tag=Tag(2, "w1"), payload=b"second"))
    return server


@pytest.mark.parametrize("cls", [BSRServer, RegularBSRServer, ABDServer])
def test_roundtrip_replicated_servers(cls):
    original = populated(cls)
    restored = restore_server(snapshot_server(original))
    assert type(restored) is cls
    assert restored.server_id == "s007"
    assert restored.history == original.history
    # The restored server answers queries identically.
    [(_, a)] = original.handle("r", QueryData(op_id=9))
    [(_, b)] = restored.handle("r", QueryData(op_id=9))
    assert (a.tag, a.payload) == (b.tag, b.payload)


def test_roundtrip_bcsr_server():
    codec = make_codec(6, 1)
    original = BCSRServer("s002", 2, codec, initial_value=b"seed")
    element = codec.encode(b"coded-value")[2]
    original.handle("w", PutData(op_id=1, tag=Tag(1, "w"), payload=element))
    restored = restore_server(snapshot_server(original))
    assert isinstance(restored, BCSRServer)
    assert restored.index == 2
    assert restored.history == original.history
    assert (restored.codec.n, restored.codec.k) == (6, 1)


def test_bcsr_restore_with_shared_codec():
    codec = make_codec(6, 1)
    original = BCSRServer("s000", 0, codec)
    restored = restore_server(snapshot_server(original), codec=codec)
    assert restored.codec is codec


def test_max_history_survives_snapshot():
    server = BSRServer("s000", max_history=3)
    for i in range(1, 8):
        server.handle("w", PutData(op_id=i, tag=Tag(i, "w"),
                                   payload=f"v{i}".encode()))
    restored = restore_server(snapshot_server(server))
    assert restored.max_history == 3
    assert len(restored.history) == 3
    # Pruning still applies after restore.
    restored.handle("w", PutData(op_id=99, tag=Tag(99, "w"), payload=b"z"))
    assert len(restored.history) == 3


def test_restored_server_continues_protocol():
    """Crash-recovery: a restored server picks up where it left off."""
    server = populated(BSRServer)
    restored = restore_server(snapshot_server(server))
    [(_, tag_reply)] = restored.handle("w9", QueryTag(op_id=50))
    assert tag_reply.tag == Tag(2, "w1")
    restored.handle("w9", PutData(op_id=51, tag=Tag(3, "w9"), payload=b"post"))
    assert restored.latest.value == b"post"


def test_snapshot_rejects_unknown_types():
    class Impostor:
        server_id = "x"
        history = []

    with pytest.raises(ProtocolError):
        snapshot_server(Impostor())


def test_restore_rejects_garbage():
    with pytest.raises(ProtocolError):
        restore_server(b"not json")
    with pytest.raises(ProtocolError):
        restore_server(b'{"type": "BSRServer", "server_id": "s", "history": []}')


def test_stale_snapshot_is_just_a_slow_server():
    """Restoring an old checkpoint yields an honestly-stale replica."""
    server = populated(BSRServer)
    early_snapshot = snapshot_server(BSRServer("s007", initial_value=b"v0"))
    stale = restore_server(early_snapshot)
    assert stale.max_tag == TAG_ZERO  # lost the two writes: merely slow
    # The protocol treats it like any other laggard: a new put catches it up.
    stale.handle("w", PutData(op_id=9, tag=Tag(2, "w1"), payload=b"second"))
    assert stale.latest.value == b"second"
