"""Unit tests for the operation base class and reply collector."""

import pytest

from repro.core.messages import QueryTag, TagReply
from repro.core.operation import ClientOperation, ReplyCollector, next_op_id
from repro.core.tags import Tag
from repro.errors import ProtocolError


class NoopOperation(ClientOperation):
    kind = "read"

    def start(self):
        return self.broadcast(QueryTag(op_id=self.op_id))

    def on_reply(self, sender, message):
        self._complete("done")
        return []


SERVERS = ["s000", "s001", "s002", "s003", "s004"]


def test_op_ids_are_unique_and_increasing():
    first, second = next_op_id(), next_op_id()
    assert second > first


def test_operation_requires_more_than_f_servers():
    with pytest.raises(ValueError):
        NoopOperation("c", ["s0"], f=1)
    with pytest.raises(ValueError):
        NoopOperation("c", SERVERS, f=-1)


def test_broadcast_targets_every_server():
    op = NoopOperation("c", SERVERS, f=1)
    envelopes = op.start()
    assert [dst for dst, _ in envelopes] == SERVERS
    assert all(msg.op_id == op.op_id for _, msg in envelopes)


def test_result_unavailable_until_done():
    op = NoopOperation("c", SERVERS, f=1)
    with pytest.raises(ProtocolError):
        _ = op.result
    op.on_reply("s000", TagReply(op_id=op.op_id, tag=Tag(0, "")))
    assert op.done and op.result == "done"


def test_accepts_matches_op_id():
    op = NoopOperation("c", SERVERS, f=1)
    assert op.accepts(TagReply(op_id=op.op_id, tag=Tag(0, "")))
    assert not op.accepts(TagReply(op_id=op.op_id + 999, tag=Tag(0, "")))
    assert not op.accepts("garbage")


def test_quorum_property():
    op = NoopOperation("c", SERVERS, f=2)
    assert op.quorum == 3


def test_collector_counts_each_server_once():
    collector = ReplyCollector(SERVERS)
    assert collector.add("s000", "a")
    assert not collector.add("s000", "b")  # duplicate from same server
    assert len(collector) == 1
    assert collector.replies == {"s000": "a"}  # first reply wins


def test_collector_rejects_unknown_senders():
    collector = ReplyCollector(SERVERS)
    assert not collector.add("intruder", "x")
    assert len(collector) == 0


def test_collector_contains_and_values():
    collector = ReplyCollector(SERVERS)
    collector.add("s001", 11)
    collector.add("s002", 22)
    assert "s001" in collector and "s003" not in collector
    assert sorted(collector.values()) == [11, 22]
