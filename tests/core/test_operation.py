"""Unit tests for the operation base class and reply collector."""

import os
import subprocess
import sys

import pytest

from repro.core.messages import QueryTag, TagReply
from repro.core.operation import ClientOperation, ReplyCollector, next_op_id
from repro.core.tags import Tag
from repro.errors import ProtocolError


class NoopOperation(ClientOperation):
    kind = "read"

    def start(self):
        return self.broadcast(QueryTag(op_id=self.op_id))

    def on_reply(self, sender, message):
        self._complete("done")
        return []


SERVERS = ["s000", "s001", "s002", "s003", "s004"]


def test_op_ids_are_unique_and_increasing():
    first, second = next_op_id(), next_op_id()
    assert second > first


_CHILD_SNIPPET = """
import sys
sys.path.insert(0, {src!r})
import os
from repro.core.operation import next_op_id
ids = [next_op_id() for _ in range(5)]
print(os.getpid(), *ids)
"""


def _spawn_op_id_child():
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    out = subprocess.run(
        [sys.executable, "-c", _CHILD_SNIPPET.format(src=os.path.abspath(src))],
        capture_output=True, text=True, check=True,
    ).stdout.split()
    return int(out[0]), [int(x) for x in out[1:]]


def test_op_ids_disjoint_across_processes():
    # Regression: a bare count(1) numbered operations 1, 2, 3, ... in every
    # process, so two load-rig workers (or a --procs cluster and its client)
    # minted colliding op_ids and the flight recorder stitched records from
    # different operations into one bogus trace.
    pid_a, ids_a = _spawn_op_id_child()
    pid_b, ids_b = _spawn_op_id_child()
    assert pid_a != pid_b
    assert not set(ids_a) & set(ids_b)
    # The pid lives in the high bits: each process's range is disjoint.
    assert (ids_a[0] >> 40) == (pid_a & 0xFFFFF)
    assert (ids_b[0] >> 40) == (pid_b & 0xFFFFF)
    # ... and disjoint from this (parent) process's range too.
    assert (next_op_id() >> 40) == (os.getpid() & 0xFFFFF)


def test_op_id_offset_preserves_sampling_alignment():
    # The tracer samples with op_id % sample; the per-process offset is a
    # multiple of every power-of-two sample rate, so low-bit counting is
    # unchanged: the k-th op in any process has the same residue as before.
    _, ids = _spawn_op_id_child()
    for sample in (2, 16, 64):
        assert [i % sample for i in ids] == [(k + 1) % sample for k in range(5)]


def test_operation_requires_more_than_f_servers():
    with pytest.raises(ValueError):
        NoopOperation("c", ["s0"], f=1)
    with pytest.raises(ValueError):
        NoopOperation("c", SERVERS, f=-1)


def test_broadcast_targets_every_server():
    op = NoopOperation("c", SERVERS, f=1)
    envelopes = op.start()
    assert [dst for dst, _ in envelopes] == SERVERS
    assert all(msg.op_id == op.op_id for _, msg in envelopes)


def test_result_unavailable_until_done():
    op = NoopOperation("c", SERVERS, f=1)
    with pytest.raises(ProtocolError):
        _ = op.result
    op.on_reply("s000", TagReply(op_id=op.op_id, tag=Tag(0, "")))
    assert op.done and op.result == "done"


def test_accepts_matches_op_id():
    op = NoopOperation("c", SERVERS, f=1)
    assert op.accepts(TagReply(op_id=op.op_id, tag=Tag(0, "")))
    assert not op.accepts(TagReply(op_id=op.op_id + 999, tag=Tag(0, "")))
    assert not op.accepts("garbage")


def test_quorum_property():
    op = NoopOperation("c", SERVERS, f=2)
    assert op.quorum == 3


def test_collector_counts_each_server_once():
    collector = ReplyCollector(SERVERS)
    assert collector.add("s000", "a")
    assert not collector.add("s000", "b")  # duplicate from same server
    assert len(collector) == 1
    assert collector.replies == {"s000": "a"}  # first reply wins


def test_collector_rejects_unknown_senders():
    collector = ReplyCollector(SERVERS)
    assert not collector.add("intruder", "x")
    assert len(collector) == 0


def test_collector_contains_and_values():
    collector = ReplyCollector(SERVERS)
    collector.add("s001", 11)
    collector.add("s002", 22)
    assert "s001" in collector and "s003" not in collector
    assert sorted(collector.values()) == [11, 22]
