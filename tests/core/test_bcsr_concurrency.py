"""BCSR's multi-writer boundary (paper footnote 2).

BCSR is stated for a single writer but "can tolerate multiple writers as
long as writes are not concurrent".  These tests pin both sides:

* sequential writes from different writers are safe (the footnote's
  positive claim);
* under write concurrency a read may legitimately fall back to ``v0``
  (clause (ii) of Definition 1 -- the read is concurrent with a write),
  which is why the paper does not claim MWMR for the coded register.
"""

import pytest

from repro import RegisterSystem
from repro.consistency import check_safety
from repro.core.messages import PutData
from repro.sim.delays import ConstantDelay, RuleBasedDelays, UniformDelay
from repro.types import server_id, writer_id


def test_sequential_multi_writer_bcsr_is_safe():
    system = RegisterSystem("bcsr", f=1, seed=3, num_writers=3,
                            initial_value=b"v0",
                            delay_model=UniformDelay(0.3, 1.0))
    for i in range(3):
        system.write(f"writer-{i}".encode(), writer=i, at=i * 20.0)
    read = system.read(at=80.0)
    trace = system.run()
    assert read.value == b"writer-2"
    check_safety(trace, initial_value=b"v0").raise_if_violated()


def test_concurrent_writes_still_decode_when_one_dominates():
    """Concurrent writes whose puts fully propagate: highest tag wins."""
    system = RegisterSystem("bcsr", f=1, seed=4, num_writers=2,
                            initial_value=b"v0",
                            delay_model=UniformDelay(0.3, 1.0))
    system.write(b"racer-a", writer=0, at=0.0)
    system.write(b"racer-b", writer=1, at=0.0)
    read = system.read(at=50.0)
    trace = system.run()
    assert read.value in (b"racer-a", b"racer-b")
    check_safety(trace, initial_value=b"v0").raise_if_violated()


def test_scattered_concurrent_writes_degrade_to_v0_but_stay_safe():
    """The coded analogue of Theorem 3's scatter: decode fails, v0 returns.

    Three concurrent writes each land on a disjoint sliver of servers, so
    the reader's elements mix three codewords and no consistent decode
    exists.  The read returns ``v0`` -- allowed by clause (ii) because it
    is concurrent with the unfinished writes -- which is exactly why BCSR
    is stated as SWMR, not MWMR.
    """
    delays = RuleBasedDelays(fallback=ConstantDelay(0.1))
    for i in range(3):
        writer = writer_id(i)
        fast = {server_id(2 * i), server_id(2 * i + 1)}

        def match(src, dst, msg, writer=writer, fast=fast):
            return isinstance(msg, PutData) and src == writer and dst not in fast

        delays.hold(match)
    system = RegisterSystem("bcsr", f=1, n=6, num_writers=3, num_readers=1,
                            seed=5, initial_value=b"v0", delay_model=delays)
    for i in range(3):
        system.write(f"concurrent-{i}".encode(), writer=i, at=0.0)
    read = system.read(at=10.0)
    trace = system.run()
    assert read.done
    assert read.value == b"v0"  # decode impossible; Fig 5's fallback
    check_safety(trace, initial_value=b"v0").raise_if_violated()
