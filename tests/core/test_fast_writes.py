"""Tests for the one-round SWMR fast write (extension)."""

import pytest

from repro.consistency import check_safety
from repro.core.bcsr import (
    BCSRFastWriteOperation,
    BCSRReadOperation,
    BCSRServer,
    WriterSequence,
    make_codec,
)
from repro.core.messages import PutAck, PutData
from repro.core.processes import ClientProcess, ServerProcess
from repro.core.tags import Tag
from repro.sim.delays import ConstantDelay, UniformDelay
from repro.sim.simulator import Simulator
from repro.types import server_id

N, F = 6, 1
SERVER_IDS = [server_id(i) for i in range(N)]


@pytest.fixture
def codec():
    return make_codec(N, F)


# -- WriterSequence ------------------------------------------------------------

def test_sequence_mints_increasing_tags():
    sequence = WriterSequence("w000")
    first, second = sequence.next_tag(), sequence.next_tag()
    assert first == Tag(1, "w000") and second == Tag(2, "w000")
    assert sequence.current == 2


def test_sequence_observe_for_recovery():
    sequence = WriterSequence("w000")
    sequence.observe(Tag(9, "w000"))
    assert sequence.next_tag() == Tag(10, "w000")
    sequence.observe(Tag(3, "w000"))  # older knowledge never regresses
    assert sequence.next_tag() == Tag(11, "w000")


def test_sequence_ownership_enforced(codec):
    with pytest.raises(ValueError):
        BCSRFastWriteOperation("w000", SERVER_IDS, F, b"v",
                               WriterSequence("w001"), codec=codec)


# -- operation unit tests -----------------------------------------------------------

def test_fast_write_is_one_round(codec):
    sequence = WriterSequence("w000")
    op = BCSRFastWriteOperation("w000", SERVER_IDS, F, b"fast", sequence,
                                codec=codec)
    envelopes = op.start()
    assert op.rounds == 1
    assert len(envelopes) == N
    assert all(isinstance(m, PutData) and m.tag == Tag(1, "w000")
               for _, m in envelopes)
    for sid in SERVER_IDS[: N - F]:
        op.on_reply(sid, PutAck(op_id=op.op_id, tag=Tag(1, "w000")))
    assert op.done and op.result == Tag(1, "w000")


def test_fast_write_ignores_foreign_acks(codec):
    sequence = WriterSequence("w000")
    op = BCSRFastWriteOperation("w000", SERVER_IDS, F, b"v", sequence,
                                codec=codec)
    op.start()
    for sid in SERVER_IDS[: N - F]:
        op.on_reply(sid, PutAck(op_id=op.op_id, tag=Tag(99, "zz")))
    assert not op.done


# -- end-to-end -------------------------------------------------------------------

def run_fast_write_system(num_writes=4, delay=None):
    sim = Simulator(seed=9, delay_model=delay or UniformDelay(0.3, 1.0))
    codec = make_codec(N, F)
    servers = {}
    for i, pid in enumerate(SERVER_IDS):
        protocol = BCSRServer(pid, i, codec, initial_value=b"v0")
        servers[pid] = protocol
        sim.add_process(ServerProcess(pid, protocol))
    writer = sim.add_process(ClientProcess("w000"))
    reader = sim.add_process(ClientProcess("r000"))
    sequence = WriterSequence("w000")
    for i in range(num_writes):
        writer.submit(i * 10.0, lambda i=i: BCSRFastWriteOperation(
            "w000", SERVER_IDS, F, f"fast-{i}".encode(), sequence, codec=codec))
    reader.submit(num_writes * 10.0 + 10.0, lambda: BCSRReadOperation(
        "r000", SERVER_IDS, F, codec=codec, initial_value=b"v0"))
    sim.run()
    return sim, writer, reader


def test_fast_writes_end_to_end():
    sim, writer, reader = run_fast_write_system()
    assert len(writer.completions) == 4
    tags = [op.result for op, _ in writer.completions]
    assert [tag.num for tag in tags] == [1, 2, 3, 4]
    (read_op, _) = reader.completions[0]
    assert read_op.result == b"fast-3"
    check_safety(sim.trace, initial_value=b"v0").raise_if_violated()


def test_fast_write_latency_is_one_round_trip():
    sim, writer, _ = run_fast_write_system(num_writes=1,
                                           delay=ConstantDelay(1.0))
    (_, record) = writer.completions[0]
    assert record.latency == pytest.approx(2.0)  # vs 4.0 for two phases


def test_recovered_writer_resumes_after_observing():
    """Crash-recovery: a fresh sequence seeded via observe() stays safe."""
    sim, writer, _ = run_fast_write_system(num_writes=2)
    last_tag = writer.completions[-1][0].result

    recovered = WriterSequence("w000")
    recovered.observe(last_tag)   # e.g. learned via a get-tag round
    assert recovered.next_tag().num == last_tag.num + 1
