"""Tests for the sim adapters: ClientProcess queueing and crash handling."""

import pytest

from repro import RegisterSystem
from repro.core.bsr import BSRServer, BSRWriteOperation
from repro.core.processes import ClientProcess, ServerProcess
from repro.sim.delays import ConstantDelay
from repro.sim.simulator import Simulator
from repro.types import server_id

N, F = 5, 1
SERVER_IDS = [server_id(i) for i in range(N)]


def make_sim():
    sim = Simulator(seed=1, delay_model=ConstantDelay(1.0))
    for pid in SERVER_IDS:
        sim.add_process(ServerProcess(pid, BSRServer(pid)))
    return sim


def write_factory(value):
    return lambda: BSRWriteOperation("w000", SERVER_IDS, F, value)


def test_single_operation_completes():
    sim = make_sim()
    client = sim.add_process(ClientProcess("w000"))
    client.submit(0.0, write_factory(b"v1"))
    sim.run()
    assert len(client.completions) == 1
    operation, record = client.completions[0]
    assert operation.done and record.complete


def test_busy_flag_and_idle_detection():
    sim = make_sim()
    client = sim.add_process(ClientProcess("w000"))
    assert client.idle_with_empty_queue
    client.submit(0.0, write_factory(b"v1"))
    sim.run()
    assert client.idle_with_empty_queue
    assert not client.busy


def test_operations_are_serialized_per_client():
    """Two ops submitted for the same instant run one after the other."""
    sim = make_sim()
    client = sim.add_process(ClientProcess("w000"))
    client.submit(0.0, write_factory(b"a"))
    client.submit(0.0, write_factory(b"b"))
    sim.run()
    assert len(client.completions) == 2
    (_, first), (_, second) = client.completions
    assert first.responded_at <= second.invoked_at
    assert first.value == b"a" and second.value == b"b"


def test_submission_order_preserved_for_same_time():
    sim = make_sim()
    client = sim.add_process(ClientProcess("w000"))
    for value in (b"1", b"2", b"3"):
        client.submit(5.0, write_factory(value))
    sim.run()
    assert [record.value for _, record in client.completions] == [b"1", b"2", b"3"]


def test_earlier_time_runs_first_regardless_of_submission_order():
    sim = make_sim()
    client = sim.add_process(ClientProcess("w000"))
    client.submit(10.0, write_factory(b"later"))
    client.submit(1.0, write_factory(b"earlier"))
    sim.run()
    assert [record.value for _, record in client.completions] == \
        [b"earlier", b"later"]


def test_submit_after_start_works():
    sim = make_sim()
    client = sim.add_process(ClientProcess("w000"))
    client.submit(0.0, write_factory(b"first"))
    sim.schedule(3.0, lambda: client.submit(3.0, write_factory(b"second")))
    sim.run()
    assert len(client.completions) == 2


def test_crashed_client_abandons_in_flight_and_queued_ops():
    sim = make_sim()
    client = sim.add_process(ClientProcess("w000"))
    client.submit(0.0, write_factory(b"doomed"))
    client.submit(0.0, write_factory(b"never-started"))
    sim.schedule(0.5, lambda: sim.crash("w000"))
    sim.run()
    assert client.completions == []


def test_on_complete_callback_invoked():
    sim = make_sim()
    client = sim.add_process(ClientProcess("w000"))
    seen = []
    client.submit(0.0, write_factory(b"x"),
                  on_complete=lambda op, rec: seen.append((op.result, rec.latency)))
    sim.run()
    assert len(seen) == 1
    assert seen[0][1] == pytest.approx(4.0)  # two round trips


def test_crashed_server_process_ignores_messages():
    sim = Simulator(seed=1, delay_model=ConstantDelay(1.0))
    protocol = BSRServer("s000")
    process = sim.add_process(ServerProcess("s000", protocol))
    process.crash()
    from repro.core.messages import PutData
    from repro.core.tags import Tag
    process.on_message("w", PutData(op_id=1, tag=Tag(1, "w"), payload=b"x"))
    assert len(protocol.history) == 1  # nothing stored


def test_stale_replies_from_previous_op_ignored():
    """Replies matching an old op_id must not confuse the next operation."""
    system = RegisterSystem("bsr", f=1, seed=5, delay_model=ConstantDelay(1.0))
    first = system.write(b"one", writer=0, at=0.0)
    second = system.write(b"two", writer=0, at=100.0)
    system.run()
    assert first.value.num == 1
    assert second.value.num == 2
