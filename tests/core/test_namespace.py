"""Tests for multi-register namespaces (simulated and unit level)."""

import pytest

from repro import RegisterSystem
from repro.consistency import check_safety
from repro.core.bsr import BSRServer
from repro.core.messages import DataReply, QueryData, QueryTag
from repro.core.namespace import (
    DEFAULT_REGISTER,
    NamespacedMessage,
    NamespacedOperation,
    NamespacedServer,
)
from repro.core.tags import TAG_ZERO
from repro.byzantine.behaviors import StaleBehavior
from repro.errors import ConfigurationError
from repro.sim.delays import ConstantDelay, UniformDelay


# -- unit level ---------------------------------------------------------------

def make_server(behavior=None):
    return NamespacedServer(
        "s000", factory=lambda name: BSRServer("s000", initial_value=name.encode()),
        behavior=behavior,
    )


def test_registers_created_on_demand():
    server = make_server()
    assert server.registers == {}
    server.handle("r0", NamespacedMessage("users", QueryData(op_id=1)))
    server.handle("r0", NamespacedMessage("carts", QueryData(op_id=2)))
    assert set(server.registers) == {"users", "carts"}


def test_factory_receives_register_name():
    server = make_server()
    [(_, reply)] = server.handle("r0", NamespacedMessage("users", QueryData(op_id=1)))
    assert reply.inner.payload == b"users"  # initial value derived from name


def test_replies_are_wrapped_with_same_register():
    server = make_server()
    [(dest, reply)] = server.handle("w0", NamespacedMessage("a", QueryTag(op_id=1)))
    assert dest == "w0"
    assert isinstance(reply, NamespacedMessage) and reply.register == "a"
    assert reply.inner.tag == TAG_ZERO


def test_bare_messages_are_ignored():
    server = make_server()
    assert server.handle("w0", QueryTag(op_id=1)) == []


def test_behavior_applies_per_register_server():
    server = make_server(behavior=StaleBehavior())
    from repro.core.messages import PutData
    from repro.core.tags import Tag
    server.handle("w0", NamespacedMessage("a", PutData(op_id=1, tag=Tag(1, "w"),
                                                       payload=b"fresh")))
    [(_, reply)] = server.handle("r0", NamespacedMessage("a", QueryData(op_id=2)))
    assert reply.inner.payload == b"a"  # stale behaviour: the initial value


def test_namespaced_message_exposes_op_id_and_size():
    message = NamespacedMessage("reg", QueryData(op_id=42))
    assert message.op_id == 42
    assert message.wire_size() > QueryData(op_id=42).wire_size()


def test_operation_wrapper_filters_foreign_registers():
    servers = [f"s{i:03d}" for i in range(5)]
    from repro.core.bsr import BSRReadOperation
    inner = BSRReadOperation("r000", servers, 1)
    op = NamespacedOperation("mine", inner)
    envelopes = op.start()
    assert all(isinstance(m, NamespacedMessage) and m.register == "mine"
               for _, m in envelopes)
    foreign = NamespacedMessage(
        "other", DataReply(op_id=inner.op_id, tag=TAG_ZERO, payload=b""))
    assert op.on_reply(servers[0], foreign) == []
    assert len(inner._replies) == 0


def test_storage_bytes_sums_registers():
    server = make_server()
    server.handle("r0", NamespacedMessage("aa", QueryData(op_id=1)))
    server.handle("r0", NamespacedMessage("bbb", QueryData(op_id=2)))
    assert server.storage_bytes() == len(b"aa") + len(b"bbb")


# -- integrated (simulated) --------------------------------------------------------

@pytest.mark.parametrize("algorithm", ["bsr", "bsr-history", "bsr-2round",
                                       "bcsr", "abd"])
def test_registers_are_independent(algorithm):
    system = RegisterSystem(algorithm, f=1, seed=4, namespaced=True,
                            delay_model=UniformDelay(0.3, 1.0))
    system.write(b"for-users", writer=0, at=0.0, register="users")
    system.write(b"for-carts", writer=1, at=0.0, register="carts")
    users = system.read(reader=0, at=20.0, register="users")
    carts = system.read(reader=0, at=20.0, register="carts")
    fresh = system.read(reader=1, at=20.0, register="untouched")
    system.run()
    assert users.value == b"for-users"
    assert carts.value == b"for-carts"
    assert fresh.value == b""  # untouched register still holds the initial


def test_default_register_used_when_unspecified():
    system = RegisterSystem("bsr", f=1, seed=1, namespaced=True,
                            delay_model=ConstantDelay(1.0))
    system.write(b"v", at=0.0)
    read = system.read(at=10.0)
    system.run()
    assert read.value == b"v"
    protocol = system.server_protocols["s000"]
    assert DEFAULT_REGISTER in protocol.registers


def test_namespaced_reads_stay_one_shot():
    system = RegisterSystem("bsr", f=1, seed=1, namespaced=True,
                            delay_model=ConstantDelay(1.0))
    system.write(b"v", at=0.0, register="k")
    read = system.read(at=10.0, register="k")
    system.run()
    assert read.rounds == 1
    assert read.latency == 2.0


def test_namespaced_byzantine_server_tolerated_on_every_register():
    system = RegisterSystem("bsr", f=1, seed=9, namespaced=True,
                            byzantine={1: "forge_tag"},
                            delay_model=UniformDelay(0.3, 1.0))
    handles = {}
    for i, name in enumerate(("a", "b", "c")):
        system.write(f"value-{name}".encode(), writer=i % 2, at=i * 10.0,
                     register=name)
        handles[name] = system.read(reader=0, at=40.0, register=name)
    trace = system.run()
    for name, handle in handles.items():
        assert handle.value == f"value-{name}".encode()


def test_namespaced_tags_are_per_register():
    system = RegisterSystem("bsr", f=1, seed=2, namespaced=True,
                            delay_model=ConstantDelay(1.0))
    first = system.write(b"x", writer=0, at=0.0, register="a")
    second = system.write(b"y", writer=0, at=10.0, register="b")
    system.run()
    # Each register starts from TAG_ZERO: both writes get tag number 1.
    assert first.value.num == 1
    assert second.value.num == 1


def test_rb_baseline_namespacing():
    # The per-key factory gives every register its own broadcast
    # instance, so the old namespacing prohibition is gone.
    system = RegisterSystem("rb", f=1, seed=5, namespaced=True)
    system.write(b"a-value", writer=0, at=0.0, register="a")
    read_a = system.read(reader=0, at=10.0, register="a")
    read_b = system.read(reader=0, at=20.0, register="b")
    system.run()
    assert read_a.value == b"a-value"
    assert read_b.value == b""


def test_namespaced_reader_state_is_per_register():
    # A reader's cached fallback from register "a" must not leak into "b".
    system = RegisterSystem("bsr", f=1, seed=3, namespaced=True,
                            delay_model=ConstantDelay(1.0))
    system.write(b"a-value", writer=0, at=0.0, register="a")
    read_a = system.read(reader=0, at=10.0, register="a")
    read_b = system.read(reader=0, at=20.0, register="b")
    system.run()
    assert read_a.value == b"a-value"
    assert read_b.value == b""  # not b"a-value"


# -- key-space DoS defence ----------------------------------------------------

def test_invalid_register_names_allocate_no_state():
    """Garbage names are dropped before any per-register state exists."""
    server = make_server()
    for bad in ("", "has space", "nul\x00byte", "x" * 129, "café", 42,
                None, b"bytes"):
        assert server.handle("r0", NamespacedMessage(bad, QueryData(op_id=1))) == []
    assert server.registers == {}


def test_valid_names_still_served_after_rejections():
    server = make_server()
    server.handle("r0", NamespacedMessage("x" * 500, QueryData(op_id=1)))
    [(_, reply)] = server.handle(
        "r0", NamespacedMessage("legit", QueryData(op_id=2)))
    assert reply.register == "legit"
    assert set(server.registers) == {"legit"}


def test_max_length_name_accepted():
    server = make_server()
    name = "k" * 128  # exactly the bound
    assert server.handle("r0", NamespacedMessage(name, QueryData(op_id=1))) != []
    assert server.handle(
        "r0", NamespacedMessage(name + "k", QueryData(op_id=2))) == []
    assert set(server.registers) == {name}
