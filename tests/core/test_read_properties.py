"""Property-based tests for the BSR read decision function.

These drive :class:`BSRReadOperation` directly with arbitrary reply
multisets (hypothesis-generated) and assert the invariants of Fig 2 that
every safety argument leans on, independent of any schedule:

1. the returned value is either a pair with >= f + 1 witnesses or the
   reader's cached local value -- never a lone server's claim;
2. with at most f arbitrary ("Byzantine") replies injected, a pair that
   f + 1 honest servers reported can never lose to a *fabricated* pair;
3. the reader's cached tag never decreases across reads.
"""

from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.core.bsr import BSRReadOperation, BSRReaderState
from repro.core.messages import DataReply
from repro.core.tags import TAG_ZERO, Tag, TaggedValue
from repro.types import server_id

N, F = 5, 1
SERVERS = [server_id(i) for i in range(N)]

tags = st.builds(Tag, st.integers(min_value=0, max_value=6),
                 st.sampled_from(["", "w000", "w001"]))
values = st.sampled_from([b"", b"a", b"b", b"c"])
replies = st.lists(st.tuples(tags, values), min_size=N - F, max_size=N - F)


def run_read(reply_list, state=None):
    operation = BSRReadOperation("r000", SERVERS, F, reader_state=state)
    operation.start()
    for server, (tag, value) in zip(SERVERS, reply_list):
        operation.on_reply(server, DataReply(op_id=operation.op_id,
                                             tag=tag, payload=value))
    assert operation.done
    return operation


@settings(max_examples=200, deadline=None)
@given(replies)
def test_result_is_witnessed_or_cached(reply_list):
    state = BSRReaderState(b"")
    operation = run_read(reply_list, state)
    counts = Counter(TaggedValue(t, v) for t, v in reply_list)
    witnessed = {pair for pair, c in counts.items() if c >= F + 1}
    best_tag = max((pair.tag for pair in witnessed), default=TAG_ZERO)
    if witnessed and best_tag > TAG_ZERO:
        # Several witnessed pairs may share the max tag (possible only for
        # adversarial inputs); any of their values is an acceptable pick.
        acceptable = {pair.value for pair in witnessed if pair.tag == best_tag}
        assert operation.result in acceptable
    else:
        # Nothing witnessed beats the cache: the initial value is returned.
        assert operation.result == b""


@settings(max_examples=200, deadline=None)
@given(st.lists(st.tuples(tags, values), min_size=F, max_size=F),
       st.integers(min_value=1, max_value=6))
def test_f_byzantine_replies_cannot_fabricate(byzantine_replies, honest_num):
    """f arbitrary replies + an honest (f+1)-witnessed pair: honest wins
    unless the adversary echoes a genuinely higher *witnessed* pair --
    which it cannot, having only f voices."""
    honest_pair = (Tag(honest_num, "w000"), b"honest")
    reply_list = [honest_pair] * (N - F - len(byzantine_replies)) \
        + byzantine_replies
    operation = run_read(reply_list, BSRReaderState(b""))
    # The fabricated pairs have at most f witnesses each (they'd need to
    # collide with the honest pair exactly to gain more).
    if operation.result != b"honest":
        # Only possible if a byzantine reply *equals* the honest pair count
        # threshold by duplicating... with f = 1 a single lone reply can
        # never be witnessed, so the result must be the honest value.
        counts = Counter(TaggedValue(t, v) for t, v in reply_list)
        fabricated_witnessed = [
            pair for pair, c in counts.items()
            if c >= F + 1 and pair.value != b"honest"
        ]
        assert fabricated_witnessed, "unwitnessed value returned!"


@settings(max_examples=100, deadline=None)
@given(st.lists(replies, min_size=2, max_size=4))
def test_cached_tag_is_monotone_across_reads(reply_lists):
    state = BSRReaderState(b"")
    previous = TAG_ZERO
    for reply_list in reply_lists:
        run_read(reply_list, state)
        assert state.local.tag >= previous
        previous = state.local.tag
