"""Integration tests for the RegisterSystem facade (all algorithms)."""

import pytest

from repro import RegisterSystem
from repro.byzantine.behaviors import make_behavior
from repro.consistency import check_atomicity_by_tags, check_safety
from repro.errors import ConfigurationError
from repro.sim.delays import ConstantDelay, UniformDelay

ALL = ("bsr", "bsr-history", "bsr-2round", "bcsr", "rb", "abd")
ONE_SHOT = ("bsr", "bsr-history", "bcsr")


@pytest.mark.parametrize("algorithm", ALL)
def test_write_then_read_returns_value(algorithm):
    system = RegisterSystem(algorithm, f=1, seed=7,
                            delay_model=UniformDelay(0.5, 2.0))
    system.write(b"payload", writer=0, at=0.0)
    read = system.read(reader=0, at=20.0)
    system.run()
    assert read.value == b"payload"


@pytest.mark.parametrize("algorithm", ALL)
def test_read_before_any_write_returns_initial(algorithm):
    system = RegisterSystem(algorithm, f=1, seed=3, initial_value=b"genesis",
                            delay_model=ConstantDelay(1.0))
    read = system.read(reader=0, at=0.0)
    system.run()
    assert read.value == b"genesis"


@pytest.mark.parametrize("algorithm", ONE_SHOT)
def test_one_shot_reads_take_one_round(algorithm):
    system = RegisterSystem(algorithm, f=1, seed=5,
                            delay_model=ConstantDelay(1.0))
    system.write(b"v", writer=0, at=0.0)
    read = system.read(reader=0, at=10.0)
    system.run()
    assert read.rounds == 1
    # one round trip = exactly 2 constant delays
    assert read.latency == pytest.approx(2.0)


def test_two_round_variant_takes_two_rounds():
    system = RegisterSystem("bsr-2round", f=1, seed=5,
                            delay_model=ConstantDelay(1.0))
    system.write(b"v", writer=0, at=0.0)
    read = system.read(reader=0, at=10.0)
    system.run()
    assert read.rounds == 2
    assert read.latency == pytest.approx(4.0)


@pytest.mark.parametrize("algorithm", ALL)
def test_writes_take_two_client_rounds(algorithm):
    system = RegisterSystem(algorithm, f=1, seed=5,
                            delay_model=ConstantDelay(1.0))
    write = system.write(b"v", writer=0, at=0.0)
    system.run()
    assert write.rounds == 2
    if algorithm == "rb":
        # Bracha adds ECHO + READY server hops before any ack.
        assert write.latency > 4.0
    else:
        assert write.latency == pytest.approx(4.0)


def test_unknown_algorithm_rejected():
    with pytest.raises(ConfigurationError):
        RegisterSystem("paxos")


@pytest.mark.parametrize("algorithm,n", [("bsr", 4), ("bcsr", 5),
                                         ("rb", 3), ("abd", 2)])
def test_below_bound_rejected(algorithm, n):
    with pytest.raises(ConfigurationError):
        RegisterSystem(algorithm, f=1, n=n)


def test_below_bound_allowed_when_unenforced():
    system = RegisterSystem("bsr", f=1, n=4, enforce_bounds=False)
    assert system.n == 4


def test_too_many_byzantine_rejected():
    with pytest.raises(ConfigurationError):
        RegisterSystem("bsr", f=1, byzantine={0: "silent", 1: "silent"})


def test_unknown_byzantine_server_rejected():
    with pytest.raises(ConfigurationError):
        RegisterSystem("bsr", f=1, byzantine={"s999": "silent"})


def test_byzantine_accepts_instances_and_names():
    system = RegisterSystem("bsr", f=1,
                            byzantine={0: make_behavior("stale")})
    assert "s000" in system.byzantine


@pytest.mark.parametrize("algorithm", ALL)
@pytest.mark.parametrize("behavior", ["silent", "stale", "forge_tag",
                                      "corrupt_value", "equivocate",
                                      "multi_reply", "flip_flop"])
def test_single_byzantine_server_cannot_break_safety(algorithm, behavior):
    if algorithm == "abd":
        pytest.skip("ABD is crash-only; Byzantine servers may break it")
    system = RegisterSystem(algorithm, f=1, seed=11, initial_value=b"v0",
                            delay_model=UniformDelay(0.5, 2.0),
                            byzantine={2: behavior})
    system.write(b"target", writer=0, at=0.0)
    read = system.read(reader=0, at=30.0)
    trace = system.run()
    assert read.value == b"target"
    check_safety(trace, initial_value=b"v0").raise_if_violated()


def test_crash_f_servers_preserves_liveness():
    system = RegisterSystem("bsr", f=1, seed=9, delay_model=ConstantDelay(1.0))
    system.crash_server(0, at=0.5)
    write = system.write(b"still-works", writer=0, at=1.0)
    read = system.read(reader=0, at=10.0)
    system.run()
    assert write.done and read.done
    assert read.value == b"still-works"


def test_crashed_client_leaves_incomplete_operation():
    system = RegisterSystem("bsr", f=1, seed=9, delay_model=ConstantDelay(2.0))
    write = system.write(b"doomed", writer=0, at=0.0)
    system.crash_client("w000", at=1.0)  # mid-get-tag
    system.run()
    assert not write.done
    records = system.trace.writes()
    assert len(records) == 1 and not records[0].complete


def test_sequential_ops_on_one_client_queue_up():
    system = RegisterSystem("bsr", f=1, seed=2, delay_model=ConstantDelay(1.0))
    first = system.write(b"a", writer=0, at=0.0)
    second = system.write(b"b", writer=0, at=0.0)  # same instant: must queue
    system.run()
    assert first.done and second.done
    assert first.record.responded_at <= second.record.invoked_at


def test_multi_writer_tags_are_distinct_and_ordered():
    system = RegisterSystem("bsr", f=1, seed=4, num_writers=3,
                            delay_model=UniformDelay(0.5, 1.5))
    w1 = system.write(b"one", writer=0, at=0.0)
    w2 = system.write(b"two", writer=1, at=20.0)
    w3 = system.write(b"three", writer=2, at=40.0)
    system.run()
    tags = [w.value for w in (w1, w2, w3)]
    assert len(set(tags)) == 3
    assert tags[0] < tags[1] < tags[2]  # sequential writes: increasing tags


def test_concurrent_writes_get_distinct_tags():
    system = RegisterSystem("bsr", f=1, seed=8, num_writers=4,
                            delay_model=UniformDelay(0.5, 3.0))
    writes = [system.write(f"c{i}".encode(), writer=i, at=0.0) for i in range(4)]
    system.run()
    tags = [w.value for w in writes]
    assert len(set(tags)) == 4


def test_abd_trace_is_atomic():
    system = RegisterSystem("abd", f=1, seed=12, num_readers=3,
                            delay_model=UniformDelay(0.5, 2.0))
    for i in range(4):
        system.write(f"v{i}".encode(), writer=i % 2, at=i * 10.0)
    for i in range(8):
        system.read(reader=i % 3, at=2.0 + i * 5.0)
    trace = system.run()
    check_atomicity_by_tags(trace).raise_if_violated()


def test_storage_bytes_replication_vs_coding():
    value = b"z" * 600
    bsr = RegisterSystem("bsr", f=1, n=6, seed=1, delay_model=ConstantDelay(1.0))
    bsr.write(value, at=0.0)
    bsr.run()
    bcsr = RegisterSystem("bcsr", f=1, n=6, seed=1, delay_model=ConstantDelay(1.0))
    bcsr.write(value, at=0.0)
    bcsr.run()
    bsr_total = sum(bsr.storage_bytes().values())
    bcsr_total = sum(bcsr.storage_bytes().values())
    # replication stores n copies; [6,1] coding also stores ~n/k = 6 units
    # here (k=1), so sizes match at f=1,n=6 -- but per-element size equals
    # value size / k. Use a wider system to see the gap:
    wide = RegisterSystem("bcsr", f=1, n=11, seed=1, delay_model=ConstantDelay(1.0))
    wide.write(value, at=0.0)
    wide.run()
    per_server_wide = max(wide.storage_bytes().values())
    assert per_server_wide < len(value) / 2  # k = 6 -> ~1/6 of the value
    assert bsr_total == 6 * 600
    assert bcsr_total >= bsr_total  # k=1 coding degenerates to replication cost


def test_network_stats_exposed():
    system = RegisterSystem("bsr", f=1, seed=1, delay_model=ConstantDelay(1.0))
    system.write(b"v", at=0.0)
    system.run()
    stats = system.network_stats()
    assert stats.messages_sent > 0
    assert "PutData" in stats.per_type_count


def test_handles_collects_all_operations():
    system = RegisterSystem("bsr", f=1, seed=1)
    system.write(b"a", at=0.0)
    system.read(at=1.0)
    assert [h.kind for h in system.handles] == ["write", "read"]


def test_unresolved_handle_raises_helpfully():
    system = RegisterSystem("bsr", f=1, seed=1)
    read = system.read(at=0.0)
    with pytest.raises(ConfigurationError):
        _ = read.value
