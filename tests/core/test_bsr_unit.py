"""Unit tests for the BSR server state machine and client operations.

These drive the state machines directly (no simulator), pinning each
transition of Figs 1-3.
"""

import pytest

from repro.core.bsr import (
    BSRReadOperation,
    BSRReaderState,
    BSRServer,
    BSRWriteOperation,
)
from repro.core.messages import (
    DataReply,
    PutAck,
    PutData,
    QueryData,
    QueryTag,
    TagReply,
)
from repro.core.tags import TAG_ZERO, Tag, TaggedValue
from repro.errors import QuorumError

SERVERS = [f"s{i:03d}" for i in range(5)]
F = 1


# -- server ------------------------------------------------------------------

def test_server_initial_state():
    server = BSRServer("s000", initial_value=b"v0")
    assert server.max_tag == TAG_ZERO
    assert server.latest.value == b"v0"


def test_query_tag_returns_max_tag():
    server = BSRServer("s000")
    [(dest, reply)] = server.handle("w000", QueryTag(op_id=7))
    assert dest == "w000"
    assert isinstance(reply, TagReply) and reply.tag == TAG_ZERO
    assert reply.op_id == 7


def test_put_data_stores_higher_tag_and_acks():
    server = BSRServer("s000")
    tag = Tag(1, "w000")
    [(dest, ack)] = server.handle("w000", PutData(op_id=1, tag=tag, payload=b"v1"))
    assert isinstance(ack, PutAck) and ack.tag == tag
    assert server.latest == TaggedValue(tag, b"v1")


def test_put_data_with_stale_tag_acks_but_does_not_store():
    server = BSRServer("s000")
    server.handle("w000", PutData(op_id=1, tag=Tag(5, "w000"), payload=b"new"))
    [(_, ack)] = server.handle("w001", PutData(op_id=2, tag=Tag(3, "w001"),
                                               payload=b"old"))
    assert isinstance(ack, PutAck)  # ack is unconditional (liveness)
    assert server.latest.value == b"new"
    assert len(server.history) == 2  # stale pair not appended


def test_query_data_returns_latest_pair():
    server = BSRServer("s000")
    tag = Tag(2, "w001")
    server.handle("w001", PutData(op_id=1, tag=tag, payload=b"fresh"))
    [(_, reply)] = server.handle("r000", QueryData(op_id=9))
    assert isinstance(reply, DataReply)
    assert reply.tag == tag and reply.payload == b"fresh"


def test_server_ignores_unknown_messages():
    server = BSRServer("s000")
    assert server.handle("x", "garbage") == []


def test_storage_bytes_reflects_current_value():
    server = BSRServer("s000", initial_value=b"")
    server.handle("w", PutData(op_id=1, tag=Tag(1, "w"), payload=b"12345678"))
    assert server.storage_bytes() == 8


# -- write operation ------------------------------------------------------------

def tag_reply(op, tag):
    return TagReply(op_id=op.op_id, tag=tag)


def test_write_requires_bsr_bound():
    with pytest.raises(QuorumError):
        BSRWriteOperation("w000", SERVERS[:4], F, b"v")


def test_write_happy_path():
    op = BSRWriteOperation("w000", SERVERS, F, b"v1")
    start = op.start()
    assert len(start) == 5 and all(isinstance(m, QueryTag) for _, m in start)
    # n - f - 1 tag replies: not yet enough
    for sid in SERVERS[:3]:
        assert op.on_reply(sid, tag_reply(op, TAG_ZERO)) == []
    # the 4th reply triggers put-data with tag (0+1, w000)
    puts = op.on_reply(SERVERS[3], tag_reply(op, TAG_ZERO))
    assert len(puts) == 5
    assert all(isinstance(m, PutData) and m.tag == Tag(1, "w000") for _, m in puts)
    assert not op.done
    for sid in SERVERS[:4]:
        op.on_reply(sid, PutAck(op_id=op.op_id, tag=Tag(1, "w000")))
    assert op.done
    assert op.result == Tag(1, "w000")
    assert op.rounds == 2


def test_write_selects_f_plus_1_th_highest_tag():
    op = BSRWriteOperation("w000", SERVERS, F, b"v")
    op.start()
    replies = [Tag(9, "byz"), Tag(3, "w1"), Tag(3, "w1"), Tag(2, "w1")]
    for sid, tag in zip(SERVERS, replies):
        out = op.on_reply(sid, tag_reply(op, tag))
    # (f+1)-th = 2nd highest of [9,3,3,2] is 3 -> new tag num 4
    assert out[0][1].tag == Tag(4, "w000")


def test_write_ignores_malformed_tag_replies():
    op = BSRWriteOperation("w000", SERVERS, F, b"v")
    op.start()
    assert op.on_reply(SERVERS[0], TagReply(op_id=op.op_id, tag="not-a-tag")) == []
    # the malformed reply must not count toward the quorum
    for sid in SERVERS[1:4]:
        assert op.on_reply(sid, tag_reply(op, TAG_ZERO)) == []
    puts = op.on_reply(SERVERS[4], tag_reply(op, TAG_ZERO))
    assert len(puts) == 5


def test_write_ignores_duplicate_replies_from_same_server():
    op = BSRWriteOperation("w000", SERVERS, F, b"v")
    op.start()
    for _ in range(10):
        assert op.on_reply(SERVERS[0], tag_reply(op, TAG_ZERO)) == []
    assert not op.done


def test_write_ignores_acks_for_other_tags():
    op = BSRWriteOperation("w000", SERVERS, F, b"v")
    op.start()
    for sid in SERVERS[:4]:
        op.on_reply(sid, tag_reply(op, TAG_ZERO))
    for sid in SERVERS[:4]:
        op.on_reply(sid, PutAck(op_id=op.op_id, tag=Tag(999, "byz")))
    assert not op.done


def test_write_ignores_wrong_op_id():
    op = BSRWriteOperation("w000", SERVERS, F, b"v")
    op.start()
    assert op.on_reply(SERVERS[0], TagReply(op_id=op.op_id + 1, tag=TAG_ZERO)) == []


# -- read operation ---------------------------------------------------------------

def data_reply(op, tag, value):
    return DataReply(op_id=op.op_id, tag=tag, payload=value)


def test_read_happy_path_returns_witnessed_value():
    op = BSRReadOperation("r000", SERVERS, F)
    assert len(op.start()) == 5
    tag = Tag(1, "w000")
    for sid in SERVERS[:3]:
        op.on_reply(sid, data_reply(op, tag, b"v1"))
    assert not op.done
    op.on_reply(SERVERS[3], data_reply(op, TAG_ZERO, b""))
    assert op.done
    assert op.result == b"v1"
    assert op.rounds == 1


def test_read_requires_f_plus_1_witnesses():
    # Four distinct values: no pair reaches 2 witnesses -> initial value.
    op = BSRReadOperation("r000", SERVERS, F)
    op.start()
    for i, sid in enumerate(SERVERS[:4]):
        op.on_reply(sid, data_reply(op, Tag(1, f"w{i}"), f"v{i}".encode()))
    assert op.done
    assert op.result == b""  # reader-state default


def test_read_picks_highest_witnessed_pair():
    op = BSRReadOperation("r000", SERVERS, F)
    op.start()
    low, high = Tag(1, "w000"), Tag(2, "w001")
    op.on_reply(SERVERS[0], data_reply(op, low, b"old"))
    op.on_reply(SERVERS[1], data_reply(op, low, b"old"))
    op.on_reply(SERVERS[2], data_reply(op, high, b"new"))
    op.on_reply(SERVERS[3], data_reply(op, high, b"new"))
    assert op.result == b"new"
    assert op.result_tag == high


def test_witnesses_must_match_on_value_not_just_tag():
    # A Byzantine server echoing the right tag with a wrong value must not
    # help that value reach the threshold.
    op = BSRReadOperation("r000", SERVERS, F)
    op.start()
    tag = Tag(1, "w000")
    op.on_reply(SERVERS[0], data_reply(op, tag, b"real"))
    op.on_reply(SERVERS[1], data_reply(op, tag, b"fake"))
    op.on_reply(SERVERS[2], data_reply(op, TAG_ZERO, b""))
    op.on_reply(SERVERS[3], data_reply(op, TAG_ZERO, b""))
    assert op.done
    # (TAG_ZERO, b"") has 2 witnesses; "real" and "fake" have 1 each.
    assert op.result == b""


def test_reader_state_persists_across_reads():
    state = BSRReaderState(b"v0")
    first = BSRReadOperation("r000", SERVERS, F, reader_state=state)
    first.start()
    tag = Tag(3, "w000")
    for sid in SERVERS[:4]:
        first.on_reply(sid, data_reply(first, tag, b"seen"))
    assert first.result == b"seen"

    # Second read sees nothing witnessed; falls back to the cached pair.
    second = BSRReadOperation("r000", SERVERS, F, reader_state=state)
    second.start()
    for i, sid in enumerate(SERVERS[:4]):
        second.on_reply(sid, data_reply(second, Tag(9, f"b{i}"), f"x{i}".encode()))
    assert second.result == b"seen"


def test_reader_state_never_regresses():
    state = BSRReaderState(b"v0")
    state.update(TaggedValue(Tag(5, "w"), b"newest"))
    state.update(TaggedValue(Tag(2, "w"), b"older"))
    assert state.local.value == b"newest"


def test_read_ignores_unhashable_byzantine_payload():
    op = BSRReadOperation("r000", SERVERS, F)
    op.start()
    op.on_reply(SERVERS[0], data_reply(op, Tag(1, "w"), [1, 2, 3]))  # unhashable
    tag = Tag(1, "w000")
    for sid in SERVERS[1:4]:
        op.on_reply(sid, data_reply(op, tag, b"good"))
    assert op.done and op.result == b"good"


def test_read_ignores_malformed_tag():
    op = BSRReadOperation("r000", SERVERS, F)
    op.start()
    op.on_reply(SERVERS[0], data_reply(op, "garbage-tag", b"x"))
    assert len(op._replies) == 0
