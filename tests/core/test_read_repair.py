"""Tests for the read-repair extension of BSR reads."""

import pytest

from repro import RegisterSystem
from repro.consistency import check_safety
from repro.core.messages import PutData
from repro.core.tags import TAG_ZERO
from repro.sim.delays import ConstantDelay, RuleBasedDelays, UniformDelay
from repro.types import server_id, writer_id


def scattered_system(read_repair):
    """W1's PUT-DATA to the last server is held; one read at t=10."""
    delays = RuleBasedDelays(fallback=ConstantDelay(0.5))
    delays.hold(lambda src, dst, msg: (isinstance(msg, PutData)
                                       and src == writer_id(0)
                                       and dst == server_id(4)))
    system = RegisterSystem("bsr", f=1, seed=2, delay_model=delays,
                            initial_value=b"v0", read_repair=read_repair)
    system.write(b"repaired?", writer=0, at=0.0)
    read = system.read(reader=0, at=10.0)
    return system, read


def test_repair_catches_up_lagging_server():
    system, read = scattered_system(read_repair=True)
    system.run(release_held_at_end=False)
    assert read.value == b"repaired?"
    # The straggler never saw the writer's PUT-DATA (held), yet the read's
    # repair delivered the pair.
    straggler = system.server_protocols[server_id(4)]
    assert straggler.latest.value == b"repaired?"


def test_without_repair_straggler_stays_stale():
    system, read = scattered_system(read_repair=False)
    system.run(release_held_at_end=False)
    assert read.value == b"repaired?"
    straggler = system.server_protocols[server_id(4)]
    assert straggler.latest.tag == TAG_ZERO


def test_repair_does_not_add_read_rounds_or_latency():
    with_repair, read_repaired = scattered_system(read_repair=True)
    with_repair.run(release_held_at_end=False)
    without, read_plain = scattered_system(read_repair=False)
    without.run(release_held_at_end=False)
    assert read_repaired.rounds == read_plain.rounds == 1
    assert read_repaired.latency == read_plain.latency


def test_repair_never_pushes_initial_value():
    system = RegisterSystem("bsr", f=1, seed=3, read_repair=True,
                            delay_model=ConstantDelay(0.5), initial_value=b"v0")
    system.read(reader=0, at=0.0)  # nothing written yet
    system.run()
    stats = system.network_stats()
    assert "PutData" not in stats.per_type_count  # no pointless repair


def test_repair_is_safe_under_byzantine_server():
    system = RegisterSystem("bsr", f=1, seed=4, read_repair=True,
                            initial_value=b"v0",
                            byzantine={1: "forge_tag"},
                            delay_model=UniformDelay(0.3, 1.0))
    system.write(b"genuine", writer=0, at=0.0)
    for i in range(3):
        system.read(reader=i % 2, at=20.0 + i * 10.0)
    trace = system.run()
    check_safety(trace, initial_value=b"v0").raise_if_violated()
    # The forged pair never had f+1 witnesses, so it was never repaired
    # into any correct server.
    for pid, protocol in system.server_protocols.items():
        if pid == "s001":
            continue
        values = [pair.value for pair in protocol.history]
        assert b"\xde\xad" not in values


def test_repaired_pair_acks_do_not_confuse_next_operation():
    system, read = scattered_system(read_repair=True)
    second = system.read(reader=0, at=20.0)
    system.run(release_held_at_end=False)
    assert second.value == b"repaired?"
