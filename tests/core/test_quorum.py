"""Unit tests for quorum arithmetic and the paper's thresholds."""

import pytest

from repro.core.quorum import (
    abd_min_servers,
    bcsr_dimension,
    bcsr_min_servers,
    bsr_min_servers,
    kth_highest,
    rb_min_servers,
    reply_quorum,
    validate_bcsr_config,
    validate_bsr_config,
    validate_rb_config,
    witness_threshold,
)
from repro.errors import QuorumError


@pytest.mark.parametrize("f,expected", [(0, 1), (1, 5), (2, 9), (3, 13)])
def test_bsr_min_servers(f, expected):
    assert bsr_min_servers(f) == expected


@pytest.mark.parametrize("f,expected", [(0, 1), (1, 6), (2, 11), (3, 16)])
def test_bcsr_min_servers(f, expected):
    assert bcsr_min_servers(f) == expected


@pytest.mark.parametrize("f,expected", [(0, 1), (1, 4), (2, 7)])
def test_rb_min_servers(f, expected):
    assert rb_min_servers(f) == expected


@pytest.mark.parametrize("f,expected", [(0, 1), (1, 3), (2, 5)])
def test_abd_min_servers(f, expected):
    assert abd_min_servers(f) == expected


def test_negative_f_rejected():
    with pytest.raises(QuorumError):
        bsr_min_servers(-1)


def test_validate_bsr_boundary():
    validate_bsr_config(5, 1)
    validate_bsr_config(6, 1)
    with pytest.raises(QuorumError):
        validate_bsr_config(4, 1)


def test_validate_bcsr_boundary():
    validate_bcsr_config(6, 1)
    with pytest.raises(QuorumError):
        validate_bcsr_config(5, 1)


def test_validate_rb_boundary():
    validate_rb_config(4, 1)
    with pytest.raises(QuorumError):
        validate_rb_config(3, 1)


def test_bcsr_dimension_formula():
    assert bcsr_dimension(6, 1) == 1
    assert bcsr_dimension(11, 2) == 1
    assert bcsr_dimension(16, 2) == 6
    with pytest.raises(QuorumError):
        bcsr_dimension(5, 1)


def test_reply_quorum():
    assert reply_quorum(5, 1) == 4
    assert reply_quorum(10, 3) == 7
    with pytest.raises(QuorumError):
        reply_quorum(3, 3)


def test_witness_threshold():
    assert witness_threshold(0) == 1
    assert witness_threshold(2) == 3


def test_kth_highest_basic():
    values = [5, 1, 9, 7, 3]
    assert kth_highest(values, 1) == 9
    assert kth_highest(values, 2) == 7
    assert kth_highest(values, 5) == 1


def test_kth_highest_with_duplicates():
    assert kth_highest([4, 4, 4, 2], 2) == 4
    assert kth_highest([4, 4, 4, 2], 4) == 2


def test_kth_highest_range_checked():
    with pytest.raises(ValueError):
        kth_highest([1, 2], 0)
    with pytest.raises(ValueError):
        kth_highest([1, 2], 3)


def test_kth_highest_discards_f_forged_tags():
    """The Fig-1-line-4 property: f forged maxima cannot move the pick."""
    honest = [10, 10, 10, 9]
    forged = [1_000_000]  # one Byzantine server lies upward (f = 1)
    assert kth_highest(honest + forged, 2) == 10
