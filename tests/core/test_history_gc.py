"""Tests for bounded server histories (the max_history GC option)."""

import pytest

from repro import RegisterSystem
from repro.core.bcsr import BCSRServer, make_codec
from repro.core.bsr import BSRServer
from repro.core.messages import PutData, QueryData
from repro.core.regular import RegularBSRServer
from repro.core.tags import Tag
from repro.consistency import check_regularity
from repro.sim.delays import ConstantDelay, UniformDelay


def filled_server(cls, max_history, writes=10):
    server = cls("s000", initial_value=b"v0", max_history=max_history)
    for i in range(1, writes + 1):
        server.handle("w", PutData(op_id=i, tag=Tag(i, "w"),
                                   payload=f"v{i}".encode()))
    return server


def test_unbounded_history_keeps_everything():
    server = filled_server(BSRServer, max_history=None)
    assert len(server.history) == 11  # initial + 10 writes


def test_bounded_history_prunes_oldest():
    server = filled_server(BSRServer, max_history=3)
    assert len(server.history) == 3
    assert [pair.value for pair in server.history] == [b"v8", b"v9", b"v10"]


def test_latest_pair_always_survives_pruning():
    server = filled_server(BSRServer, max_history=1)
    assert len(server.history) == 1
    assert server.latest.value == b"v10"
    [(_, reply)] = server.handle("r", QueryData(op_id=99))
    assert reply.payload == b"v10"


def test_max_history_validation():
    with pytest.raises(ValueError):
        BSRServer("s", max_history=0)
    with pytest.raises(ValueError):
        BCSRServer("s", 0, make_codec(6, 1), max_history=-1)


def test_history_bytes_accounting():
    unbounded = filled_server(BSRServer, max_history=None)
    bounded = filled_server(BSRServer, max_history=2)
    assert bounded.history_bytes() < unbounded.history_bytes()


def test_bcsr_server_prunes_too():
    codec = make_codec(6, 1)
    server = BCSRServer("s000", 0, codec, max_history=2)
    for i in range(1, 6):
        element = codec.encode(f"value-{i}".encode())[0]
        server.handle("w", PutData(op_id=i, tag=Tag(i, "w"), payload=element))
    assert len(server.history) == 2


def test_plain_bsr_unaffected_by_pruning():
    """BSR only serves the newest pair, so GC is invisible to it."""
    system = RegisterSystem("bsr", f=1, seed=3, max_history=1,
                            delay_model=UniformDelay(0.3, 1.0))
    for i in range(5):
        system.write(f"w{i}".encode(), writer=i % 2, at=i * 10.0)
    read = system.read(at=60.0)
    system.run()
    assert read.value == b"w4"


def test_deep_history_keeps_history_variant_regular():
    from repro.byzantine.scenarios import theorem3_regularity_violation
    result = theorem3_regularity_violation("bsr-history")
    assert result.regularity.ok


def test_pruned_history_variant_loses_regularity_coverage():
    """The E12 ablation in test form: max_history=1 re-enables Theorem 3.

    With only the newest pair retained, a history read degenerates to a
    plain BSR read, so the Theorem-3 schedule (one value per server) again
    finds no witnessed pair and falls back to ``v0``.
    """
    from repro.byzantine import scenarios as sc
    from repro.core.messages import PutData as PD
    from repro.sim.delays import RuleBasedDelays, ConstantDelay
    from repro.types import server_id, writer_id

    delays = RuleBasedDelays(fallback=ConstantDelay(0.1))
    for i in range(1, 5):
        writer, fast_server = writer_id(i), server_id(i)

        def match(src, dst, msg, writer=writer, fast_server=fast_server):
            return isinstance(msg, PD) and src == writer and dst != fast_server

        delays.hold(match)
    system = RegisterSystem("bsr-history", f=1, n=5, num_writers=5,
                            num_readers=1, seed=0, delay_model=delays,
                            initial_value=b"v0", max_history=1)
    system.write(b"v1", writer=0, at=0.0)
    for i in range(1, 5):
        system.write(f"v{i + 1}".encode(), writer=i, at=10.0)
    read = system.read(reader=0, at=20.0)
    trace = system.run()
    assert read.value == b"v0"
    assert not check_regularity(trace, initial_value=b"v0").ok
