"""Unit tests for the BCSR server and coded client operations."""

import pytest

from repro.core.bcsr import (
    BCSRReadOperation,
    BCSRServer,
    BCSRWriteOperation,
    make_codec,
)
from repro.core.messages import (
    DataReply,
    PutAck,
    PutData,
    QueryData,
    QueryTag,
    TagReply,
)
from repro.core.tags import TAG_ZERO, Tag
from repro.erasure.striping import CodedElement
from repro.errors import QuorumError

N, F = 6, 1
SERVERS = [f"s{i:03d}" for i in range(N)]


@pytest.fixture
def codec():
    return make_codec(N, F)


def test_make_codec_dimension(codec):
    assert codec.n == N and codec.k == N - 5 * F


def test_server_requires_valid_index(codec):
    with pytest.raises(ValueError):
        BCSRServer("s009", 9, codec)


def test_server_initial_element_matches_initial_value(codec):
    value = b"init"
    elements = codec.encode(value)
    for i in range(N):
        server = BCSRServer(SERVERS[i], i, codec, initial_value=value)
        assert server.latest.value == elements[i]
        assert server.max_tag == TAG_ZERO


def test_server_stores_coded_elements(codec):
    server = BCSRServer("s000", 0, codec)
    element = codec.encode(b"hello")[0]
    tag = Tag(1, "w000")
    [(_, ack)] = server.handle("w000", PutData(op_id=1, tag=tag, payload=element))
    assert isinstance(ack, PutAck)
    assert server.latest.value == element
    assert server.storage_bytes() == len(element.data)


def test_server_data_reply_carries_element(codec):
    server = BCSRServer("s002", 2, codec)
    element = codec.encode(b"abc")[2]
    server.handle("w", PutData(op_id=1, tag=Tag(1, "w"), payload=element))
    [(_, reply)] = server.handle("r", QueryData(op_id=5))
    assert isinstance(reply, DataReply) and reply.payload == element


def test_write_requires_bcsr_bound_without_codec():
    with pytest.raises(QuorumError):
        BCSRWriteOperation("w000", SERVERS[:5], F, b"v")


def test_write_rejects_non_bytes(codec):
    with pytest.raises(TypeError):
        BCSRWriteOperation("w000", SERVERS, F, "text", codec=codec)


def test_write_sends_distinct_elements_per_server(codec):
    op = BCSRWriteOperation("w000", SERVERS, F, b"payload-value", codec=codec)
    op.start()
    for sid in SERVERS[:N - F]:
        out = op.on_reply(sid, TagReply(op_id=op.op_id, tag=TAG_ZERO))
    puts = {dest: msg for dest, msg in out}
    assert len(puts) == N
    elements = codec.encode(b"payload-value")
    for i, sid in enumerate(SERVERS):
        assert puts[sid].payload == elements[i]
        assert puts[sid].tag == Tag(1, "w000")


def test_write_completes_after_quorum_acks(codec):
    op = BCSRWriteOperation("w000", SERVERS, F, b"v", codec=codec)
    op.start()
    for sid in SERVERS[:N - F]:
        op.on_reply(sid, TagReply(op_id=op.op_id, tag=TAG_ZERO))
    for sid in SERVERS[:N - F]:
        op.on_reply(sid, PutAck(op_id=op.op_id, tag=Tag(1, "w000")))
    assert op.done and op.result == Tag(1, "w000") and op.rounds == 2


def _respond_with_elements(op, value, codec, server_subset, corrupt=()):
    elements = codec.encode(value)
    for sid in server_subset:
        index = SERVERS.index(sid)
        element = elements[index]
        if sid in corrupt:
            element = CodedElement(index, bytes(b ^ 0x55 for b in element.data))
        op.on_reply(sid, DataReply(op_id=op.op_id, tag=Tag(1, "w000"),
                                   payload=element))


def test_read_decodes_clean_elements(codec):
    op = BCSRReadOperation("r000", SERVERS, F, codec=codec)
    op.start()
    _respond_with_elements(op, b"decoded!", codec, SERVERS[:N - F])
    assert op.done and op.result == b"decoded!"
    assert op.rounds == 1


def test_read_corrects_up_to_2f_corrupted_elements(codec):
    op = BCSRReadOperation("r000", SERVERS, F, codec=codec)
    op.start()
    _respond_with_elements(op, b"survives corruption", codec, SERVERS[:N - F],
                           corrupt=set(SERVERS[:2 * F]))
    assert op.result == b"survives corruption"


def test_read_falls_back_to_initial_value_when_undecodable(codec):
    op = BCSRReadOperation("r000", SERVERS, F, codec=codec,
                           initial_value=b"v0")
    op.start()
    # Every server returns junk of mismatched stripes: undecodable.
    for i, sid in enumerate(SERVERS[:N - F]):
        junk = CodedElement(i, bytes([i]) * (i + 1))
        op.on_reply(sid, DataReply(op_id=op.op_id, tag=Tag(1, "w"), payload=junk))
    assert op.done and op.result == b"v0"


def test_read_ignores_non_element_payloads(codec):
    op = BCSRReadOperation("r000", SERVERS, F, codec=codec)
    op.start()
    op.on_reply(SERVERS[0], DataReply(op_id=op.op_id, tag=Tag(1, "w"),
                                      payload=b"not-an-element"))
    _respond_with_elements(op, b"fine", codec, SERVERS[1:N - F + 1])
    assert op.done and op.result == b"fine"


def test_read_rebinds_element_index_to_sender(codec):
    """A Byzantine server cannot claim another server's codeword position."""
    op = BCSRReadOperation("r000", SERVERS, F, codec=codec)
    op.start()
    elements = codec.encode(b"position-bound")
    # s000 sends s003's element, claiming index 3; the reader must treat it
    # as position 0 (the sender's), making it merely one erroneous element.
    op.on_reply(SERVERS[0], DataReply(op_id=op.op_id, tag=Tag(1, "w"),
                                      payload=elements[3]))
    for sid in SERVERS[1:N - F]:
        index = SERVERS.index(sid)
        op.on_reply(sid, DataReply(op_id=op.op_id, tag=Tag(1, "w"),
                                   payload=elements[index]))
    assert op.done and op.result == b"position-bound"


def test_roundtrip_large_value(codec):
    value = bytes(range(256)) * 8
    op = BCSRReadOperation("r000", SERVERS, F, codec=codec)
    op.start()
    _respond_with_elements(op, value, codec, SERVERS[:N - F])
    assert op.result == value
