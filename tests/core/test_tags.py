"""Unit and property tests for tags."""

import pytest
from hypothesis import given, strategies as st

from repro.core.tags import TAG_ZERO, Tag, TaggedValue

writers = st.text(alphabet="abcdwrs0123456789", min_size=1, max_size=6)
tags = st.builds(Tag, st.integers(min_value=0, max_value=1000), writers)


def test_tag_orders_by_number_first():
    assert Tag(1, "zzz") < Tag(2, "aaa")


def test_tag_ties_broken_by_writer_id():
    assert Tag(3, "w001") < Tag(3, "w002")
    assert Tag(3, "w002") > Tag(3, "w001")


def test_tag_equality():
    assert Tag(1, "w") == Tag(1, "w")
    assert Tag(1, "w") != Tag(1, "x")
    assert Tag(1, "w") != Tag(2, "w")


def test_tag_zero_smaller_than_any_real_tag():
    assert TAG_ZERO < Tag(1, "w000")
    assert TAG_ZERO < Tag(0, "w000")  # empty writer id sorts first


def test_negative_tag_number_rejected():
    with pytest.raises(ValueError):
        Tag(-1, "w")


def test_next_for_increments_and_rebrands():
    tag = Tag(4, "w001")
    successor = tag.next_for("w007")
    assert successor.num == 5 and successor.writer == "w007"
    assert tag < successor


def test_wire_roundtrip():
    tag = Tag(17, "w003")
    assert Tag.from_wire(tag.to_wire()) == tag


def test_tag_is_hashable_and_usable_in_sets():
    assert len({Tag(1, "a"), Tag(1, "a"), Tag(2, "a")}) == 2


def test_tagged_value_orders_by_tag():
    low = TaggedValue(Tag(1, "a"), b"first")
    high = TaggedValue(Tag(2, "a"), b"second")
    assert low < high
    assert max([low, high], key=lambda tv: tv.tag) is high


def test_tagged_value_hashable_with_bytes():
    pair = TaggedValue(Tag(1, "w"), b"v")
    assert pair in {pair}


@given(tags, tags)
def test_total_order_antisymmetry(a, b):
    assert (a < b) + (b < a) + (a == b) == 1


@given(tags, tags, tags)
def test_total_order_transitivity(a, b, c):
    if a < b and b < c:
        assert a < c


@given(tags, writers)
def test_next_for_strictly_increases(tag, writer):
    assert tag < tag.next_for(writer)
