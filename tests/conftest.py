"""Shared fixtures for the test suite."""

import pytest

from repro.sim.delays import ConstantDelay, UniformDelay
from repro.sim.rng import SimRng


@pytest.fixture
def rng():
    """A deterministic RNG stream for tests."""
    return SimRng(1234, "tests")


@pytest.fixture
def constant_delay():
    """A one-second constant delay model."""
    return ConstantDelay(1.0)


@pytest.fixture
def jittery_delay():
    """A mildly variable delay model for integration tests."""
    return UniformDelay(0.5, 2.0)
