"""Consistent-hash ring and keyspace config tests."""

import pytest

from repro.errors import ConfigurationError
from repro.sharding import (
    GROUP_FLOORS,
    HashRing,
    KeyspaceConfig,
    Placement,
    key_name,
)


def ring(n=9, vnodes=32, seed=7):
    return HashRing([f"s{i:03d}" for i in range(n)], vnodes=vnodes, seed=seed)


# -- determinism --------------------------------------------------------------

def test_same_inputs_same_placement():
    keys = [key_name(i) for i in range(200)]
    a, b = ring(), ring()
    assert a.fingerprint(keys, 5) == b.fingerprint(keys, 5)
    for key in keys:
        assert a.group(key, 5) == b.group(key, 5)


def test_node_order_does_not_matter():
    nodes = [f"s{i:03d}" for i in range(9)]
    a = HashRing(nodes, vnodes=16, seed=1)
    b = HashRing(list(reversed(nodes)), vnodes=16, seed=1)
    keys = [key_name(i) for i in range(100)]
    assert a.fingerprint(keys, 5) == b.fingerprint(keys, 5)


def test_seed_changes_placement():
    keys = [key_name(i) for i in range(200)]
    assert ring(seed=1).fingerprint(keys, 5) != ring(seed=2).fingerprint(keys, 5)


def test_groups_are_sorted_and_distinct():
    r = ring()
    for i in range(100):
        group = r.group(key_name(i), 5)
        assert len(group) == 5
        assert len(set(group)) == 5
        assert list(group) == sorted(group)


def test_group_never_exceeds_ring():
    with pytest.raises(ConfigurationError):
        ring(n=3).group("k", 5)


def test_primary_is_in_group():
    r = ring()
    for i in range(50):
        key = key_name(i)
        assert r.primary(key) in r.group(key, 5)


# -- load and stability -------------------------------------------------------

def test_load_is_roughly_even():
    r = ring(n=9, vnodes=64)
    keys = [key_name(i) for i in range(2000)]
    share = r.load_share(keys, 5)
    expected = 2000 * 5 / 9
    for node, count in share.items():
        assert 0.5 * expected < count < 1.5 * expected, (node, count)


def test_adding_a_node_moves_a_minority_of_singleton_groups():
    # With group size 1 the classic consistent-hash bound applies:
    # adding one node to ten moves ~1/11 of the keys, not all of them.
    nodes = [f"s{i:03d}" for i in range(10)]
    a = HashRing(nodes, vnodes=64, seed=3)
    b = HashRing(nodes + ["s010"], vnodes=64, seed=3)
    keys = [key_name(i) for i in range(1000)]
    moved = a.moved_keys(b, keys, 1)
    assert 0 < len(moved) < 300


# -- config validation --------------------------------------------------------

def test_config_floor_per_algorithm():
    for algorithm, floor in GROUP_FLOORS.items():
        KeyspaceConfig(group_size=floor(1)).validate(algorithm, 1, floor(1))
        with pytest.raises(ConfigurationError):
            KeyspaceConfig(group_size=floor(1) - 1).validate(
                algorithm, 1, floor(1))


def test_config_rejects_group_above_fleet():
    with pytest.raises(ConfigurationError):
        KeyspaceConfig(group_size=10).validate("bsr", 1, 9)


def test_bcsr_requires_full_fleet_groups():
    KeyspaceConfig(group_size=6).validate("bcsr", 1, 6)
    with pytest.raises(ConfigurationError):
        KeyspaceConfig(group_size=6).validate("bcsr", 1, 7)


def test_config_rejects_unsupported_algorithm():
    with pytest.raises(ConfigurationError):
        KeyspaceConfig(group_size=5).validate("no-such-algo", 1, 5)
    # rb shards now: each key's group runs its own broadcast instance.
    KeyspaceConfig(group_size=4).validate("rb", 1, 5)


def test_config_roundtrips_through_dict():
    config = KeyspaceConfig(group_size=5, vnodes=16, seed=9,
                            max_resident=100, max_key_len=64)
    assert KeyspaceConfig.from_dict(config.to_dict()) == config


def test_config_rejects_unknown_keys():
    with pytest.raises(ConfigurationError):
        KeyspaceConfig.from_dict({"group_size": 5, "bogus": 1})


def test_config_requires_group_size():
    with pytest.raises(ConfigurationError):
        KeyspaceConfig.from_dict({"vnodes": 8})


# -- placement cache ----------------------------------------------------------

def test_placement_caches_and_validates():
    placement = Placement(ring(), 5)
    group = placement.servers_for("key-0001")
    assert placement.servers_for("key-0001") == group
    with pytest.raises(ConfigurationError):
        placement.servers_for("bad key with spaces")
    with pytest.raises(ConfigurationError):
        placement.servers_for("x" * 300)


def test_placement_matches_config_placement():
    config = KeyspaceConfig(group_size=5, vnodes=32, seed=7)
    nodes = [f"s{i:03d}" for i in range(9)]
    placement = config.placement(nodes)
    r = config.ring(nodes)
    for i in range(50):
        key = key_name(i)
        assert placement.servers_for(key) == r.group(key, 5)
