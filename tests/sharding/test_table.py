"""RegisterTable unit tests: laziness, validation, eviction, rehydration."""

import pytest

from repro.byzantine.behaviors import StaleBehavior
from repro.core.bsr import BSRServer
from repro.core.messages import DataReply, PutData, QueryData, QueryTag
from repro.core.namespace import NamespacedMessage
from repro.core.tags import TAG_ZERO, Tag
from repro.obs import MetricRegistry
from repro.sharding import RegisterTable, key_name


def make_table(**kwargs):
    return RegisterTable(
        "s000",
        factory=lambda name: BSRServer("s000", initial_value=b""),
        **kwargs,
    )


def query(key, op_id=1):
    return NamespacedMessage(key, QueryData(op_id=op_id))


def put(key, op_id, seq, value):
    return NamespacedMessage(
        key, PutData(op_id=op_id, tag=Tag(seq, "w000"), payload=value))


def test_keys_created_on_first_touch():
    table = make_table()
    assert table.resident_keys == []
    table.handle("r0", query("users"))
    table.handle("r0", query("carts"))
    assert set(table.resident_keys) == {"users", "carts"}


def test_replies_rewrapped_with_key():
    table = make_table()
    [(dest, reply)] = table.handle("w0", NamespacedMessage("a", QueryTag(op_id=1)))
    assert dest == "w0"
    assert isinstance(reply, NamespacedMessage) and reply.register == "a"
    assert reply.inner.tag == TAG_ZERO


def test_bare_messages_ignored():
    table = make_table()
    assert table.handle("w0", QueryTag(op_id=1)) == []
    assert table.resident_keys == []


# -- key-space DoS defence ----------------------------------------------------

def test_invalid_keys_allocate_nothing():
    table = make_table()
    for bad in ("", "has space", "tab\tkey", "nul\x00", "x" * 129,
                "éclair"):
        assert table.handle("r0", query(bad)) == []
    assert table.resident_keys == []


def test_non_string_key_allocates_nothing():
    table = make_table()
    assert table.handle("r0", NamespacedMessage(42, QueryData(op_id=1))) == []
    assert table.resident_keys == []


def test_per_table_length_bound():
    table = make_table(max_key_len=8)
    assert table.handle("r0", query("12345678")) != []
    assert table.handle("r0", query("123456789")) == []
    assert table.resident_keys == ["12345678"]


def test_rejections_counted():
    registry = MetricRegistry()
    table = make_table(registry=registry)
    table.handle("r0", query("ok"))
    table.handle("r0", query("not ok"))
    table.handle("r0", query("also not ok"))
    [entry] = [c for c in registry.snapshot()["counters"]
               if c["name"] == "table_keys_rejected_total"]
    assert entry["value"] == 2


# -- eviction and rehydration -------------------------------------------------

def test_lru_eviction_respects_cap():
    table = make_table(max_resident=3)
    for i in range(6):
        table.handle("r0", query(key_name(i), op_id=i))
    assert len(table.resident_keys) == 3
    assert table.resident_keys == [key_name(3), key_name(4), key_name(5)]
    assert table.archived_keys == [key_name(0), key_name(1), key_name(2)]


def test_touch_refreshes_lru_position():
    table = make_table(max_resident=2)
    table.handle("r0", query("a", op_id=1))
    table.handle("r0", query("b", op_id=2))
    table.handle("r0", query("a", op_id=3))  # a becomes most-recent
    table.handle("r0", query("c", op_id=4))  # evicts b, not a
    assert set(table.resident_keys) == {"a", "c"}
    assert table.archived_keys == ["b"]


def test_rehydrated_key_keeps_its_tag_and_value():
    table = make_table(max_resident=1)
    table.handle("w0", put("hot", op_id=1, seq=7, value=b"payload"))
    table.handle("r0", query("other", op_id=2))  # demotes "hot"
    assert table.archived_keys == ["hot"]
    [(_, reply)] = table.handle("r0", query("hot", op_id=3))
    assert isinstance(reply.inner, DataReply)
    assert reply.inner.payload == b"payload"
    assert reply.inner.tag.num == 7
    assert table.archived_keys == ["other"]


def test_eviction_metrics():
    registry = MetricRegistry()
    table = make_table(max_resident=1, registry=registry)
    table.handle("r0", query("a", op_id=1))
    table.handle("r0", query("b", op_id=2))
    table.handle("r0", query("a", op_id=3))
    snap = {c["name"]: c["value"] for c in registry.snapshot()["counters"]}
    gauges = {g["name"]: g["value"] for g in registry.snapshot()["gauges"]}
    assert snap["table_evictions_total"] == 2
    assert snap["table_rehydrations_total"] == 1
    assert gauges["table_keys_resident"] == 1
    assert gauges["table_keys_archived"] == 1


def test_unbounded_table_never_evicts():
    table = make_table()
    for i in range(50):
        table.handle("r0", query(key_name(i), op_id=i))
    assert len(table.resident_keys) == 50
    assert table.archived_keys == []


def test_behavior_applies_per_key():
    table = RegisterTable(
        "s000",
        factory=lambda name: BSRServer("s000", initial_value=b""),
        behavior=StaleBehavior(),
    )
    table.handle("w0", put("k", op_id=1, seq=5, value=b"new"))
    [(_, reply)] = table.handle("r0", query("k", op_id=2))
    # the stale behaviour suppresses the new value
    assert reply.inner.tag.num != 5 or reply.inner.payload != b"new"


def test_storage_bytes_counts_live_and_archived():
    table = make_table(max_resident=1)
    table.handle("w0", put("a", op_id=1, seq=1, value=b"x" * 100))
    table.handle("w0", put("b", op_id=2, seq=1, value=b"y" * 100))
    assert table.storage_bytes() > 100
