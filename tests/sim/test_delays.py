"""Unit tests for delay models and scripted delay rules."""

import pytest

from repro.sim.delays import (
    ConstantDelay,
    DelayRule,
    ExponentialDelay,
    HOLD,
    LogNormalDelay,
    RuleBasedDelays,
    UniformDelay,
)
from repro.sim.rng import SimRng


@pytest.fixture
def rng():
    return SimRng(99, "delays")


def test_constant_delay(rng):
    model = ConstantDelay(2.5)
    assert model.sample("a", "b", "msg", 0.0, rng) == 2.5


def test_constant_delay_rejects_negative():
    with pytest.raises(ValueError):
        ConstantDelay(-1.0)


def test_uniform_delay_within_bounds(rng):
    model = UniformDelay(1.0, 3.0)
    for _ in range(100):
        assert 1.0 <= model.sample("a", "b", None, 0.0, rng) <= 3.0


def test_uniform_delay_validates_bounds():
    with pytest.raises(ValueError):
        UniformDelay(3.0, 1.0)
    with pytest.raises(ValueError):
        UniformDelay(-1.0, 1.0)


def test_exponential_delay_respects_floor(rng):
    model = ExponentialDelay(mean=1.0, floor=0.75)
    for _ in range(100):
        assert model.sample("a", "b", None, 0.0, rng) >= 0.75


def test_exponential_delay_validates(rng):
    with pytest.raises(ValueError):
        ExponentialDelay(mean=0.0)
    with pytest.raises(ValueError):
        ExponentialDelay(mean=1.0, floor=-0.1)


def test_lognormal_delay_positive(rng):
    model = LogNormalDelay(mu=0.0, sigma=0.5, floor=0.1)
    for _ in range(50):
        assert model.sample("a", "b", None, 0.0, rng) >= 0.1


def test_rule_matches_and_falls_back(rng):
    rules = RuleBasedDelays(fallback=ConstantDelay(1.0))
    rules.add_rule(lambda src, dst, msg: dst == "s1", 9.0)
    assert rules.sample("c", "s1", None, 0.0, rng) == 9.0
    assert rules.sample("c", "s2", None, 0.0, rng) == 1.0


def test_first_matching_rule_wins(rng):
    rules = RuleBasedDelays()
    rules.add_rule(lambda *a: True, 5.0)
    rules.add_rule(lambda *a: True, 7.0)
    assert rules.sample("a", "b", None, 0.0, rng) == 5.0


def test_hold_rule_returns_sentinel(rng):
    rules = RuleBasedDelays()
    rules.hold(lambda src, dst, msg: True)
    assert rules.sample("a", "b", None, 0.0, rng) is HOLD


def test_max_uses_limits_rule(rng):
    rules = RuleBasedDelays(fallback=ConstantDelay(1.0))
    rules.add_rule(lambda *a: True, 9.0, max_uses=2)
    assert rules.sample("a", "b", None, 0.0, rng) == 9.0
    assert rules.sample("a", "b", None, 0.0, rng) == 9.0
    assert rules.sample("a", "b", None, 0.0, rng) == 1.0


def test_rule_predicate_sees_message(rng):
    rules = RuleBasedDelays(fallback=ConstantDelay(0.5))
    rules.add_rule(lambda src, dst, msg: isinstance(msg, str) and "slow" in msg, 10.0)
    assert rules.sample("a", "b", "slow-one", 0.0, rng) == 10.0
    assert rules.sample("a", "b", 42, 0.0, rng) == 0.5


def test_describe_strings():
    assert "constant" in ConstantDelay(1.0).describe()
    assert "uniform" in UniformDelay(0, 1).describe()
    assert "rules(1)" in RuleBasedDelays([DelayRule(lambda *a: True, 1.0)]).describe()
