"""Tests for the region-aware topology delay model."""

import pytest

from repro import RegisterSystem
from repro.sim.delays import TopologyDelay
from repro.sim.rng import SimRng
from repro.types import reader_id, server_id, writer_id


@pytest.fixture
def rng():
    return SimRng(31, "topology")


def simple_topology(jitter=0.0):
    return TopologyDelay(
        regions={"s000": "us", "s001": "us", "s002": "eu", "w000": "us"},
        latency={("us", "us"): 0.02, ("us", "eu"): 0.12, ("eu", "eu"): 0.02,
                 ("local", "us"): 0.05, ("local", "eu"): 0.05,
                 ("local", "local"): 0.01},
        jitter=jitter,
    )


def test_intra_region_faster_than_cross_region(rng):
    model = simple_topology()
    assert model.sample("w000", "s000", None, 0.0, rng) == 0.02
    assert model.sample("w000", "s002", None, 0.0, rng) == 0.12


def test_latency_is_symmetric(rng):
    model = simple_topology()
    assert model.sample("s002", "s000", None, 0.0, rng) == \
        model.sample("s000", "s002", None, 0.0, rng)


def test_default_region_for_unassigned(rng):
    model = simple_topology()
    assert model.region_of("r042") == "local"
    assert model.sample("r042", "s000", None, 0.0, rng) == 0.05


def test_missing_latency_entry_raises(rng):
    model = TopologyDelay(regions={"a": "x", "b": "y"},
                          latency={("x", "x"): 0.01})
    with pytest.raises(KeyError):
        model.sample("a", "b", None, 0.0, rng)


def test_jitter_validation():
    with pytest.raises(ValueError):
        simple_topology(jitter=1.5)


def test_jitter_stays_within_fraction(rng):
    model = simple_topology(jitter=0.25)
    for _ in range(100):
        delay = model.sample("w000", "s002", None, 0.0, rng)
        assert 0.12 * 0.75 <= delay <= 0.12 * 1.25


def test_geo_register_prefers_local_quorum():
    """A US writer against a 3-US/2-EU deployment: the n - f = 4 quorum
    must include at least one EU server, so writes pay one cross-ocean
    round trip -- measurable and deterministic with zero jitter."""
    regions = {server_id(i): ("us" if i < 3 else "eu") for i in range(5)}
    regions[writer_id(0)] = "us"
    regions[reader_id(0)] = "us"
    model = TopologyDelay(
        regions=regions,
        latency={("us", "us"): 0.01, ("us", "eu"): 0.1, ("eu", "eu"): 0.01},
        jitter=0.0,
    )
    system = RegisterSystem("bsr", f=1, seed=1, delay_model=model)
    write = system.write(b"geo", writer=0, at=0.0)
    read = system.read(reader=0, at=10.0)
    system.run()
    # Each phase waits for the 4th reply; the 4th-closest server is in EU.
    assert write.latency == pytest.approx(2 * 2 * 0.1)
    assert read.value == b"geo"
    assert read.latency == pytest.approx(2 * 0.1)
