"""Tests for network partitions and healing."""

import pytest

from repro import RegisterSystem
from repro.consistency import check_safety
from repro.sim.delays import ConstantDelay
from repro.sim.partitions import PartitionManager
from repro.types import server_id


def test_partition_validation():
    system = RegisterSystem("bsr", f=1, seed=1, delay_model=ConstantDelay(1.0))
    manager = PartitionManager.install(system.sim)
    with pytest.raises(ValueError):
        manager.partition_now([{"s000"}])  # one group is not a partition
    with pytest.raises(ValueError):
        manager.partition_now([{"s000"}, {"s000", "s001"}])  # overlap


def test_separated_semantics():
    system = RegisterSystem("bsr", f=1, seed=1, delay_model=ConstantDelay(1.0))
    manager = PartitionManager.install(system.sim)
    assert not manager.active
    manager.partition_now([{"s000", "s001"}, {"s002", "s003", "s004"}])
    assert manager.active
    assert manager.separated("s000", "s002")
    assert not manager.separated("s000", "s001")
    # Unlisted processes (clients here) are multi-homed.
    assert not manager.separated("w000", "s000")
    assert not manager.separated("s000", "w000")
    manager.heal_now()
    assert not manager.separated("s000", "s002")


def test_minority_stranded_write_blocks_until_heal():
    """A writer stranded with 2 of 5 servers cannot finish -- until heal."""
    system = RegisterSystem("bsr", f=1, seed=2, delay_model=ConstantDelay(1.0))
    manager = PartitionManager.install(system.sim)
    # Strand the writer with two servers only.
    manager.partition_at(0.5, [
        {"w000", "s000", "s001"},
        {"s002", "s003", "s004", "w001", "r000", "r001"},
    ])
    write = system.write(b"stranded", writer=0, at=1.0)
    system.sim.run_for(30.0)
    assert not write.done  # 2 < n - f = 4 reachable servers
    manager.heal_now()
    system.run()
    assert write.done  # held messages released; quorum reached


def test_majority_side_keeps_operating_during_partition():
    system = RegisterSystem("bsr", f=1, seed=3, delay_model=ConstantDelay(1.0))
    manager = PartitionManager.install(system.sim)
    # s000 alone on one side; clients stay multi-homed but s000's replies
    # never matter: 4 = n - f servers remain reachable.
    manager.partition_at(0.5, [
        {server_id(0)},
        {server_id(i) for i in range(1, 5)},
    ])
    write = system.write(b"majority", writer=0, at=1.0)
    read = system.read(reader=0, at=10.0)
    system.sim.run_for(40.0)
    assert write.done and read.done
    assert read.value == b"majority"


def test_cross_partition_messages_survive_heal():
    """Partitions hold (not drop) messages: channels stay reliable."""
    system = RegisterSystem("bsr", f=1, seed=4, delay_model=ConstantDelay(1.0))
    manager = PartitionManager.install(system.sim)
    manager.partition_at(0.5, [
        {server_id(0), server_id(1)},
        {server_id(i) for i in range(2, 5)},
    ])
    # Force server-to-server-free traffic: use rb? BSR has none; verify via
    # a stranded writer instead.
    manager2 = manager  # alias for clarity
    write = system.write(b"later", writer=0, at=1.0)
    manager.heal_at(25.0)
    trace = system.run()
    assert write.done
    check_safety(trace).raise_if_violated()


def test_safety_holds_across_partition_cycles():
    system = RegisterSystem("bsr", f=1, seed=5, num_readers=2,
                            initial_value=b"v0",
                            delay_model=ConstantDelay(0.8))
    manager = PartitionManager.install(system.sim)
    for cycle in range(3):
        base = cycle * 40.0
        manager.partition_at(base + 5.0, [
            {server_id(cycle % 5)},
            {server_id(i) for i in range(5) if i != cycle % 5},
        ])
        manager.heal_at(base + 25.0)
        system.write(f"cycle-{cycle}".encode(), writer=cycle % 2, at=base + 8.0)
        system.read(reader=cycle % 2, at=base + 15.0)
    trace = system.run()
    check_safety(trace, initial_value=b"v0").raise_if_violated()
    reads = trace.reads()
    assert all(read.complete for read in reads)
