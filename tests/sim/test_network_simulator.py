"""Integration tests for the network + simulator pair."""

import pytest

from repro.errors import SimulationError
from repro.sim.delays import ConstantDelay, RuleBasedDelays
from repro.sim.network import default_sizer
from repro.sim.process import Process
from repro.sim.simulator import Simulator


class Recorder(Process):
    """Collects every delivered message with its arrival time."""

    def __init__(self, pid):
        super().__init__(pid)
        self.received = []

    def on_message(self, sender, message):
        self.received.append((self.ctx.now, sender, message))


class Echoer(Recorder):
    """Replies "echo:<msg>" to every message."""

    def on_message(self, sender, message):
        super().on_message(sender, message)
        self.ctx.send(sender, f"echo:{message}")


class Starter(Recorder):
    """Sends a fixed batch of messages when the simulation starts."""

    def __init__(self, pid, envelopes):
        super().__init__(pid)
        self.envelopes = envelopes

    def on_start(self):
        for dst, msg in self.envelopes:
            self.ctx.send(dst, msg)


def test_message_delivery_with_constant_delay():
    sim = Simulator(delay_model=ConstantDelay(2.0))
    receiver = sim.add_process(Recorder("b"))
    sim.add_process(Starter("a", [("b", "hello")]))
    sim.run()
    assert receiver.received == [(2.0, "a", "hello")]


def test_duplicate_process_id_rejected():
    sim = Simulator()
    sim.add_process(Recorder("x"))
    with pytest.raises(SimulationError):
        sim.add_process(Recorder("x"))


def test_request_reply_round_trip_takes_two_delays():
    sim = Simulator(delay_model=ConstantDelay(1.5))
    sim.add_process(Echoer("server"))
    client = sim.add_process(Starter("client", [("server", "ping")]))
    sim.run()
    assert client.received == [(3.0, "server", "echo:ping")]


def test_crashed_destination_swallows_messages():
    sim = Simulator(delay_model=ConstantDelay(1.0))
    receiver = sim.add_process(Recorder("b"))
    sim.add_process(Starter("a", [("b", "m1")]))
    sim.crash("b")
    sim.run()
    assert receiver.received == []
    assert sim.network.stats.messages_sent == 1
    assert sim.network.stats.messages_delivered == 0


def test_crash_unknown_process_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.crash("ghost")


def test_sender_crash_does_not_lose_in_flight_message():
    # The model allows a sender to fail after the message is in the channel.
    sim = Simulator(delay_model=ConstantDelay(5.0))
    receiver = sim.add_process(Recorder("b"))
    sim.add_process(Starter("a", [("b", "last-words")]))
    sim.schedule(1.0, lambda: sim.crash("a"))
    sim.run()
    assert [m for _, _, m in receiver.received] == ["last-words"]


def test_held_messages_released_at_end_of_run():
    delays = RuleBasedDelays(fallback=ConstantDelay(1.0))
    delays.hold(lambda src, dst, msg: msg == "held")
    sim = Simulator(delay_model=delays)
    receiver = sim.add_process(Recorder("b"))
    sim.add_process(Starter("a", [("b", "held"), ("b", "fast")]))
    sim.run(release_held_at_end=True)
    assert [m for _, _, m in receiver.received] == ["fast", "held"]


def test_held_messages_can_be_released_manually():
    delays = RuleBasedDelays(fallback=ConstantDelay(1.0))
    delays.hold(lambda src, dst, msg: True)
    sim = Simulator(delay_model=delays)
    receiver = sim.add_process(Recorder("b"))
    sim.add_process(Starter("a", [("b", "one"), ("b", "two")]))
    sim.run(release_held_at_end=False)
    assert receiver.received == []
    assert sim.network.held_count == 2
    released = sim.network.release_held(lambda src, dst, msg: msg == "two")
    assert released == 1
    sim.run(release_held_at_end=False)
    assert [m for _, _, m in receiver.received] == ["two"]


def test_network_stats_count_types_and_bytes():
    sim = Simulator(delay_model=ConstantDelay(0.1))
    sim.add_process(Recorder("b"))
    sim.add_process(Starter("a", [("b", "x"), ("b", "y")]))
    sim.run()
    stats = sim.network.stats
    assert stats.messages_sent == 2
    assert stats.per_type_count["str"] == 2
    assert stats.bytes_sent == 2 * default_sizer("x")


def test_network_tap_sees_all_sends():
    sim = Simulator(delay_model=ConstantDelay(0.1))
    sim.add_process(Recorder("b"))
    sim.add_process(Starter("a", [("b", "m")]))
    seen = []
    sim.network.add_tap(lambda src, dst, msg: seen.append((src, dst, msg)))
    sim.run()
    assert seen == [("a", "b", "m")]


def test_run_for_only_processes_window():
    sim = Simulator(delay_model=ConstantDelay(10.0))
    receiver = sim.add_process(Recorder("b"))
    sim.add_process(Starter("a", [("b", "later")]))
    sim.run_for(5.0)
    assert receiver.received == []
    assert sim.now == 5.0
    sim.run_for(6.0)
    assert [m for _, _, m in receiver.received] == ["later"]


def test_horizon_guards_against_livelock():
    sim = Simulator(delay_model=ConstantDelay(1.0), horizon=10.0)

    class Pinger(Process):
        def on_start(self):
            self.ctx.send(self.pid, "tick")

        def on_message(self, sender, message):
            self.ctx.send(self.pid, "tick")

    sim.add_process(Pinger("p"))
    with pytest.raises(SimulationError):
        sim.run()


def test_max_events_guards_against_storms():
    sim = Simulator(delay_model=ConstantDelay(0.000001))

    class Storm(Process):
        def on_start(self):
            self.ctx.send(self.pid, 0)

        def on_message(self, sender, message):
            self.ctx.send(self.pid, message + 1)

    sim.add_process(Storm("s"))
    with pytest.raises(SimulationError):
        sim.run(max_events=1000)


def test_timers_fire_at_requested_offset():
    sim = Simulator()
    times = []

    class TimerUser(Process):
        def on_start(self):
            self.ctx.set_timer(4.0, lambda: times.append(self.ctx.now))

        def on_message(self, sender, message):
            pass

    sim.add_process(TimerUser("t"))
    sim.run()
    assert times == [4.0]


def test_cancelled_timer_does_not_fire():
    sim = Simulator()
    times = []

    class TimerUser(Process):
        def on_start(self):
            handle = self.ctx.set_timer(4.0, lambda: times.append("fired"))
            self.ctx.cancel_timer(handle)

        def on_message(self, sender, message):
            pass

    sim.add_process(TimerUser("t"))
    sim.run()
    assert times == []


def test_determinism_same_seed_same_outcome():
    def run_once():
        sim = Simulator(seed=77, delay_model=None)
        receiver = sim.add_process(Recorder("b"))
        sim.add_process(Starter("a", [("b", i) for i in range(20)]))
        sim.run()
        return receiver.received

    assert run_once() == run_once()
