"""Tests for the message-flow event log."""

from repro import RegisterSystem
from repro.sim.delays import ConstantDelay
from repro.sim.eventlog import EventLog


def run_logged_system():
    system = RegisterSystem("bsr", f=1, seed=1, delay_model=ConstantDelay(1.0))
    log = EventLog.attach(system.sim)
    system.write(b"logged-value", writer=0, at=0.0)
    system.read(reader=0, at=10.0)
    system.run()
    return system, log


def test_log_captures_sends_and_deliveries():
    system, log = run_logged_system()
    assert len(log) > 0
    sends = log.count(kind="send")
    deliveries = log.count(kind="deliver")
    assert sends == system.network_stats().messages_sent
    assert deliveries == system.network_stats().messages_delivered


def test_write_message_pattern():
    _, log = run_logged_system()
    # A write broadcasts QUERY-TAG and PUT-DATA to all 5 servers.
    assert log.count(kind="send", message_type="QueryTag") == 5
    assert log.count(kind="send", message_type="PutData") == 5
    # The one-shot read is a single QUERY-DATA broadcast.
    assert log.count(kind="send", message_type="QueryData") == 5


def test_filter_by_endpoints():
    _, log = run_logged_system()
    to_s000 = log.filter(dst="s000")
    assert to_s000 and all(e.dst == "s000" for e in to_s000)
    from_writer = log.filter(kind="send", src="w000")
    assert from_writer and all(e.src == "w000" for e in from_writer)


def test_deliveries_are_timestamped_after_sends():
    _, log = run_logged_system()
    first_send = log.filter(kind="send")[0]
    matching_delivery = next(
        e for e in log.filter(kind="deliver")
        if e.message_type == first_send.message_type and e.dst == first_send.dst
    )
    assert matching_delivery.time == first_send.time + 1.0  # constant delay


def test_render_is_readable():
    _, log = run_logged_system()
    text = log.render(limit=10)
    assert "PutData" in log.render()
    assert "w000" in text
    assert len(text.splitlines()) == 11  # header + 10 events


def test_render_includes_payload_preview():
    _, log = run_logged_system()
    assert "logged-value" in log.render(message_type="PutData")


def test_events_in_chronological_order():
    _, log = run_logged_system()
    times = [event.time for event in log.events]
    assert times == sorted(times)
