"""Unit tests for execution traces and operation records."""

from repro.sim.trace import OpKind, Trace


def make_trace():
    trace = Trace()
    w = trace.begin("w0", OpKind.WRITE, 0.0, value=b"v1")
    trace.complete(w, 2.0, tag="t1", rounds=2)
    r = trace.begin("r0", OpKind.READ, 3.0)
    trace.complete(r, 4.0, value=b"v1", tag="t1", rounds=1)
    return trace, w, r


def test_begin_assigns_increasing_ids():
    trace = Trace()
    a = trace.begin("c", OpKind.READ, 0.0)
    b = trace.begin("c", OpKind.READ, 1.0)
    assert b.op_id > a.op_id


def test_latency_and_completeness():
    trace, w, r = make_trace()
    assert w.complete and w.latency == 2.0
    assert r.complete and r.latency == 1.0


def test_incomplete_operation_has_no_latency():
    trace = Trace()
    op = trace.begin("c", OpKind.WRITE, 0.0, value=b"x")
    assert not op.complete
    assert op.latency is None


def test_read_value_set_on_completion():
    trace = Trace()
    op = trace.begin("r", OpKind.READ, 0.0)
    trace.complete(op, 1.0, value=b"result")
    assert op.value == b"result"


def test_write_value_not_overwritten_on_completion():
    trace = Trace()
    op = trace.begin("w", OpKind.WRITE, 0.0, value=b"payload")
    trace.complete(op, 1.0, value="ignored")
    assert op.value == b"payload"


def test_precedes_and_concurrency():
    trace = Trace()
    first = trace.begin("a", OpKind.WRITE, 0.0, value=1)
    trace.complete(first, 1.0)
    second = trace.begin("b", OpKind.READ, 2.0)
    trace.complete(second, 3.0)
    overlapping = trace.begin("c", OpKind.READ, 0.5)
    trace.complete(overlapping, 2.5)
    assert first.precedes(second)
    assert not second.precedes(first)
    assert first.concurrent_with(overlapping)
    assert overlapping.concurrent_with(second)


def test_incomplete_op_never_precedes():
    trace = Trace()
    pending = trace.begin("a", OpKind.WRITE, 0.0, value=1)
    later = trace.begin("b", OpKind.READ, 10.0)
    trace.complete(later, 11.0)
    assert not pending.precedes(later)
    assert not later.precedes(pending)  # pending invoked before later responded
    assert pending.concurrent_with(later)


def test_filters():
    trace, w, r = make_trace()
    pending_write = trace.begin("w1", OpKind.WRITE, 5.0, value=b"v2")
    assert trace.reads() == [r]
    assert w in trace.writes() and pending_write in trace.writes()
    assert trace.writes(completed_only=True) == [w]
    assert len(trace.completed) == 2
    assert len(trace) == 3


def test_format_is_human_readable():
    trace, _, _ = make_trace()
    text = trace.format()
    assert "write" in text and "read" in text and "w0" in text
