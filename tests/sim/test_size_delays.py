"""Unit tests for the size-dependent delay model."""

import pytest

from repro.core.messages import PutData
from repro.core.tags import Tag
from repro.sim.delays import SizeDependentDelay
from repro.sim.rng import SimRng


@pytest.fixture
def rng():
    return SimRng(17, "size-delays")


def test_validation():
    with pytest.raises(ValueError):
        SizeDependentDelay(base=-1)
    with pytest.raises(ValueError):
        SizeDependentDelay(bytes_per_second=0)
    with pytest.raises(ValueError):
        SizeDependentDelay(jitter=1.0)


def test_delay_grows_with_payload(rng):
    model = SizeDependentDelay(base=0.1, bytes_per_second=1000)
    small = PutData(op_id=1, tag=Tag(1, "w"), payload=b"x")
    large = PutData(op_id=1, tag=Tag(1, "w"), payload=b"x" * 10_000)
    assert model.sample("a", "b", large, 0.0, rng) > \
        model.sample("a", "b", small, 0.0, rng)


def test_exact_formula_without_jitter(rng):
    model = SizeDependentDelay(base=0.5, bytes_per_second=100)
    message = PutData(op_id=1, tag=Tag(1, "w"), payload=b"1234567890")
    expected = 0.5 + message.wire_size() / 100
    assert model.sample("a", "b", message, 0.0, rng) == pytest.approx(expected)


def test_jitter_bounds(rng):
    model = SizeDependentDelay(base=1.0, bytes_per_second=1e9, jitter=0.2)
    # Serialization is negligible at 1 GB/s; delay is base +/- 20 %.
    for _ in range(100):
        delay = model.sample("a", "b", "m", 0.0, rng)
        assert 0.79 <= delay <= 1.21


def test_custom_sizer(rng):
    model = SizeDependentDelay(base=0.0, bytes_per_second=1.0,
                               sizer=lambda m: 42)
    assert model.sample("a", "b", object(), 0.0, rng) == 42.0


def test_fallback_sizer_for_plain_objects(rng):
    model = SizeDependentDelay(base=0.0, bytes_per_second=1.0)
    delay = model.sample("a", "b", "hello", 0.0, rng)
    assert delay == 16 + len(repr("hello"))


def test_describe():
    text = SizeDependentDelay(base=0.1, bytes_per_second=1e6).describe()
    assert "size-dependent" in text
