"""Unit tests for the deterministic event queue."""

import pytest

from repro.sim.events import EventQueue


def test_empty_queue_is_falsy():
    queue = EventQueue()
    assert not queue
    assert len(queue) == 0
    assert queue.pop() is None
    assert queue.peek_time() is None


def test_pop_returns_events_in_time_order():
    queue = EventQueue()
    fired = []
    queue.schedule(3.0, lambda: fired.append("c"))
    queue.schedule(1.0, lambda: fired.append("a"))
    queue.schedule(2.0, lambda: fired.append("b"))
    while queue:
        queue.pop().callback()
    assert fired == ["a", "b", "c"]


def test_same_time_events_fire_in_schedule_order():
    queue = EventQueue()
    fired = []
    for name in "abcde":
        queue.schedule(1.0, lambda name=name: fired.append(name))
    while queue:
        queue.pop().callback()
    assert fired == list("abcde")


def test_negative_time_rejected():
    queue = EventQueue()
    with pytest.raises(ValueError):
        queue.schedule(-0.5, lambda: None)


def test_cancelled_event_is_skipped():
    queue = EventQueue()
    fired = []
    keep = queue.schedule(1.0, lambda: fired.append("keep"))
    drop = queue.schedule(0.5, lambda: fired.append("drop"))
    queue.cancel(drop)
    assert len(queue) == 1
    event = queue.pop()
    event.callback()
    assert fired == ["keep"]
    assert queue.pop() is None


def test_cancel_is_idempotent():
    queue = EventQueue()
    event = queue.schedule(1.0, lambda: None)
    queue.cancel(event)
    queue.cancel(event)
    assert len(queue) == 0


def test_peek_time_skips_cancelled_head():
    queue = EventQueue()
    head = queue.schedule(0.5, lambda: None)
    queue.schedule(2.0, lambda: None)
    queue.cancel(head)
    assert queue.peek_time() == 2.0


def test_interleaved_schedule_and_pop():
    queue = EventQueue()
    order = []
    queue.schedule(1.0, lambda: order.append(1))
    first = queue.pop()
    first.callback()
    queue.schedule(0.5, lambda: order.append(2))  # earlier absolute time is fine
    queue.pop().callback()
    assert order == [1, 2]
