"""Unit tests for the virtual clock."""

import pytest

from repro.errors import SimulationError
from repro.sim.clock import VirtualClock


def test_clock_starts_at_zero_by_default():
    assert VirtualClock().now == 0.0


def test_clock_starts_at_given_time():
    assert VirtualClock(5.5).now == 5.5


def test_clock_rejects_negative_start():
    with pytest.raises(ValueError):
        VirtualClock(-1.0)


def test_advance_moves_forward():
    clock = VirtualClock()
    clock.advance_to(3.0)
    assert clock.now == 3.0


def test_advance_to_same_time_is_allowed():
    clock = VirtualClock(2.0)
    clock.advance_to(2.0)
    assert clock.now == 2.0


def test_advance_backwards_raises():
    clock = VirtualClock(10.0)
    with pytest.raises(SimulationError):
        clock.advance_to(9.999)
