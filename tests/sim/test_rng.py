"""Unit and property tests for the forkable RNG."""

from hypothesis import given, strategies as st

from repro.sim.rng import SimRng, default_rng


def test_same_seed_same_stream():
    a = SimRng(42)
    b = SimRng(42)
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_seeds_differ():
    a = SimRng(1)
    b = SimRng(2)
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_fork_is_deterministic():
    a = SimRng(7).fork("net")
    b = SimRng(7).fork("net")
    assert [a.randint(0, 100) for _ in range(5)] == [b.randint(0, 100) for _ in range(5)]


def test_forked_streams_are_independent():
    root = SimRng(7)
    net = root.fork("net")
    workload = root.fork("workload")
    net_draws = [net.random() for _ in range(5)]
    # Drawing from one stream does not shift the other.
    fresh_workload = SimRng(7).fork("workload")
    assert [workload.random() for _ in range(5)] == \
        [fresh_workload.random() for _ in range(5)]
    assert net_draws != [SimRng(7).fork("net2").random() for _ in range(5)]


def test_nested_fork_labels_compose():
    a = SimRng(3).fork("x").fork("y")
    b = SimRng(3).fork("x").fork("y")
    assert a.random() == b.random()
    assert a.label == "root/x/y"


def test_default_rng_seed_zero():
    assert default_rng().seed == 0
    assert default_rng(9).seed == 9


def test_randbytes_length_and_determinism():
    a = SimRng(5).randbytes(32)
    b = SimRng(5).randbytes(32)
    assert len(a) == 32
    assert a == b


@given(st.integers(min_value=1, max_value=50), st.floats(min_value=0.0, max_value=3.0))
def test_zipf_index_in_range(n, skew):
    rng = SimRng(11, "zipf")
    for _ in range(20):
        assert 0 <= rng.zipf_index(n, skew) < n


def test_zipf_skew_prefers_low_indices():
    rng = SimRng(13, "zipf-skew")
    draws = [rng.zipf_index(100, 1.5) for _ in range(2000)]
    low = sum(1 for d in draws if d < 10)
    assert low > len(draws) * 0.4  # heavily skewed toward the head


def test_zipf_rejects_empty_population():
    import pytest
    with pytest.raises(ValueError):
        SimRng(0).zipf_index(0, 1.0)


def test_sample_and_choice_are_seeded():
    a = SimRng(21)
    b = SimRng(21)
    population = list(range(100))
    assert a.sample(population, 10) == b.sample(population, 10)
    assert a.choice(population) == b.choice(population)
