"""Unit tests for failure schedules."""

import pytest

from repro.sim.failures import FailureSchedule, random_failure_schedule
from repro.sim.rng import SimRng
from repro.types import FailureMode


def test_crash_event_recorded():
    schedule = FailureSchedule().crash("s001", at_time=5.0)
    assert len(schedule.crash_events) == 1
    event = schedule.crash_events[0]
    assert event.pid == "s001" and event.at_time == 5.0
    assert event.mode is FailureMode.CRASH


def test_byzantine_event_recorded():
    schedule = FailureSchedule().byzantine("s002", behavior="stale")
    assert schedule.byzantine_ids == ["s002"]
    assert schedule.events[0].behavior == "stale"


def test_builder_chains():
    schedule = FailureSchedule().crash("a", 1.0).byzantine("b").crash("c", 2.0)
    assert len(schedule.events) == 3


def test_validate_enforces_budget():
    schedule = FailureSchedule().byzantine("s0").byzantine("s1")
    with pytest.raises(ValueError):
        schedule.validate(f=1)
    schedule.validate(f=2)  # fine


def test_random_schedule_within_budget():
    servers = [f"s{i}" for i in range(10)]
    for seed in range(20):
        schedule = random_failure_schedule(servers, f=3, rng=SimRng(seed))
        assert len(schedule.byzantine_ids) <= 3
        schedule.validate(f=3)


def test_random_schedule_exact_count():
    servers = [f"s{i}" for i in range(10)]
    schedule = random_failure_schedule(servers, f=3, rng=SimRng(5),
                                       byzantine_count=2)
    assert len(schedule.byzantine_ids) == 2


def test_random_schedule_validates_inputs():
    with pytest.raises(ValueError):
        random_failure_schedule(["s0"], f=2, rng=SimRng(0))
    with pytest.raises(ValueError):
        random_failure_schedule([f"s{i}" for i in range(5)], f=1,
                                rng=SimRng(0), byzantine_count=2)


def test_random_schedule_is_deterministic():
    servers = [f"s{i}" for i in range(8)]
    a = random_failure_schedule(servers, f=2, rng=SimRng(42))
    b = random_failure_schedule(servers, f=2, rng=SimRng(42))
    assert [(e.pid, e.behavior) for e in a.events] == \
        [(e.pid, e.behavior) for e in b.events]
