"""ChaosProxy behaviour against a frame-echo upstream."""

import asyncio

import pytest

from repro.chaos.faults import FaultPlan, LinkPolicy
from repro.chaos.proxy import ChaosProxy
from repro.transport.codec import read_frame, write_frame


def run(coro):
    return asyncio.run(coro)


class EchoServer:
    """Upstream that echoes every frame it receives."""

    def __init__(self):
        self._server = None
        self.address = None

    async def start(self):
        self._server = await asyncio.start_server(self._serve, "127.0.0.1", 0)
        self.address = self._server.sockets[0].getsockname()[:2]

    async def stop(self):
        self._server.close()
        await self._server.wait_closed()

    async def _serve(self, reader, writer):
        try:
            while True:
                frame = await read_frame(reader)
                write_frame(writer, frame)
                await writer.drain()
        except (asyncio.IncompleteReadError, ConnectionResetError):
            pass
        finally:
            writer.close()


async def proxied_echo(plan):
    upstream = EchoServer()
    await upstream.start()
    proxy = ChaosProxy("s000", upstream.address, plan)
    await proxy.start()
    return upstream, proxy


def test_passthrough_roundtrip():
    async def scenario():
        upstream, proxy = await proxied_echo(FaultPlan(seed=0))
        try:
            reader, writer = await asyncio.open_connection(*proxy.address)
            write_frame(writer, b"ping")
            await writer.drain()
            assert await read_frame(reader) == b"ping"
            writer.close()
        finally:
            await proxy.stop()
            await upstream.stop()

    run(scenario())


def test_duplicate_rate_doubles_frames_each_direction():
    plan = FaultPlan(seed=0, default_policy=LinkPolicy(duplicate_rate=1.0))

    async def scenario():
        upstream, proxy = await proxied_echo(plan)
        try:
            reader, writer = await asyncio.open_connection(*proxy.address)
            write_frame(writer, b"dup")
            await writer.drain()
            # Doubled on the way in (2 echoes) and each echo doubled on
            # the way out: 4 identical frames arrive.
            frames = [await asyncio.wait_for(read_frame(reader), 2.0)
                      for _ in range(4)]
            assert frames == [b"dup"] * 4
            writer.close()
        finally:
            await proxy.stop()
            await upstream.stop()

    run(scenario())


def test_blackhole_swallows_then_heal_restores():
    plan = FaultPlan(seed=0)

    async def scenario():
        upstream, proxy = await proxied_echo(plan)
        try:
            reader, writer = await asyncio.open_connection(*proxy.address)
            proxy.blackhole()
            write_frame(writer, b"lost")
            await writer.drain()
            with pytest.raises(asyncio.TimeoutError):
                await asyncio.wait_for(read_frame(reader), 0.3)
            proxy.heal()
            write_frame(writer, b"back")
            await writer.drain()
            assert await asyncio.wait_for(read_frame(reader), 2.0) == b"back"
            writer.close()
        finally:
            await proxy.stop()
            await upstream.stop()

    run(scenario())


def test_sever_all_cuts_live_connections():
    async def scenario():
        upstream, proxy = await proxied_echo(FaultPlan(seed=0))
        try:
            reader, writer = await asyncio.open_connection(*proxy.address)
            write_frame(writer, b"warm")
            await writer.drain()
            assert await read_frame(reader) == b"warm"
            assert proxy.sever_all() > 0
            with pytest.raises((asyncio.IncompleteReadError,
                                ConnectionResetError)):
                await asyncio.wait_for(read_frame(reader), 2.0)
        finally:
            await proxy.stop()
            await upstream.stop()

    run(scenario())


def test_sever_decision_cuts_connection():
    plan = FaultPlan(seed=0, default_policy=LinkPolicy(sever_rate=1.0))

    async def scenario():
        upstream, proxy = await proxied_echo(plan)
        try:
            reader, writer = await asyncio.open_connection(*proxy.address)
            write_frame(writer, b"doomed")
            await writer.drain()
            with pytest.raises((asyncio.IncompleteReadError,
                                ConnectionResetError)):
                await asyncio.wait_for(read_frame(reader), 2.0)
        finally:
            await proxy.stop()
            await upstream.stop()

    run(scenario())


def test_upstream_down_refuses_clients():
    async def scenario():
        upstream, proxy = await proxied_echo(FaultPlan(seed=0))
        await upstream.stop()  # node "crashed"
        try:
            reader, writer = await asyncio.open_connection(*proxy.address)
            with pytest.raises((asyncio.IncompleteReadError,
                                ConnectionResetError)):
                await asyncio.wait_for(read_frame(reader), 2.0)
        finally:
            await proxy.stop()

    run(scenario())
