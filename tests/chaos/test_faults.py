"""Unit tests for the deterministic fault plan."""

import pytest

from repro.chaos.faults import Decision, FaultKind, FaultPlan, LinkPolicy


def decisions(plan, link, direction, count):
    return [plan.decide(link, direction) for _ in range(count)]


def test_same_seed_same_decision_sequence():
    policy = LinkPolicy(drop_rate=0.2, delay_rate=0.3, duplicate_rate=0.1,
                        sever_rate=0.05)
    a = FaultPlan(seed=42, default_policy=policy)
    b = FaultPlan(seed=42, default_policy=policy)
    for link in ("s000", "s001"):
        for direction in ("c2s", "s2c"):
            assert (decisions(a, link, direction, 200)
                    == decisions(b, link, direction, 200))


def test_different_seeds_diverge():
    policy = LinkPolicy(drop_rate=0.5)
    a = FaultPlan(seed=1, default_policy=policy)
    b = FaultPlan(seed=2, default_policy=policy)
    assert (decisions(a, "s000", "c2s", 100)
            != decisions(b, "s000", "c2s", 100))


def test_links_are_independent_streams():
    """Interleaving frames on other links must not perturb a link's fate."""
    policy = LinkPolicy(drop_rate=0.5)
    a = FaultPlan(seed=7, default_policy=policy)
    b = FaultPlan(seed=7, default_policy=policy)
    expected = decisions(a, "s000", "c2s", 50)
    got = []
    for _ in range(50):
        b.decide("s001", "c2s")          # noise on another link
        got.append(b.decide("s000", "c2s"))
        b.decide("s000", "s2c")          # noise on the other direction
    assert got == expected


def test_default_policy_delivers_everything():
    plan = FaultPlan(seed=0)
    assert decisions(plan, "s000", "c2s", 50) == [Decision(FaultKind.DELIVER)] * 50
    assert plan.counts == {}


def test_certain_rates_fire_always():
    plan = FaultPlan(seed=0, default_policy=LinkPolicy(drop_rate=1.0))
    assert all(d.kind is FaultKind.DROP
               for d in decisions(plan, "s000", "c2s", 20))
    plan.set_policy("s000", drop_rate=0.0, sever_rate=1.0)
    assert plan.decide("s000", "c2s").kind is FaultKind.SEVER
    # Other links still use the default policy.
    assert plan.decide("s001", "c2s").kind is FaultKind.DROP


def test_blackhole_and_heal():
    plan = FaultPlan(seed=0)
    plan.blackhole("s002")
    assert plan.blackholed == ["s002"]
    assert plan.decide("s002", "s2c").kind is FaultKind.BLACKHOLE
    assert plan.decide("s000", "s2c").kind is FaultKind.DELIVER
    plan.heal("s002")
    assert plan.blackholed == []
    assert plan.decide("s002", "s2c").kind is FaultKind.DELIVER


def test_heal_all_clears_every_override():
    plan = FaultPlan(seed=0)
    plan.blackhole("s000")
    plan.set_policy("s001", drop_rate=1.0)
    plan.heal()
    assert plan.decide("s000", "c2s").kind is FaultKind.DELIVER
    assert plan.decide("s001", "c2s").kind is FaultKind.DELIVER


def test_delay_bounds_and_throttle():
    plan = FaultPlan(seed=3, default_policy=LinkPolicy(
        delay_rate=1.0, delay_min=0.01, delay_max=0.05, throttle=0.1))
    for decision in decisions(plan, "s000", "c2s", 50):
        assert decision.kind is FaultKind.DELAY
        assert 0.11 <= decision.delay <= 0.15  # throttle + [min, max]


def test_throttle_alone_paces_delivery():
    plan = FaultPlan(seed=0, default_policy=LinkPolicy(throttle=0.02))
    decision = plan.decide("s000", "c2s")
    assert decision.kind is FaultKind.DELIVER
    assert decision.delay == pytest.approx(0.02)


def test_event_log_records_and_caps(monkeypatch):
    monkeypatch.setattr("repro.chaos.faults.MAX_EVENTS", 5)
    plan = FaultPlan(seed=0, default_policy=LinkPolicy(drop_rate=1.0))
    decisions(plan, "s000", "c2s", 8)
    assert len(plan.events) == 5
    assert plan.events_dropped == 3
    assert plan.counts["drop"] == 8
    assert plan.events[0] == "s000/c2s#0: drop"
