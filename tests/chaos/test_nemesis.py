"""Nemesis schedule construction and liveness-safety of the named plans."""

import asyncio

import pytest

from repro.chaos.nemesis import SCHEDULES, Nemesis, NemesisStep, build_schedule
from repro.errors import ConfigurationError
from repro.runtime import LocalCluster
from repro.types import server_id

SERVERS = [server_id(i) for i in range(5)]


def test_build_schedule_is_deterministic():
    for name in SCHEDULES:
        first = build_schedule(name, SERVERS, f=1, seed=9)
        second = build_schedule(name, SERVERS, f=1, seed=9)
        assert first == second


def test_different_seeds_pick_different_victims():
    diverged = any(
        build_schedule("rolling-partition", SERVERS, f=1, seed=a)
        != build_schedule("rolling-partition", SERVERS, f=1, seed=b)
        for a, b in ((0, 1), (0, 2), (1, 2))
    )
    assert diverged


def test_unknown_schedule_rejected():
    with pytest.raises(ConfigurationError):
        build_schedule("tornado", SERVERS, f=1)


def test_crash_restart_injects_f_cycles():
    steps = build_schedule("crash-restart", SERVERS, f=2, seed=0)
    crashes = [s for s in steps if s.action == "crash"]
    restarts = [s for s in steps if s.action == "restart"]
    assert len(crashes) == len(restarts) == 2
    for crash, restart in zip(crashes, restarts):
        assert crash.targets == restart.targets
        assert restart.at > crash.at


@pytest.mark.parametrize("name", [n for n in SCHEDULES if n != "none"])
def test_at_most_f_servers_faulted_at_once(name):
    """Every named schedule must preserve n - f reachable servers (f=1)."""
    steps = build_schedule(name, SERVERS, f=1, seed=5)
    open_faults = {}
    for step in sorted(steps, key=lambda s: s.at):
        if step.action in ("crash", "partition", "degrade"):
            for pid in step.targets:
                open_faults[pid] = step.action
        elif step.action in ("restart", "heal"):
            for pid in step.targets:
                open_faults.pop(pid, None)
        assert len(open_faults) <= 1, f"{name} faults {open_faults} at once"
    assert not open_faults, f"{name} leaves {open_faults} unhealed"


def test_describe_is_stable():
    step = NemesisStep(1.25, "degrade", ("s001",), (("drop_rate", 0.15),))
    assert step.describe() == "1.25s degrade s001 drop_rate=0.15"


def test_nemesis_requires_chaos_cluster():
    cluster = LocalCluster("bsr", f=1)  # chaos disabled
    with pytest.raises(ConfigurationError):
        Nemesis(cluster, [])


def test_nemesis_applies_steps_in_order():
    async def scenario():
        cluster = LocalCluster("bsr", f=1, chaos=True, chaos_seed=1)
        await cluster.start()
        try:
            steps = [
                NemesisStep(0.05, "partition", (cluster.server_ids[0],)),
                NemesisStep(0.10, "sever", (cluster.server_ids[0],)),
                NemesisStep(0.15, "heal", ()),
            ]
            nemesis = Nemesis(cluster, steps)
            await nemesis.run()
            assert nemesis.events == [s.describe() for s in steps]
            assert cluster.chaos_plan.blackholed == []
        finally:
            await cluster.stop()

    asyncio.run(scenario())
