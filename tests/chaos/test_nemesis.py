"""Nemesis schedule construction and liveness-safety of the named plans."""

import asyncio

import pytest

from repro.chaos.nemesis import SCHEDULES, Nemesis, NemesisStep, build_schedule
from repro.errors import ConfigurationError
from repro.runtime import LocalCluster
from repro.types import server_id

SERVERS = [server_id(i) for i in range(5)]


def test_build_schedule_is_deterministic():
    for name in SCHEDULES:
        first = build_schedule(name, SERVERS, f=1, seed=9)
        second = build_schedule(name, SERVERS, f=1, seed=9)
        assert first == second


def test_different_seeds_pick_different_victims():
    diverged = any(
        build_schedule("rolling-partition", SERVERS, f=1, seed=a)
        != build_schedule("rolling-partition", SERVERS, f=1, seed=b)
        for a, b in ((0, 1), (0, 2), (1, 2))
    )
    assert diverged


def test_unknown_schedule_rejected():
    with pytest.raises(ConfigurationError):
        build_schedule("tornado", SERVERS, f=1)


def test_crash_restart_injects_f_cycles():
    steps = build_schedule("crash-restart", SERVERS, f=2, seed=0)
    crashes = [s for s in steps if s.action == "crash"]
    restarts = [s for s in steps if s.action == "restart"]
    assert len(crashes) == len(restarts) == 2
    for crash, restart in zip(crashes, restarts):
        assert crash.targets == restart.targets
        assert restart.at > crash.at


@pytest.mark.parametrize(
    "name", [n for n in SCHEDULES if n not in ("none", "exceed-f")])
def test_at_most_f_servers_faulted_at_once(name):
    """Every liveness-safe schedule preserves n - f reachable servers
    (f=1); ``exceed-f`` is excluded because violating that bound is its
    entire purpose."""
    steps = build_schedule(name, SERVERS, f=1, seed=5)
    open_faults = {}
    for step in sorted(steps, key=lambda s: s.at):
        if step.action in ("crash", "partition", "degrade"):
            for pid in step.targets:
                open_faults[pid] = step.action
        elif step.action in ("restart", "heal"):
            for pid in step.targets:
                open_faults.pop(pid, None)
        assert len(open_faults) <= 1, f"{name} faults {open_faults} at once"
    assert not open_faults, f"{name} leaves {open_faults} unhealed"


def test_describe_is_stable():
    step = NemesisStep(1.25, "degrade", ("s001",), (("drop_rate", 0.15),))
    assert step.describe() == "1.25s degrade s001 drop_rate=0.15"


def test_f_concurrent_spends_whole_budget_at_once():
    steps = build_schedule("f-concurrent", SERVERS, f=2, seed=3)
    crashes = [s for s in steps if s.action == "crash"]
    assert len(crashes) == 2  # two cycles
    for crash in crashes:
        assert len(crash.targets) == 2  # exactly f victims per step
    restarts = [s for s in steps if s.action == "restart"]
    assert [c.targets for c in crashes] == [r.targets for r in restarts]


def test_exceed_f_crashes_one_past_the_budget():
    steps = build_schedule("exceed-f", SERVERS, f=1, seed=3)
    crashes = [s for s in steps if s.action == "crash"]
    assert len(crashes) == 1
    assert len(crashes[0].targets) == 2  # f + 1 concurrent victims
    (restart,) = [s for s in steps if s.action == "restart"]
    assert restart.targets == crashes[0].targets


def test_nemesis_capability_checks():
    """Frame-level steps need a chaos cluster; crash steps do not."""
    plain = LocalCluster("bsr", f=1)  # chaos disabled: no plan, no proxies
    with pytest.raises(ConfigurationError):
        Nemesis(plain, [NemesisStep(0.1, "partition", (SERVERS[0],))])
    with pytest.raises(ConfigurationError):
        Nemesis(plain, [NemesisStep(0.1, "sever", (SERVERS[0],))])
    # crash/restart only need the methods, which LocalCluster has.
    Nemesis(plain, [NemesisStep(0.1, "crash", (SERVERS[0],)),
                    NemesisStep(0.2, "restart", (SERVERS[0],))])

    class NoFaults:  # no crash/restart, no plan, no proxies
        chaos_plan = None
        proxies = {}

    with pytest.raises(ConfigurationError):
        Nemesis(NoFaults(), [NemesisStep(0.1, "crash", (SERVERS[0],))])


def test_nemesis_applies_steps_in_order():
    async def scenario():
        cluster = LocalCluster("bsr", f=1, chaos=True, chaos_seed=1)
        await cluster.start()
        try:
            steps = [
                NemesisStep(0.05, "partition", (cluster.server_ids[0],)),
                NemesisStep(0.10, "sever", (cluster.server_ids[0],)),
                NemesisStep(0.15, "heal", ()),
            ]
            nemesis = Nemesis(cluster, steps)
            await nemesis.run()
            assert nemesis.events == [s.describe() for s in steps]
            assert cluster.chaos_plan.blackholed == []
        finally:
            await cluster.stop()

    asyncio.run(scenario())
