"""Mutation tests: break the protocol on purpose, the checkers must notice.

Each mutation removes one safeguard the paper's design arguments call out
as necessary.  If a mutated protocol sailed through the consistency
checkers, the *verification stack* would be broken -- these tests pin the
checkers' sensitivity, and double as executable documentation of why each
protocol rule exists:

* witness threshold ``f + 1`` (Lemma 5)            -> GullibleReadOperation
* writes reaching ``n - f`` servers (Lemma 7)      -> ShallowWriteOperation
* fresh tag per write (Lemma 2)                    -> NonIncrementingWrite
"""

import pytest

from repro import RegisterSystem
from repro.consistency import check_safety
from repro.core.bsr import BSRReadOperation, BSRWriteOperation
from repro.core.messages import PutData, QueryData
from repro.core.operation import ReplyCollector
from repro.core.quorum import kth_highest
from repro.core.tags import Tag, TaggedValue
from repro.sim.delays import ConstantDelay, RuleBasedDelays, UniformDelay
from repro.types import server_id, writer_id


class GullibleReadOperation(BSRReadOperation):
    """MUTATION: accepts a pair on a single witness (drops Lemma 5)."""

    def _witnessed_pairs(self):
        from collections import Counter
        counts = Counter()
        for reply in self._replies.values():
            try:
                counts[TaggedValue(reply.tag, reply.payload)] += 1
            except TypeError:
                continue
        return [pair for pair, count in counts.items() if count >= 1]


class ShallowWriteOperation(BSRWriteOperation):
    """MUTATION: declares the write complete after f + 1 acks (not n - f)."""

    def _on_ack(self, sender, message):
        if message.tag != self._tag:
            return []
        self._acks.add(sender, message)
        if len(self._acks) >= self.f + 1:
            self._phase = "done"
            self._complete(self._tag)
        return []


class NonIncrementingWriteOperation(BSRWriteOperation):
    """MUTATION: reuses the observed tag number instead of incrementing."""

    def _on_tag_reply(self, sender, message):
        if not isinstance(message.tag, Tag):
            return []
        self._tag_replies.add(sender, message)
        if len(self._tag_replies) < self.quorum:
            return []
        tags = [reply.tag for reply in self._tag_replies.values()]
        base = kth_highest(tags, self.f + 1)
        self._tag = Tag(max(base.num, 1), self.client_id)  # no + 1
        self._phase = "put-data"
        self.rounds = 2
        return self.broadcast(PutData(op_id=self.op_id, tag=self._tag,
                                      payload=self.value))


def swap_operation_class(system, client, cls):
    """Make the client's next submitted operation use the mutated class."""
    entry = system.clients[client]._pending[-1]
    original_factory = entry[2]

    def mutated_factory():
        operation = original_factory()
        operation.__class__ = cls
        return operation

    system.clients[client]._pending[-1] = (entry[0], entry[1],
                                           mutated_factory, entry[3])


def test_gullible_reader_is_caught_by_validity_check():
    """One forged witness suffices for the mutant -> fabricated value."""
    system = RegisterSystem("bsr", f=1, seed=1, initial_value=b"v0",
                            byzantine={0: "forge_tag"},
                            delay_model=ConstantDelay(1.0))
    system.write(b"real", writer=0, at=0.0)
    read = system.read(reader=0, at=10.0)
    swap_operation_class(system, "r000", GullibleReadOperation)
    trace = system.run()
    assert read.value == b"\xde\xad"  # the forger's fabrication wins
    result = check_safety(trace, initial_value=b"v0")
    assert not result.ok
    # The sequential read must have returned the real write's value; the
    # checker pins the fabricated bytes as inadmissible.
    assert any("dead" in str(v) or "\\xde" in str(v) or "clause (i)" in str(v)
               for v in result.violations)


def test_correct_reader_survives_the_same_adversary():
    system = RegisterSystem("bsr", f=1, seed=1, initial_value=b"v0",
                            byzantine={0: "forge_tag"},
                            delay_model=ConstantDelay(1.0))
    system.write(b"real", writer=0, at=0.0)
    read = system.read(reader=0, at=10.0)
    trace = system.run()
    assert read.value == b"real"
    assert check_safety(trace, initial_value=b"v0").ok


def test_shallow_write_is_caught_by_staleness_check():
    """A write acked by only f + 1 servers can be missed by a later read."""
    delays = RuleBasedDelays(fallback=ConstantDelay(0.5))
    # The writer's PUT-DATA reaches only s000 and s001 in time.
    delays.hold(lambda src, dst, msg: (
        isinstance(msg, PutData) and src == writer_id(0)
        and dst not in (server_id(0), server_id(1))))
    # s000 is Byzantine: it acks puts normally but replays its previous
    # state on reads (so it contributes an ack to the shallow write yet
    # denies the value afterwards).
    system = RegisterSystem("bsr", f=1, seed=2, initial_value=b"v0",
                            byzantine={0: "history_replay"},
                            delay_model=delays)
    write = system.write(b"shallow", writer=0, at=0.0)
    swap_operation_class(system, "w000", ShallowWriteOperation)
    read = system.read(reader=0, at=20.0)
    trace = system.run(release_held_at_end=False)
    assert write.done          # the mutant "completed" on 2 acks
    assert read.value == b"v0"  # ... and a non-concurrent read missed it
    result = check_safety(trace, initial_value=b"v0")
    assert not result.ok


def test_non_incrementing_writer_is_caught():
    """Two writes by one writer under the same tag: the second is lost."""
    system = RegisterSystem("bsr", f=1, seed=3, initial_value=b"v0",
                            delay_model=ConstantDelay(1.0))
    first = system.write(b"first", writer=0, at=0.0)
    swap_operation_class(system, "w000", NonIncrementingWriteOperation)
    second = system.write(b"second", writer=0, at=20.0)
    swap_operation_class(system, "w000", NonIncrementingWriteOperation)
    read = system.read(reader=0, at=40.0)
    trace = system.run()
    assert first.done and second.done  # acks are unconditional (Fig 3 l.7)
    assert read.value == b"first"      # the second write never stuck
    result = check_safety(trace, initial_value=b"v0")
    assert not result.ok


def test_correct_protocol_passes_where_all_mutants_fail():
    """Sanity: the unmutated protocol under the harshest of the setups."""
    system = RegisterSystem("bsr", f=1, seed=3, initial_value=b"v0",
                            delay_model=ConstantDelay(1.0))
    system.write(b"first", writer=0, at=0.0)
    system.write(b"second", writer=0, at=20.0)
    read = system.read(reader=0, at=40.0)
    trace = system.run()
    assert read.value == b"second"
    check_safety(trace, initial_value=b"v0").raise_if_violated()
