"""Integration tests for the reliable-broadcast baseline register."""

import pytest

from repro import RegisterSystem
from repro.consistency import check_regularity, check_safety
from repro.core.messages import PutData, RBSend
from repro.sim.delays import ConstantDelay, RuleBasedDelays, UniformDelay
from repro.types import server_id, writer_id


def test_runs_at_3f_plus_1():
    system = RegisterSystem("rb", f=1, seed=1, delay_model=ConstantDelay(1.0))
    assert system.n == 4
    system.write(b"v", at=0.0)
    read = system.read(at=20.0)
    system.run()
    assert read.value == b"v"


def test_write_latency_includes_rb_hops():
    """The paper's point: RB costs ~1.5 extra rounds per write."""
    delay = 1.0
    rb = RegisterSystem("rb", f=1, seed=1, delay_model=ConstantDelay(delay))
    rb_write = rb.write(b"v", at=0.0)
    rb.run()
    bsr = RegisterSystem("bsr", f=1, seed=1, delay_model=ConstantDelay(delay))
    bsr_write = bsr.write(b"v", at=0.0)
    bsr.run()
    assert bsr_write.latency == pytest.approx(4 * delay)   # 2 round trips
    # RB write: get-tag (2 delays) + SEND + ECHO + READY + ack (4 delays).
    assert rb_write.latency == pytest.approx(6 * delay)
    assert rb_write.latency / bsr_write.latency == pytest.approx(1.5)


def test_write_uses_rbsend_not_putdata():
    system = RegisterSystem("rb", f=1, seed=1, delay_model=ConstantDelay(1.0))
    system.write(b"v", at=0.0)
    system.run()
    stats = system.network_stats()
    assert "RBSend" in stats.per_type_count
    assert "RBEcho" in stats.per_type_count
    assert "RBReady" in stats.per_type_count
    assert "PutData" not in stats.per_type_count


def test_relay_unblocks_scattered_read():
    """A Theorem-3-like schedule: the RB baseline's relay saves the read.

    The writer's RBSend reaches only one server quickly; Bracha's echo
    amplification plus the server push (relay) still lets a concurrent read
    terminate with a fresh value -- the behaviour BSR deliberately trades
    away to avoid server-to-server traffic.
    """
    delays = RuleBasedDelays(fallback=ConstantDelay(0.1))
    # RBSend from the writer is slow to all but s000.
    delays.add_rule(
        lambda src, dst, msg: (isinstance(msg, RBSend) and src == writer_id(0)
                               and dst != server_id(0)),
        30.0, label="writer's sends mostly slow",
    )
    system = RegisterSystem("rb", f=1, seed=3, delay_model=delays,
                            initial_value=b"v0")
    system.write(b"fresh", writer=0, at=0.0)
    read = system.read(reader=0, at=5.0)   # well before the slow sends land
    trace = system.run()
    assert read.done
    check_safety(trace, initial_value=b"v0").raise_if_violated()


def test_read_not_fooled_by_stale_byzantine_pair():
    system = RegisterSystem("rb", f=1, seed=5, initial_value=b"v0",
                            delay_model=UniformDelay(0.5, 2.0),
                            byzantine={0: "stale"})
    system.write(b"current", at=0.0)
    read = system.read(at=20.0)
    trace = system.run()
    assert read.value == b"current"
    check_regularity(trace, initial_value=b"v0").raise_if_violated()


def test_sequence_of_writes_reads_regular():
    system = RegisterSystem("rb", f=1, seed=6, num_writers=2, num_readers=2,
                            delay_model=UniformDelay(0.5, 1.5))
    for i in range(4):
        system.write(f"v{i}".encode(), writer=i % 2, at=i * 15.0)
        system.read(reader=i % 2, at=i * 15.0 + 7.0)
    trace = system.run()
    check_regularity(trace).raise_if_violated()
