"""Unit tests for the Bracha reliable-broadcast state machine."""

import pytest

from repro.broadcast.bracha import (
    BrachaInstance,
    deliver_threshold,
    echo_threshold,
    ready_amplify_threshold,
)
from repro.errors import ConfigurationError

PEERS = [f"s{i}" for i in range(4)]  # n=4, f=1
F = 1
KEY = ("w000", 1)


def make_instance(me="s0"):
    return BrachaInstance(me, PEERS, F)


def test_thresholds():
    assert echo_threshold(4, 1) == 3
    assert ready_amplify_threshold(1) == 2
    assert deliver_threshold(1) == 3


def test_requires_3f_plus_1_peers():
    with pytest.raises(ConfigurationError):
        BrachaInstance("s0", ["s0", "s1", "s2"], 1)


def test_server_must_be_a_peer():
    with pytest.raises(ConfigurationError):
        BrachaInstance("outsider", PEERS, F)


def test_send_triggers_single_echo():
    instance = make_instance()
    assert instance.on_send(KEY, "m") == [("broadcast", "echo", "m")]
    assert instance.on_send(KEY, "m") == []  # echo only once


def test_echo_threshold_triggers_ready():
    instance = make_instance()
    assert instance.on_echo(KEY, "m", "s1") == []
    assert instance.on_echo(KEY, "m", "s2") == []
    assert instance.on_echo(KEY, "m", "s3") == [("broadcast", "ready", "m")]


def test_duplicate_echoes_from_same_peer_count_once():
    instance = make_instance()
    for _ in range(5):
        out = instance.on_echo(KEY, "m", "s1")
    assert out == []


def test_echoes_for_different_payloads_tracked_separately():
    instance = make_instance()
    instance.on_echo(KEY, "m1", "s1")
    instance.on_echo(KEY, "m1", "s2")
    instance.on_echo(KEY, "m2", "s3")
    # neither payload reached the echo threshold of 3
    assert instance.on_echo(KEY, "m2", "s1") == []


def test_ready_amplification_at_f_plus_1():
    instance = make_instance()
    assert instance.on_ready(KEY, "m", "s1") == []
    out = instance.on_ready(KEY, "m", "s2")
    assert ("broadcast", "ready", "m") in out


def test_delivery_at_2f_plus_1_readies():
    instance = make_instance()
    instance.on_ready(KEY, "m", "s1")
    instance.on_ready(KEY, "m", "s2")
    out = instance.on_ready(KEY, "m", "s3")
    assert ("deliver", "m", None) in out
    assert instance.delivered(KEY)


def test_delivery_happens_once():
    instance = make_instance()
    for peer in ("s1", "s2", "s3"):
        instance.on_ready(KEY, "m", peer)
    assert instance.on_ready(KEY, "m", "s0") == []


def test_ready_not_resent_after_echo_path():
    instance = make_instance()
    for peer in ("s1", "s2", "s3"):
        instance.on_echo(KEY, "m", peer)  # sent READY via echo path
    out = instance.on_ready(KEY, "m", "s1")
    out += instance.on_ready(KEY, "m", "s2")
    # amplification must not re-broadcast READY (already sent)
    assert all(action != "broadcast" for action, *_ in out)


def test_instances_are_isolated_by_key():
    instance = make_instance()
    other_key = ("w001", 2)
    instance.on_echo(KEY, "m", "s1")
    instance.on_echo(KEY, "m", "s2")
    # echoes for KEY must not advance other_key
    assert instance.on_echo(other_key, "m", "s3") == []
