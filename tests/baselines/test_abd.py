"""Unit tests for the ABD crash-tolerant baseline."""

import pytest

from repro.baselines.abd import (
    ABDReadOperation,
    ABDServer,
    ABDWriteOperation,
    validate_abd_config,
)
from repro.core.messages import DataReply, PutAck, PutData, QueryTag, TagReply
from repro.core.tags import TAG_ZERO, Tag
from repro.errors import QuorumError

SERVERS = [f"s{i:03d}" for i in range(3)]  # n=3, f=1
F = 1


def test_config_validation():
    validate_abd_config(3, 1)
    with pytest.raises(QuorumError):
        validate_abd_config(2, 1)


def test_write_uses_plain_max_tag():
    op = ABDWriteOperation("w000", SERVERS, F, b"v")
    op.start()
    op.on_reply(SERVERS[0], TagReply(op_id=op.op_id, tag=Tag(4, "w9")))
    out = op.on_reply(SERVERS[1], TagReply(op_id=op.op_id, tag=Tag(2, "w3")))
    # crash model: max (not (f+1)-th highest) -> 4 + 1
    assert out[0][1].tag == Tag(5, "w000")


def test_write_completes_on_majority_acks():
    op = ABDWriteOperation("w000", SERVERS, F, b"v")
    op.start()
    for sid in SERVERS[:2]:
        op.on_reply(sid, TagReply(op_id=op.op_id, tag=TAG_ZERO))
    for sid in SERVERS[:2]:
        op.on_reply(sid, PutAck(op_id=op.op_id, tag=Tag(1, "w000")))
    assert op.done and op.rounds == 2


def test_read_writes_back_before_returning():
    op = ABDReadOperation("r000", SERVERS, F)
    op.start()
    tag = Tag(3, "w001")
    op.on_reply(SERVERS[0], DataReply(op_id=op.op_id, tag=tag, payload=b"x"))
    out = op.on_reply(SERVERS[1], DataReply(op_id=op.op_id, tag=TAG_ZERO,
                                            payload=b""))
    # phase 2: write-back of the max pair
    assert all(isinstance(m, PutData) and m.tag == tag for _, m in out)
    assert not op.done
    for sid in SERVERS[:2]:
        op.on_reply(sid, PutAck(op_id=op.op_id, tag=tag))
    assert op.done and op.result == b"x" and op.rounds == 2


def test_abd_server_is_a_bsr_server():
    from repro.core.bsr import BSRServer
    assert issubclass(ABDServer, BSRServer)


def test_read_ignores_acks_for_other_tags():
    op = ABDReadOperation("r000", SERVERS, F)
    op.start()
    tag = Tag(1, "w000")
    for sid in SERVERS[:2]:
        op.on_reply(sid, DataReply(op_id=op.op_id, tag=tag, payload=b"v"))
    op.on_reply(SERVERS[0], PutAck(op_id=op.op_id, tag=Tag(9, "zz")))
    assert not op.done
