"""The reliable-broadcast 'all or none' property, end to end.

The paper's whole premise is that this property costs 1.5 rounds to get --
so the baseline's RB layer must actually provide it: if any correct server
delivers a write, every correct server eventually delivers it, even when
the *source crashes mid-broadcast*.
"""

import pytest

from repro import RegisterSystem
from repro.core.messages import RBSend
from repro.sim.delays import ConstantDelay, RuleBasedDelays
from repro.types import server_id, writer_id


def crashing_source_system(reach: int):
    """Writer crashes after its RBSend reaches only ``reach`` servers."""
    delays = RuleBasedDelays(fallback=ConstantDelay(0.5))
    slow_targets = {server_id(i) for i in range(reach, 4)}
    delays.add_rule(
        lambda src, dst, msg: isinstance(msg, RBSend) and dst in slow_targets,
        30.0, label="RBSend copies the crash outruns",
    )
    system = RegisterSystem("rb", f=1, seed=7, initial_value=b"v0",
                            delay_model=delays)
    system.write(b"half-sent", writer=0, at=0.0)
    # Crash after the fast sends are out but before the slow ones land.
    system.crash_client(writer_id(0), at=5.0)
    return system


def delivered_count(system) -> int:
    return sum(
        1 for protocol in system.server_protocols.values()
        if protocol.latest.value == b"half-sent"
    )


def test_source_crash_after_reaching_quorum_of_echoers():
    """SEND reached 3 of 4 servers: echo threshold (3) is met, so ALL
    correct servers must deliver despite the dead source."""
    system = crashing_source_system(reach=3)
    system.run()
    assert delivered_count(system) == 4  # all or none: all


def test_no_partial_delivery_visible_to_a_late_reader():
    """Whatever happens to the broadcast, a later read never sees a state
    that violates safety."""
    from repro.consistency import check_safety
    system = crashing_source_system(reach=3)
    read = system.read(reader=0, at=60.0)
    trace = system.run()
    assert read.done
    check_safety(trace, initial_value=b"v0").raise_if_violated()


def test_send_to_single_server_stays_undelivered_until_messages_arrive():
    """SEND reached only 1 server: below the echo threshold nothing
    delivers -- the 'none' side of all-or-none -- until the channel's
    reliability finally delivers the slow copies (and then: all)."""
    system = crashing_source_system(reach=1)
    system.sim.run_for(20.0)   # slow sends (30s) have not landed yet
    assert delivered_count(system) == 0
    system.run()               # let the remaining sends land
    assert delivered_count(system) == 4
