"""Unit tests for table rendering."""

from repro.metrics.report import format_markdown_table, format_table


def test_format_table_alignment():
    text = format_table(("name", "value"), [("a", 1), ("longer-name", 22)])
    lines = text.splitlines()
    assert len(lines) == 4  # header, separator, two rows
    assert all(len(line) == len(lines[0]) for line in lines[1:])
    assert "longer-name" in text


def test_format_table_with_title():
    text = format_table(("x",), [(1,)], title="My Table")
    assert text.splitlines()[0] == "My Table"


def test_floats_are_formatted():
    text = format_table(("v",), [(1.23456,)])
    assert "1.235" in text


def test_markdown_table_shape():
    text = format_markdown_table(("a", "b"), [(1, 2), (3, 4)])
    lines = text.splitlines()
    assert lines[0] == "| a | b |"
    assert lines[1] == "|---|---|"
    assert lines[2] == "| 1 | 2 |"
    assert len(lines) == 4


def test_empty_rows():
    assert format_table(("h",), []).count("\n") == 1
    assert format_markdown_table(("h",), []).count("\n") == 1
