"""Unit tests for latency statistics and trace summaries."""

import pytest

from repro.metrics.collectors import (
    LatencySummary,
    percentile,
    summarize_latencies,
    summarize_trace,
)
from repro.sim.trace import OpKind, Trace


def test_percentile_nearest_rank():
    sample = [1.0, 2.0, 3.0, 4.0, 5.0]
    assert percentile(sample, 0.0) == 1.0
    assert percentile(sample, 0.5) == 3.0
    assert percentile(sample, 1.0) == 5.0
    assert percentile(sample, 0.99) == 5.0


def test_percentile_empty_and_bounds():
    assert percentile([], 0.5) == 0.0
    with pytest.raises(ValueError):
        percentile([1.0], 1.5)


def test_summarize_empty():
    summary = summarize_latencies([])
    assert summary == LatencySummary.empty()
    assert summary.count == 0


def test_summarize_basic_stats():
    summary = summarize_latencies([3.0, 1.0, 2.0])
    assert summary.count == 3
    assert summary.mean == pytest.approx(2.0)
    assert summary.minimum == 1.0
    assert summary.maximum == 3.0
    assert summary.p50 == 2.0


def test_summarize_trace_by_kind():
    trace = Trace()
    w = trace.begin("w", OpKind.WRITE, 0.0, value=b"a")
    trace.complete(w, 2.0, rounds=2)
    r1 = trace.begin("r", OpKind.READ, 3.0)
    trace.complete(r1, 4.0, value=b"a", rounds=1)
    r2 = trace.begin("r", OpKind.READ, 5.0)
    trace.complete(r2, 8.0, value=b"a", rounds=1)
    trace.begin("r", OpKind.READ, 9.0)  # incomplete
    summaries = summarize_trace(trace)
    assert summaries["read"].latency.count == 2
    assert summaries["read"].latency.mean == pytest.approx(2.0)
    assert summaries["read"].incomplete == 1
    assert summaries["read"].mean_rounds == 1.0
    assert summaries["write"].mean_rounds == 2.0


def test_mean_rounds_of_empty_summary_is_zero():
    summaries = summarize_trace(Trace())
    assert summaries["read"].mean_rounds == 0.0


def test_rounds_histogram():
    trace = Trace()
    for rounds in (1, 1, 2):
        r = trace.begin("r", OpKind.READ, 0.0)
        trace.complete(r, 1.0, value=b"", rounds=rounds)
    summary = summarize_trace(trace)["read"]
    assert summary.rounds == {1: 2, 2: 1}
    assert summary.mean_rounds == pytest.approx(4 / 3)
