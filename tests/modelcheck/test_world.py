"""Unit tests for the model checker's World mechanics."""

import pytest

from repro.core.bsr import BSRReadOperation, BSRReaderState, BSRServer, BSRWriteOperation
from repro.core.messages import PutData, QueryTag
from repro.core.tags import Tag, TaggedValue
from repro.modelcheck import OpSpec, World
from repro.types import reader_id, server_id, writer_id

N, F = 4, 1
SERVER_IDS = [server_id(i) for i in range(N)]


def write_world():
    servers = {pid: BSRServer(pid, initial_value=b"v0") for pid in SERVER_IDS}
    ops = [OpSpec(writer_id(0), lambda: BSRWriteOperation(
        writer_id(0), SERVER_IDS, F, b"v1", enforce_bounds=False))]
    return World(servers, ops)


def test_first_op_starts_immediately():
    world = write_world()
    assert len(world.ops) == 1
    # The write's QUERY-TAG to every server is pending.
    assert len(world.pending) == N
    assert all(isinstance(e.message, QueryTag) for e in world.pending)


def test_deliver_to_server_generates_reply():
    world = write_world()
    world.deliver(0)
    assert len(world.pending) == N  # one query consumed, one reply added
    reply_entry = world.pending[-1]
    assert reply_entry.dst == writer_id(0)


def test_write_completes_after_enough_deliveries():
    world = write_world()
    # Deliver everything repeatedly until quiescence.
    while world.pending and not world.done:
        world.deliver(0)
    assert world.done
    assert world.results[0] == Tag(1, writer_id(0))


def test_clone_isolation():
    world = write_world()
    twin = world.clone()
    world.deliver(0)
    assert world.state_key() != twin.state_key()
    assert [e.key() for e in world.pending] != [e.key() for e in twin.pending]
    # Server state diverges independently.
    world.servers[SERVER_IDS[0]].history.append(
        TaggedValue(Tag(9, "x"), b"mutation"))
    assert len(twin.servers[SERVER_IDS[0]].history) == 1


def test_state_key_stable_under_clone():
    world = write_world()
    assert world.state_key() == world.clone().state_key()


def test_state_key_merges_symmetric_servers():
    # Two worlds that differ only by which correct server holds a value
    # must produce the same key (symmetry reduction).
    def world_with_extra(index):
        servers = {pid: BSRServer(pid, initial_value=b"v0")
                   for pid in SERVER_IDS}
        servers[SERVER_IDS[index]].history.append(
            TaggedValue(Tag(1, "w"), b"x"))
        ops = [OpSpec(reader_id(0), lambda: BSRReadOperation(
            reader_id(0), SERVER_IDS, F,
            reader_state=BSRReaderState(b"v0"), enforce_bounds=False))]
        return World(servers, ops)

    assert world_with_extra(1).state_key() == world_with_extra(2).state_key()


def test_initial_pending_delivered_like_any_message():
    servers = {pid: BSRServer(pid, initial_value=b"v0") for pid in SERVER_IDS}
    leftover = (writer_id(0), SERVER_IDS[0],
                PutData(op_id=1, tag=Tag(1, writer_id(0)), payload=b"v1"))
    ops = [OpSpec(reader_id(0), lambda: BSRReadOperation(
        reader_id(0), SERVER_IDS, F,
        reader_state=BSRReaderState(b"v0"), enforce_bounds=False))]
    world = World(servers, ops, initial_pending=[leftover])
    assert len(world.pending) == 1 + N  # leftover + read queries
    # Find and deliver the leftover put.
    index = next(i for i, e in enumerate(world.pending)
                 if isinstance(e.message, PutData))
    world.deliver(index)
    assert servers[SERVER_IDS[0]].latest.value == b"v1"


def test_sequential_chain_starts_next_op():
    servers = {pid: BSRServer(pid, initial_value=b"v0") for pid in SERVER_IDS}
    ops = [
        OpSpec(writer_id(0), lambda: BSRWriteOperation(
            writer_id(0), SERVER_IDS, F, b"v1", enforce_bounds=False)),
        OpSpec(reader_id(0), lambda: BSRReadOperation(
            reader_id(0), SERVER_IDS, F,
            reader_state=BSRReaderState(b"v0"), enforce_bounds=False)),
    ]
    world = World(servers, ops)
    while not world.done:
        assert not world.stuck
        world.deliver(0)
    assert world.results == [Tag(1, writer_id(0)), b"v1"]


def test_stuck_detection():
    servers = {pid: BSRServer(pid, initial_value=b"v0") for pid in SERVER_IDS}
    ops = [OpSpec(reader_id(0), lambda: BSRReadOperation(
        reader_id(0), SERVER_IDS, F,
        reader_state=BSRReaderState(b"v0"), enforce_bounds=False))]
    world = World(servers, ops)
    # Drop every message by delivering to a black-hole: simulate by
    # clearing pending -- the world is then stuck.
    world.pending.clear()
    assert world.stuck and not world.done
