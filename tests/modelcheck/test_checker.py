"""Tests for the exploration engine against the paper's bounds.

The headline assertions:

* at ``n = 4f`` the checker *discovers* a Theorem-5 violation with no
  scripted schedule, and
* at ``n = 4f + 1`` exhaustive exploration of the read stage (for a sample
  of write-quorum choices) finds none.

The full all-quorums sweep lives in benchmark E11; tests keep a few
representative combinations to stay fast.
"""

import pytest

from repro.errors import SimulationError
from repro.modelcheck import ModelChecker, OpSpec, World
from repro.modelcheck.scenarios import (
    all_quorum_pairs,
    bsr_preseeded_write_read,
    bsr_read_stage,
)


def test_all_quorum_pairs_counts():
    pairs = list(all_quorum_pairs(4, 1))
    assert len(pairs) == 16  # C(4,3)^2
    assert all(len(w1) == 3 and len(w2) == 3 for w1, w2 in pairs)


def test_read_stage_validates_quorum_sizes():
    with pytest.raises(ValueError):
        bsr_read_stage(4, 1, (0, 1), (0, 1, 2))


def test_violation_discovered_below_bound():
    """n = 4f: some quorum choice admits a violating read schedule."""
    factory, predicate = bsr_read_stage(4, 1, (0, 1, 2), (0, 2, 3))
    checker = ModelChecker(factory, predicate, max_states=100_000)
    violation = checker.find_violation()
    assert violation is not None
    description, schedule = violation
    assert b"v1" in description.encode() or "v1" in description
    assert len(schedule) > 0  # the discovered delivery schedule


def test_exhaustive_report_below_bound():
    factory, predicate = bsr_read_stage(4, 1, (0, 1, 2), (0, 2, 3))
    report = ModelChecker(factory, predicate, max_states=100_000).verify()
    assert not report.ok
    assert not report.truncated
    assert report.terminal_states > 0
    assert report.states_explored > report.terminal_states


def test_no_violation_at_bound_sampled_quorums():
    """n = 4f + 1: exhaustive read-stage check over representative quorums."""
    samples = [
        ((0, 1, 2, 3), (0, 1, 2, 3)),   # same quorums
        ((0, 1, 2, 3), (1, 2, 3, 4)),   # overlap excludes the liar once
        ((1, 2, 3, 4), (0, 2, 3, 4)),   # W1 misses the liar entirely
    ]
    for w1, w2 in samples:
        factory, predicate = bsr_read_stage(5, 1, w1, w2)
        report = ModelChecker(factory, predicate, max_states=200_000).verify(
            strict=True)
        assert report.ok, f"unexpected violation for quorums {w1}/{w2}"
        assert report.terminal_states > 0


def test_no_stuck_states_within_fault_budget():
    factory, predicate = bsr_read_stage(5, 1, (0, 1, 2, 3), (0, 1, 2, 3))
    report = ModelChecker(factory, predicate, max_states=200_000).verify()
    assert report.stuck_states == 0


def test_preseeded_write_read_finds_violation_below_bound():
    factory, predicate = bsr_preseeded_write_read(4, 1)
    checker = ModelChecker(factory, predicate, max_states=400_000)
    assert checker.find_violation() is not None


def test_strict_mode_raises_on_truncation():
    factory, predicate = bsr_read_stage(5, 1, (0, 1, 2, 3), (1, 2, 3, 4))
    checker = ModelChecker(factory, predicate, max_states=10)
    with pytest.raises(SimulationError):
        checker.verify(strict=True)


def test_non_strict_mode_marks_truncation():
    factory, predicate = bsr_read_stage(5, 1, (0, 1, 2, 3), (1, 2, 3, 4))
    report = ModelChecker(factory, predicate, max_states=10).verify()
    assert report.truncated


def test_honest_system_trivially_verifies():
    """Without any liar the read stage is safe even at n = 4f."""
    factory, predicate = bsr_read_stage(4, 1, (0, 1, 2), (0, 2, 3),
                                        liar_count=0)
    report = ModelChecker(factory, predicate, max_states=100_000).verify(
        strict=True)
    assert report.ok
