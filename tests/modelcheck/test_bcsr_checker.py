"""Model-checking the coded register across the 5f + 1 boundary (Thm 6)."""

import pytest

from repro.modelcheck import ModelChecker
from repro.modelcheck.scenarios import bcsr_read_stage


def test_bcsr_violation_discovered_below_bound():
    """n = 5f: some read schedule decodes wrongly or falls back to v0."""
    factory, predicate = bcsr_read_stage(5, 1, (0, 1, 2, 3), (0, 2, 3, 4))
    found = ModelChecker(factory, predicate, max_states=120_000).find_violation()
    assert found is not None


def test_bcsr_no_violation_at_bound_sampled_quorums():
    """n = 5f + 1: exhaustive read-stage check over representative quorums."""
    samples = [
        ((0, 1, 2, 3, 4), (0, 1, 2, 3, 4)),
        ((0, 1, 2, 3, 4), (1, 2, 3, 4, 5)),
        ((1, 2, 3, 4, 5), (0, 2, 3, 4, 5)),
    ]
    for w1, w2 in samples:
        factory, predicate = bcsr_read_stage(6, 1, w1, w2)
        report = ModelChecker(factory, predicate,
                              max_states=200_000).verify(strict=True)
        assert report.ok, f"unexpected violation for quorums {w1}/{w2}"
        assert report.terminal_states > 0


def test_bcsr_honest_below_bound_read_stage_is_safe():
    """Without liars even n = 5f survives this (sequential) read stage.

    The bound's necessity needs the Byzantine replay: stale-only errors
    from the two missed servers stay within the decoder's budget.
    """
    factory, predicate = bcsr_read_stage(5, 1, (0, 1, 2, 3), (0, 2, 3, 4),
                                         liar_count=0)
    report = ModelChecker(factory, predicate, max_states=120_000).verify(
        strict=True)
    assert report.ok


def test_bcsr_read_stage_validates_quorums():
    with pytest.raises(ValueError):
        bcsr_read_stage(5, 1, (0, 1), (0, 1, 2, 3))
