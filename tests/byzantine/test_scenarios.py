"""Tests for the scripted theorem scenarios -- the paper's proofs, executed."""

import pytest

from repro.byzantine.scenarios import (
    theorem3_regularity_violation,
    theorem5_bsr_below_bound,
    theorem6_bcsr_below_bound,
)


# -- Theorem 3: BSR is safe but not regular -------------------------------------

def test_theorem3_bsr_violates_regularity():
    result = theorem3_regularity_violation("bsr")
    assert result.read_value == b"v0"        # the stale fallback of Fig 2
    assert result.safety.ok                   # clause (ii): still safe
    assert not result.regularity.ok           # but not regular
    assert result.regularity.reads_checked == 1


def test_theorem3_history_variant_is_regular():
    result = theorem3_regularity_violation("bsr-history")
    assert result.read_value != b"v0"
    assert result.safety.ok and result.regularity.ok


def test_theorem3_two_round_variant_is_regular():
    result = theorem3_regularity_violation("bsr-2round")
    assert result.read_value != b"v0"
    assert result.safety.ok and result.regularity.ok


def test_theorem3_is_deterministic():
    a = theorem3_regularity_violation("bsr", seed=0)
    b = theorem3_regularity_violation("bsr", seed=0)
    assert a.read_value == b.read_value
    assert len(a.trace) == len(b.trace)


def test_theorem3_concurrent_writes_eventually_complete():
    # Held messages are flushed at the end: channels stay reliable.
    result = theorem3_regularity_violation("bsr")
    writes = result.trace.writes(completed_only=True)
    assert len(writes) == 5


# -- Theorem 5: n = 4f breaks replication-based safety -----------------------------

def test_theorem5_violation_below_bound():
    result = theorem5_bsr_below_bound(n=4, f=1)
    assert result.read_value == b"v1"         # the superseded value wins
    assert not result.safety.ok


def test_theorem5_same_adversary_fails_at_bound():
    result = theorem5_bsr_below_bound(n=5, f=1)
    assert result.read_value == b"v2"
    assert result.safety.ok


def test_theorem5_scales_with_f():
    violated = theorem5_bsr_below_bound(n=8, f=2)
    assert not violated.safety.ok
    safe = theorem5_bsr_below_bound(n=9, f=2)
    assert safe.safety.ok


# -- Theorem 6: n = 5f breaks the coded register ---------------------------------------

def test_theorem6_violation_below_bound():
    result = theorem6_bcsr_below_bound(n=5, f=1)
    assert not result.safety.ok


def test_theorem6_same_adversary_fails_at_bound():
    result = theorem6_bcsr_below_bound(n=6, f=1)
    assert result.read_value == b"value-two"
    assert result.safety.ok


def test_theorem6_scales_with_f():
    violated = theorem6_bcsr_below_bound(n=10, f=2)
    assert not violated.safety.ok
    safe = theorem6_bcsr_below_bound(n=11, f=2)
    assert safe.safety.ok


def test_scenario_result_exposes_trace_and_system():
    result = theorem5_bsr_below_bound(n=5, f=1)
    assert result.system.n == 5
    assert len(result.trace.reads()) == 1
    assert "Theorem 5" in result.description
