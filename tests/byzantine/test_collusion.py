"""Tests for coordinated Byzantine coalitions."""

import pytest

from repro import RegisterSystem
from repro.byzantine.collusion import (
    ColludingStaleBehavior,
    CollusionState,
    SplitWorldBehavior,
    make_coalition,
)
from repro.consistency import check_regularity, check_safety
from repro.core.bsr import BSRServer
from repro.core.messages import PutData, QueryData
from repro.core.tags import Tag
from repro.sim.delays import UniformDelay


def loaded_server(pid):
    server = BSRServer(pid, initial_value=b"v0")
    server.handle("w", PutData(op_id=1, tag=Tag(1, "w"), payload=b"old"))
    server.handle("w", PutData(op_id=2, tag=Tag(2, "w"), payload=b"new"))
    return server


# -- unit level ---------------------------------------------------------------

def test_collusion_state_first_choice_wins():
    state = CollusionState()
    from repro.core.tags import TaggedValue
    first = TaggedValue(Tag(1, "w"), b"a")
    second = TaggedValue(Tag(2, "w"), b"b")
    assert state.agree_on(first) is first
    assert state.agree_on(second) is first  # sticks with the first story


def test_colluders_replay_identical_pair():
    state = CollusionState()
    behaviors = [ColludingStaleBehavior(state) for _ in range(2)]
    servers = [loaded_server(f"s{i}") for i in range(2)]
    replies = []
    for behavior, server in zip(behaviors, servers):
        message = QueryData(op_id=9)
        [(_, reply)] = behavior.on_message(server, "r0", message,
                                           server.handle("r0", message))
        replies.append((reply.tag, reply.payload))
    assert replies[0] == replies[1] == (Tag(1, "w"), b"old")


def test_split_world_partitions_clients():
    state = CollusionState()
    behavior = SplitWorldBehavior(state)
    server = loaded_server("s0")
    message = QueryData(op_id=9)
    [(_, to_r0)] = behavior.on_message(server, "r0", message, [])
    [(_, to_r1)] = behavior.on_message(server, "r1", message, [])
    [(_, to_r0_again)] = behavior.on_message(server, "r0", message, [])
    assert to_r0.payload != to_r1.payload
    assert to_r0.payload == to_r0_again.payload  # consistent per client


def test_make_coalition_shares_state():
    coalition = make_coalition(ColludingStaleBehavior, 3)
    assert len(coalition) == 3
    assert len({id(b.state) for b in coalition}) == 1


# -- system level --------------------------------------------------------------

def test_colluding_stale_coalition_defeated_at_bound():
    """f colluders focusing one stale pair still lack a witness majority."""
    f = 2
    coalition = make_coalition(ColludingStaleBehavior, f)
    system = RegisterSystem(
        "bsr", f=f, seed=7, initial_value=b"v0",
        byzantine={i: coalition[i] for i in range(f)},
        delay_model=UniformDelay(0.3, 1.0),
    )
    system.write(b"first", writer=0, at=0.0)
    system.write(b"current", writer=1, at=20.0)
    read = system.read(reader=0, at=40.0)
    trace = system.run()
    assert read.value == b"current"
    check_safety(trace, initial_value=b"v0").raise_if_violated()


def test_split_world_cannot_make_two_readers_disagree():
    f = 2
    coalition = make_coalition(SplitWorldBehavior, f)
    system = RegisterSystem(
        "bsr-history", f=f, seed=8, num_readers=2, initial_value=b"v0",
        byzantine={i: coalition[i] for i in range(f)},
        delay_model=UniformDelay(0.3, 1.0),
    )
    system.write(b"truth", writer=0, at=0.0)
    first = system.read(reader=0, at=20.0)
    second = system.read(reader=1, at=20.0)
    trace = system.run()
    assert first.value == b"truth"
    assert second.value == b"truth"
    check_regularity(trace, initial_value=b"v0").raise_if_violated()


def test_split_world_forged_tags_do_not_poison_writers():
    f = 1
    coalition = make_coalition(SplitWorldBehavior, f)
    system = RegisterSystem(
        "bsr", f=f, seed=9, byzantine={0: coalition[0]},
        delay_model=UniformDelay(0.3, 1.0),
    )
    first = system.write(b"a", writer=0, at=0.0)
    second = system.write(b"b", writer=1, at=20.0)
    system.run()
    # Tags advance by one per write despite the coalition's boosts.
    assert first.value.num == 1
    assert second.value.num == 2
