"""Unit tests for the Byzantine behaviour strategies."""

import pytest

from repro.byzantine.behaviors import (
    BEHAVIOR_REGISTRY,
    Behavior,
    CorruptValueBehavior,
    EquivocateBehavior,
    FlipFlopBehavior,
    ForgeTagBehavior,
    HistoryReplayBehavior,
    MultiReplyBehavior,
    RandomBehavior,
    SilentBehavior,
    StaleBehavior,
    make_behavior,
)
from repro.core.bsr import BSRServer
from repro.core.messages import (
    DataReply,
    PutData,
    QueryData,
    QueryTag,
    TagReply,
)
from repro.core.tags import TAG_ZERO, Tag
from repro.erasure.striping import CodedElement
from repro.sim.rng import SimRng


@pytest.fixture
def server():
    s = BSRServer("s000", initial_value=b"v0")
    s.handle("w000", PutData(op_id=1, tag=Tag(1, "w000"), payload=b"v1"))
    s.handle("w001", PutData(op_id=2, tag=Tag(2, "w001"), payload=b"v2"))
    return s


def correct_replies(server, sender, message):
    return server.handle(sender, message)


def test_base_behavior_is_honest(server):
    message = QueryData(op_id=5)
    replies = correct_replies(server, "r0", message)
    assert Behavior().on_message(server, "r0", message, replies) == replies


def test_silent_behavior_replies_nothing(server):
    message = QueryData(op_id=5)
    replies = correct_replies(server, "r0", message)
    assert SilentBehavior().on_message(server, "r0", message, replies) == []


def test_stale_behavior_returns_initial_state(server):
    message = QueryData(op_id=5)
    out = StaleBehavior().on_message(server, "r0", message,
                                     correct_replies(server, "r0", message))
    [(dest, reply)] = out
    assert reply.tag == TAG_ZERO and reply.payload == b"v0"


def test_stale_behavior_swallows_put_acks(server):
    message = PutData(op_id=9, tag=Tag(5, "w"), payload=b"x")
    out = StaleBehavior().on_message(server, "w", message,
                                     correct_replies(server, "w", message))
    assert out == []


def test_forge_tag_inflates_query_tag(server):
    behavior = ForgeTagBehavior(boost=100)
    message = QueryTag(op_id=5)
    [(_, reply)] = behavior.on_message(server, "w0", message,
                                       correct_replies(server, "w0", message))
    assert reply.tag.num == server.max_tag.num + 100


def test_forge_tag_fabricates_data(server):
    behavior = ForgeTagBehavior(boost=100, fake_value=b"evil")
    message = QueryData(op_id=5)
    [(_, reply)] = behavior.on_message(server, "r0", message,
                                       correct_replies(server, "r0", message))
    assert reply.payload == b"evil"
    assert reply.tag > server.max_tag


def test_history_replay_returns_previous_value(server):
    behavior = HistoryReplayBehavior(offset=1)
    message = QueryData(op_id=5)
    [(_, reply)] = behavior.on_message(server, "r0", message,
                                       correct_replies(server, "r0", message))
    assert reply.payload == b"v1"  # second-newest


def test_history_replay_offset_clamps_to_initial(server):
    behavior = HistoryReplayBehavior(offset=99)
    message = QueryData(op_id=5)
    [(_, reply)] = behavior.on_message(server, "r0", message,
                                       correct_replies(server, "r0", message))
    assert reply.payload == b"v0"


def test_corrupt_value_flips_bytes(server):
    behavior = CorruptValueBehavior(xor_mask=0xFF)
    message = QueryData(op_id=5)
    [(_, reply)] = behavior.on_message(server, "r0", message,
                                       correct_replies(server, "r0", message))
    assert reply.payload == bytes(b ^ 0xFF for b in b"v2")
    assert reply.tag == server.max_tag  # tag untouched


def test_corrupt_value_handles_coded_elements(server):
    behavior = CorruptValueBehavior(xor_mask=0x01)
    original = DataReply(op_id=5, tag=Tag(1, "w"),
                         payload=CodedElement(3, b"\x00\x01"))
    [(_, reply)] = behavior.on_message(server, "r0", QueryData(op_id=5),
                                       [("r0", original)])
    assert reply.payload == CodedElement(3, b"\x01\x00")


def test_equivocate_gives_each_reader_a_different_story(server):
    behavior = EquivocateBehavior()
    message = QueryData(op_id=5)
    [(_, to_r0)] = behavior.on_message(server, "r0", message,
                                       correct_replies(server, "r0", message))
    [(_, to_r1)] = behavior.on_message(server, "r1", message,
                                       correct_replies(server, "r1", message))
    assert to_r0.payload != to_r1.payload
    assert to_r0.tag == to_r1.tag  # same forged tag, different values


def test_equivocate_is_consistent_per_reader(server):
    behavior = EquivocateBehavior()
    message = QueryData(op_id=5)
    first = behavior.on_message(server, "r0", message, [])[0][1]
    second = behavior.on_message(server, "r0", message, [])[0][1]
    assert first.payload == second.payload


def test_multi_reply_duplicates(server):
    behavior = MultiReplyBehavior(copies=3)
    message = QueryData(op_id=5)
    out = behavior.on_message(server, "r0", message,
                              correct_replies(server, "r0", message))
    assert len(out) == 3
    assert len({id(reply) for _, reply in out}) <= 3


def test_multi_reply_validates_copies():
    with pytest.raises(ValueError):
        MultiReplyBehavior(copies=0)


def test_flip_flop_alternates(server):
    behavior = FlipFlopBehavior()
    message = QueryData(op_id=5)
    replies = correct_replies(server, "r0", message)
    first = behavior.on_message(server, "r0", message, replies)
    second = behavior.on_message(server, "r0", message, replies)
    payloads = {out[0][1].payload for out in (first, second)}
    assert payloads == {b"v0", b"v2"}  # one stale, one honest


def test_random_behavior_is_seeded(server):
    message = QueryData(op_id=5)
    replies = correct_replies(server, "r0", message)

    def run(seed):
        behavior = RandomBehavior(rng=SimRng(seed, "t"))
        return [len(behavior.on_message(server, "r0", message, replies))
                for _ in range(10)]

    assert run(1) == run(1)


def test_registry_and_factory():
    assert set(BEHAVIOR_REGISTRY) >= {
        "honest", "silent", "stale", "forge_tag", "history_replay",
        "corrupt_value", "equivocate", "multi_reply", "flip_flop", "random",
    }
    assert isinstance(make_behavior("stale"), StaleBehavior)
    assert isinstance(make_behavior("forge_tag", boost=5), ForgeTagBehavior)
    with pytest.raises(ValueError):
        make_behavior("nonexistent")


def test_corrupt_value_validates_mask():
    with pytest.raises(ValueError):
        CorruptValueBehavior(xor_mask=300)


def test_history_replay_validates_offset():
    with pytest.raises(ValueError):
        HistoryReplayBehavior(offset=-1)
