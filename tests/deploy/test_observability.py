"""The spec's [observability] block and the supervisor's exporter sidecar."""

import asyncio
import json
import urllib.error
import urllib.request

import pytest

from repro.deploy import ClusterSpec, ClusterSupervisor
from repro.errors import ConfigurationError


# -- spec validation ---------------------------------------------------------

def test_observability_block_round_trips():
    spec = ClusterSpec(observability={"exporter_port": 9464,
                                     "trace_sample": 8,
                                     "trace_capacity": 256})
    clone = ClusterSpec.from_dict(spec.to_dict())
    assert clone.observability == spec.observability


def test_observability_rejects_unknown_keys():
    with pytest.raises(ConfigurationError):
        ClusterSpec(observability={"exporter_prot": 9464})


@pytest.mark.parametrize("key", ["exporter_port", "trace_sample",
                                 "trace_capacity"])
def test_observability_rejects_negative_and_non_int(key):
    with pytest.raises(ConfigurationError):
        ClusterSpec(observability={key: -1})
    with pytest.raises(ConfigurationError):
        ClusterSpec(observability={key: "lots"})


def test_build_node_threads_flight_settings():
    spec = ClusterSpec(observability={"trace_sample": 4,
                                      "trace_capacity": 32})
    node = spec.build_node("s000")
    assert node.flight is not None
    assert node.flight.sample == 4
    assert node.flight.capacity == 32
    disabled = ClusterSpec(observability={"trace_sample": 0})
    assert disabled.build_node("s000").flight is None


# -- supervisor sidecar ------------------------------------------------------

@pytest.mark.procs
def test_supervisor_runs_exporter_sidecar(tmp_path):
    spec = ClusterSpec(algorithm="bsr", f=1, secret="exporter-test",
                       snapshot_dir=str(tmp_path / "snaps"),
                       observability={"exporter_port": 0,
                                      "trace_sample": 1})

    async def scenario():
        supervisor = ClusterSupervisor(
            spec, state_path=str(tmp_path / "state.json"))
        await supervisor.start()
        try:
            assert supervisor.exporter is not None
            host, port = supervisor.exporter.address
            client = supervisor.client("w000", timeout=10.0)
            await client.connect()
            await client.write(b"observed")
            state = json.loads((tmp_path / "state.json").read_text())
            return host, port, state
        finally:
            await supervisor.stop()
        # NB: the exporter is queried after stop() below to prove
        # shutdown; queries during the run happen via the state fields.

    host, port, state = asyncio.run(scenario())
    assert state["exporter"] == {"host": host, "port": port}
    # Supervisor stopped -> the sidecar is down too.
    with pytest.raises((urllib.error.URLError, ConnectionError, OSError)):
        urllib.request.urlopen(f"http://{host}:{port}/healthz", timeout=2.0)


@pytest.mark.procs
def test_exporter_serves_merged_metrics_and_traces_while_up(tmp_path):
    spec = ClusterSpec(algorithm="bsr", f=1, secret="exporter-live",
                       snapshot_dir=str(tmp_path / "snaps"),
                       observability={"exporter_port": 0,
                                      "trace_sample": 1})

    async def scenario():
        from repro.obs import MemorySink

        supervisor = ClusterSupervisor(
            spec, state_path=str(tmp_path / "state.json"))
        await supervisor.start()
        try:
            sink = MemorySink()
            client = supervisor.client("w000", timeout=10.0,
                                       trace_sink=sink)
            await client.connect()
            await client.write(b"observed")
            op_id = sink.records[-1]["op_id"]
            host, port = supervisor.exporter.address

            def fetch(path):
                # The exporter scrapes synchronously via asyncio.run in
                # its handler thread; call it off this event loop.
                return urllib.request.urlopen(
                    f"http://{host}:{port}{path}", timeout=10.0).read()

            loop = asyncio.get_running_loop()
            text = (await loop.run_in_executor(
                None, fetch, "/metrics")).decode()
            traces = json.loads(await loop.run_in_executor(
                None, fetch, f"/traces/{op_id}"))
            return text, traces, op_id
        finally:
            await supervisor.stop()

    text, traces, op_id = asyncio.run(scenario())
    # Merged across every node: all five node labels appear.
    for node in ("s000", "s001", "s002", "s003", "s004"):
        assert f'node="{node}"' in text
    assert "repro_node_frames_total" in text
    assert traces and all(r["op_id"] == op_id for r in traces)
