"""ClusterSupervisor against real OS processes (``procs`` marker).

Each test spawns genuine ``repro node serve`` children, so these are the
slowest unit-level tests in the tree; ``make cluster-smoke`` runs just
this marker.
"""

import asyncio
import json
import os
import signal

import pytest

from repro.deploy import (
    ClusterSpec,
    ClusterSupervisor,
    default_state_path,
    read_state,
)
from repro.errors import ConfigurationError

pytestmark = pytest.mark.procs


def run(coro):
    return asyncio.run(coro)


def make_spec(tmp_path, **overrides):
    defaults = dict(algorithm="bsr", f=1,
                    snapshot_dir=str(tmp_path / "snaps"),
                    secret="supervisor-test")
    defaults.update(overrides)
    return ClusterSpec(**defaults)


def test_start_spawns_one_process_per_node(tmp_path):
    async def scenario():
        spec = make_spec(tmp_path)
        supervisor = ClusterSupervisor(spec)
        await supervisor.start()
        try:
            rows = supervisor.status()
            assert len(rows) == 5
            assert all(row["running"] for row in rows)
            pids = {row["pid"] for row in rows}
            assert len(pids) == 5          # five distinct OS processes
            assert os.getpid() not in pids  # none of them is us
            for node_id in spec.node_ids:
                assert await supervisor.healthy(node_id)
        finally:
            await supervisor.stop()
        assert not any(handle.running
                       for handle in supervisor.handles.values())

    run(scenario())


def test_client_operations_against_process_cluster(tmp_path):
    async def scenario():
        spec = make_spec(tmp_path)
        supervisor = ClusterSupervisor(spec)
        await supervisor.start()
        try:
            writer = supervisor.client("w000", timeout=10.0)
            reader = supervisor.client("r000", timeout=10.0)
            await writer.connect()
            await reader.connect()
            await writer.write(b"across-processes")
            assert await reader.read() == b"across-processes"
        finally:
            await supervisor.stop()

    run(scenario())


def test_crash_restart_pins_port_and_recovers_snapshot(tmp_path):
    async def scenario():
        spec = make_spec(tmp_path)
        supervisor = ClusterSupervisor(spec)
        await supervisor.start()
        try:
            client = supervisor.client("w000", timeout=10.0)
            await client.connect()
            await client.write(b"durable")

            victim = spec.node_ids[2]
            old_pid = supervisor.handles[victim].pid
            old_address = supervisor.handles[victim].address
            await supervisor.crash(victim)
            assert not supervisor.handles[victim].running
            assert not await supervisor.healthy(victim)

            await supervisor.restart(victim)
            handle = supervisor.handles[victim]
            assert handle.running
            assert handle.pid != old_pid
            assert handle.address == old_address  # port pinned for clients
            assert handle.restarts == 1
            assert await supervisor.healthy(victim)
            # The write survived the SIGKILL via the snapshot.
            assert await client.read() == b"durable"
        finally:
            await supervisor.stop()

    run(scenario())


def test_kill_rejects_dead_node(tmp_path):
    async def scenario():
        spec = make_spec(tmp_path)
        supervisor = ClusterSupervisor(spec)
        await supervisor.start()
        try:
            victim = spec.node_ids[0]
            await supervisor.crash(victim)
            with pytest.raises(ConfigurationError):
                supervisor.kill(victim, signal.SIGKILL)
        finally:
            await supervisor.stop()

    run(scenario())


def test_state_file_tracks_pids_and_is_removed_on_stop(tmp_path):
    async def scenario():
        spec = make_spec(tmp_path)
        supervisor = ClusterSupervisor(spec)
        state_path = default_state_path(spec)
        assert state_path.startswith(spec.snapshot_dir)
        await supervisor.start()
        try:
            state = read_state(state_path)
            assert state["spec_path"] == supervisor.spec_path
            assert set(state["nodes"]) == set(spec.node_ids)
            for node_id, entry in state["nodes"].items():
                assert entry["pid"] == supervisor.handles[node_id].pid
                assert entry["port"] == supervisor.handles[node_id].address[1]
            # The spec file the children loaded is a faithful copy.
            with open(state["spec_path"], "rb") as fh:
                assert ClusterSpec.from_dict(json.load(fh)) == spec
        finally:
            await supervisor.stop()
        assert not os.path.exists(state_path)
        with pytest.raises(ConfigurationError):
            read_state(state_path)

    run(scenario())


def test_unready_child_raises_instead_of_hanging(tmp_path):
    async def scenario():
        spec = make_spec(tmp_path)
        # A python that exits immediately never prints a READY line.
        supervisor = ClusterSupervisor(spec, ready_timeout=5.0)
        supervisor.python = "/bin/false"
        with pytest.raises(ConfigurationError):
            await supervisor.start()
        for handle in supervisor.handles.values():
            assert not handle.running

    run(scenario())
