"""Keyspace blocks in cluster specs: parsing, validation, determinism.

The placement-determinism guarantee -- client, server, simulator and CLI
all derive the identical key -> group mapping from one spec -- is what
makes sharding safe to deploy; these tests pin it.
"""

import asyncio

import pytest

from repro.deploy import ClusterSpec, ClusterSupervisor
from repro.errors import ConfigurationError
from repro.sharding import KeyspaceConfig, RegisterTable, key_name


def make_spec(**overrides):
    defaults = dict(algorithm="bsr", f=1, n=9, secret="keyspace-test",
                    keyspace={"group_size": 5, "vnodes": 32, "seed": 7})
    defaults.update(overrides)
    return ClusterSpec(**defaults)


def test_spec_parses_keyspace_block():
    spec = make_spec()
    config = spec.keyspace_config()
    assert config == KeyspaceConfig(group_size=5, vnodes=32, seed=7)


def test_spec_without_keyspace_is_single_register():
    spec = ClusterSpec(algorithm="bsr", f=1, secret="plain")
    assert spec.keyspace_config() is None
    assert spec.ring() is None
    assert spec.locate("any") is None


def test_spec_validates_keyspace_bounds():
    with pytest.raises(ConfigurationError):
        make_spec(keyspace={"group_size": 4})  # below 4f+1
    with pytest.raises(ConfigurationError):
        make_spec(keyspace={"group_size": 10})  # above n
    with pytest.raises(ConfigurationError):
        make_spec(algorithm="bcsr", n=7,
                  keyspace={"group_size": 6})  # bcsr needs group == n


def test_spec_roundtrips_keyspace(tmp_path):
    spec = make_spec()
    path = spec.save(str(tmp_path / "cluster.json"))
    loaded = ClusterSpec.from_file(path)
    assert loaded.keyspace_config() == spec.keyspace_config()
    keys = [key_name(i) for i in range(100)]
    assert (loaded.ring().fingerprint(keys, 5)
            == spec.ring().fingerprint(keys, 5))


def test_spec_toml_keyspace(tmp_path):
    path = tmp_path / "cluster.toml"
    path.write_text(
        'algorithm = "bsr"\nf = 1\nn = 9\nsecret = "toml-keys"\n\n'
        '[keyspace]\ngroup_size = 5\nvnodes = 32\nseed = 7\n')
    spec = ClusterSpec.from_file(str(path))
    assert spec.keyspace_config() == KeyspaceConfig(
        group_size=5, vnodes=32, seed=7)


def test_locate_matches_simulator_and_client_placement():
    spec = make_spec()
    config = spec.keyspace_config()
    placement = config.placement(spec.node_ids)
    from repro.core.register import RegisterSystem
    system = RegisterSystem("bsr", f=1, n=9, keyspace=config)
    for i in range(50):
        key = key_name(i)
        group = spec.locate(key)
        assert group == placement.servers_for(key)
        assert group == system._placement.servers_for(key)


def test_build_protocol_returns_register_table():
    spec = make_spec(keyspace={"group_size": 5, "max_resident": 10})
    protocol = spec.build_protocol("s000")
    assert isinstance(protocol, RegisterTable)
    assert protocol.max_resident == 10


def test_spec_client_gets_placement():
    spec = make_spec()
    client = spec.client("w000")
    assert client.placement is not None
    assert client.placement.group_size == 5


@pytest.mark.procs
def test_keyed_ops_against_process_cluster(tmp_path):
    async def scenario():
        spec = make_spec(algorithm="bsr", f=1, n=5,
                         keyspace={"group_size": 5, "seed": 2},
                         snapshot_dir=str(tmp_path / "snaps"))
        supervisor = ClusterSupervisor(spec)
        await supervisor.start()
        try:
            writer = supervisor.client("w000", timeout=10.0)
            reader = supervisor.client("r000", timeout=10.0)
            await writer.connect()
            await reader.connect()
            for i in range(6):
                await writer.write(f"proc-{i}".encode(),
                                   register=key_name(i))
            for i in range(6):
                assert (await reader.read(register=key_name(i))
                        == f"proc-{i}".encode())
        finally:
            await supervisor.stop()

    asyncio.run(scenario())
