"""Node flow control: connection caps, rate limiting, health pings.

Everything here runs in-process (one event loop, real TCP on localhost)
-- the process-per-node variants live in the ``procs``-marked tests.
"""

import asyncio

import pytest

from repro.core.messages import HealthAck, StatsAck
from repro.deploy import ClusterSpec, health_ping, stats_ping
from repro.runtime import LocalCluster
from repro.runtime.limits import PerClientBuckets, TokenBucket


def run(coro):
    return asyncio.run(coro)


# -- token bucket unit behaviour -------------------------------------------

def test_token_bucket_spends_and_refills():
    now = [0.0]
    bucket = TokenBucket(rate=10.0, burst=2.0, clock=lambda: now[0])
    assert bucket.allow() and bucket.allow()
    assert not bucket.allow()
    assert bucket.retry_after() == pytest.approx(0.1)
    now[0] += 0.25  # refills 2.5 tokens, capped at burst
    assert bucket.allow() and bucket.allow()
    assert not bucket.allow()


def test_token_bucket_rejects_bad_parameters():
    with pytest.raises(ValueError):
        TokenBucket(rate=0, burst=1)
    with pytest.raises(ValueError):
        TokenBucket(rate=1, burst=0)


def test_per_client_buckets_are_independent_and_bounded():
    now = [0.0]
    buckets = PerClientBuckets(rate=10.0, burst=1.0, max_clients=2,
                               clock=lambda: now[0])
    assert buckets.allow("a")
    assert not buckets.allow("a")   # a's bucket is empty...
    assert buckets.allow("b")       # ...but b's is untouched
    now[0] += 1.0                   # every bucket refills to full (idle)
    assert buckets.allow("c")       # eviction keeps the map at the cap
    assert len(buckets._buckets) <= 2


# -- node-level enforcement ------------------------------------------------

def test_rate_limited_write_backs_off_and_completes():
    async def scenario():
        # A 1-token burst guarantees the second frame of every operation
        # is shed, so the client must handle Throttled to make progress.
        cluster = LocalCluster("bsr", f=1, rate_limit=20.0, rate_burst=1.0)
        await cluster.start()
        try:
            client = cluster.client("w000", timeout=15.0)
            await client.connect()
            for index in range(3):
                await client.write(f"v{index}".encode())
            assert await client.read() == b"v2"
            stats = client.stats()
            assert stats["throttled"] > 0
            assert stats["frames_resent"] > 0
            assert sum(node.stats["frames_throttled"]
                       for node in cluster.nodes.values()) > 0
        finally:
            await cluster.stop()

    run(scenario())


def test_connection_cap_sheds_excess_dials():
    async def scenario():
        cluster = LocalCluster("bsr", f=1, max_connections=1)
        await cluster.start()
        node = next(iter(cluster.nodes.values()))
        try:
            first = await asyncio.open_connection(*node.address)
            second = await asyncio.open_connection(*node.address)
            # The excess connection is closed immediately: EOF, no frames.
            assert await asyncio.wait_for(second[0].read(1), 3.0) == b""
            assert node.stats["connections_refused"] == 1
            first[1].close()
            second[1].close()
        finally:
            await cluster.stop()

    run(scenario())


def test_health_ping_round_trip_and_rate_limit_exemption():
    async def scenario():
        spec = ClusterSpec(algorithm="bsr", f=1, rate_limit=5.0,
                           rate_burst=1.0)
        node = spec.build_node("s000")
        await node.start()
        try:
            auth = spec.authenticator()
            for _ in range(5):  # far beyond the bucket: pings are exempt
                ack = await health_ping(node.address, auth)
            assert isinstance(ack, HealthAck)
            assert ack.node_id == "s000"
            assert ack.history_len == 1  # just the initial pair
            # Telemetry fields are real counters, not defaults: the ack
            # counts its own frame, reports no shed traffic, and carries
            # no snapshot age (this node does not persist).
            assert ack.frames == 5
            assert ack.throttled == 0
            assert ack.snapshot_age == -1.0
            assert node.stats["health_pings"] == 5
            assert node.stats["frames_throttled"] == 0
        finally:
            await node.stop()

    run(scenario())


def test_stats_ping_returns_node_labeled_snapshot():
    async def scenario():
        spec = ClusterSpec(algorithm="bsr", f=1, rate_limit=5.0,
                           rate_burst=1.0)
        node = spec.build_node("s000")
        await node.start()
        try:
            auth = spec.authenticator()
            await health_ping(node.address, auth)
            for _ in range(8):  # deep enough to outrun the rate limit
                ack = await stats_ping(node.address, auth)
            assert isinstance(ack, StatsAck)
            assert ack.node_id == "s000"
            counters = {(c["name"], c["labels"].get("node")): c["value"]
                        for c in ack.metrics["counters"]}
            assert counters[("node_stats_pings_total", "s000")] == 8
            assert counters[("node_health_pings_total", "s000")] == 1
            assert counters[("node_frames_total", "s000")] == 9
        finally:
            await node.stop()

    run(scenario())


def test_stats_ping_exempt_from_rate_limit_and_reports_throttles():
    async def scenario():
        spec = ClusterSpec(algorithm="bsr", f=1, rate_limit=2.0,
                           rate_burst=1.0)
        node = spec.build_node("s000")
        await node.start()
        try:
            auth = spec.authenticator()
            for _ in range(6):  # far beyond a 1-token bucket
                ack = await stats_ping(node.address, auth)
            snapshot = ack.metrics
            throttled = [c["value"] for c in snapshot["counters"]
                         if c["name"] == "node_frames_throttled_total"]
            assert throttled == [0]  # pings are exempt, nothing was shed
        finally:
            await node.stop()

    run(scenario())


def test_health_ping_fails_against_dead_node():
    async def scenario():
        spec = ClusterSpec(algorithm="bsr", f=1)
        node = spec.build_node("s000")
        await node.start()
        address = node.address
        await node.stop()
        with pytest.raises(OSError):
            await health_ping(address, spec.authenticator(), timeout=1.0)

    run(scenario())
