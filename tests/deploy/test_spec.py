"""ClusterSpec parsing, validation and component construction."""

import json

import pytest

from repro.deploy import ClusterSpec
from repro.errors import ConfigurationError
from repro.runtime.client import AsyncRegisterClient
from repro.runtime.node import RegisterServerNode


def test_defaults_resolve_minimum_servers():
    spec = ClusterSpec(algorithm="bsr", f=1)
    assert spec.n == 5
    assert spec.node_ids == ["s000", "s001", "s002", "s003", "s004"]
    coded = ClusterSpec(algorithm="bcsr", f=1)
    assert coded.n == 6


def test_rejects_bad_algorithm_and_small_n():
    with pytest.raises(ConfigurationError):
        ClusterSpec(algorithm="raft", f=1)
    with pytest.raises(ConfigurationError):
        ClusterSpec(algorithm="bsr", f=1, n=4)
    with pytest.raises(ConfigurationError):
        ClusterSpec(algorithm="bsr", f=-1)


def test_rejects_unknown_byzantine_nodes_and_excess_budget():
    with pytest.raises(ConfigurationError):
        ClusterSpec(algorithm="bsr", f=1, byzantine={"s999": "forge_tag"})
    with pytest.raises(ConfigurationError):
        ClusterSpec(algorithm="bsr", f=1,
                    byzantine={"s000": "forge_tag", "s001": "forge_tag"})


def test_base_port_and_overrides():
    spec = ClusterSpec(algorithm="bsr", f=1, base_port=7100,
                       nodes={"s002": ["10.1.2.3", 9000]})
    assert spec.address_of("s000") == ("127.0.0.1", 7100)
    assert spec.address_of("s004") == ("127.0.0.1", 7104)
    assert spec.address_of("s002") == ("10.1.2.3", 9000)
    # base_port 0 means every node binds an ephemeral port.
    assert ClusterSpec(algorithm="bsr", f=1).address_of("s003")[1] == 0


def test_roundtrip_through_dict_and_json_file(tmp_path):
    spec = ClusterSpec(algorithm="bcsr", f=1, base_port=7200,
                       secret="roundtrip", max_history=16,
                       max_connections=64, rate_limit=500.0,
                       snapshot_dir=str(tmp_path / "snaps"))
    path = spec.save(str(tmp_path / "cluster.json"))
    loaded = ClusterSpec.from_file(path)
    assert loaded == spec
    assert loaded.to_dict() == spec.to_dict()


def test_from_toml_file(tmp_path):
    path = tmp_path / "cluster.toml"
    path.write_text(
        'algorithm = "bsr"\n'
        "f = 1\n"
        "base_port = 7300\n"
        'secret = "toml-secret"\n'
        "max_history = 8\n"
        "[byzantine]\n"
        's001 = "forge_tag"\n'
    )
    spec = ClusterSpec.from_file(str(path))
    assert spec.algorithm == "bsr"
    assert spec.base_port == 7300
    assert spec.max_history == 8
    assert spec.byzantine == {"s001": "forge_tag"}


def test_from_file_rejects_unknown_keys_and_garbage(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"algorithm": "bsr", "flux_capacitor": 88}))
    with pytest.raises(ConfigurationError):
        ClusterSpec.from_file(str(bad))
    garbage = tmp_path / "garbage.json"
    garbage.write_text("not json at all")
    with pytest.raises(ConfigurationError):
        ClusterSpec.from_file(str(garbage))


def test_build_node_wires_limits_snapshot_and_history(tmp_path):
    spec = ClusterSpec(algorithm="bsr", f=1, max_history=4,
                       max_connections=10, rate_limit=100.0,
                       snapshot_dir=str(tmp_path / "snaps"))
    node = spec.build_node("s001")
    assert isinstance(node, RegisterServerNode)
    assert node.max_connections == 10
    assert node.rate_limit == 100.0
    assert node.snapshot_path.endswith("s001.snapshot")
    assert node.protocol.max_history == 4
    with pytest.raises(ConfigurationError):
        spec.build_node("s999")


def test_build_node_applies_byzantine_behavior():
    spec = ClusterSpec(algorithm="bsr", f=1, byzantine={"s000": "forge_tag"})
    assert spec.build_node("s000").behavior is not None
    assert spec.build_node("s001").behavior is None


def test_client_from_spec():
    spec = ClusterSpec(algorithm="bcsr", f=1, base_port=7400)
    client = spec.client("w000", timeout=3.0)
    assert isinstance(client, AsyncRegisterClient)
    assert client.algorithm == "bcsr"
    assert client.f == 1
    assert client.addresses == spec.addresses
    assert client.timeout == 3.0
    override = {pid: ("127.0.0.1", 12000 + i)
                for i, pid in enumerate(spec.node_ids)}
    assert spec.client("r000", addresses=override).addresses == override


def test_spec_keys_interoperate_with_node_auth():
    # A client sealed by the spec's derived keys must verify on a node
    # built from the same spec (same shared secret).
    spec = ClusterSpec(algorithm="bsr", f=1, secret="interop")
    auth = spec.authenticator()
    sealed = auth.seal("w000", b"payload")
    sender, payload = spec.build_node("s000").auth.open(sealed)
    assert (sender, payload) == ("w000", b"payload")
