"""Golden-shape test: ``repro cluster status --json --metrics``.

Boots a real process-per-node cluster, drives traffic through it, then
invokes the CLI exactly as an operator would (a separate process) and
asserts the JSON it prints carries per-node phase histograms that
distinguish the paper's rounds.
"""

import asyncio
import json
import os
import subprocess
import sys

import pytest

from repro.deploy import ClusterSpec, ClusterSupervisor

pytestmark = pytest.mark.procs


def make_spec(tmp_path):
    return ClusterSpec(algorithm="bsr", f=1,
                       snapshot_dir=str(tmp_path / "snaps"),
                       secret="metrics-test")


def cli_env():
    import repro
    package_root = os.path.dirname(os.path.dirname(repro.__file__))
    env = dict(os.environ)
    env["PYTHONPATH"] = package_root + os.pathsep + env.get("PYTHONPATH", "")
    return env


def test_status_json_carries_per_node_phase_histograms(tmp_path):
    async def scenario():
        spec = make_spec(tmp_path)
        supervisor = ClusterSupervisor(spec)
        await supervisor.start()
        try:
            writer = supervisor.client("w000", timeout=10.0)
            reader = supervisor.client("r000", timeout=10.0)
            await writer.connect()
            await reader.connect()
            for index in range(3):
                await writer.write(f"v{index}".encode())
                await reader.read()
            completed = subprocess.run(
                [sys.executable, "-m", "repro", "cluster", "status",
                 "--spec", supervisor.spec_path, "--json", "--metrics"],
                env=cli_env(), capture_output=True, text=True, timeout=60)
            return completed
        finally:
            await supervisor.stop()

    completed = asyncio.run(scenario())
    assert completed.returncode == 0, completed.stderr
    report = json.loads(completed.stdout)
    assert report["ok"] is True
    assert len(report["nodes"]) == 5
    for entry in report["nodes"]:
        assert entry["state"] == "healthy"
        health = entry["health"]
        assert health["frames"] > 0
        assert health["history_len"] >= 1
        assert health["snapshot_age"] >= 0  # spec persists snapshots
        # Every node served both write rounds and the read round, and
        # the histograms keep them apart.
        phases = entry["phases"]
        assert set(phases) == {"get-tag", "put-data", "get-data"}
        for digest in phases.values():
            assert digest["count"] == 3
            assert 0 <= digest["p50"] <= digest["p95"] <= digest["p99"]
            assert digest["p99"] > 0


def test_metrics_dump_emits_prometheus_text(tmp_path):
    async def scenario():
        spec = make_spec(tmp_path)
        supervisor = ClusterSupervisor(spec)
        await supervisor.start()
        try:
            client = supervisor.client("w000", timeout=10.0)
            await client.connect()
            await client.write(b"scrape-me")
            completed = subprocess.run(
                [sys.executable, "-m", "repro", "metrics", "dump",
                 "--spec", supervisor.spec_path],
                env=cli_env(), capture_output=True, text=True, timeout=60)
            return completed
        finally:
            await supervisor.stop()

    completed = asyncio.run(scenario())
    assert completed.returncode == 0, completed.stderr
    text = completed.stdout
    assert "# TYPE repro_node_frames_total counter" in text
    assert "# TYPE repro_node_phase_seconds histogram" in text
    # One labelled series per node for the frame counter.
    frame_lines = [line for line in text.splitlines()
                   if line.startswith("repro_node_frames_total{")]
    assert len(frame_lines) == 5
