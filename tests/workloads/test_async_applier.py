"""Replaying generated schedules onto live clients, concurrently."""

import asyncio

import pytest

from repro.runtime import LocalCluster
from repro.sim.rng import SimRng
from repro.workloads import (
    WorkloadSpec,
    apply_schedule_async,
    generate_schedule,
)


def test_spec_concurrency_validation():
    with pytest.raises(ValueError):
        WorkloadSpec(concurrency=0)
    assert WorkloadSpec(concurrency=8).concurrency == 8


def test_apply_schedule_async_replays_onto_live_clients():
    spec = WorkloadSpec(num_ops=24, read_ratio=0.5, value_size=24,
                        num_writers=1, num_readers=2, concurrency=6)
    schedule = generate_schedule(spec, SimRng(5, "async-applier"))

    async def scenario():
        cluster = LocalCluster("bsr", f=1)
        await cluster.start()
        try:
            writers = [cluster.client("w000", timeout=10.0)]
            readers = [cluster.client(f"r{i:03d}", timeout=10.0)
                       for i in range(spec.num_readers)]
            for client in writers + readers:
                await client.connect()
            return await apply_schedule_async(writers, readers, schedule,
                                              concurrency=spec.concurrency)
        finally:
            await cluster.stop()

    results = asyncio.run(scenario())
    assert len(results) == len(schedule)
    written = {op.value for op in schedule if op.kind == "write"}
    for op, result in zip(schedule, results):
        assert not isinstance(result, Exception), result
        if op.kind == "write":
            # The committed tag names this (single) writer.
            assert result.writer == "w000"
        else:
            assert result == b"" or result in written
