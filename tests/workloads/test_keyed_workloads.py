"""Tests for Zipf-keyed (multi-register) workloads and per-register checks."""

import pytest

from repro import RegisterSystem
from repro.consistency import (
    check_safety_per_register,
    split_trace_by_register,
)
from repro.consistency.registers import UNNAMED
from repro.sim.delays import UniformDelay
from repro.sim.rng import SimRng
from repro.workloads import WorkloadSpec, apply_schedule, generate_schedule


def test_spec_validates_keys():
    with pytest.raises(ValueError):
        WorkloadSpec(num_keys=0)
    with pytest.raises(ValueError):
        WorkloadSpec(key_skew=-1)


def test_single_key_spec_has_no_registers():
    spec = WorkloadSpec(num_ops=20, num_keys=1)
    schedule = generate_schedule(spec, SimRng(1, "keys"))
    assert all(op.register is None for op in schedule)


def test_multi_key_spec_assigns_registers():
    spec = WorkloadSpec(num_ops=200, num_keys=10, key_skew=0.99)
    schedule = generate_schedule(spec, SimRng(2, "keys"))
    registers = {op.register for op in schedule}
    assert all(register is not None for register in registers)
    assert len(registers) > 1


def test_zipf_skew_concentrates_on_hot_keys():
    spec = WorkloadSpec(num_ops=500, num_keys=50, key_skew=1.2)
    schedule = generate_schedule(spec, SimRng(3, "keys"))
    hot = sum(1 for op in schedule if op.register == "key-0000")
    assert hot > 500 / 50 * 3  # far above the uniform share


def test_keyed_workload_end_to_end_per_register_safety():
    spec = WorkloadSpec(num_ops=120, read_ratio=0.7, num_keys=5,
                        num_writers=2, num_readers=2, mean_interarrival=2.0)
    schedule = generate_schedule(spec, SimRng(4, "keys"))
    system = RegisterSystem("bsr", f=1, seed=4, namespaced=True,
                            num_writers=2, num_readers=2, initial_value=b"",
                            delay_model=UniformDelay(0.3, 1.0))
    handles = apply_schedule(system, schedule)
    trace = system.run()
    assert all(handle.done for handle in handles)
    check_safety_per_register(trace, initial_value=b"").raise_if_violated()


def test_split_trace_groups_records():
    system = RegisterSystem("bsr", f=1, seed=5, namespaced=True,
                            delay_model=UniformDelay(0.3, 1.0))
    system.write(b"a", at=0.0, register="alpha")
    system.write(b"b", writer=1, at=0.0, register="beta")
    system.read(at=10.0, register="alpha")
    trace = system.run()
    buckets = split_trace_by_register(trace)
    assert set(buckets) == {"alpha", "beta"}
    assert len(buckets["alpha"].operations) == 2
    assert len(buckets["beta"].operations) == 1


def test_unnamed_bucket_for_plain_systems():
    system = RegisterSystem("bsr", f=1, seed=6,
                            delay_model=UniformDelay(0.3, 1.0))
    system.write(b"x", at=0.0)
    trace = system.run()
    buckets = split_trace_by_register(trace)
    assert set(buckets) == {UNNAMED}


def test_cross_register_staleness_is_not_a_violation():
    """A read of register B returning B's initial value is fine even though
    register A has newer data -- per-register checking must not conflate."""
    system = RegisterSystem("bsr", f=1, seed=7, namespaced=True,
                            initial_value=b"", delay_model=UniformDelay(0.3, 1.0))
    system.write(b"0000000001-fresh", at=0.0, register="a")
    read = system.read(at=20.0, register="b")
    trace = system.run()
    assert read.value == b""
    check_safety_per_register(trace, initial_value=b"").raise_if_violated()


# -- ZipfSampler and the keys / zipf_s aliases --------------------------------

def test_zipf_sampler_ranks_hottest_first():
    from repro.workloads import ZipfSampler

    sampler = ZipfSampler(100, 1.2)
    rng = SimRng(9, "zipf")
    draws = [sampler.sample(rng) for _ in range(3000)]
    assert all(0 <= d < 100 for d in draws)
    assert draws.count(0) > draws.count(50)
    assert draws.count(0) > 3000 / 100 * 3


def test_zipf_sampler_zero_skew_is_uniform():
    from repro.workloads import ZipfSampler

    sampler = ZipfSampler(10, 0.0)
    rng = SimRng(10, "zipf-uniform")
    draws = [sampler.sample(rng) for _ in range(5000)]
    counts = [draws.count(i) for i in range(10)]
    assert min(counts) > 300  # every index drawn roughly evenly


def test_zipf_sampler_scales_to_many_keys():
    from repro.workloads import ZipfSampler

    sampler = ZipfSampler(10_000, 1.1)
    rng = SimRng(11, "zipf-wide")
    draws = [sampler.sample(rng) for _ in range(1000)]
    assert all(0 <= d < 10_000 for d in draws)
    assert len(set(draws)) > 100  # the tail is reachable


def test_zipf_sampler_validates():
    from repro.workloads import ZipfSampler

    with pytest.raises(ValueError):
        ZipfSampler(0, 1.0)
    with pytest.raises(ValueError):
        ZipfSampler(10, -0.5)


def test_keys_alias_overrides_num_keys():
    spec = WorkloadSpec(num_ops=10, keys=50, zipf_s=1.3)
    assert spec.num_keys == 50
    assert spec.key_skew == 1.3
    assert spec.keys == 50 and spec.zipf_s == 1.3


def test_aliases_mirror_canonical_fields():
    spec = WorkloadSpec(num_ops=10, num_keys=7, key_skew=0.8)
    assert spec.keys == 7
    assert spec.zipf_s == 0.8


def test_schedule_uses_key_name_format():
    spec = WorkloadSpec(num_ops=100, keys=10_000, zipf_s=1.1)
    schedule = generate_schedule(spec, SimRng(12, "wide-keys"))
    for op in schedule:
        assert op.register is not None
        assert op.register.startswith("key-")
        assert 0 <= int(op.register[4:]) < 10_000
