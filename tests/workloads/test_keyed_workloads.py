"""Tests for Zipf-keyed (multi-register) workloads and per-register checks."""

import pytest

from repro import RegisterSystem
from repro.consistency import (
    check_safety_per_register,
    split_trace_by_register,
)
from repro.consistency.registers import UNNAMED
from repro.sim.delays import UniformDelay
from repro.sim.rng import SimRng
from repro.workloads import WorkloadSpec, apply_schedule, generate_schedule


def test_spec_validates_keys():
    with pytest.raises(ValueError):
        WorkloadSpec(num_keys=0)
    with pytest.raises(ValueError):
        WorkloadSpec(key_skew=-1)


def test_single_key_spec_has_no_registers():
    spec = WorkloadSpec(num_ops=20, num_keys=1)
    schedule = generate_schedule(spec, SimRng(1, "keys"))
    assert all(op.register is None for op in schedule)


def test_multi_key_spec_assigns_registers():
    spec = WorkloadSpec(num_ops=200, num_keys=10, key_skew=0.99)
    schedule = generate_schedule(spec, SimRng(2, "keys"))
    registers = {op.register for op in schedule}
    assert all(register is not None for register in registers)
    assert len(registers) > 1


def test_zipf_skew_concentrates_on_hot_keys():
    spec = WorkloadSpec(num_ops=500, num_keys=50, key_skew=1.2)
    schedule = generate_schedule(spec, SimRng(3, "keys"))
    hot = sum(1 for op in schedule if op.register == "key-0000")
    assert hot > 500 / 50 * 3  # far above the uniform share


def test_keyed_workload_end_to_end_per_register_safety():
    spec = WorkloadSpec(num_ops=120, read_ratio=0.7, num_keys=5,
                        num_writers=2, num_readers=2, mean_interarrival=2.0)
    schedule = generate_schedule(spec, SimRng(4, "keys"))
    system = RegisterSystem("bsr", f=1, seed=4, namespaced=True,
                            num_writers=2, num_readers=2, initial_value=b"",
                            delay_model=UniformDelay(0.3, 1.0))
    handles = apply_schedule(system, schedule)
    trace = system.run()
    assert all(handle.done for handle in handles)
    check_safety_per_register(trace, initial_value=b"").raise_if_violated()


def test_split_trace_groups_records():
    system = RegisterSystem("bsr", f=1, seed=5, namespaced=True,
                            delay_model=UniformDelay(0.3, 1.0))
    system.write(b"a", at=0.0, register="alpha")
    system.write(b"b", writer=1, at=0.0, register="beta")
    system.read(at=10.0, register="alpha")
    trace = system.run()
    buckets = split_trace_by_register(trace)
    assert set(buckets) == {"alpha", "beta"}
    assert len(buckets["alpha"].operations) == 2
    assert len(buckets["beta"].operations) == 1


def test_unnamed_bucket_for_plain_systems():
    system = RegisterSystem("bsr", f=1, seed=6,
                            delay_model=UniformDelay(0.3, 1.0))
    system.write(b"x", at=0.0)
    trace = system.run()
    buckets = split_trace_by_register(trace)
    assert set(buckets) == {UNNAMED}


def test_cross_register_staleness_is_not_a_violation():
    """A read of register B returning B's initial value is fine even though
    register A has newer data -- per-register checking must not conflate."""
    system = RegisterSystem("bsr", f=1, seed=7, namespaced=True,
                            initial_value=b"", delay_model=UniformDelay(0.3, 1.0))
    system.write(b"0000000001-fresh", at=0.0, register="a")
    read = system.read(at=20.0, register="b")
    trace = system.run()
    assert read.value == b""
    check_safety_per_register(trace, initial_value=b"").raise_if_violated()
