"""Unit tests for workload specification and schedule generation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import RegisterSystem
from repro.consistency import check_safety
from repro.sim.delays import UniformDelay
from repro.sim.rng import SimRng
from repro.workloads import (
    ScheduledOp,
    TAO_READ_RATIO,
    WorkloadSpec,
    apply_schedule,
    generate_schedule,
)
from repro.workloads.generator import make_value


def test_spec_validation():
    with pytest.raises(ValueError):
        WorkloadSpec(read_ratio=1.5)
    with pytest.raises(ValueError):
        WorkloadSpec(num_ops=-1)
    with pytest.raises(ValueError):
        WorkloadSpec(mean_interarrival=0)
    with pytest.raises(ValueError):
        WorkloadSpec(num_writers=0)


def test_make_value_unique_and_sized():
    a = make_value(1, 64)
    b = make_value(2, 64)
    assert a != b
    assert len(a) == len(b) == 64


def test_make_value_small_sizes_keep_uniqueness():
    # The unique sequence header is never truncated, even below `size`.
    assert make_value(1, 4) != make_value(2, 4)
    assert len(make_value(1, 0)) == 11  # full header survives


def test_schedule_is_deterministic():
    spec = WorkloadSpec(num_ops=50)
    a = generate_schedule(spec, SimRng(7, "wl"))
    b = generate_schedule(spec, SimRng(7, "wl"))
    assert a == b


def test_schedule_length_and_monotone_times():
    spec = WorkloadSpec(num_ops=100)
    schedule = generate_schedule(spec, SimRng(3, "wl"))
    assert len(schedule) == 100
    times = [op.at for op in schedule]
    assert times == sorted(times)
    assert all(t > 0 for t in times)


def test_read_ratio_roughly_respected():
    spec = WorkloadSpec(num_ops=1000, read_ratio=0.9)
    schedule = generate_schedule(spec, SimRng(5, "wl"))
    reads = sum(1 for op in schedule if op.kind == "read")
    assert 850 <= reads <= 950


def test_all_reads_at_ratio_one():
    spec = WorkloadSpec(num_ops=50, read_ratio=1.0)
    schedule = generate_schedule(spec, SimRng(5, "wl"))
    assert all(op.kind == "read" for op in schedule)


def test_written_values_are_unique():
    spec = WorkloadSpec(num_ops=300, read_ratio=0.5)
    schedule = generate_schedule(spec, SimRng(9, "wl"))
    values = [op.value for op in schedule if op.kind == "write"]
    assert len(values) == len(set(values))


def test_client_indexes_in_range():
    spec = WorkloadSpec(num_ops=200, num_writers=3, num_readers=5)
    schedule = generate_schedule(spec, SimRng(11, "wl"))
    for op in schedule:
        if op.kind == "write":
            assert 0 <= op.client_index < 3
        else:
            assert 0 <= op.client_index < 5


def test_round_robin_mode_cycles_clients():
    spec = WorkloadSpec(num_ops=12, read_ratio=0.0, num_writers=3,
                        randomize_clients=False)
    schedule = generate_schedule(spec, SimRng(2, "wl"))
    assert [op.client_index for op in schedule] == [0, 1, 2] * 4


def test_tao_ratio_constant():
    assert TAO_READ_RATIO == 0.998


def test_apply_schedule_end_to_end_is_safe():
    spec = WorkloadSpec(num_ops=120, read_ratio=0.8, num_writers=2,
                        num_readers=3, mean_interarrival=2.0)
    schedule = generate_schedule(spec, SimRng(21, "wl"))
    system = RegisterSystem("bsr", f=1, seed=21, num_writers=2, num_readers=3,
                            delay_model=UniformDelay(0.3, 1.0))
    handles = apply_schedule(system, schedule)
    trace = system.run()
    assert all(handle.done for handle in handles)
    check_safety(trace).raise_if_violated()


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=100),
       st.floats(min_value=0.0, max_value=1.0))
def test_schedule_respects_num_ops_property(num_ops, ratio):
    spec = WorkloadSpec(num_ops=num_ops, read_ratio=ratio)
    schedule = generate_schedule(spec, SimRng(1, "wl"))
    assert len(schedule) == num_ops
