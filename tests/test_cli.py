"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_algorithms_lists_all(capsys):
    assert main(["algorithms"]) == 0
    out = capsys.readouterr().out
    for name in ("bsr", "bcsr", "rb", "abd", "bsr-history", "bsr-2round"):
        assert name in out


def test_demo_runs_and_reports(capsys):
    assert main(["demo", "--algorithm", "bsr", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "read returned" in out
    assert "MWMR safety: OK" in out


def test_demo_all_algorithms(capsys):
    for algorithm in ("bcsr", "rb", "abd"):
        assert main(["demo", "--algorithm", algorithm]) == 0


def test_scenario_t3(capsys):
    assert main(["scenario", "t3"]) == 0
    out = capsys.readouterr().out
    assert "Theorem 3" in out
    assert "violation" in out  # regularity violations listed


def test_scenario_t3_regular_variant(capsys):
    assert main(["scenario", "t3", "--algorithm", "bsr-history"]) == 0
    out = capsys.readouterr().out
    assert "MWMR regularity: OK" in out


def test_scenario_t5_and_t6(capsys):
    assert main(["scenario", "t5"]) == 0
    assert "Theorem 5" in capsys.readouterr().out
    assert main(["scenario", "t6"]) == 0
    assert "Theorem 6" in capsys.readouterr().out


def test_workload_reports_table(capsys):
    code = main(["workload", "--algorithm", "bsr", "--ops", "60",
                 "--read-ratio", "0.8", "--seed", "5"])
    assert code == 0
    out = capsys.readouterr().out
    assert "mean(s)" in out and "read" in out and "write" in out


def test_workload_exit_code_reflects_safety(capsys):
    # A correct system under a correct workload must exit 0.
    assert main(["workload", "--ops", "30"]) == 0


def test_parser_rejects_unknown_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["frobnicate"])


def test_parser_rejects_unknown_algorithm():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["demo", "--algorithm", "raft"])


def test_modelcheck_below_bound_finds_violations(capsys):
    assert main(["modelcheck", "--n", "4"]) == 0
    out = capsys.readouterr().out
    assert "VIOLATION FOUND" in out
    assert "12 of 16" in out


def test_chaos_runs_schedule_and_reports(capsys):
    assert main(["chaos", "--schedule", "crash-restart", "--ops", "8",
                 "--period", "0.3", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "crash s" in out and "restart s" in out
    assert "MWMR safety: OK" in out
    assert "reconnects" in out


def test_chaos_baseline_schedule_has_no_faults(capsys):
    assert main(["chaos", "--schedule", "none", "--ops", "6",
                 "--period", "0.2"]) == 0
    out = capsys.readouterr().out
    assert "(no faults)" in out
    assert "MWMR safety: OK" in out


def test_chaos_rejects_unknown_schedule():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["chaos", "--schedule", "tornado"])


def test_chaos_procs_rejects_proxy_schedule():
    from repro.errors import ConfigurationError
    with pytest.raises(ConfigurationError):
        main(["chaos", "--schedule", "flaky-links", "--procs", "--ops", "4"])


def test_cluster_status_without_running_cluster(tmp_path, capsys):
    from repro.deploy import ClusterSpec
    from repro.errors import ConfigurationError

    spec_path = ClusterSpec(
        algorithm="bsr", f=1, snapshot_dir=str(tmp_path / "snaps"),
    ).save(str(tmp_path / "cluster.json"))
    with pytest.raises(ConfigurationError):
        main(["cluster", "status", "--spec", spec_path])


def test_cluster_kill_requires_node_flag():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["cluster", "kill", "--spec", "x.json"])


def test_node_serve_requires_spec_and_node():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["node", "serve", "--node", "s000"])


@pytest.mark.procs
def test_cluster_serve_for_duration(tmp_path, capsys):
    from repro.deploy import ClusterSpec

    spec_path = ClusterSpec(
        algorithm="bsr", f=1, snapshot_dir=str(tmp_path / "snaps"),
        secret="cli-serve",
    ).save(str(tmp_path / "cluster.json"))
    assert main(["cluster", "serve", "--spec", spec_path,
                 "--duration", "0.5"]) == 0
    out = capsys.readouterr().out
    assert out.count(" up ") == 5  # five nodes reported running
    assert "state file:" in out


@pytest.mark.procs
def test_chaos_procs_end_to_end(capsys):
    assert main(["chaos", "--schedule", "crash-restart", "--procs",
                 "--ops", "8", "--period", "0.5", "--seed", "2",
                 "--max-history", "6"]) == 0
    out = capsys.readouterr().out
    assert "OS processes" in out
    assert "crash s" in out and "restart s" in out
    assert "snapshots:" in out
    assert "MWMR safety: OK" in out


def test_modelcheck_accepts_exhaustive_flag(capsys):
    # Tiny state cap: outcome may be truncated, but the command must run.
    assert main(["modelcheck", "--n", "4", "--exhaustive",
                 "--max-states", "50"]) in (0, 1)
    out = capsys.readouterr().out
    assert "quorum pairs" in out


# -- keys (sharded keyspace inspection) ---------------------------------------

@pytest.fixture
def keyspace_spec(tmp_path):
    from repro.deploy import ClusterSpec

    return ClusterSpec(
        algorithm="bsr", f=1, n=9, secret="cli-keys",
        keyspace={"group_size": 5, "vnodes": 32, "seed": 7},
    ).save(str(tmp_path / "cluster.json"))


def test_keys_stats_reports_shares(keyspace_spec, capsys):
    assert main(["keys", "stats", "--spec", keyspace_spec,
                 "--sample", "200"]) == 0
    out = capsys.readouterr().out
    assert "group_size=5" in out
    assert "placement fingerprint:" in out
    for i in range(9):
        assert f"s{i:03d}" in out


def test_keys_locate_names_the_group(keyspace_spec, capsys):
    assert main(["keys", "locate", "key-0042",
                 "--spec", keyspace_spec]) == 0
    out = capsys.readouterr().out
    assert "primary:" in out
    assert "group:" in out
    assert "size 5" in out


def test_keys_locate_matches_spec_placement(keyspace_spec, capsys):
    from repro.deploy import ClusterSpec

    assert main(["keys", "locate", "key-0007",
                 "--spec", keyspace_spec]) == 0
    out = capsys.readouterr().out
    group = ClusterSpec.from_file(keyspace_spec).locate("key-0007")
    for node in group:
        assert str(node) in out


def test_keys_rebalance_dry_run(keyspace_spec, capsys):
    assert main(["keys", "rebalance", "--spec", keyspace_spec,
                 "--dry-run", "--add", "1", "--sample", "300"]) == 0
    out = capsys.readouterr().out
    assert "9 -> 10 nodes" in out
    assert "change groups" in out


def test_keys_rebalance_requires_dry_run(keyspace_spec, capsys):
    assert main(["keys", "rebalance", "--spec", keyspace_spec,
                 "--add", "1"]) == 1
    assert "--dry-run" in capsys.readouterr().err


def test_keys_refuses_unsharded_spec(tmp_path, capsys):
    from repro.deploy import ClusterSpec

    plain = ClusterSpec(algorithm="bsr", f=1, secret="plain").save(
        str(tmp_path / "plain.json"))
    assert main(["keys", "stats", "--spec", plain]) == 1
    assert "no [keyspace]" in capsys.readouterr().err


def test_chaos_keyed_workload(capsys):
    assert main(["chaos", "--schedule", "none", "--ops", "10",
                 "--keys", "8", "--zipf-s", "1.1", "--seed", "3",
                 "--period", "0.3"]) == 0
    out = capsys.readouterr().out
    assert "per register" in out
