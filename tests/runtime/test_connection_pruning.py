"""Group-local connection pruning on key-routed clients."""

import asyncio

import pytest

from repro.errors import ConfigurationError
from repro.runtime import LocalCluster
from repro.sharding import KeyspaceConfig, key_name


def run(coro):
    return asyncio.run(coro)


def _stats_counter(client, name):
    return client.stats()[name]


def test_connect_with_keys_dials_only_the_declared_groups():
    async def scenario():
        keyspace = KeyspaceConfig(group_size=5, seed=3)
        cluster = LocalCluster("bsr", f=1, n=10, keyspace=keyspace)
        await cluster.start()
        try:
            placement = keyspace.placement(cluster.server_ids)
            key = key_name(0)
            group = set(placement.servers_for(key))
            client = cluster.client("c-pruned")
            connected = await client.connect(keys=[key])
            assert connected == len(group) == 5
            assert set(client._connections) == group
            pruned = _stats_counter(client, "connections_pruned")
            assert pruned == 10 - len(group)
            # The pruned-out servers were never dialed.
            assert _stats_counter(client, "connects") == len(group)
            await client.write(b"v0", register=key)
            assert await client.read(register=key) == b"v0"
        finally:
            await cluster.stop()

    run(scenario())


def test_operation_outside_declared_keys_lazily_undials():
    async def scenario():
        keyspace = KeyspaceConfig(group_size=5, seed=3)
        cluster = LocalCluster("bsr", f=1, n=10, keyspace=keyspace)
        await cluster.start()
        try:
            placement = keyspace.placement(cluster.server_ids)
            declared = key_name(0)
            home = set(placement.servers_for(declared))
            other = next(key_name(i) for i in range(1, 64)
                         if set(placement.servers_for(key_name(i)))
                         - home)
            client = cluster.client("c-drift")
            await client.connect(keys=[declared])
            before = set(client._connections)
            assert set(placement.servers_for(other)) - before
            # Pruning is advisory: the op dials the missing servers.
            await client.write(b"drift", register=other)
            assert await client.read(register=other) == b"drift"
            needed = set(placement.servers_for(other))
            assert not (needed & client._pruned)
            # The background supervisor dials the un-pruned servers.
            for _ in range(50):
                if needed <= set(client._connections):
                    break
                await asyncio.sleep(0.05)
            assert needed <= set(client._connections)
        finally:
            await cluster.stop()

    run(scenario())


def test_connect_keys_requires_placement():
    async def scenario():
        cluster = LocalCluster("bsr", f=1)
        await cluster.start()
        try:
            client = cluster.client("c-plain")
            with pytest.raises(ConfigurationError):
                await client.connect(keys=["key-0000"])
        finally:
            await cluster.stop()

    run(scenario())


def test_connect_without_keys_still_dials_everyone():
    async def scenario():
        keyspace = KeyspaceConfig(group_size=5, seed=3)
        cluster = LocalCluster("bsr", f=1, n=10, keyspace=keyspace)
        await cluster.start()
        try:
            client = cluster.client("c-full")
            assert await client.connect() == 10
            assert _stats_counter(client, "connections_pruned") == 0
        finally:
            await cluster.stop()

    run(scenario())
