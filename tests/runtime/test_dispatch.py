"""Unit tests for the op dispatcher, admission gate and batched writes."""

import asyncio

import pytest

from repro.core.messages import QueryData, Throttled
from repro.runtime.dispatch import (
    AdmissionGate,
    BatchedConnection,
    OpDispatcher,
)


def run(coro):
    return asyncio.run(coro)


class FakeOperation:
    def __init__(self, op_id):
        self.op_id = op_id


class FakeWriter:
    """StreamWriter stand-in recording write()/drain() call patterns."""

    def __init__(self, fail_drain=False):
        self.writes = []
        self.drains = 0
        self.fail_drain = fail_drain

    def write(self, data):
        self.writes.append(bytes(data))

    async def drain(self):
        self.drains += 1
        if self.fail_drain:
            raise ConnectionResetError("peer went away")


# -- AdmissionGate -----------------------------------------------------------

def test_gate_unlimited_never_queues():
    async def scenario():
        gate = AdmissionGate(None)
        queued = [await gate.acquire() for _ in range(10)]
        assert queued == [False] * 10
        assert gate.inflight == 10 and gate.queued == 0

    run(scenario())


def test_gate_admits_waiters_in_fifo_order():
    async def scenario():
        gate = AdmissionGate(2)
        order = []

        async def op(name):
            queued = await gate.acquire()
            order.append((name, queued))
            await asyncio.sleep(0.01)
            gate.release()

        await asyncio.gather(*(op(i) for i in range(6)))
        names = [name for name, _ in order]
        assert names == sorted(names)  # strict arrival order
        assert [q for _, q in order] == [False, False, True, True, True, True]
        assert gate.queued_total == 4
        assert gate.inflight == 0 and gate.queued == 0

    run(scenario())


def test_gate_cap_is_never_exceeded():
    async def scenario():
        gate = AdmissionGate(3)
        peak = 0

        async def op():
            nonlocal peak
            await gate.acquire()
            peak = max(peak, gate.inflight)
            await asyncio.sleep(0)
            gate.release()

        await asyncio.gather(*(op() for _ in range(20)))
        assert peak == 3

    run(scenario())


def test_gate_cancelled_waiter_releases_its_slot():
    async def scenario():
        gate = AdmissionGate(1)
        await gate.acquire()
        waiter = asyncio.ensure_future(gate.acquire())
        await asyncio.sleep(0)
        assert gate.queued == 1
        waiter.cancel()
        with pytest.raises(asyncio.CancelledError):
            await waiter
        gate.release()
        assert await gate.acquire() is False  # slot is free again

    run(scenario())


def test_gate_rejects_nonpositive_cap():
    with pytest.raises(ValueError):
        AdmissionGate(0)


# -- OpDispatcher ------------------------------------------------------------

def test_replies_route_to_the_owning_op_only():
    async def scenario():
        dispatcher = OpDispatcher()
        a = dispatcher.register(FakeOperation(1))
        b = dispatcher.register(FakeOperation(2))
        assert dispatcher.route("s000", QueryData(op_id=1)) is True
        assert a.replies.qsize() == 1 and b.replies.qsize() == 0
        sender, message = a.replies.get_nowait()
        assert sender == "s000" and message.op_id == 1

    run(scenario())


def test_stale_reply_is_dropped_not_queued():
    async def scenario():
        dispatcher = OpDispatcher()
        state = dispatcher.register(FakeOperation(7))
        dispatcher.unregister(state)
        assert dispatcher.route("s000", QueryData(op_id=7)) is False
        assert dispatcher.inflight == 0

    run(scenario())


def test_stale_throttled_does_not_reach_a_live_op():
    """Regression: the shared-queue design let a finished op's Throttled
    trigger a backoff sleep and frame replay for whichever op ran next."""
    async def scenario():
        dispatcher = OpDispatcher()
        finished = dispatcher.register(FakeOperation(1))
        dispatcher.unregister(finished)
        live = dispatcher.register(FakeOperation(2))
        stale = Throttled(op_id=1, retry_after=5.0, dropped="QueryData")
        assert dispatcher.route("s000", stale) is False
        assert live.replies.qsize() == 0

    run(scenario())


# -- BatchedConnection -------------------------------------------------------

def test_frames_sent_in_one_tick_coalesce_into_one_write():
    async def scenario():
        writer = FakeWriter()
        batches = []
        conn = BatchedConnection(
            "s000", writer, drain_timeout=1.0,
            on_drain_timeout=lambda: None, on_failure=lambda pid: None,
            on_batch=batches.append)
        futures = [conn.send(b"frame-%d" % i) for i in range(4)]
        await asyncio.gather(*futures)
        assert batches == [4]
        assert len(writer.writes) == 1  # one burst
        assert writer.drains == 1       # one drain for the whole burst
        burst = writer.writes[0]
        for i in range(4):
            assert b"frame-%d" % i in burst

    run(scenario())


def test_send_failure_notifies_owner_and_resolves_waiters():
    async def scenario():
        writer = FakeWriter(fail_drain=True)
        failed = []
        conn = BatchedConnection(
            "s000", writer, drain_timeout=1.0,
            on_drain_timeout=lambda: None, on_failure=failed.append)
        fut = conn.send(b"frame")
        await asyncio.wait_for(fut, timeout=1.0)  # resolved, not hung
        assert failed == ["s000"]
        # A closed connection resolves immediately: frames stay in the
        # op's pending map for replay after reconnect.
        await asyncio.wait_for(conn.send(b"more"), timeout=1.0)
        assert len(writer.writes) == 1

    run(scenario())


def test_stalled_link_switches_to_probe_timeouts():
    async def scenario():
        class SlowWriter(FakeWriter):
            async def drain(self):
                self.drains += 1
                await asyncio.sleep(30)

        writer = SlowWriter()
        timeouts = []
        conn = BatchedConnection(
            "s000", writer, drain_timeout=0.01,
            on_drain_timeout=lambda: timeouts.append(1),
            on_failure=lambda pid: None)
        for _ in range(3):
            await conn.send(b"frame")
        assert len(timeouts) == 3
        assert conn.stalled  # chronic: now probing, not paying full drains

    run(scenario())
