"""Sharded keyspace over the asyncio TCP runtime."""

import asyncio

import pytest

from repro.errors import ConfigurationError
from repro.runtime import LocalCluster
from repro.sharding import KeyspaceConfig, key_name


def run(coro):
    return asyncio.run(coro)


def test_keyed_put_get_roundtrip():
    async def scenario():
        cluster = LocalCluster("bsr", f=1, n=9,
                               keyspace=KeyspaceConfig(group_size=5, seed=3))
        await cluster.start()
        try:
            writer = cluster.client("w000")
            reader = cluster.client("r000")
            await writer.connect()
            await reader.connect()
            for i in range(12):
                await writer.write(f"value-{i}".encode(),
                                   register=key_name(i))
            for i in range(12):
                assert (await reader.read(register=key_name(i))
                        == f"value-{i}".encode())
            assert await reader.read(register="untouched-key") == b""
        finally:
            await cluster.stop()

    run(scenario())


def test_keys_land_only_on_their_group():
    async def scenario():
        keyspace = KeyspaceConfig(group_size=5, seed=3)
        cluster = LocalCluster("bsr", f=1, n=9, keyspace=keyspace)
        await cluster.start()
        try:
            writer = cluster.client("w000")
            await writer.connect()
            placement = keyspace.placement(cluster.server_ids)
            for i in range(10):
                await writer.write(b"v", register=key_name(i))
            for i in range(10):
                key = key_name(i)
                group = set(placement.servers_for(key))
                for pid, node in cluster.nodes.items():
                    hosted = key in node.protocol.registers
                    assert hosted == (pid in group), (key, pid)
        finally:
            await cluster.stop()

    run(scenario())


def test_group_quorums_tolerate_f_byzantine():
    async def scenario():
        cluster = LocalCluster("bsr", f=1, n=9,
                               keyspace=KeyspaceConfig(group_size=5, seed=3),
                               byzantine={0: "stale"})
        await cluster.start()
        try:
            writer = cluster.client("w000")
            reader = cluster.client("r000")
            await writer.connect()
            await reader.connect()
            for i in range(8):
                await writer.write(f"v{i}".encode(), register=key_name(i))
                assert (await reader.read(register=key_name(i))
                        == f"v{i}".encode())
        finally:
            await cluster.stop()

    run(scenario())


def test_invalid_key_rejected_client_side():
    async def scenario():
        cluster = LocalCluster("bsr", f=1, n=9,
                               keyspace=KeyspaceConfig(group_size=5, seed=3))
        await cluster.start()
        try:
            writer = cluster.client("w000")
            await writer.connect()
            with pytest.raises(ConfigurationError):
                await writer.write(b"x", register="bad key")
            with pytest.raises(ConfigurationError):
                await writer.write(b"x", register="y" * 300)
        finally:
            await cluster.stop()

    run(scenario())


def test_eviction_under_live_load():
    async def scenario():
        cluster = LocalCluster(
            "bsr", f=1, n=5,
            keyspace=KeyspaceConfig(group_size=5, seed=3, max_resident=4))
        await cluster.start()
        try:
            writer = cluster.client("w000")
            reader = cluster.client("r000")
            await writer.connect()
            await reader.connect()
            for i in range(16):
                await writer.write(f"v{i}".encode(), register=key_name(i))
            # Every key still reads back despite only 4 resident per node.
            for i in range(16):
                assert (await reader.read(register=key_name(i))
                        == f"v{i}".encode())
            for node in cluster.nodes.values():
                assert len(node.protocol.registers) <= 4
                assert len(node.protocol.archived_keys) > 0
            snap = cluster.registry.snapshot()
            evictions = sum(c["value"] for c in snap["counters"]
                            if c["name"] == "table_evictions_total")
            rehydrations = sum(c["value"] for c in snap["counters"]
                               if c["name"] == "table_rehydrations_total")
            assert evictions > 0 and rehydrations > 0
        finally:
            await cluster.stop()

    run(scenario())


def test_client_group_ops_metric():
    async def scenario():
        cluster = LocalCluster("bsr", f=1, n=9,
                               keyspace=KeyspaceConfig(group_size=5, seed=3))
        await cluster.start()
        try:
            writer = cluster.client("w000")
            await writer.connect()
            for i in range(6):
                await writer.write(b"v", register=key_name(i))
            snap = cluster.registry.snapshot()
            entries = [c for c in snap["counters"]
                       if c["name"] == "client_group_ops_total"]
            assert entries
            assert sum(c["value"] for c in entries) == 6
            for entry in entries:
                label = entry["labels"]["group"]
                assert len(label.split("+")) == 5
        finally:
            await cluster.stop()

    run(scenario())


def test_sharded_bcsr_requires_full_fleet_groups():
    with pytest.raises(ConfigurationError):
        LocalCluster("bcsr", f=1, n=7,
                     keyspace=KeyspaceConfig(group_size=6, seed=1))


def test_sharded_bcsr_full_fleet_roundtrip():
    async def scenario():
        cluster = LocalCluster("bcsr", f=1,
                               keyspace=KeyspaceConfig(group_size=6, seed=1))
        await cluster.start()
        try:
            writer = cluster.client("w000")
            reader = cluster.client("r000")
            await writer.connect()
            await reader.connect()
            for i in range(4):
                await writer.write(f"coded-{i}".encode(),
                                   register=key_name(i))
                assert (await reader.read(register=key_name(i))
                        == f"coded-{i}".encode())
        finally:
            await cluster.stop()

    run(scenario())


def test_undersized_groups_rejected():
    with pytest.raises(ConfigurationError):
        LocalCluster("bsr", f=1, n=9,
                     keyspace=KeyspaceConfig(group_size=4, seed=1))


def test_concurrent_multikey_clients():
    async def scenario():
        cluster = LocalCluster("bsr", f=1, n=9,
                               keyspace=KeyspaceConfig(group_size=5, seed=3))
        await cluster.start()
        try:
            writer = cluster.client("w000")
            reader = cluster.client("r000")
            await writer.connect()
            await reader.connect()
            await asyncio.gather(*(
                writer.write(f"v{i}".encode(), register=key_name(i))
                for i in range(10)))
            values = await asyncio.gather(*(
                reader.read(register=key_name(i)) for i in range(10)))
            assert values == [f"v{i}".encode() for i in range(10)]
        finally:
            await cluster.stop()

    run(scenario())
