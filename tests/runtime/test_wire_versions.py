"""Mixed wire versions: v1 and v2 peers interoperate on one cluster.

Version detection is per payload (JSON starts with ``{``, v2 with the
``0xB2`` magic, batch envelopes with an impossible ``name_len``), so a
v1 client must work against v2 nodes and vice versa with no
negotiation.  These tests run real TCP clusters in every combination.
"""

import asyncio

import pytest

from repro.errors import ConfigurationError
from repro.runtime import LocalCluster
from repro.runtime.client import AsyncRegisterClient


def run(coro):
    return asyncio.run(coro)


@pytest.mark.parametrize("node_wire,client_wire", [
    ("v1", "v1"), ("v1", "v2"), ("v2", "v1"), ("v2", "v2"),
])
def test_mixed_wire_cluster_write_read(node_wire, client_wire):
    async def scenario():
        cluster = LocalCluster("bsr", f=1, wire=node_wire)
        await cluster.start()
        try:
            writer = cluster.client("w000", wire=client_wire)
            reader = cluster.client("r000", wire=client_wire)
            await writer.connect()
            await reader.connect()
            tag = await writer.write(b"mixed-wire-value")
            assert tag.num == 1
            assert await reader.read() == b"mixed-wire-value"
        finally:
            await cluster.stop()

    run(scenario())


def test_v1_and_v2_clients_share_one_v2_cluster():
    """Two clients on different wire versions observe each other."""
    async def scenario():
        cluster = LocalCluster("bsr", f=1, wire="v2")
        await cluster.start()
        try:
            old = cluster.client("w000", wire="v1")
            new = cluster.client("r000", wire="v2")
            await old.connect()
            await new.connect()
            await old.write(b"written-on-v1")
            assert await new.read() == b"written-on-v1"
        finally:
            await cluster.stop()

    run(scenario())


def test_concurrent_ops_on_v2_wire_batch_seal():
    """Concurrent in-flight ops ride the batched envelope unharmed."""
    async def scenario():
        cluster = LocalCluster("bsr", f=1, wire="v2")
        await cluster.start()
        try:
            client = cluster.client("w000", max_inflight=8)
            await client.connect()
            tags = await asyncio.gather(
                *(client.write(f"burst-{i}".encode()) for i in range(8)))
            assert len({t.num for t in tags}) == 8
            reader = cluster.client("r000")
            await reader.connect()
            assert (await reader.read()).startswith(b"burst-")
            stats = cluster.registry.snapshot()
        finally:
            await cluster.stop()

    run(scenario())


def test_wire_validation():
    with pytest.raises(ConfigurationError):
        AsyncRegisterClient("c0", {}, 1, None, wire="v3")


def test_namespaced_registers_on_v2_wire():
    async def scenario():
        cluster = LocalCluster("bsr", f=1, namespaced=True, wire="v2")
        await cluster.start()
        try:
            client = cluster.client("w000")
            await client.connect()
            await client.write(b"alpha", register="a")
            await client.write(b"beta", register="b")
            assert await client.read(register="a") == b"alpha"
            assert await client.read(register="b") == b"beta"
        finally:
            await cluster.stop()

    run(scenario())


@pytest.mark.parametrize("wire", ["v1", "v2"])
def test_byzantine_tolerated_on_both_wires(wire):
    async def scenario():
        cluster = LocalCluster("bsr", f=1, byzantine={2: "forge_tag"},
                               wire=wire)
        await cluster.start()
        try:
            writer = cluster.client("w000")
            reader = cluster.client("r000")
            await writer.connect()
            await reader.connect()
            await writer.write(b"safe-despite-forgery")
            assert await reader.read() == b"safe-despite-forgery"
        finally:
            await cluster.stop()

    run(scenario())
