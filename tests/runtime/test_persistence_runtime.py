"""Crash-recovery over TCP: node snapshots survive a full cluster restart."""

import asyncio
import os

import pytest

from repro.runtime import LocalCluster


def run(coro):
    return asyncio.run(coro)


def test_cluster_state_survives_restart(tmp_path):
    snapshot_dir = str(tmp_path / "snapshots")

    async def first_life():
        cluster = LocalCluster("bsr", f=1, snapshot_dir=snapshot_dir)
        await cluster.start()
        try:
            writer = cluster.client("w000")
            await writer.connect()
            await writer.write(b"durable-value")
        finally:
            await cluster.stop()

    async def second_life():
        cluster = LocalCluster("bsr", f=1, snapshot_dir=snapshot_dir)
        await cluster.start()
        try:
            reader = cluster.client("r000")
            await reader.connect()
            return await reader.read()
        finally:
            await cluster.stop()

    run(first_life())
    # Snapshots were written for every server that stored the value.
    snapshots = os.listdir(snapshot_dir)
    assert len(snapshots) == 5
    assert run(second_life()) == b"durable-value"


def test_partial_snapshot_loss_is_tolerated(tmp_path):
    """Losing f snapshots is just f slow servers: reads still succeed."""
    snapshot_dir = str(tmp_path / "snapshots")

    async def first_life():
        cluster = LocalCluster("bsr", f=1, snapshot_dir=snapshot_dir)
        await cluster.start()
        try:
            writer = cluster.client("w000")
            await writer.connect()
            await writer.write(b"mostly-durable")
        finally:
            await cluster.stop()

    run(first_life())
    os.remove(os.path.join(snapshot_dir, "s000.snapshot"))

    async def second_life():
        cluster = LocalCluster("bsr", f=1, snapshot_dir=snapshot_dir)
        await cluster.start()
        try:
            reader = cluster.client("r000")
            await reader.connect()
            return await reader.read()
        finally:
            await cluster.stop()

    assert run(second_life()) == b"mostly-durable"


def test_bcsr_snapshots_restore_coded_elements(tmp_path):
    snapshot_dir = str(tmp_path / "snapshots")

    async def first_life():
        cluster = LocalCluster("bcsr", f=1, snapshot_dir=snapshot_dir)
        await cluster.start()
        try:
            writer = cluster.client("w000")
            await writer.connect()
            await writer.write(b"coded and durable")
        finally:
            await cluster.stop()

    async def second_life():
        cluster = LocalCluster("bcsr", f=1, snapshot_dir=snapshot_dir)
        await cluster.start()
        try:
            reader = cluster.client("r000")
            await reader.connect()
            return await reader.read()
        finally:
            await cluster.stop()

    run(first_life())
    assert run(second_life()) == b"coded and durable"


def test_no_snapshot_dir_means_fresh_start(tmp_path):
    async def life(expect):
        cluster = LocalCluster("bsr", f=1, initial_value=b"fresh")
        await cluster.start()
        try:
            client = cluster.client("c000")
            await client.connect()
            if expect is None:
                await client.write(b"ephemeral")
                return None
            return await client.read()
        finally:
            await cluster.stop()

    run(life(None))
    assert run(life("read")) == b"fresh"  # nothing persisted
