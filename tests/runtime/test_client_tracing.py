"""Client-side op tracing against a live in-process cluster."""

import asyncio

from repro.obs import MemorySink, MetricRegistry
from repro.runtime import LocalCluster


def run(coro):
    return asyncio.run(coro)


def test_write_and_read_spans_name_the_paper_phases():
    async def scenario():
        sink = MemorySink()
        cluster = LocalCluster("bsr", f=1)
        await cluster.start()
        try:
            client = cluster.client("w000", timeout=10.0, trace_sink=sink)
            await client.connect()
            await client.write(b"hello")
            assert await client.read() == b"hello"
        finally:
            await cluster.stop()
        return sink, cluster.registry

    sink, registry = run(scenario())
    write, read = sink.records
    assert write["kind"] == "write" and write["outcome"] == "ok"
    assert [p["phase"] for p in write["phases"]] == ["get-tag", "put-data"]
    # n = 4f + 1 = 5: every phase waits for f+1=2 witnesses and n-f=4
    # replies; both waits must be recorded and ordered.
    for phase in write["phases"]:
        assert len(phase["replies"]) >= 4
        assert 0 < phase["witness_wait"] <= phase["quorum_wait"]
    assert read["kind"] == "read" and read["outcome"] == "ok"
    assert [p["phase"] for p in read["phases"]] == ["get-data"]

    # The same spans fed the cluster's shared registry.
    assert registry.counter_value("client_ops_total", op="write",
                                  outcome="ok") == 1
    assert registry.counter_value("client_ops_total", op="read",
                                  outcome="ok") == 1
    phases = {dict(h.labels)["phase"]
              for h in registry.histograms_named("client_phase_seconds")}
    assert phases == {"get-tag", "put-data", "get-data"}
    # And the nodes' service histograms bucket by the same phase names.
    node_phases = {dict(h.labels)["phase"]
                   for h in registry.histograms_named("node_phase_seconds")}
    assert node_phases == {"get-tag", "put-data", "get-data"}


def test_two_round_read_opens_a_second_phase():
    async def scenario():
        sink = MemorySink()
        cluster = LocalCluster("bsr-2round", f=1)
        await cluster.start()
        try:
            client = cluster.client("r000", timeout=10.0, trace_sink=sink)
            await client.connect()
            await client.read()
        finally:
            await cluster.stop()
        return sink

    sink = run(scenario())
    [read] = [r for r in sink.records if r["kind"] == "read"]
    assert [p["phase"] for p in read["phases"]] == [
        "get-tag-history", "get-value"]


def test_client_stats_compat_view_reflects_registry():
    async def scenario():
        registry = MetricRegistry()
        cluster = LocalCluster("bsr", f=1, registry=registry)
        await cluster.start()
        try:
            client = cluster.client("w000", timeout=10.0)
            await client.connect()
            await client.write(b"x")
            stats = client.stats()
            assert stats["connected"] == 5
            assert stats["connects"] == 5
            assert stats["reconnects"] == 0
            assert registry.counter_value("client_connects_total",
                                          client="w000") == 5
        finally:
            await cluster.stop()

    run(scenario())
