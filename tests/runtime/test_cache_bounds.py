"""Per-key caches stay bounded: client state, codec caches, placement.

Keyed workloads touch arbitrarily many registers over a long run; every
per-key lookaside structure must have a hard cap or node/client memory
grows without bound.  These tests drive each cache past a (monkeypatched
where needed) cap and assert the bound holds -- and that correctness
hazards like evicting a *held* write lock are avoided.
"""

import asyncio

import pytest

import repro.runtime.client as client_module
import repro.sharding.ring as ring_module
from repro.core.keys import key_name
from repro.core.messages import DataReply, QueryData
from repro.core.namespace import NamespacedMessage
from repro.core.tags import Tag
from repro.runtime import LocalCluster
from repro.sharding import KeyspaceConfig
from repro.transport.codec2 import _NS_CACHE_MAX, CachedDecoder, CachedEncoder


def run(coro):
    return asyncio.run(coro)


# -- client per-key state ---------------------------------------------------

def test_client_key_state_caps_exist():
    assert client_module.MAX_KEY_STATES == 4096


def test_write_locks_and_reader_states_are_bounded(monkeypatch):
    monkeypatch.setattr(client_module, "MAX_KEY_STATES", 8)

    async def scenario():
        cluster = LocalCluster("bsr", f=1,
                               keyspace=KeyspaceConfig(group_size=5))
        await cluster.start()
        try:
            client = cluster.client("c-bounds")
            for i in range(100):
                client._write_lock_for(key_name(i))
                client._reader_state_for(key_name(i))
            assert len(client._write_locks) <= 8
            assert len(client._register_states) <= 8
        finally:
            await cluster.stop()

    run(scenario())


def test_held_write_locks_survive_eviction(monkeypatch):
    monkeypatch.setattr(client_module, "MAX_KEY_STATES", 4)

    async def scenario():
        cluster = LocalCluster("bsr", f=1,
                               keyspace=KeyspaceConfig(group_size=5))
        await cluster.start()
        try:
            client = cluster.client("c-held")
            held = client._write_lock_for("key-held")
            await held.acquire()
            try:
                for i in range(50):
                    client._write_lock_for(key_name(i))
                # The held lock was never shed: evicting it would let a
                # second write to its key overlap the first.
                assert client._write_locks.get("key-held") is held
            finally:
                held.release()
        finally:
            await cluster.stop()

    run(scenario())


# -- codec v2 namespaced caches ---------------------------------------------

def test_encoder_register_cache_is_bounded():
    encoder = CachedEncoder()
    for i in range(2 * _NS_CACHE_MAX):
        encoder(NamespacedMessage(key_name(i), QueryData(op_id=i)))
    assert len(encoder._ns) <= _NS_CACHE_MAX


def test_decoder_tail_cache_is_bounded():
    encoder = CachedEncoder()
    decoder = CachedDecoder()
    for i in range(2 * _NS_CACHE_MAX):
        message = NamespacedMessage(
            key_name(0),
            DataReply(op_id=i, tag=Tag(i, "w0"),
                      payload=f"value-{i:05d}".encode()))
        blob = encoder(message)
        assert decoder(blob) == message      # cache changes cost, not bytes
    for tails in decoder._ns.values():
        assert len(tails) <= _NS_CACHE_MAX


# -- placement group cache --------------------------------------------------

def test_placement_group_cache_is_bounded(monkeypatch):
    monkeypatch.setattr(ring_module, "_GROUP_CACHE", 64)
    keyspace = KeyspaceConfig(group_size=3, seed=1)
    placement = keyspace.placement([f"s{i}" for i in range(6)])
    groups = [placement.servers_for(key_name(i)) for i in range(500)]
    assert len(placement._cache) <= 64
    # Eviction never changes resolution, only cost.
    for i in (0, 100, 499):
        assert placement.servers_for(key_name(i)) == groups[i]


def test_placement_group_cache_default_cap():
    assert ring_module._GROUP_CACHE == 65536
