"""Degraded-start and mid-operation failure paths of the asyncio client."""

import asyncio

import pytest

from repro.chaos.faults import FaultPlan
from repro.runtime import LocalCluster


def run(coro):
    return asyncio.run(coro)


async def wait_for(predicate, timeout=5.0, interval=0.05):
    loop = asyncio.get_event_loop()
    deadline = loop.time() + timeout
    while not predicate():
        if loop.time() > deadline:
            return False
        await asyncio.sleep(interval)
    return True


def test_connect_with_subset_down_then_lazy_redial():
    """A server that is down at connect() joins the quorum once it is back."""
    async def scenario():
        cluster = LocalCluster("bsr", f=1)
        await cluster.start()
        try:
            victim = cluster.server_ids[0]
            await cluster.nodes[victim].stop()
            client = cluster.client("w000", timeout=10.0,
                                    backoff_base=0.02, backoff_max=0.2)
            assert await client.connect() == 4
            await client.write(b"degraded-start")
            # The victim comes back; the supervisor re-dials it lazily,
            # with no further connect() call.
            await cluster.nodes[victim].start()
            assert await wait_for(
                lambda: client.stats()["connected"] == 5)
            assert client.stats()["reconnects"] >= 1
            await client.write(b"fully-healed")
        finally:
            await cluster.stop()

    run(scenario())


def test_connect_without_reconnect_stays_degraded():
    async def scenario():
        cluster = LocalCluster("bsr", f=1)
        await cluster.start()
        try:
            victim = cluster.server_ids[0]
            await cluster.nodes[victim].stop()
            client = cluster.client("w000", timeout=10.0, reconnect=False)
            assert await client.connect() == 4
            await cluster.nodes[victim].start()
            await client.write(b"still-four")
            await asyncio.sleep(0.3)
            assert client.stats()["connected"] == 4
            assert client.stats().get("reconnects", 0) == 0
        finally:
            await cluster.stop()

    run(scenario())


def test_crash_mid_session_does_not_poison_reply_queue():
    """A connection reset between operations leaves later ops healthy."""
    async def scenario():
        cluster = LocalCluster("bsr", f=1)
        await cluster.start()
        try:
            writer = cluster.client("w000", timeout=10.0,
                                    backoff_base=0.02, backoff_max=0.2)
            reader = cluster.client("r000", timeout=10.0,
                                    backoff_base=0.02, backoff_max=0.2)
            await writer.connect()
            await reader.connect()
            await writer.write(b"before-crash")
            victim = cluster.server_ids[1]
            await cluster.nodes[victim].stop()  # resets live connections
            # Ops keep completing on the n - 1 survivors.
            for i in range(3):
                await writer.write(f"after-crash-{i}".encode())
                assert await reader.read() == f"after-crash-{i}".encode()
            assert writer.stats()["disconnects"] >= 1
        finally:
            await cluster.stop()

    run(scenario())


def test_severed_link_mid_operations_is_survived():
    """A link that dies on every frame never blocks the other four."""
    async def scenario():
        plan = FaultPlan(seed=5)
        cluster = LocalCluster("bsr", f=1, chaos=True, chaos_plan=plan)
        await cluster.start()
        try:
            plan.set_policy(str(cluster.server_ids[0]), sever_rate=1.0)
            writer = cluster.client("w000", timeout=10.0,
                                    backoff_base=0.02, backoff_max=0.2)
            reader = cluster.client("r000", timeout=10.0,
                                    backoff_base=0.02, backoff_max=0.2)
            await writer.connect()
            await reader.connect()
            for i in range(4):
                await writer.write(f"chopped-{i}".encode())
                assert await reader.read() == f"chopped-{i}".encode()
            assert writer.stats()["disconnects"] >= 1
        finally:
            await cluster.stop()

    run(scenario())


def test_reconnect_resends_in_flight_operation():
    """A blackholed-then-healed quorum server still serves the pending op."""
    async def scenario():
        plan = FaultPlan(seed=5)
        cluster = LocalCluster("bsr", f=1, chaos=True, chaos_plan=plan)
        await cluster.start()
        try:
            client = cluster.client("w000", timeout=15.0,
                                    backoff_base=0.02, backoff_max=0.1,
                                    drain_timeout=0.2)
            await client.connect()
            # Crash two servers: only 3 of 5 left, one short of the n - f
            # quorum, so the write must stall...
            for victim in cluster.server_ids[:2]:
                await cluster.crash(victim)
            op = asyncio.ensure_future(client.write(b"needs-reconnect"))
            await asyncio.sleep(0.5)
            assert not op.done()
            # ...until one victim restarts (from snapshotless state, which
            # is fine for a fresh register) and the supervisor re-dials and
            # re-sends the in-flight frames.
            await cluster.restart(cluster.server_ids[0])
            tag = await asyncio.wait_for(op, 10.0)
            assert tag.num >= 1
            stats = client.stats()
            assert stats["reconnects"] >= 1
            assert stats["frames_resent"] >= 1
            assert stats["ops_retried"] >= 1
        finally:
            await cluster.stop()

    run(scenario())
