"""Concurrent operations multiplexed over one AsyncRegisterClient."""

import asyncio

from repro.core.messages import Throttled
from repro.obs import MemorySink, MetricRegistry
from repro.runtime import LocalCluster


def run(coro):
    return asyncio.run(coro)


def test_gather_of_mixed_reads_and_writes_on_one_client():
    async def scenario():
        sink = MemorySink()
        cluster = LocalCluster("bsr", f=1)
        await cluster.start()
        try:
            client = cluster.client("w000", timeout=10.0, trace_sink=sink)
            await client.connect()
            values = [f"v{i}".encode() for i in range(4)]
            results = await asyncio.gather(
                *[client.write(v) for v in values],
                *[client.read() for _ in range(12)],
            )
        finally:
            await cluster.stop()
        return values, results, sink, client.stats()

    values, results, sink, stats = run(scenario())
    tags = results[:4]
    reads = results[4:]
    # Writes by one client are serialized, so the four tags are distinct
    # and strictly increasing (tag uniqueness is the safety bedrock).
    assert len({(t.num, t.writer) for t in tags}) == 4
    assert [t.num for t in tags] == sorted(t.num for t in tags)
    # Every read returns the initial value or one of the written ones.
    for value in reads:
        assert value == b"" or value in values
    # One span per operation, keyed by unique op_ids, all finished ok.
    assert len(sink.records) == 16
    assert len({r["op_id"] for r in sink.records}) == 16
    assert all(r["outcome"] == "ok" for r in sink.records)
    assert stats["inflight"] == 0


def test_concurrent_ops_overlap_and_inflight_gauge_settles():
    async def scenario():
        sink = MemorySink()
        registry = MetricRegistry()
        cluster = LocalCluster("bsr", f=1, registry=registry)
        await cluster.start()
        try:
            client = cluster.client("r000", timeout=10.0, trace_sink=sink)
            await client.connect()
            await asyncio.gather(*[client.read() for _ in range(8)])
        finally:
            await cluster.stop()
        return sink, registry

    sink, registry = run(scenario())
    # At least one span finished while others were still in flight --
    # the single-op runtime could never produce a nonzero depth here.
    assert max(r["inflight"] for r in sink.records) > 0
    assert registry.gauge("client_inflight_ops", client="r000").value == 0


def test_concurrent_ops_across_namespaced_registers():
    async def scenario():
        cluster = LocalCluster("bsr", f=1, namespaced=True)
        await cluster.start()
        try:
            client = cluster.client("w000", timeout=10.0)
            await client.connect()
            registers = [f"key-{i}" for i in range(4)]
            await asyncio.gather(*[
                client.write(f"{reg}:value".encode(), register=reg)
                for reg in registers])
            reads = await asyncio.gather(*[
                client.read(register=reg) for reg in registers
                for _ in range(3)])
        finally:
            await cluster.stop()
        return registers, reads

    registers, reads = run(scenario())
    for index, value in enumerate(reads):
        assert value == f"{registers[index // 3]}:value".encode()


def test_max_inflight_queues_fifo_and_counts():
    async def scenario():
        cluster = LocalCluster("bsr", f=1)
        await cluster.start()
        try:
            client = cluster.client("r000", timeout=10.0, max_inflight=2)
            await client.connect()
            results = await asyncio.gather(*[client.read()
                                             for _ in range(8)])
        finally:
            await cluster.stop()
        return results, client.stats()

    results, stats = run(scenario())
    assert all(value == b"" for value in results)
    # 2 ran immediately; the other 6 waited at the admission gate.
    assert stats["ops_queued"] == 6
    assert stats["inflight"] == 0


def test_stale_throttled_does_not_slow_the_next_op():
    """Regression: interleave a throttled (finished) op with a fresh one.

    With the shared reply queue, a ``Throttled`` arriving after its op
    finished was consumed by the *next* operation, which then slept the
    throttle backoff and replayed frames no server had shed.  Routed by
    ``op_id``, the stale frame is dropped instead.
    """
    async def scenario():
        sink = MemorySink()
        cluster = LocalCluster("bsr", f=1)
        await cluster.start()
        try:
            client = cluster.client("r000", timeout=10.0, trace_sink=sink)
            await client.connect()
            await client.read()  # the op that "was throttled"; now finished
            finished_op = sink.records[0]["op_id"]
            stale = Throttled(op_id=finished_op, retry_after=5.0,
                              dropped="QueryData")
            assert client._dispatcher.route("s000", stale) is False
            loop = asyncio.get_running_loop()
            started = loop.time()
            await client.read()
            elapsed = loop.time() - started
        finally:
            await cluster.stop()
        return sink, client.stats(), elapsed

    sink, stats, elapsed = run(scenario())
    fresh = sink.records[1]
    assert fresh["outcome"] == "ok" and fresh["throttles"] == 0
    assert fresh["resends"] == 0
    assert stats["throttled"] == 0 and stats["frames_resent"] == 0
    # The old bug slept min(retry_after, backoff_max) = 2s here.
    assert elapsed < 1.0
