"""Integration tests for the asyncio TCP runtime."""

import asyncio

import pytest

from repro.errors import ConfigurationError, LivenessError
from repro.runtime import AsyncRegisterClient, LocalCluster
from repro.transport.auth import Authenticator, KeyChain


def run(coro):
    return asyncio.run(coro)


@pytest.mark.parametrize("algorithm", ["bsr", "bsr-history", "bsr-2round",
                                       "bcsr", "abd"])
def test_write_read_over_tcp(algorithm):
    async def scenario():
        cluster = LocalCluster(algorithm, f=1)
        await cluster.start()
        try:
            writer = cluster.client("w000")
            reader = cluster.client("r000")
            await writer.connect()
            await reader.connect()
            tag = await writer.write(b"network-value")
            assert tag.num == 1
            value = await reader.read()
            assert value == b"network-value"
        finally:
            await cluster.stop()

    run(scenario())


def test_sequential_writes_increase_tags():
    async def scenario():
        cluster = LocalCluster("bsr", f=1)
        await cluster.start()
        try:
            writer = cluster.client("w000")
            await writer.connect()
            first = await writer.write(b"a")
            second = await writer.write(b"b")
            assert first < second
        finally:
            await cluster.stop()

    run(scenario())


def test_reader_state_persists_across_tcp_reads():
    async def scenario():
        cluster = LocalCluster("bsr", f=1)
        await cluster.start()
        try:
            writer = cluster.client("w000")
            reader = cluster.client("r000")
            await writer.connect()
            await reader.connect()
            await writer.write(b"sticky")
            assert await reader.read() == b"sticky"
            assert await reader.read() == b"sticky"
        finally:
            await cluster.stop()

    run(scenario())


@pytest.mark.parametrize("behavior", ["silent", "stale", "forge_tag",
                                      "corrupt_value"])
def test_byzantine_node_tolerated_over_tcp(behavior):
    async def scenario():
        cluster = LocalCluster("bsr", f=1, byzantine={2: behavior})
        await cluster.start()
        try:
            writer = cluster.client("w000")
            reader = cluster.client("r000")
            await writer.connect()
            await reader.connect()
            await writer.write(b"resilient")
            assert await reader.read() == b"resilient"
        finally:
            await cluster.stop()

    run(scenario())


def test_operations_survive_f_unreachable_servers():
    async def scenario():
        cluster = LocalCluster("bsr", f=1)
        await cluster.start()
        try:
            # Stop one server: n - f remain, liveness must hold.
            victim = cluster.server_ids[0]
            await cluster.nodes[victim].stop()
            writer = cluster.client("w000", timeout=10.0)
            reader = cluster.client("r000", timeout=10.0)
            await writer.connect()
            await reader.connect()
            await writer.write(b"degraded-mode")
            assert await reader.read() == b"degraded-mode"
        finally:
            await cluster.stop()

    run(scenario())


def test_liveness_error_when_quorum_unreachable():
    async def scenario():
        cluster = LocalCluster("bsr", f=1)
        await cluster.start()
        try:
            for victim in cluster.server_ids[:2]:  # f + 1 down: no quorum
                await cluster.nodes[victim].stop()
            writer = cluster.client("w000", timeout=0.5)
            await writer.connect()
            with pytest.raises(LivenessError):
                await writer.write(b"doomed")
        finally:
            await cluster.stop()

    run(scenario())


def test_wrong_secret_client_is_ignored():
    async def scenario():
        cluster = LocalCluster("bsr", f=1, secret=b"right")
        await cluster.start()
        try:
            rogue = AsyncRegisterClient(
                "w666", cluster.addresses, 1,
                Authenticator(KeyChain.from_secret(b"wrong")),
                algorithm="bsr", timeout=0.5,
            )
            await rogue.connect()
            with pytest.raises(LivenessError):
                await rogue.write(b"forged")
            await rogue.close()
        finally:
            await cluster.stop()

    run(scenario())


def test_unsupported_algorithm_rejected():
    with pytest.raises(ConfigurationError):
        LocalCluster("no-such-algo", f=1)
    with pytest.raises(ConfigurationError):
        AsyncRegisterClient("c", {}, 1,
                            Authenticator(KeyChain.from_secret(b"s")),
                            algorithm="no-such-algo")


def test_cluster_rejects_below_bound():
    with pytest.raises(ConfigurationError):
        LocalCluster("bsr", f=1, n=4)


def test_concurrent_clients_over_tcp():
    async def scenario():
        cluster = LocalCluster("bsr", f=1)
        await cluster.start()
        try:
            writers = [cluster.client(f"w{i:03d}") for i in range(3)]
            for writer in writers:
                await writer.connect()
            tags = await asyncio.gather(*[
                writer.write(f"c{i}".encode())
                for i, writer in enumerate(writers)
            ])
            assert len(set(tags)) == 3  # concurrent writes, distinct tags
            reader = cluster.client("r000")
            await reader.connect()
            value = await reader.read()
            assert value in {b"c0", b"c1", b"c2"}
        finally:
            await cluster.stop()

    run(scenario())
