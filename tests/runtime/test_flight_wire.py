"""Server-side flight recording scraped over TraceDump, end to end."""

import asyncio

import pytest

from repro.deploy import trace_dump
from repro.obs import MemorySink, stitch_op
from repro.runtime import LocalCluster
from repro.sharding import KeyspaceConfig
from repro.transport.auth import Authenticator, KeyChain


def run(coro):
    return asyncio.run(coro)


def probe_auth(cluster) -> Authenticator:
    return Authenticator(KeyChain.from_secret(cluster.secret, []))


def test_trace_dump_returns_records_that_stitch_with_client_spans():
    async def scenario():
        cluster = LocalCluster("bsr", f=1, flight_sample=1)
        await cluster.start()
        try:
            sink = MemorySink()
            writer = cluster.client("w000", trace_sink=sink)
            await writer.connect()
            await writer.write(b"flight-one")
            await writer.write(b"flight-two")
            auth = probe_auth(cluster)
            server_records = []
            for address in cluster.addresses.values():
                ack = await trace_dump(address, auth)
                assert ack.total >= 2
                server_records.extend(dict(r) for r in ack.records)
            return sink.records, server_records
        finally:
            await cluster.stop()

    client_records, server_records = run(scenario())
    assert client_records
    op_id = client_records[-1]["op_id"]
    op = stitch_op(op_id, client_records, server_records)
    assert op is not None
    # Every node served both write phases and the clocks align, so the
    # stitched timeline carries the paper's witness/quorum instants.
    assert op.aligned
    assert not op.missing_servers
    phases = {r["phase"] for r in op.servers}
    assert phases == {"get-tag", "put-data"}
    texts = [text for _, _, text in op.events()]
    assert "witness reached (f+1 replies)" in texts
    assert "quorum reached (n-f replies)" in texts
    for record in op.servers:
        assert record["verdict"] == "served"
        assert record["queue_wait"] >= 0.0
        assert record["service"] > 0.0


def test_trace_dump_target_op_and_limit_filter_on_the_node():
    async def scenario():
        cluster = LocalCluster("bsr", f=1, flight_sample=1)
        await cluster.start()
        try:
            sink = MemorySink()
            writer = cluster.client("w000", trace_sink=sink)
            await writer.connect()
            for index in range(3):
                await writer.write(b"v%d" % index)
            auth = probe_auth(cluster)
            address = next(iter(cluster.addresses.values()))
            target = sink.records[0]["op_id"]
            narrowed = await trace_dump(address, auth, target_op=target)
            limited = await trace_dump(address, auth, limit=2)
            everything = await trace_dump(address, auth)
            return target, narrowed, limited, everything
        finally:
            await cluster.stop()

    target, narrowed, limited, everything = run(scenario())
    assert narrowed.records
    assert all(r["op_id"] == target for r in narrowed.records)
    assert len(limited.records) == 2
    assert limited.records == everything.records[-2:]


def test_flight_sample_zero_disables_server_recording():
    async def scenario():
        cluster = LocalCluster("bsr", f=1, flight_sample=0)
        await cluster.start()
        try:
            writer = cluster.client("w000")
            await writer.connect()
            await writer.write(b"untraced")
            address = next(iter(cluster.addresses.values()))
            return await trace_dump(address, probe_auth(cluster))
        finally:
            await cluster.stop()

    ack = run(scenario())
    assert ack.records == ()
    assert ack.total == 0


def test_sampling_modulus_thins_server_records():
    async def scenario():
        cluster = LocalCluster("bsr", f=1, flight_sample=64)
        await cluster.start()
        try:
            writer = cluster.client("w000")
            await writer.connect()
            for index in range(5):  # op_ids are small, none % 64 == 0
                await writer.write(b"v%d" % index)
            address = next(iter(cluster.addresses.values()))
            return await trace_dump(address, probe_auth(cluster))
        finally:
            await cluster.stop()

    ack = run(scenario())
    assert all(r["op_id"] % 64 == 0 for r in ack.records)


def test_health_ack_occupancy_for_sharded_and_plain_nodes():
    from repro.deploy import health_ping

    async def scenario():
        keyspace = KeyspaceConfig(group_size=5, max_resident=8)
        sharded = LocalCluster("bsr", f=1, keyspace=keyspace)
        plain = LocalCluster("bsr", f=1)
        await sharded.start()
        await plain.start()
        try:
            client = sharded.client("w000")
            await client.connect()
            await client.write(b"k1", register="key-0001")
            await client.write(b"k2", register="key-0002")
            sharded_ack = await health_ping(
                next(iter(sharded.addresses.values())), probe_auth(sharded))
            plain_ack = await health_ping(
                next(iter(plain.addresses.values())), probe_auth(plain))
            return sharded_ack, plain_ack
        finally:
            await sharded.stop()
            await plain.stop()

    sharded_ack, plain_ack = run(scenario())
    # Sharded nodes report RegisterTable occupancy; plain nodes report
    # the -1 sentinel so status displays can tell the cases apart.
    assert sharded_ack.keys_resident == 2
    assert sharded_ack.keys_archived == 0
    assert sharded_ack.rehydrations == 0
    assert plain_ack.keys_resident == -1
    assert plain_ack.keys_archived == -1
    assert plain_ack.rehydrations == -1
