"""Namespaced registers over the asyncio TCP runtime."""

import asyncio

import pytest

from repro.runtime import LocalCluster


def run(coro):
    return asyncio.run(coro)


def test_many_registers_over_one_tcp_cluster():
    async def scenario():
        cluster = LocalCluster("bsr", f=1, namespaced=True)
        await cluster.start()
        try:
            writer = cluster.client("w000")
            reader = cluster.client("r000")
            await writer.connect()
            await reader.connect()
            for name in ("alpha", "beta", "gamma"):
                await writer.write(f"value-{name}".encode(), register=name)
            for name in ("alpha", "beta", "gamma"):
                assert await reader.read(register=name) == f"value-{name}".encode()
            # an unwritten register returns the initial value
            assert await reader.read(register="missing") == b""
        finally:
            await cluster.stop()

    run(scenario())


def test_namespaced_byzantine_node_over_tcp():
    async def scenario():
        cluster = LocalCluster("bsr", f=1, namespaced=True,
                               byzantine={0: "stale"})
        await cluster.start()
        try:
            writer = cluster.client("w000")
            reader = cluster.client("r000")
            await writer.connect()
            await reader.connect()
            await writer.write(b"per-register-defence", register="x")
            assert await reader.read(register="x") == b"per-register-defence"
        finally:
            await cluster.stop()

    run(scenario())


def test_namespaced_bcsr_over_tcp():
    async def scenario():
        cluster = LocalCluster("bcsr", f=1, namespaced=True)
        await cluster.start()
        try:
            writer = cluster.client("w000")
            reader = cluster.client("r000")
            await writer.connect()
            await reader.connect()
            blob = bytes(range(200))
            await writer.write(blob, register="blobs")
            assert await reader.read(register="blobs") == blob
        finally:
            await cluster.stop()

    run(scenario())


def test_non_namespaced_cluster_ignores_register_kwarg():
    async def scenario():
        cluster = LocalCluster("bsr", f=1, namespaced=False)
        await cluster.start()
        try:
            writer = cluster.client("w000")
            reader = cluster.client("r000")
            await writer.connect()
            await reader.connect()
            await writer.write(b"v", register="whatever")
            assert await reader.read(register="other") == b"v"
        finally:
            await cluster.stop()

    run(scenario())
