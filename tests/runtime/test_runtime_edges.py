"""Edge cases of the asyncio runtime: reconnects, garbage, big values."""

import asyncio

import pytest

from repro.errors import ProtocolError
from repro.runtime import LocalCluster
from repro.transport.codec import MAX_FRAME_BYTES, write_frame


def run(coro):
    return asyncio.run(coro)


def test_reconnect_is_idempotent():
    async def scenario():
        cluster = LocalCluster("bsr", f=1)
        await cluster.start()
        try:
            client = cluster.client("w000")
            first = await client.connect()
            second = await client.connect()   # no duplicate connections
            assert first == second == 5
            await client.write(b"still-works")
        finally:
            await cluster.stop()

    run(scenario())


def test_server_survives_garbage_frames():
    async def scenario():
        cluster = LocalCluster("bsr", f=1)
        await cluster.start()
        try:
            host, port = next(iter(cluster.addresses.values()))
            reader, writer = await asyncio.open_connection(host, port)
            write_frame(writer, b"complete garbage, unsigned")
            await writer.drain()
            writer.close()
            await writer.wait_closed()
            # The node must still serve real clients afterwards.
            client = cluster.client("w000")
            await client.connect()
            await client.write(b"alive")
            reader_client = cluster.client("r000")
            await reader_client.connect()
            assert await reader_client.read() == b"alive"
        finally:
            await cluster.stop()

    run(scenario())


def test_oversized_frame_rejected_locally():
    class _FakeWriter:
        def write(self, data):  # pragma: no cover - never reached
            raise AssertionError("should not write")

    with pytest.raises(ProtocolError):
        write_frame(_FakeWriter(), b"x" * (MAX_FRAME_BYTES + 1))


def test_large_value_roundtrip_over_tcp():
    async def scenario():
        cluster = LocalCluster("bsr", f=1)
        await cluster.start()
        try:
            writer = cluster.client("w000")
            reader = cluster.client("r000")
            await writer.connect()
            await reader.connect()
            blob = bytes(range(256)) * 2000   # 512 KiB
            await writer.write(blob)
            assert await reader.read() == blob
        finally:
            await cluster.stop()

    run(scenario())


def test_two_clusters_do_not_interfere():
    async def scenario():
        a = LocalCluster("bsr", f=1, secret=b"cluster-a")
        b = LocalCluster("bsr", f=1, secret=b"cluster-b")
        await a.start()
        await b.start()
        try:
            wa, wb = a.client("w000"), b.client("w000")
            ra, rb = a.client("r000"), b.client("r000")
            for c in (wa, wb, ra, rb):
                await c.connect()
            await wa.write(b"value-a")
            await wb.write(b"value-b")
            assert await ra.read() == b"value-a"
            assert await rb.read() == b"value-b"
        finally:
            await a.stop()
            await b.stop()

    run(scenario())
