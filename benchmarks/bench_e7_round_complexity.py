"""E7 -- Round complexity of every operation of every algorithm.

Paper claims: BSR/BCSR reads are one-shot (Definition 3) and writes take two
rounds (Figs 1-5); the regular two-round variant trades one extra read
round; ABD needs two rounds for both.  This bench measures rounds directly
from the operation state machines (not inferred from timing) over a mixed
workload and regenerates the table.
"""

from repro.core.register import RegisterSystem
from repro.metrics import format_table, summarize_trace
from repro.sim.delays import UniformDelay
from repro.sim.rng import SimRng
from repro.workloads import WorkloadSpec, apply_schedule, generate_schedule

from benchmarks.conftest import emit

EXPECTED_READ_ROUNDS = {
    "bsr": 1, "bsr-history": 1, "bcsr": 1, "bsr-2round": 2, "abd": 2, "rb": 1,
}
ALGORITHMS = tuple(EXPECTED_READ_ROUNDS)


def measure(algorithm: str):
    spec = WorkloadSpec(num_ops=60, read_ratio=0.7, num_writers=2,
                        num_readers=2, mean_interarrival=4.0)
    system = RegisterSystem(algorithm, f=1, seed=3, num_writers=2,
                            num_readers=2,
                            delay_model=UniformDelay(0.3, 1.0))
    handles = apply_schedule(system, generate_schedule(spec, SimRng(3, "e7")))
    trace = system.run()
    assert all(handle.done for handle in handles)
    summary = summarize_trace(trace)
    return (algorithm,
            summary["read"].mean_rounds, summary["write"].mean_rounds,
            summary["read"].latency.mean, summary["write"].latency.mean)


def run_experiment():
    return [measure(a) for a in ALGORITHMS]


def test_e7_round_complexity(benchmark, once_per_session):
    rows = benchmark(run_experiment)
    if "e7" not in once_per_session:
        once_per_session.add("e7")
        emit(format_table(
            ("algorithm", "read rounds", "write rounds",
             "read latency(s)", "write latency(s)"),
            rows,
            title="E7: measured rounds and latency per operation kind",
        ))
    for algorithm, read_rounds, write_rounds, read_lat, write_lat in rows:
        assert read_rounds == EXPECTED_READ_ROUNDS[algorithm]
        assert write_rounds == 2.0
        if EXPECTED_READ_ROUNDS[algorithm] == 1 and algorithm != "rb":
            # one-shot reads are strictly cheaper than the same system's writes
            assert read_lat < write_lat
