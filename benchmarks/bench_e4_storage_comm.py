"""E4 -- MDS coding cuts storage and bandwidth to ~n/k of the value size.

Paper claim (Section I-C): an ``[n, k]`` code stores one size-``1/k``
element per server, for a total of ``n/k`` units versus replication's ``n``
units; write bandwidth scales the same way.

The experiment writes the same value through BSR (replication) and BCSR
(``k = n - 5f``) at several system sizes and reports:

* total bytes stored across servers,
* bytes of PUT-DATA payload on the wire,
* the measured replication/coding ratio, which should approach ``k``.
"""

from repro.core.register import RegisterSystem
from repro.metrics import format_table
from repro.sim.delays import ConstantDelay

from benchmarks.conftest import emit

VALUE_SIZE = 4096
CONFIGS = ((6, 1), (11, 1), (16, 2), (21, 3))  # (n, f); k = n - 5f


def put_data_bytes(system) -> int:
    return system.network_stats().per_type_bytes.get("PutData", 0)


def run_config(n: int, f: int):
    value = b"d" * VALUE_SIZE
    bsr = RegisterSystem("bsr", f=f, n=n, seed=1, delay_model=ConstantDelay(1.0))
    bsr.write(value, at=0.0)
    bsr.run()
    bcsr = RegisterSystem("bcsr", f=f, n=n, seed=1, delay_model=ConstantDelay(1.0))
    bcsr.write(value, at=0.0)
    bcsr.run()
    k = n - 5 * f
    bsr_storage = sum(bsr.storage_bytes().values())
    bcsr_storage = sum(bcsr.storage_bytes().values())
    return (n, f, k, bsr_storage, bcsr_storage,
            bsr_storage / bcsr_storage,
            put_data_bytes(bsr), put_data_bytes(bcsr))


def run_experiment():
    return [run_config(n, f) for n, f in CONFIGS]


def test_e4_storage_and_communication(benchmark, once_per_session):
    rows = benchmark(run_experiment)
    if "e4" not in once_per_session:
        once_per_session.add("e4")
        emit(format_table(
            ("n", "f", "k", "repl stored(B)", "coded stored(B)",
             "storage ratio", "repl PUT(B)", "coded PUT(B)"),
            rows,
            title=f"E4: storage & write bandwidth, {VALUE_SIZE}-byte value",
        ))
    for n, f, k, repl_stored, coded_stored, ratio, repl_put, coded_put in rows:
        # Replication stores n full copies.
        assert repl_stored == n * VALUE_SIZE
        # Coding stores ~n/k of the value (plus tiny framing overhead).
        assert coded_stored <= (n * (VALUE_SIZE + 4 * k)) // k + n
        # The ratio approaches k (within framing slack).
        assert ratio > k * 0.9
        # Bandwidth shrinks the same way -- for k = 1 the code degenerates
        # to replication cost (one full-size element per server), which is
        # exactly the paper's point that coding only pays off for k > 1.
        if k > 1:
            assert coded_put < repl_put / (k * 0.9)
        else:
            assert coded_put <= repl_put * 1.05
