"""E21: open-loop load -- honest latency and max sustainable throughput.

Every earlier experiment measured the runtime with closed-loop drivers:
a fixed set of in-flight slots that submits the next operation only when
the previous one returns, so when the system slows down the driver slows
down with it and the recorded latency silently excludes the queueing
delay an open population would have suffered (*coordinated omission*).
E21 is the open-loop answer: ``repro.load`` offers a Poisson arrival
stream at a target aggregate rate from multi-process workers, charges
every operation from its *scheduled* instant, and judges the measured
window against an SLO (p99 latency, error rate, zero consistency
violations on the sampled trace).

The acceptance configuration drives the ISSUE's figure -- thousands of
sessions at a four-digit offered rate against a real process-per-node
cluster -- and the step sweep locates the maximum offered rate the
cluster sustains within the SLO.  On a saturated host the report stays
honest rather than rosy: late arrivals are recorded as queued (never
skipped), and backlog the drain grace cannot finish is counted as
abandoned with lower-bound latencies.

Run directly (or via ``make bench-load``) to write ``BENCH_load.json``
at the repository root:

    PYTHONPATH=src python benchmarks/bench_e21_load.py

The pytest entry points are marked ``slow_bench`` and excluded from the
tier-1 run; they assert the open-loop discipline (honest p99 >=
closed-loop p99), full accounting of every arrival, and zero
consistency violations.
"""

import asyncio
import json
from pathlib import Path

import pytest

from repro.load import LoadProfile, SloPolicy, run_load

pytestmark = pytest.mark.slow_bench

#: The ISSUE acceptance configuration (scaled knobs kept in one place).
USERS = 2000
RPS = 1500.0
DURATION = 30.0
KEYS = 64
WORKERS = 2

ROOT = Path(__file__).resolve().parent.parent
OUTPUT = ROOT / "BENCH_load.json"


def _profile(users: int = USERS, rps: float = RPS,
             duration: float = DURATION) -> LoadProfile:
    return LoadProfile(users=users, rps=rps, duration=duration,
                       warmup=3.0, cooldown=0.5, keys=KEYS,
                       read_ratio=0.9, timeout=10.0, seed=21,
                       clients_per_worker=4)


def run_benchmark(procs: bool = True, users: int = USERS, rps: float = RPS,
                  duration: float = DURATION, workers: int = WORKERS,
                  sweep: str = "step"):
    """One full ``repro load`` run; returns the :class:`LoadReport`."""
    return asyncio.run(run_load(
        _profile(users=users, rps=rps, duration=duration), procs=procs,
        workers=workers, slo=SloPolicy(), sweep=sweep))


def _assert_honest(report) -> None:
    main = report.main
    # Every measured arrival is accounted for across the four outcomes.
    assert sum(main["ops"].values()) >= main["arrivals"] - 1, main
    # The open-loop number can never undercut the closed-loop one.
    assert main["p99_ms"] >= main["service_p99_ms"] - 1e-6, main
    assert report.safety_ok, report.safety_detail


def test_open_loop_run_is_honest_and_safe():
    """Scaled-down acceptance shape on the in-process cluster."""
    report = run_benchmark(procs=False, users=100, rps=120.0,
                           duration=6.0, workers=2, sweep="none")
    _assert_honest(report)
    assert report.main["arrivals"] > 300


@pytest.mark.procs
def test_procs_acceptance_run():
    """ISSUE acceptance: the full configuration against real processes."""
    report = run_benchmark(procs=True)
    _assert_honest(report)
    assert report.max_sustainable_rps >= 0.0
    report.write(str(OUTPUT))


def main() -> None:
    import argparse

    from repro.metrics.report import emit

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--no-procs", action="store_true",
                        help="use the in-process cluster instead")
    parser.add_argument("--users", type=int, default=USERS)
    parser.add_argument("--rps", type=float, default=RPS)
    parser.add_argument("--duration", type=float, default=DURATION)
    parser.add_argument("--workers", type=int, default=WORKERS)
    parser.add_argument("--sweep", choices=("step", "binary", "none"),
                        default="step")
    options = parser.parse_args()
    report = run_benchmark(procs=not options.no_procs, users=options.users,
                           rps=options.rps, duration=options.duration,
                           workers=options.workers, sweep=options.sweep)
    report.write(str(OUTPUT))
    emit(report.format())
    emit(f"\nwrote {OUTPUT}")


if __name__ == "__main__":
    main()
