"""E17 -- Operation latency under runtime fault injection.

Runs the same mixed read/write workload on a live TCP cluster under each
named nemesis schedule and compares latency and throughput against the
fault-free baseline (schedule ``none``).  The claim under test is the
runtime analogue of Lemma 6: because clients only ever wait for ``n - f``
replies, a schedule that keeps ``n - f`` servers reachable costs
availability nothing -- every operation completes, safety verdicts stay
clean, and the latency tax of crash-restarts and rolling partitions is
bounded by the reconnect backoff rather than by the fault duration.
"""

import asyncio

from repro.chaos import SCHEDULES, run_soak
from repro.metrics import format_table

from benchmarks.conftest import emit

OPS = 40
PERIOD = 0.5


def run_experiment():
    rows = []
    for schedule in SCHEDULES:
        result = asyncio.run(run_soak(
            algorithm="bsr", f=1, schedule=schedule, ops=OPS, read_ratio=0.6,
            seed=17, start=0.3, period=PERIOD, timeout=20.0,
        ))
        assert result.errors == [], f"{schedule}: {result.errors}"
        assert result.safety.ok, f"{schedule}: {result.safety}"
        summary = result.latency_summary()
        read = summary.get("read")
        write = summary.get("write")
        reconnects = sum(stats.get("reconnects", 0)
                         for stats in result.client_stats.values())
        rows.append((
            schedule,
            result.ops_completed,
            read.latency.mean * 1000 if read else 0.0,
            read.latency.p99 * 1000 if read else 0.0,
            write.latency.mean * 1000 if write else 0.0,
            write.latency.p99 * 1000 if write else 0.0,
            result.ops_completed / result.wall_time,
            reconnects,
        ))
    return rows


def test_e17_chaos_latency(benchmark, once_per_session):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    if "e17" not in once_per_session:
        once_per_session.add("e17")
        emit(format_table(
            ("schedule", "ops", "read mean(ms)", "read p99(ms)",
             "write mean(ms)", "write p99(ms)", "ops/s", "reconnects"),
            [(s, n, f"{rm:.1f}", f"{rp:.1f}", f"{wm:.1f}", f"{wp:.1f}",
              f"{tput:.1f}", rc) for s, n, rm, rp, wm, wp, tput, rc in rows],
            title=f"E17: latency under nemesis schedules "
                  f"({OPS} ops, period {PERIOD}s, bsr f=1)",
        ))
    by_name = {row[0]: row for row in rows}
    # Every schedule completed the full workload: faults never cost ops.
    for schedule, row in by_name.items():
        assert row[1] >= OPS
    # Faulted schedules actually exercised the reconnect machinery.
    assert by_name["combo"][7] > 0
    assert by_name["none"][7] == 0
