"""E20: sharded keyspace throughput -- 10k keys at single-register speed.

E19 established the single-register hot-path ceiling on loopback.  E20
asks what the sharded keyspace costs on top of it: a 10,000-key
Zipf(1.1) mixed read/write workload (90 % reads) routed by consistent
hashing through :class:`~repro.sharding.RegisterTable` servers, measured
against the *same* single-register depth-16 references recorded in
``BENCH_hotpath.json``:

* ``e18_depth16_ops_per_sec`` -- the single-register depth-16 BSR rate
  over 1 ms links, the floor every keyed deployment must sustain.  The
  acceptance gate: the sharded keyspace (10,000 registers, lazy state,
  key-routed clients) must not fall below the rate the runtime used to
  deliver for *one* register.
* the E19 v2 depth-16 loopback ceiling -- reported as context (a mixed
  keyed workload pays write quorum rounds and per-key dispatch that a
  read-only single-register pass does not).

Every written value is self-certifying (``<key>|<writer>|<seq>``), so
each read doubles as a consistency probe: a non-genesis value whose
prefix is not the key it was read from means cross-register bleed, and
a follow-up monotonicity sweep re-reads the hottest keys to catch
regressing sequence numbers.  The acceptance count for both is zero.

Three configurations run: a single-register mixed baseline (same mix,
no keyspace) for the like-for-like sharding tax, the sharded keyspace
on an in-process :class:`LocalCluster`, and -- with ``--procs`` (the
default for ``make bench-keyspace``) -- the sharded keyspace against a
real process-per-node cluster under a :class:`ClusterSupervisor`.

Run directly (or via ``make bench-keyspace``) to write
``BENCH_keyspace.json`` at the repository root:

    PYTHONPATH=src python benchmarks/bench_e20_keyspace.py

The pytest entry points are marked ``slow_bench`` and excluded from the
tier-1 run; they assert the acceptance floor above plus zero
consistency violations.
"""

import asyncio
import json
import time
from pathlib import Path

import pytest

from repro.core.keys import key_name
from repro.deploy import ClusterSpec, ClusterSupervisor
from repro.runtime import LocalCluster
from repro.sharding import KeyspaceConfig
from repro.sim.rng import SimRng
from repro.workloads import ZipfSampler

pytestmark = pytest.mark.slow_bench

#: Keyspace size and skew of the acceptance workload.
KEYS = 10_000
ZIPF_S = 1.1

#: Mixed workload: 90 % reads, 10 % writes.
READ_RATIO = 0.9

#: In-flight depth -- matches the E19 reference configuration.
DEPTH = 16

#: Operations measured per timed pass (after warmup).
OPS = 2000

#: Timed passes per configuration; the *fastest* is reported.  Same
#: rationale as E19: host contention only subtracts, so the best pass
#: estimates what the runtime can do.  Consistency violations are
#: accumulated across *all* passes -- a violation in any pass fails.
REPEATS = 3

#: Unmeasured operations to settle connections, caches and hot keys.
WARMUP = 64

#: Cluster shape: one group of 4f+1 so local and procs runs agree.
N = 5
F = 1
GROUP_SIZE = 5
RING_SEED = 11

#: Hottest keys re-read after the timed passes for the monotonicity
#: sweep (two sequential reads each; seq must not regress).
SWEEP_KEYS = 64

#: Acceptance floor when BENCH_hotpath.json is absent: the recorded
#: E18 single-register depth-16 rate.
SINGLE_REGISTER_DEPTH16_FALLBACK = 1252.6

ROOT = Path(__file__).resolve().parent.parent
OUTPUT = ROOT / "BENCH_keyspace.json"
HOTPATH_REPORT = ROOT / "BENCH_hotpath.json"


def single_register_depth16_reference() -> float:
    """The recorded single-register depth-16 rate from BENCH_hotpath.json."""
    try:
        report = json.loads(HOTPATH_REPORT.read_text())
        return float(report["e18_depth16_ops_per_sec"])
    except (OSError, ValueError, KeyError):
        return SINGLE_REGISTER_DEPTH16_FALLBACK


def e19_ceiling_reference() -> float:
    """The E19 v2 depth-16 loopback ceiling, for context ratios."""
    try:
        report = json.loads(HOTPATH_REPORT.read_text())
        for row in report["results"]:
            if row["wire"] == "v2" and row["depth"] == DEPTH:
                return float(row["ops_per_sec"])
    except (OSError, ValueError, KeyError):
        pass
    return 0.0


def _value_for(key, writer: str, seq: int) -> bytes:
    register = key if key is not None else "the-register"
    return f"{register}|{writer}|{seq}".encode()


def _check_read(key, value: bytes) -> int:
    """1 if ``value`` shows cross-register bleed, else 0.

    The genesis value (``b""`` -- the key was never written) and
    ``None`` are exempt; everything else must carry the key's prefix.
    """
    if value is None or value == b"":
        return 0
    register = key if key is not None else "the-register"
    return 0 if value.startswith(register.encode() + b"|") else 1


def _read_seq(value: bytes) -> int:
    try:
        return int(value.rsplit(b"|", 1)[1])
    except (IndexError, ValueError):
        return -1


async def _measure(client, sampler, ops: int, depth: int, salt: int):
    """One timed pass; returns (seconds, violations)."""
    remaining = ops
    violations = 0

    async def worker(index: int) -> None:
        nonlocal remaining, violations
        rng = SimRng(1000 + salt * depth + index, "e20")
        seq = 0
        while remaining > 0:
            remaining -= 1
            key = sampler.key(rng) if sampler is not None else None
            if rng.random() < READ_RATIO:
                violations += _check_read(key, await client.read(register=key))
            else:
                seq += 1
                await client.write(_value_for(key, f"w{index}", seq),
                                   register=key)

    started = time.perf_counter()
    await asyncio.gather(*(worker(index) for index in range(depth)))
    return time.perf_counter() - started, violations


async def _monotonic_sweep(client, sampler) -> int:
    """Re-read the hottest keys twice; count regressing sequences."""
    regressions = 0
    keys = ([key_name(rank) for rank in range(SWEEP_KEYS)]
            if sampler is not None else [None])
    for key in keys:
        first = await client.read(register=key)
        second = await client.read(register=key)
        if first not in (None, b"") and _read_seq(second) < _read_seq(first):
            regressions += 1
    return regressions


async def _drive(client, sharded: bool, ops: int):
    """Warmup + REPEATS timed passes + sweep on a connected client."""
    sampler = ZipfSampler(KEYS, ZIPF_S) if sharded else None
    rng = SimRng(7, "warmup")
    for index in range(WARMUP):
        key = sampler.key(rng) if sampler is not None else None
        if rng.random() < READ_RATIO:
            await client.read(register=key)
        else:
            await client.write(_value_for(key, "warm", index), register=key)
    seconds, violations = [], 0
    for salt in range(REPEATS):
        elapsed, bad = await _measure(client, sampler, ops, DEPTH, salt)
        seconds.append(elapsed)
        violations += bad
    violations += await _monotonic_sweep(client, sampler)
    return min(seconds), violations


async def _run_local(sharded: bool, ops: int) -> dict:
    keyspace = (KeyspaceConfig(group_size=GROUP_SIZE, seed=RING_SEED)
                if sharded else None)
    cluster = LocalCluster("bsr", f=F, n=N, keyspace=keyspace)
    await cluster.start()
    try:
        client = cluster.client("w000", timeout=30.0, max_inflight=DEPTH)
        await client.connect()
        seconds, violations = await _drive(client, sharded, ops)
        return _row("local", sharded, ops, seconds, violations)
    finally:
        await cluster.stop()


async def _run_procs(ops: int) -> dict:
    spec = ClusterSpec(algorithm="bsr", f=F, n=N, secret="bench-e20",
                       keyspace={"group_size": GROUP_SIZE,
                                 "seed": RING_SEED})
    supervisor = ClusterSupervisor(spec)
    await supervisor.start()
    try:
        client = supervisor.client("w000", timeout=30.0, max_inflight=DEPTH)
        await client.connect()
        seconds, violations = await _drive(client, True, ops)
        return _row("procs", True, ops, seconds, violations)
    finally:
        await supervisor.stop()


def _row(backend: str, sharded: bool, ops: int, seconds: float,
         violations: int) -> dict:
    return {
        "backend": backend,
        "mode": "sharded" if sharded else "single-register",
        "keys": KEYS if sharded else 1,
        "ops": ops,
        "seconds": round(seconds, 4),
        "ops_per_sec": round(ops / seconds, 1),
        "violations": violations,
    }


def run_benchmark(procs: bool = False, ops: int = OPS) -> dict:
    results = [
        asyncio.run(_run_local(False, ops)),
        asyncio.run(_run_local(True, ops)),
    ]
    if procs:
        results.append(asyncio.run(_run_procs(ops)))
    reference = single_register_depth16_reference()
    ceiling = e19_ceiling_reference()
    for row in results:
        row["vs_single_register_depth16"] = round(
            row["ops_per_sec"] / reference, 2)
        if ceiling:
            row["vs_e19_ceiling"] = round(row["ops_per_sec"] / ceiling, 2)
    return {
        "experiment": ("E20: sharded keyspace throughput "
                       f"({KEYS} keys, Zipf s={ZIPF_S}, "
                       f"{int(READ_RATIO * 100)}/"
                       f"{int(round((1 - READ_RATIO) * 100))} "
                       f"read/write, depth {DEPTH})"),
        "ops_per_config": ops,
        "single_register_depth16_ops_per_sec": reference,
        "e19_v2_depth16_ops_per_sec": ceiling,
        "results": results,
    }


def write_report(report: dict) -> None:
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")


def format_report(report: dict) -> str:
    header = (f"{'backend':>7} {'mode':>15} {'keys':>6} {'ops':>6} "
              f"{'seconds':>8} {'ops/sec':>9} {'viol':>5} {'vs 1reg@16':>10}")
    lines = [header, "-" * len(header)]
    for row in report["results"]:
        lines.append(
            f"{row['backend']:>7} {row['mode']:>15} {row['keys']:>6} "
            f"{row['ops']:>6} {row['seconds']:>8.3f} "
            f"{row['ops_per_sec']:>9.1f} {row['violations']:>5} "
            f"{row['vs_single_register_depth16']:>9.2f}x"
        )
    return "\n".join(lines)


def _assert_floor(row: dict, reference: float) -> None:
    assert row["violations"] == 0, (
        f"{row['violations']} consistency violations on the "
        f"{row['backend']} sharded run")
    assert row["ops_per_sec"] >= reference, (
        f"sharded {row['backend']} keyspace at {row['ops_per_sec']} ops/s "
        f"fell below the single-register depth-16 reference {reference}")


def test_sharded_keyspace_sustains_single_register_reference():
    """10k-key Zipf mix on LocalCluster >= single-register depth-16."""
    report = run_benchmark(procs=False)
    sharded = [row for row in report["results"]
               if row["backend"] == "local" and row["mode"] == "sharded"][0]
    _assert_floor(sharded, report["single_register_depth16_ops_per_sec"])


def test_sharded_tax_is_bounded_like_for_like():
    """Sharded mixed >= 60 % of the single-register *mixed* baseline.

    The keyed wire path costs one namespaced wrapper per message; the
    bound pins it from regressing into a multiplicative penalty.
    """
    report = run_benchmark(procs=False)
    by_mode = {row["mode"]: row for row in report["results"]
               if row["backend"] == "local"}
    assert (by_mode["sharded"]["ops_per_sec"]
            >= 0.6 * by_mode["single-register"]["ops_per_sec"])


@pytest.mark.procs
def test_procs_sharded_keyspace_sustains_reference():
    """ISSUE acceptance: the sharded ``--procs`` cluster holds the floor."""
    report = run_benchmark(procs=True)
    sharded = [row for row in report["results"]
               if row["backend"] == "procs"][0]
    _assert_floor(sharded, report["single_register_depth16_ops_per_sec"])


def main() -> None:
    import argparse

    from repro.metrics.report import emit

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--no-procs", action="store_true",
                        help="skip the process-per-node configuration")
    parser.add_argument("--ops", type=int, default=OPS)
    options = parser.parse_args()
    report = run_benchmark(procs=not options.no_procs, ops=options.ops)
    write_report(report)
    emit(format_report(report))
    emit(f"\nwrote {OUTPUT}")
    reference = report["single_register_depth16_ops_per_sec"]
    for row in report["results"]:
        if row["mode"] != "sharded":
            continue
        emit(f"{row['backend']} sharded {KEYS}-key mix: "
             f"{row['ops_per_sec']:.1f} ops/s = "
             f"{row['vs_single_register_depth16']:.2f}x the "
             f"single-register depth-16 reference ({reference}), "
             f"{row['violations']} violations")


if __name__ == "__main__":
    main()
