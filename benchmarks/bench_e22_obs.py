"""E22: observability overhead -- what the trace plane costs on the ceiling.

E19 established the loopback hot-path ceiling: depth-16 reads against a
:class:`LocalCluster` with no link latency, where every microsecond of
runtime work shows up directly in ops/sec.  E22 re-runs that exact
workload three ways to price the observability plane on its worst-case
stage:

``off``        flight recorder disabled, no client trace sink -- the
               E19 baseline.
``sampled``    flight recorder at the production default (1-in-64
               deterministic sampling) plus a client-side
               :class:`SamplingSink` at the same modulus, so both ends
               retain stitchable records for the same operations.
``scraped``    the ``sampled`` configuration with a live
               :class:`MetricsExporter` being polled over HTTP for the
               whole measurement window -- recorder cost plus a
               concurrent StatsPing/TraceDump scrape loop.

The acceptance budget is <=5% depth-16 throughput loss for ``sampled``
vs ``off``; ``scraped`` is reported alongside (the scrape loop shares
the box and the event loop's accept queue, so its number contextualises
what a sidecar poller really costs).

Run directly (or via ``make bench-obs``) to write ``BENCH_obs.json``
at the repository root:

    PYTHONPATH=src python benchmarks/bench_e22_obs.py

The pytest entry point is marked ``slow_bench`` and excluded from the
tier-1 run; it asserts the ``sampled`` budget.
"""

import asyncio
import gc
import threading
import time
import urllib.request
from pathlib import Path

import pytest

from repro.deploy import stats_ping
from repro.obs import MetricsExporter, NullSink, SamplingSink
from repro.runtime import LocalCluster

pytestmark = pytest.mark.slow_bench

DEPTH = 16

#: Reads measured per pass (after warmup), matching E19.
OPS = 2000

#: Timed passes per configuration; the fastest is reported.  Like E19
#: this is a ceiling comparison -- host contention only subtracts, so
#: best-of is the honest estimate of each configuration's capability.
#: Passes are *interleaved* round-robin across the configurations (all
#: clusters stay up for the whole run): a noisy neighbour or a slow
#: scheduling window then lands on every configuration alike instead of
#: biasing whichever config ran during it.  The default box is a single
#: vCPU, so quiet windows are scarce: the repeat count is sized for
#: every configuration to catch several.
REPEATS = 12

#: Unmeasured reads to settle connections and code paths.
WARMUP = 64

#: Production sampling modulus (LocalCluster's flight default).
SAMPLE = 64

#: Acceptance budget: max percent throughput loss for the sampled
#: recorder configuration vs the recorder-off baseline.
BUDGET_PCT = 5.0

#: Seconds between /metrics polls in the ``scraped`` configuration.
SCRAPE_PERIOD = 0.25

ROOT = Path(__file__).resolve().parent.parent
OUTPUT = ROOT / "BENCH_obs.json"


async def _measure(cluster, trace_sink) -> float:
    """Seconds to complete ``OPS`` loopback reads at ``DEPTH``."""
    kwargs = {"timeout": 30.0, "max_inflight": DEPTH}
    if trace_sink is not None:
        kwargs["trace_sink"] = trace_sink
    client = cluster.client(f"r{DEPTH:03d}", **kwargs)
    await client.connect()
    for _ in range(WARMUP):
        await client.read()
    remaining = OPS

    async def worker() -> None:
        nonlocal remaining
        while remaining > 0:
            remaining -= 1
            await client.read()

    # Drain garbage from the previous pass outside the timed window so a
    # collection triggered by *earlier* allocations is not billed to
    # whichever configuration happens to run next.
    gc.collect()
    started = time.perf_counter()
    await asyncio.gather(*(worker() for _ in range(DEPTH)))
    elapsed = time.perf_counter() - started
    await client.close()
    return elapsed


def _scrape_loop(url: str, stop: threading.Event, polls: list) -> None:
    """Poll ``/metrics`` until told to stop, counting successes."""
    while not stop.is_set():
        try:
            with urllib.request.urlopen(url, timeout=5.0) as reply:
                reply.read()
            polls.append(1)
        except OSError:
            pass
        stop.wait(SCRAPE_PERIOD)


class _Config:
    """One observability configuration's cluster and trappings."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.sample = 0 if name == "off" else SAMPLE
        self.cluster = None
        self.exporter = None
        self.poller = None
        self.stop = threading.Event()
        self.polls = []
        self.seconds = []

    def trace_sink(self):
        if self.name == "off":
            return None
        return SamplingSink(NullSink(), sample=SAMPLE)

    async def start(self) -> None:
        self.cluster = LocalCluster("bsr", f=1, flight_sample=self.sample)
        await self.cluster.start()
        if self.name != "scraped":
            return
        addresses = [node.address for node in self.cluster.nodes.values()]
        auth = next(iter(self.cluster.nodes.values())).auth

        def scrape():
            async def sweep():
                acks = await asyncio.gather(
                    *(stats_ping(address, auth) for address in addresses))
                return [ack.metrics for ack in acks]
            return asyncio.run(sweep())

        self.exporter = MetricsExporter(scrape, port=0)
        host, port = self.exporter.start()
        self.poller = threading.Thread(
            target=_scrape_loop,
            args=(f"http://{host}:{port}/metrics", self.stop, self.polls),
            daemon=True)
        self.poller.start()

    async def teardown(self) -> None:
        self.stop.set()
        if self.poller is not None:
            self.poller.join(timeout=5.0)
        if self.exporter is not None:
            self.exporter.stop()
        if self.cluster is not None:
            await self.cluster.stop()

    def row(self) -> dict:
        seconds = min(self.seconds)
        return {
            "config": self.name,
            "depth": DEPTH,
            "ops": OPS,
            "flight_sample": self.sample,
            "seconds": round(seconds, 4),
            "ops_per_sec": round(OPS / seconds, 1),
            "scrape_polls": len(self.polls),
        }


async def _run_interleaved(names) -> list:
    configs = [_Config(name) for name in names]
    try:
        for config in configs:
            await config.start()
        for _ in range(REPEATS):
            for config in configs:
                config.seconds.append(
                    await _measure(config.cluster, config.trace_sink()))
        return [config.row() for config in configs]
    finally:
        for config in configs:
            await config.teardown()


def run_benchmark(configs=("off", "sampled", "scraped")) -> dict:
    rows = asyncio.run(_run_interleaved(configs))
    baseline = next(row for row in rows if row["config"] == "off")
    for row in rows:
        loss = 100.0 * (1.0 - row["ops_per_sec"] / baseline["ops_per_sec"])
        row["overhead_pct"] = round(loss, 2)
        # Only the recorder configuration carries the acceptance budget;
        # ``scraped`` is informational (a sub-second poll loop sharing a
        # single vCPU with the cluster prices the *poller*, and real
        # deployments scrape at multi-second intervals).
        if row["config"] == "sampled":
            row["budget_pct"] = BUDGET_PCT
            row["within_budget"] = row["overhead_pct"] <= BUDGET_PCT
    return {
        "experiment": ("E22: observability overhead at the loopback "
                       "ceiling (LocalCluster bsr, f=1, depth 16, "
                       f"1-in-{SAMPLE} sampling)"),
        "ops_per_config": OPS,
        "budget_pct": BUDGET_PCT,
        "results": rows,
    }


def write_report(report: dict) -> None:
    import json

    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")


def format_report(report: dict) -> str:
    header = (f"{'config':>8} {'depth':>5} {'ops':>6} {'seconds':>8} "
              f"{'ops/sec':>9} {'overhead':>9} {'budget':>7}")
    lines = [header, "-" * len(header)]
    for row in report["results"]:
        if "within_budget" not in row:
            verdict = "-"
        else:
            verdict = "ok" if row["within_budget"] else "OVER"
        lines.append(
            f"{row['config']:>8} {row['depth']:>5} {row['ops']:>6} "
            f"{row['seconds']:>8.3f} {row['ops_per_sec']:>9.1f} "
            f"{row['overhead_pct']:>8.2f}% {verdict:>7}"
        )
    return "\n".join(lines)


def test_sampled_recorder_stays_within_budget():
    """1-in-64 flight recording must cost <=5% of depth-16 throughput."""
    report = run_benchmark(configs=("off", "sampled"))
    row = next(r for r in report["results"] if r["config"] == "sampled")
    assert row["within_budget"], (
        f"sampled recorder costs {row['overhead_pct']}% at depth {DEPTH} "
        f"(budget {BUDGET_PCT}%)"
    )


def main() -> None:
    from repro.metrics.report import emit

    report = run_benchmark()
    write_report(report)
    emit(format_report(report))
    emit(f"\nwrote {OUTPUT}")
    sampled = next(r for r in report["results"] if r["config"] == "sampled")
    emit(f"1-in-{SAMPLE} recording overhead at depth {DEPTH}: "
         f"{sampled['overhead_pct']}% (budget {BUDGET_PCT}%, "
         f"{'within' if sampled['within_budget'] else 'OVER'})")


if __name__ == "__main__":
    main()
