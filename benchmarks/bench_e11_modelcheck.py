"""E11 -- Machine-checked tightness of n >= 4f + 1 (Theorems 2 and 5).

The scripted E2 scenario replays *one* adversarial schedule.  This bench
uses the bounded exhaustive model checker instead:

* **Below the bound** (n = 4f): for every pair of write quorums, search all
  read-stage delivery schedules for a safety violation.  Most quorum pairs
  admit one -- discovered by the machine, not scripted.
* **At the bound** (n = 4f + 1): exhaustively verify a representative set
  of quorum pairs -- no schedule violates safety.  (The full 25-pair sweep
  takes minutes and is reported in EXPERIMENTS.md; the bench keeps a
  sample so the suite stays fast.)

Explored state counts are reported so the "exhaustive" claim is auditable.
"""

import pytest

from repro.metrics import format_table
from repro.modelcheck import ModelChecker
from repro.modelcheck.scenarios import (
    all_quorum_pairs,
    bcsr_read_stage,
    bsr_read_stage,
)

from benchmarks.conftest import emit

#: The exhaustive schedule search runs ~50s; keep it out of default runs.
pytestmark = pytest.mark.slow_bench

AT_BOUND_SAMPLES = (
    ((0, 1, 2, 3), (0, 1, 2, 3)),
    ((0, 1, 2, 3), (1, 2, 3, 4)),
    ((1, 2, 3, 4), (0, 2, 3, 4)),
    ((0, 1, 3, 4), (0, 1, 2, 4)),
)


def below_bound_sweep():
    """n = 4: directed counterexample search over every quorum pair."""
    violating = 0
    combos = 0
    example = None
    for w1, w2 in all_quorum_pairs(4, 1):
        combos += 1
        factory, predicate = bsr_read_stage(4, 1, w1, w2)
        found = ModelChecker(factory, predicate,
                             max_states=100_000).find_violation()
        if found:
            violating += 1
            if example is None:
                example = (w1, w2, found[0])
    return combos, violating, example


def at_bound_samples():
    """n = 5: exhaustive verification of sampled quorum pairs."""
    rows = []
    for w1, w2 in AT_BOUND_SAMPLES:
        factory, predicate = bsr_read_stage(5, 1, w1, w2)
        report = ModelChecker(factory, predicate,
                              max_states=300_000).verify(strict=True)
        rows.append((w1, w2, report.states_explored, report.terminal_states,
                     "OK" if report.ok else "VIOLATED"))
    return rows


BCSR_AT_BOUND_SAMPLES = (
    ((0, 1, 2, 3, 4), (1, 2, 3, 4, 5)),
    ((1, 2, 3, 4, 5), (0, 2, 3, 4, 5)),
)


def bcsr_sweeps():
    """Theorem 6's analogue: sweep n = 5f, verify samples at n = 5f + 1."""
    violating = 0
    combos = 0
    for w1, w2 in all_quorum_pairs(5, 1):
        combos += 1
        factory, predicate = bcsr_read_stage(5, 1, w1, w2)
        if ModelChecker(factory, predicate,
                        max_states=120_000).find_violation():
            violating += 1
    at_bound = []
    for w1, w2 in BCSR_AT_BOUND_SAMPLES:
        factory, predicate = bcsr_read_stage(6, 1, w1, w2)
        report = ModelChecker(factory, predicate,
                              max_states=200_000).verify(strict=True)
        at_bound.append((w1, w2, report.states_explored,
                         report.terminal_states,
                         "OK" if report.ok else "VIOLATED"))
    return combos, violating, at_bound


def run_experiment():
    return below_bound_sweep(), at_bound_samples(), bcsr_sweeps()


def test_e11_model_checked_tightness(benchmark, once_per_session):
    ((combos, violating, example), bound_rows,
     (bcsr_combos, bcsr_violating, bcsr_bound)) = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1)
    if "e11" not in once_per_session:
        once_per_session.add("e11")
        table_rows = [
            ("BSR", "4 (= 4f)", f"all {combos} quorum pairs",
             f"{violating}/{combos} pairs admit a violating schedule", "-"),
        ]
        for w1, w2, states, terminals, verdict in bound_rows:
            table_rows.append(
                ("BSR", "5 (= 4f+1)", f"W1={w1} W2={w2}",
                 verdict, f"{states} states / {terminals} terminal"),
            )
        table_rows.append(
            ("BCSR", "5 (= 5f)", f"all {bcsr_combos} quorum pairs",
             f"{bcsr_violating}/{bcsr_combos} pairs admit a violating "
             "schedule", "-"),
        )
        for w1, w2, states, terminals, verdict in bcsr_bound:
            table_rows.append(
                ("BCSR", "6 (= 5f+1)", f"W1={w1} W2={w2}",
                 verdict, f"{states} states / {terminals} terminal"),
            )
        emit(format_table(
            ("algorithm", "n", "scenario", "outcome", "exploration"),
            table_rows,
            title="E11: exhaustive model checking across both resilience "
                  "boundaries",
        ))
        if example:
            emit(f"  example machine-found violation (n=4, W1={example[0]}, "
                 f"W2={example[1]}):\n    {example[2]}")
    assert violating > 0, "the checker must rediscover Theorem 5 below the bound"
    assert violating < combos  # some quorum choices deny the adversary
    for _, _, states, terminals, verdict in bound_rows:
        assert verdict == "OK"
        assert terminals > 0 and states > terminals
    assert bcsr_violating > 0, "Theorem 6 must be rediscovered too"
    for _, _, states, terminals, verdict in bcsr_bound:
        assert verdict == "OK"
        assert terminals > 0
