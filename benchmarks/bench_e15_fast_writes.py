"""E15 -- Ablation: one-round SWMR writes vs the paper's two-phase write.

The paper keeps BCSR's write two-phase (Fig 4) although BCSR is stated for
a single writer; for a strict single writer the ``get-tag`` phase buys
nothing -- the writer already knows every tag it issued.  The
:class:`~repro.core.bcsr.BCSRFastWriteOperation` extension mints tags from
a local counter and goes straight to ``put-data``, making the register
*fully* fast (one round for reads and writes) in the SWMR regime.

The bench measures write latency and message count for both write paths
under identical networks, and checks safety of the fast path's executions.
"""

from repro.consistency import check_safety
from repro.core.bcsr import (
    BCSRFastWriteOperation,
    BCSRReadOperation,
    BCSRServer,
    BCSRWriteOperation,
    WriterSequence,
    make_codec,
)
from repro.core.processes import ClientProcess, ServerProcess
from repro.metrics import format_table
from repro.sim.delays import ConstantDelay
from repro.sim.simulator import Simulator
from repro.types import server_id

from benchmarks.conftest import emit

N, F = 6, 1
SERVER_IDS = [server_id(i) for i in range(N)]
WRITES = 10
DELAY = 1.0


def run_write_stream(fast: bool):
    sim = Simulator(seed=5, delay_model=ConstantDelay(DELAY))
    codec = make_codec(N, F)
    for i, pid in enumerate(SERVER_IDS):
        sim.add_process(ServerProcess(pid, BCSRServer(pid, i, codec,
                                                      initial_value=b"v0")))
    writer = sim.add_process(ClientProcess("w000"))
    reader = sim.add_process(ClientProcess("r000"))
    sequence = WriterSequence("w000")
    for i in range(WRITES):
        value = f"{i:010d}-payload".encode()
        if fast:
            writer.submit(i * 10.0, lambda v=value: BCSRFastWriteOperation(
                "w000", SERVER_IDS, F, v, sequence, codec=codec))
        else:
            writer.submit(i * 10.0, lambda v=value: BCSRWriteOperation(
                "w000", SERVER_IDS, F, v, codec=codec))
    reader.submit(WRITES * 10.0 + 5.0, lambda: BCSRReadOperation(
        "r000", SERVER_IDS, F, codec=codec, initial_value=b"v0"))
    sim.run()
    check_safety(sim.trace, initial_value=b"v0").raise_if_violated()
    latencies = [record.latency for _, record in writer.completions]
    (read_op, _) = reader.completions[0]
    assert read_op.result == f"{WRITES - 1:010d}-payload".encode()
    return (sum(latencies) / len(latencies),
            sim.network.stats.messages_sent)


def run_experiment():
    return run_write_stream(fast=False), run_write_stream(fast=True)


def test_e15_fast_swmr_writes(benchmark, once_per_session):
    (two_phase, fast) = benchmark(run_experiment)
    if "e15" not in once_per_session:
        once_per_session.add("e15")
        emit(format_table(
            ("write path", "mean write latency(s)", "messages in run"),
            [
                ("two-phase (paper, Fig 4)", two_phase[0], two_phase[1]),
                ("one-round local-sequence (ext.)", fast[0], fast[1]),
            ],
            title=f"E15: SWMR write paths, {WRITES} writes, "
                  f"{DELAY}s per message",
        ))
    # The fast path halves write latency (one round trip instead of two)...
    assert fast[0] == 2 * DELAY
    assert two_phase[0] == 4 * DELAY
    # ... and removes the get-tag traffic (2 messages per server per write).
    assert fast[1] < two_phase[1] - WRITES * N
