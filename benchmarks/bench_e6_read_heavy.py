"""E6 -- Read-dominated workloads favour the semi-fast register.

Paper motivation (Section I-A): registers see ~99.8 % reads (Facebook TAO),
so making reads one-shot is the right trade.  The experiment replays the
*same* workload schedule at several read ratios over BSR (one-shot reads),
the two-round regular variant, the RB baseline and ABD, and reports the
mean operation latency.  Expectations:

* BSR's advantage grows with the read ratio (reads are its fast path).
* At TAO's 99.8 % reads, BSR beats every two-round-read design by ~2x.
"""

from repro.core.register import RegisterSystem
from repro.metrics import format_table, summarize_trace
from repro.sim.delays import UniformDelay
from repro.sim.rng import SimRng
from repro.workloads import (
    TAO_READ_RATIO,
    WorkloadSpec,
    apply_schedule,
    generate_schedule,
)

from benchmarks.conftest import emit

ALGORITHMS = ("bsr", "bsr-2round", "rb", "abd")
READ_RATIOS = (0.5, 0.9, TAO_READ_RATIO)
NUM_OPS = 150


def mean_op_latency(algorithm: str, read_ratio: float) -> float:
    spec = WorkloadSpec(num_ops=NUM_OPS, read_ratio=read_ratio,
                        num_writers=2, num_readers=4,
                        mean_interarrival=3.0, value_size=64)
    schedule = generate_schedule(spec, SimRng(42, f"e6-{read_ratio}"))
    system = RegisterSystem(algorithm, f=1, seed=7, num_writers=2,
                            num_readers=4,
                            delay_model=UniformDelay(0.4, 1.2))
    handles = apply_schedule(system, schedule)
    trace = system.run()
    assert all(handle.done for handle in handles)
    latencies = [op.latency for op in trace.completed]
    return sum(latencies) / len(latencies)


def run_experiment():
    rows = []
    for ratio in READ_RATIOS:
        row = [f"{ratio:.1%}"]
        for algorithm in ALGORITHMS:
            row.append(mean_op_latency(algorithm, ratio))
        rows.append(tuple(row))
    return rows


def test_e6_read_heavy_workloads(benchmark, once_per_session):
    rows = benchmark(run_experiment)
    if "e6" not in once_per_session:
        once_per_session.add("e6")
        emit(format_table(
            ("read ratio",) + ALGORITHMS, rows,
            title="E6: mean operation latency (s) by workload read ratio",
        ))
    by_ratio = {row[0]: row[1:] for row in rows}
    tao = by_ratio[f"{TAO_READ_RATIO:.1%}"]
    bsr, two_round, rb, abd = tao
    # At 99.8% reads the one-shot register is ~2x faster than every
    # two-round-read design.
    assert bsr < two_round / 1.6
    assert bsr < abd / 1.6
    # RB's read is also single-round when writes are rare, so the two are
    # comparable at the TAO extreme...
    assert bsr <= rb * 1.1
    # ...but at write-heavier mixes RB's 1.5-round write penalty dominates.
    mixed = by_ratio["50.0%"]
    assert mixed[0] < mixed[2] * 0.9  # bsr beats rb clearly at 50% reads
    # The BSR advantage over the two-round variant grows with read ratio.
    gaps = [row[2] / row[1] for row in rows]  # two-round / bsr
    assert gaps[0] < gaps[-1]
