"""E5 -- BSR is not regular; both Section III-C extensions are.

Runs the exact Theorem-3 execution (n = 5, f = 1, five writers whose
PUT-DATA scatters one value per server) against all three read protocols and
reports what the read returned and the checker verdicts.  Also reports the
read-message cost of each variant: the price of regularity is either larger
replies (history) or an extra round (two-round reads).
"""

from repro.byzantine.scenarios import theorem3_regularity_violation
from repro.metrics import format_table

from benchmarks.conftest import emit

VARIANTS = ("bsr", "bsr-history", "bsr-2round")


def run_experiment():
    rows = []
    for algorithm in VARIANTS:
        result = theorem3_regularity_violation(algorithm)
        reply_bytes = sum(
            result.system.network_stats().per_type_bytes.get(kind, 0)
            for kind in ("DataReply", "HistoryReply", "TagHistoryReply",
                         "ValueReply")
        )
        rows.append((
            algorithm,
            result.read_value.decode(),
            result.read.rounds,
            "yes" if result.safety.ok else "NO",
            "yes" if result.regularity.ok else "NO",
            reply_bytes,
        ))
    return rows


def test_e5_regularity(benchmark, once_per_session):
    rows = benchmark(run_experiment)
    if "e5" not in once_per_session:
        once_per_session.add("e5")
        emit(format_table(
            ("variant", "read returned", "read rounds", "safe", "regular",
             "read-reply bytes"),
            rows,
            title="E5: the Theorem-3 execution against all three read protocols",
        ))
    by_name = {row[0]: row for row in rows}
    # Plain BSR: stale v0, safe, NOT regular, one round.
    assert by_name["bsr"][1] == "v0"
    assert by_name["bsr"][3] == "yes" and by_name["bsr"][4] == "NO"
    assert by_name["bsr"][2] == 1
    # History variant: fresh value, regular, still one round, bigger replies.
    assert by_name["bsr-history"][1] != "v0"
    assert by_name["bsr-history"][4] == "yes"
    assert by_name["bsr-history"][2] == 1
    assert by_name["bsr-history"][5] > by_name["bsr"][5]
    # Two-round variant: fresh value, regular, two rounds.
    assert by_name["bsr-2round"][1] != "v0"
    assert by_name["bsr-2round"][4] == "yes"
    assert by_name["bsr-2round"][2] == 2
