"""E3 -- The n >= 5f + 1 bound for BCSR is tight (Lemma 4 and Theorem 6).

* **Below the bound** (n = 5f): the Theorem-6 adversary leaves the reader
  with more erroneous coded elements than ``N >= k + 2e`` tolerates; the
  read returns a wrong/initial value -- a safety violation.
* **At the bound** (n = 5f + 1): the same adversary is decoded away, and
  randomized Byzantine executions never violate safety.
"""

from repro.byzantine.scenarios import theorem6_bcsr_below_bound
from repro.consistency import check_safety
from repro.core.register import RegisterSystem
from repro.metrics import format_table
from repro.sim.delays import UniformDelay
from repro.sim.failures import random_failure_schedule
from repro.sim.rng import SimRng
from repro.workloads import WorkloadSpec, apply_schedule, generate_schedule

from benchmarks.conftest import emit

RANDOM_TRIALS = 15


def scripted_rows():
    rows = []
    for f in (1, 2):
        for n in (5 * f, 5 * f + 1):
            result = theorem6_bcsr_below_bound(n=n, f=f)
            rows.append((f, n, "yes" if n == 5 * f else "no",
                         result.read_value.decode(errors="replace"),
                         "VIOLATED" if not result.safety.ok else "safe"))
    return rows


def random_violation_rate(n: int, f: int, trials: int = RANDOM_TRIALS) -> float:
    violations = 0
    for seed in range(trials):
        rng = SimRng(seed, "e3")
        schedule = random_failure_schedule(
            [f"s{i:03d}" for i in range(n)], f, rng, byzantine_count=f,
            behaviors=("silent", "stale", "corrupt_value", "forge_tag"),
        )
        system = RegisterSystem(
            "bcsr", f=f, n=n, seed=seed, num_writers=1, num_readers=2,
            initial_value=b"v0",
            byzantine={e.pid: e.behavior for e in schedule.events},
            delay_model=UniformDelay(0.1, 2.0),
        )
        spec = WorkloadSpec(num_ops=15, read_ratio=0.7, num_writers=1,
                            num_readers=2)
        apply_schedule(system, generate_schedule(spec, rng.fork("wl")))
        trace = system.run()
        if not check_safety(trace, initial_value=b"v0").ok:
            violations += 1
    return violations / trials


def run_experiment():
    return scripted_rows(), random_violation_rate(6, 1)


def test_e3_bcsr_resilience(benchmark, once_per_session):
    rows, rate = benchmark(run_experiment)
    if "e3" not in once_per_session:
        once_per_session.add("e3")
        emit(format_table(
            ("f", "n", "below bound", "read returned", "safety"),
            rows + [("1", "6", "no", f"{RANDOM_TRIALS} random adversaries",
                     f"violation rate {rate:.0%}")],
            title="E3: BCSR resilience across the n = 5f + 1 boundary",
        ))
    for f, n, below, _, verdict in rows:
        if below == "yes":
            assert verdict == "VIOLATED"
        else:
            assert verdict == "safe"
    assert rate == 0.0
