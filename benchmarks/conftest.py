"""Shared helpers for the benchmark suite.

Every benchmark prints the table of numbers that backs one of the paper's
quantitative claims (run with ``-s`` to see them; they are also recorded in
EXPERIMENTS.md), and uses pytest-benchmark to time the underlying run so
regressions in the simulator or the protocols show up as timing changes.
"""

import pytest

from repro.metrics.report import emit as _emit


def emit(table: str) -> None:
    """Print an experiment table, flushing so it interleaves cleanly."""
    _emit("\n" + table + "\n")


@pytest.fixture(scope="session")
def once_per_session():
    """Registry letting a parametrised bench print its table only once."""
    return set()
