"""E8 -- Ablation: the (f+1)-th-highest tag rule vs naive max.

Fig 1 line 4 has writers adopt the ``(f+1)``-th highest tag from their
``get-tag`` quorum.  The obvious alternative -- take the maximum, as
crash-only ABD does -- lets a single Byzantine server inflate every
subsequent tag without bound ("incorrect timestamp values", Section II-A).

The experiment runs a chain of writes against ``f`` tag-forging servers
under both selection rules and reports the final tag number.  With the
paper's rule the tag grows by exactly 1 per write; with max-selection it
absorbs the forged boost on every write.
"""

from typing import List

from repro.core.bsr import BSRWriteOperation
from repro.core.messages import PutData
from repro.core.quorum import kth_highest
from repro.core.register import RegisterSystem
from repro.metrics import format_table
from repro.sim.delays import ConstantDelay
from repro.types import Envelope, ProcessId

from benchmarks.conftest import emit

NUM_WRITES = 5
BOOST = 1000


class MaxTagWriteOperation(BSRWriteOperation):
    """Ablated writer: adopts the *maximum* tag (no Byzantine filtering)."""

    def _on_tag_reply(self, sender: ProcessId, message) -> List[Envelope]:
        from repro.core.tags import Tag
        if not isinstance(message.tag, Tag):
            return []
        self._tag_replies.add(sender, message)
        if len(self._tag_replies) < self.quorum:
            return []
        tags = [reply.tag for reply in self._tag_replies.values()]
        self._tag = kth_highest(tags, 1).next_for(self.client_id)  # max
        self._phase = "put-data"
        self.rounds = 2
        return self.broadcast(PutData(op_id=self.op_id, tag=self._tag,
                                      payload=self.value))


def chain_of_writes(op_class) -> int:
    """Run NUM_WRITES sequential writes; returns the final tag number."""
    system = RegisterSystem("bsr", f=1, seed=1,
                            delay_model=ConstantDelay(0.5),
                            byzantine={0: "forge_tag"})
    final_tag_num = 0
    for i in range(NUM_WRITES):
        handle = system.write(f"w{i}".encode(), writer=0, at=i * 10.0)
        # Swap the operation class for the ablated rule.
        if op_class is not BSRWriteOperation:
            original_factory = system.clients["w000"]._pending[-1][2]

            def ablated_factory(original=original_factory):
                op = original()
                op.__class__ = op_class
                return op

            entry = system.clients["w000"]._pending[-1]
            system.clients["w000"]._pending[-1] = (
                entry[0], entry[1], ablated_factory, entry[3],
            )
    system.run()
    return max(
        (w.value.num for w in system.handles if w.kind == "write" and w.done),
        default=0,
    )


def run_experiment():
    paper_rule = chain_of_writes(BSRWriteOperation)
    max_rule = chain_of_writes(MaxTagWriteOperation)
    return paper_rule, max_rule


def test_e8_tag_selection_ablation(benchmark, once_per_session):
    paper_rule, max_rule = benchmark(run_experiment)
    if "e8" not in once_per_session:
        once_per_session.add("e8")
        emit(format_table(
            ("selection rule", f"final tag num after {NUM_WRITES} writes",
             "growth per write"),
            [
                ("(f+1)-th highest (paper)", paper_rule,
                 paper_rule / NUM_WRITES),
                ("max (ablation)", max_rule, max_rule / NUM_WRITES),
            ],
            title="E8: tag inflation under one tag-forging Byzantine server",
        ))
    # Paper's rule: tags advance by exactly one per write.
    assert paper_rule == NUM_WRITES
    # Max rule: the forged boost (~1e6 per ForgeTagBehavior default) is
    # absorbed into the tag chain -- unbounded inflation.
    assert max_rule > 1_000_000
