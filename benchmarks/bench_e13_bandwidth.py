"""E13 -- Coding pays off on bandwidth-limited networks (§I-C).

Paper claim: the erasure-coded register "will be particularly useful when
network has limited bandwidth or the data is too large" -- each coded
element is ``1/k`` of the value, so serialization time shrinks accordingly.

The experiment runs one write + one read of increasing value sizes over a
network whose per-message delay is ``base + bytes / bandwidth``
(1 MB/s, 50 ms propagation), comparing replication (BSR) against the
``[11, 6]`` coded register (BCSR) at identical n = 11, f = 1:

* tiny values: the two are indistinguishable (propagation dominates);
* large values: BCSR approaches a ``k``-fold write-latency advantage.
"""

from repro.core.register import RegisterSystem
from repro.metrics import format_table
from repro.sim.delays import SizeDependentDelay

from benchmarks.conftest import emit

N, F = 11, 1                      # k = n - 5f = 6
SIZES = (1_000, 10_000, 100_000, 1_000_000)
BANDWIDTH = 1_000_000.0           # bytes/second
BASE = 0.05                       # propagation seconds


def one_pair(algorithm: str, size: int):
    system = RegisterSystem(
        algorithm, f=F, n=N, seed=1,
        delay_model=SizeDependentDelay(base=BASE, bytes_per_second=BANDWIDTH),
    )
    value = b"x" * size
    write = system.write(value, writer=0, at=0.0)
    read = system.read(reader=0, at=10_000.0)
    system.run()
    assert read.value == value
    return write.latency, read.latency


def run_experiment():
    rows = []
    for size in SIZES:
        bsr_write, bsr_read = one_pair("bsr", size)
        bcsr_write, bcsr_read = one_pair("bcsr", size)
        rows.append((size, bsr_write, bcsr_write, bsr_write / bcsr_write,
                     bsr_read, bcsr_read))
    return rows


def test_e13_bandwidth_crossover(benchmark, once_per_session):
    # One round: the 1 MB encode/decode work makes repeated rounds slow.
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    if "e13" not in once_per_session:
        once_per_session.add("e13")
        emit(format_table(
            ("value bytes", "BSR write(s)", "BCSR write(s)", "write speedup",
             "BSR read(s)", "BCSR read(s)"),
            rows,
            title=f"E13: latency vs value size at {BANDWIDTH/1e6:.0f} MB/s "
                  f"(n={N}, f={F}, k={N - 5 * F})",
        ))
    smallest, largest = rows[0], rows[-1]
    # Small values: propagation dominates, speedup ~1.
    assert smallest[3] < 1.3
    # Large values: the coded write approaches the k-fold advantage.
    k = N - 5 * F
    assert largest[3] > k * 0.5
    # The advantage grows monotonically with value size.
    speedups = [row[3] for row in rows]
    assert speedups == sorted(speedups)
    # Reads gain too (the reply carries 1/k of the value).
    assert largest[5] < largest[4]
