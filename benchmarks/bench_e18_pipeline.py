"""E18: read throughput vs in-flight depth on the multiplexed runtime.

One :class:`AsyncRegisterClient` issues a fixed number of reads against a
live :class:`LocalCluster` whose links carry a constant 1 ms propagation
latency (chaos proxies with a ``latency`` policy -- delivery is
scheduled concurrently, so it bounds the RTT without capping bandwidth),
while ``depth`` worker coroutines keep up to ``depth`` operations in
flight (``max_inflight=depth``).  Depth 1 is the old single-op runtime's
shape -- each read pays its full round trip before the next starts;
deeper pipelines overlap the waits, and the per-connection write
batching turns the overlapping ops' frames into single bursts.
Measured for BSR (full-copy reads) and BCSR (coded reads),
depths 1 -> 64.

Run directly (or via ``make bench-pipeline``) to write
``BENCH_pipeline.json`` at the repository root:

    PYTHONPATH=src python benchmarks/bench_e18_pipeline.py

The pytest entry point is marked ``slow_bench`` and excluded from the
tier-1 run; it asserts the acceptance floor: BSR reads at depth 16 reach
at least 3x the depth-1 throughput.
"""

import asyncio
import json
import time
from pathlib import Path

import pytest

from repro.runtime import LocalCluster

pytestmark = pytest.mark.slow_bench

ALGORITHMS = ("bsr", "bcsr")

DEPTHS = (1, 2, 4, 8, 16, 32, 64)

#: Reads measured per depth (after warmup).
OPS = 256

#: Unmeasured reads to settle connections and code paths.
WARMUP = 16

#: Acceptance floor: BSR depth-16 speedup over depth 1.
MIN_SPEEDUP_DEPTH16 = 3.0

#: Constant one-way propagation delay on every link (seconds).
LINK_LATENCY = 0.001

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"


async def _measure_depth(cluster, depth: int, ops: int) -> float:
    """Seconds to complete ``ops`` reads at pipeline depth ``depth``."""
    client = cluster.client(f"r{depth:03d}", timeout=30.0,
                            max_inflight=depth)
    await client.connect()
    for _ in range(WARMUP):
        await client.read()
    remaining = ops

    async def worker() -> None:
        nonlocal remaining
        while remaining > 0:
            remaining -= 1
            await client.read()

    started = time.perf_counter()
    await asyncio.gather(*(worker() for _ in range(depth)))
    elapsed = time.perf_counter() - started
    await client.close()
    return elapsed


async def _run_algorithm(algorithm: str, depths=DEPTHS, ops=OPS) -> list:
    cluster = LocalCluster(algorithm, f=1, chaos=True)
    await cluster.start()
    cluster.chaos_plan.set_policy(latency=LINK_LATENCY)
    try:
        rows = []
        for depth in depths:
            seconds = await _measure_depth(cluster, depth, ops)
            rows.append({
                "algorithm": algorithm,
                "depth": depth,
                "ops": ops,
                "seconds": round(seconds, 4),
                "ops_per_sec": round(ops / seconds, 1),
            })
        base = rows[0]["ops_per_sec"]
        for row in rows:
            row["speedup_vs_depth1"] = round(row["ops_per_sec"] / base, 2)
        return rows
    finally:
        await cluster.stop()


def run_benchmark(algorithms=ALGORITHMS, depths=DEPTHS, ops=OPS) -> dict:
    results = []
    for algorithm in algorithms:
        results.extend(asyncio.run(_run_algorithm(algorithm, depths, ops)))
    return {
        "experiment": ("E18: ops/sec vs in-flight depth "
                       "(LocalCluster, f=1, 1 ms links)"),
        "link_latency_s": LINK_LATENCY,
        "ops_per_depth": ops,
        "results": results,
    }


def write_report(report: dict) -> None:
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")


def format_report(report: dict) -> str:
    header = (f"{'algorithm':>9} {'depth':>5} {'ops':>5} "
              f"{'seconds':>8} {'ops/sec':>9} {'speedup':>8}")
    lines = [header, "-" * len(header)]
    for row in report["results"]:
        lines.append(
            f"{row['algorithm']:>9} {row['depth']:>5} {row['ops']:>5} "
            f"{row['seconds']:>8.3f} {row['ops_per_sec']:>9.1f} "
            f"{row['speedup_vs_depth1']:>7.2f}x"
        )
    return "\n".join(lines)


def test_pipeline_depth16_speedup_floor():
    """BSR reads at depth 16 must reach 3x the depth-1 throughput."""
    report = run_benchmark(algorithms=("bsr",), depths=(1, 16))
    by_depth = {row["depth"]: row for row in report["results"]}
    speedup = by_depth[16]["ops_per_sec"] / by_depth[1]["ops_per_sec"]
    assert speedup >= MIN_SPEEDUP_DEPTH16, (
        f"depth-16 BSR reads only {speedup:.2f}x depth 1 "
        f"(need >= {MIN_SPEEDUP_DEPTH16}x)"
    )


def main() -> None:
    from repro.metrics.report import emit

    report = run_benchmark()
    write_report(report)
    emit(format_report(report))
    emit(f"\nwrote {OUTPUT}")
    bsr = {row["depth"]: row for row in report["results"]
           if row["algorithm"] == "bsr"}
    emit(f"BSR depth-16 speedup: {bsr[16]['speedup_vs_depth1']:.2f}x "
         f"(target {MIN_SPEEDUP_DEPTH16}x)")


if __name__ == "__main__":
    main()
