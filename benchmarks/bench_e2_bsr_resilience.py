"""E2 -- The n >= 4f + 1 bound for BSR is tight (Theorems 2 and 5).

Two sides of the coin:

* **Below the bound** (n = 4f): the scripted Theorem-5 adversary makes a
  completed read return a superseded value -- a safety violation.
* **At the bound** (n = 4f + 1): the *same* adversary fails, and a battery
  of randomized Byzantine executions never violates safety.
"""

from repro.byzantine.scenarios import theorem5_bsr_below_bound
from repro.consistency import check_safety
from repro.core.register import RegisterSystem
from repro.metrics import format_table
from repro.sim.delays import UniformDelay
from repro.sim.failures import random_failure_schedule
from repro.sim.rng import SimRng
from repro.workloads import WorkloadSpec, apply_schedule, generate_schedule

RANDOM_TRIALS = 20


def scripted_rows():
    rows = []
    for f in (1, 2):
        for n in (4 * f, 4 * f + 1):
            result = theorem5_bsr_below_bound(n=n, f=f)
            rows.append((f, n, "yes" if n == 4 * f else "no",
                         result.read_value.decode(),
                         "VIOLATED" if not result.safety.ok else "safe"))
    return rows


def random_violation_rate(n: int, f: int, trials: int = RANDOM_TRIALS) -> float:
    violations = 0
    for seed in range(trials):
        rng = SimRng(seed, "e2")
        schedule = random_failure_schedule(
            [f"s{i:03d}" for i in range(n)], f, rng, byzantine_count=f,
        )
        system = RegisterSystem(
            "bsr", f=f, n=n, seed=seed, num_writers=2, num_readers=2,
            initial_value=b"v0",
            byzantine={e.pid: e.behavior for e in schedule.events},
            delay_model=UniformDelay(0.1, 2.0),
        )
        spec = WorkloadSpec(num_ops=20, read_ratio=0.6, num_writers=2,
                            num_readers=2)
        apply_schedule(system, generate_schedule(spec, rng.fork("wl")))
        trace = system.run()
        if not check_safety(trace, initial_value=b"v0").ok:
            violations += 1
    return violations / trials


def run_experiment():
    return scripted_rows(), random_violation_rate(5, 1)


def test_e2_bsr_resilience(benchmark, once_per_session):
    (rows, rate) = benchmark(run_experiment)
    if "e2" not in once_per_session:
        once_per_session.add("e2")
        emit_rows = rows + [("1", "5", "no",
                             f"{RANDOM_TRIALS} random adversaries",
                             f"violation rate {rate:.0%}")]
        from benchmarks.conftest import emit
        from repro.metrics import format_table
        emit(format_table(
            ("f", "n", "below bound", "read returned / trials", "safety"),
            emit_rows,
            title="E2: BSR resilience across the n = 4f + 1 boundary",
        ))
    for f, n, below, _, verdict in rows:
        if below == "yes":
            assert verdict == "VIOLATED"
        else:
            assert verdict == "safe"
    assert rate == 0.0
