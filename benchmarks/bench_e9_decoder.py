"""E9 -- The decoder corrects exactly up to the N >= k + 2e boundary.

Section IV-A requires an ``[n, k]`` MDS code that decodes from ``N = n - f``
elements with up to ``e = 2f`` erroneous ones, i.e. ``k = n - f - 2e``.
This bench sweeps the number of erroneous elements across that boundary for
the BCSR production shape (n = 11, f = 2, k = 1) and a higher-rate shape,
reporting decode success and the exact failure edge, plus decoder timing.
"""

import pytest

from repro.erasure.rs import ReedSolomon
from repro.errors import DecodingError
from repro.metrics import format_table
from repro.sim.rng import SimRng

from benchmarks.conftest import emit

SHAPES = ((11, 2), (16, 2))  # (n, f) with k = n - 5f


def decode_outcome(rs: ReedSolomon, received_count: int, errors: int,
                   seed: int = 1) -> bool:
    rng = SimRng(seed, f"e9-{rs.n}-{rs.k}-{errors}")
    message = [rng.randint(0, 255) for _ in range(rs.k)]
    codeword = rs.encode(message)
    positions = rng.sample(range(rs.n), received_count)
    wrong = set(rng.sample(positions, errors))
    received = [(p, codeword[p] ^ 0x7E if p in wrong else codeword[p])
                for p in positions]
    try:
        return rs.decode(received) == message
    except DecodingError:
        return False


def run_experiment():
    rows = []
    for n, f in SHAPES:
        k = n - 5 * f
        rs = ReedSolomon(n, k)
        received = n - f
        budget = (received - k) // 2
        for errors in range(0, budget + 2):
            ok = all(decode_outcome(rs, received, errors, seed)
                     for seed in range(5))
            rows.append((f"[{n},{k}] f={f}", received, errors, budget,
                         "ok" if ok else "FAIL"))
    return rows


def test_e9_decoder_boundary(benchmark, once_per_session):
    rows = benchmark(run_experiment)
    if "e9" not in once_per_session:
        once_per_session.add("e9")
        emit(format_table(
            ("code", "elements", "errors", "budget (N-k)/2", "decode"),
            rows,
            title="E9: Berlekamp-Welch success across the k + 2e boundary",
        ))
    for code, received, errors, budget, verdict in rows:
        if errors <= budget:
            assert verdict == "ok", f"{code} failed inside budget ({errors})"
        else:
            assert verdict == "FAIL", f"{code} decoded beyond budget ({errors})"
    # The paper's regime sits exactly at the edge: budget == 2f.
    n, f = SHAPES[0]
    assert ((n - f) - (n - 5 * f)) // 2 == 2 * f


def test_e9_decode_throughput(benchmark):
    """Time one decode of the production shape with max errors."""
    n, f = 11, 2
    rs = ReedSolomon(n, n - 5 * f)
    rng = SimRng(9, "e9-timing")
    message = [rng.randint(0, 255) for _ in range(rs.k)]
    codeword = rs.encode(message)
    positions = list(range(n - f))
    received = [(p, codeword[p] ^ 0x55 if p < 2 * f else codeword[p])
                for p in positions]
    result = benchmark(lambda: rs.decode(received, max_errors=2 * f))
    assert result == message
