"""E1 -- One-shot reads vs the reliable-broadcast baseline.

Paper claims (Abstract, Section I-B, Remark 1):

* BSR reads complete in **one** client-to-server round; writes in two.
* Reliable broadcast costs ~**1.5 rounds extra** per write, so RB-based
  writes are ~1.5x slower than BSR writes under the same network.

The experiment runs an identical write+read pair over both algorithms for a
sweep of per-message delays and reports the measured latencies; the BSR/RB
write ratio should sit at ~1.5 across the sweep.
"""

from repro.core.register import RegisterSystem
from repro.metrics import format_table
from repro.sim.delays import ConstantDelay

from benchmarks.conftest import emit

DELAYS = (0.5, 1.0, 2.0)


def one_pair(algorithm: str, delay: float):
    system = RegisterSystem(algorithm, f=1, seed=1,
                            delay_model=ConstantDelay(delay))
    write = system.write(b"e1-value", writer=0, at=0.0)
    read = system.read(reader=0, at=100.0)
    system.run()
    return write.latency, read.latency


def run_sweep():
    rows = []
    for delay in DELAYS:
        bsr_write, bsr_read = one_pair("bsr", delay)
        rb_write, rb_read = one_pair("rb", delay)
        rows.append((
            delay,
            bsr_read, rb_read,
            bsr_write, rb_write,
            rb_write / bsr_write,
        ))
    return rows


def test_e1_read_latency(benchmark, once_per_session):
    rows = benchmark(run_sweep)
    if "e1" not in once_per_session:
        once_per_session.add("e1")
        emit(format_table(
            ("delay(s)", "BSR read", "RB read", "BSR write", "RB write",
             "RB/BSR write"),
            rows,
            title="E1: operation latency, BSR vs reliable-broadcast baseline",
        ))
    for delay, bsr_read, rb_read, bsr_write, rb_write, ratio in rows:
        # One-shot read: exactly one round trip.
        assert abs(bsr_read - 2 * delay) < 1e-9
        # Two-round write.
        assert abs(bsr_write - 4 * delay) < 1e-9
        # The paper's 1.5x blow-up, exactly, under synchronous delays.
        assert abs(ratio - 1.5) < 0.01
