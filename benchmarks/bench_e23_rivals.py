"""E23: the rivals scorecard -- every registered protocol, one table.

The protocol registry turned the repository into a plugin host: the
paper's semi-fast register (``bsr``), its history/2-round/coded
variants, the crash-only ABD baseline, and the RB-era rivals the paper
positions itself against -- ``rb`` (Bracha-broadcast register), ``rb2``
(BSR over Imbs-Raynal 2-step broadcast, n >= 5f+1) and ``mpr``
(Mostefaoui-Petrolia-Raynal signature-free atomic register, n >= 3f+1).
This benchmark is the payoff: one scorecard comparing, for every
registered protocol, what the paper compares analytically --

* **resilience**: the declared bound and the concrete minimum n at f=1;
* **round-trips**: client rounds per write and per read, *measured* off
  the operation state machines in the simulator, not transcribed;
* **throughput and tail latency**: mixed read/write ops/sec and
  p50/p99 latency against a live loopback :class:`LocalCluster`;
* **safety**: the full live trace is re-judged by the Definition 1
  checker -- a scorecard row only counts if its execution was safe.

Run directly (or via ``make bench-rivals``) to write
``BENCH_rivals.json`` at the repository root:

    PYTHONPATH=src python benchmarks/bench_e23_rivals.py

The pytest entry points are marked ``slow_bench`` and excluded from the
tier-1 run; they assert the scorecard covers every runtime protocol
with a safe trace, and that the measured round counts reproduce the
paper's comparison (BSR writes in 2 rounds and reads in 1; the rivals
pay their extra round or their extra replicas).
"""

import asyncio
import json
import time
from pathlib import Path

import pytest

from repro.consistency import check_safety
from repro.core.register import RegisterSystem
from repro.protocols import get_spec, runtime_names, specs
from repro.runtime import LocalCluster
from repro.sim.trace import OpKind, Trace

pytestmark = pytest.mark.slow_bench

#: Timed operations per kind (reads and writes run concurrently).
OPS = 200

#: Unmeasured operations to settle connections and code paths.
WARMUP = 25

#: In-flight depth per client (closed loop with a small pipeline).
DEPTH = 4

F = 1

ROOT = Path(__file__).resolve().parent.parent
OUTPUT = ROOT / "BENCH_rivals.json"


def measured_rounds(algorithm: str) -> dict:
    """Client round-trips per op, read off the sim's state machines."""
    system = RegisterSystem(algorithm, f=F, seed=0)
    write = system.write(b"round-probe", writer=0, at=0.0)
    read = system.read(reader=0, at=100.0)
    system.run()
    return {"write_rounds": write.rounds, "read_rounds": read.rounds}


def _percentile(samples, fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


async def _timed_op(client, trace: Trace, kind: OpKind, index: int,
                    latencies: list) -> None:
    loop = asyncio.get_running_loop()
    if kind is OpKind.WRITE:
        value = f"e23:{index}".encode().ljust(32, b".")
        record = trace.begin(client.client_id, kind, loop.time(), value=value)
        started = time.perf_counter()
        tag = await client.write(value)
        latencies.append(time.perf_counter() - started)
        trace.complete(record, loop.time(), tag=tag)
    else:
        record = trace.begin(client.client_id, kind, loop.time())
        started = time.perf_counter()
        value = await client.read()
        latencies.append(time.perf_counter() - started)
        trace.complete(record, loop.time(), value=value)


async def _client_load(client, trace: Trace, kind: OpKind, ops: int,
                       latencies: list) -> None:
    """Closed loop at DEPTH in-flight: warmup, then ``ops`` timed ops."""
    await client.connect()
    # Warmup ops are untimed but still traced: the safety checker's value
    # domain is built from the *recorded* writes, so an unrecorded warmup
    # write would make every read of its value look like a fabrication.
    discard = []
    for index in range(WARMUP):
        await _timed_op(client, trace, kind, -1 - index, discard)
    remaining = ops
    counter = iter(range(ops))

    async def worker() -> None:
        nonlocal remaining
        while remaining > 0:
            remaining -= 1
            await _timed_op(client, trace, kind, next(counter), latencies)

    await asyncio.gather(*(worker() for _ in range(DEPTH)))


async def _measure_runtime(algorithm: str, ops: int) -> dict:
    """Mixed loopback workload: one writer + one reader client, traced."""
    cluster = LocalCluster(algorithm, f=F)
    await cluster.start()
    try:
        writer = cluster.client("w000", timeout=30.0, max_inflight=DEPTH)
        reader = cluster.client("r000", timeout=30.0, max_inflight=DEPTH)
        trace = Trace()
        write_lat, read_lat = [], []
        started = time.perf_counter()
        await asyncio.gather(
            _client_load(writer, trace, OpKind.WRITE, ops, write_lat),
            _client_load(reader, trace, OpKind.READ, ops, read_lat),
        )
        elapsed = time.perf_counter() - started
        await writer.close()
        await reader.close()
        safety = check_safety(trace, initial_value=b"")
        return {
            "ops_per_sec": round(2 * ops / elapsed, 1),
            "write_p50_ms": round(_percentile(write_lat, 0.50) * 1e3, 3),
            "write_p99_ms": round(_percentile(write_lat, 0.99) * 1e3, 3),
            "read_p50_ms": round(_percentile(read_lat, 0.50) * 1e3, 3),
            "read_p99_ms": round(_percentile(read_lat, 0.99) * 1e3, 3),
            "safety_ok": safety.ok,
            "safety_violations": len(safety.violations),
        }
    finally:
        await cluster.stop()


def scorecard_row(algorithm: str, ops: int = OPS) -> dict:
    spec = get_spec(algorithm)
    row = {
        "algorithm": spec.name,
        "quorum_rule": spec.quorum_rule,
        "min_n_f1": spec.min_servers(F),
        "fault_model": spec.fault_model,
        "summary": spec.description,
    }
    row.update(measured_rounds(algorithm))
    row.update(asyncio.run(_measure_runtime(algorithm, ops)))
    return row


def run_benchmark(ops: int = OPS) -> dict:
    results = [scorecard_row(name, ops) for name in runtime_names()]
    sim_only = [s.name for s in specs() if not s.runtime_ok]
    return {
        "experiment": ("E23: rivals scorecard (every registered protocol: "
                       f"resilience, rounds, loopback throughput, f={F})"),
        "ops_per_kind": ops,
        "depth": DEPTH,
        "sim_only_protocols": sim_only,
        "results": results,
    }


def write_report(report: dict) -> None:
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")


def format_report(report: dict) -> str:
    header = (f"{'algorithm':>11} {'bound':>7} {'n@f=1':>5} {'faults':>9} "
              f"{'wr rt':>5} {'rd rt':>5} {'ops/sec':>8} "
              f"{'rd p99':>7} {'wr p99':>7} {'safe':>4}")
    lines = [header, "-" * len(header)]
    for row in report["results"]:
        lines.append(
            f"{row['algorithm']:>11} {row['quorum_rule']:>7} "
            f"{row['min_n_f1']:>5} {row['fault_model']:>9} "
            f"{row['write_rounds']:>5} {row['read_rounds']:>5} "
            f"{row['ops_per_sec']:>8.1f} {row['read_p99_ms']:>6.2f}m "
            f"{row['write_p99_ms']:>6.2f}m {'yes' if row['safety_ok'] else 'NO':>4}"
        )
    return "\n".join(lines)


# -- acceptance (slow_bench; run via `make bench-rivals` / -m slow_bench) -----

def test_scorecard_covers_every_runtime_protocol():
    report = run_benchmark(ops=40)
    names_in_report = {row["algorithm"] for row in report["results"]}
    assert names_in_report == set(runtime_names())
    for row in report["results"]:
        assert row["safety_ok"], f"{row['algorithm']} trace violated safety"
        assert row["ops_per_sec"] > 0


def test_round_counts_reproduce_the_paper_comparison():
    """BSR: 2-round writes, 1-round reads (the semi-fast claim); the
    rivals pay elsewhere -- rb2 needs n >= 5f+1, mpr reads in 2 rounds."""
    bsr = measured_rounds("bsr")
    assert bsr == {"write_rounds": 2, "read_rounds": 1}
    assert get_spec("rb2").min_servers(1) > get_spec("bsr").min_servers(1)
    assert measured_rounds("mpr")["read_rounds"] >= 2
    assert get_spec("mpr").min_servers(1) < get_spec("bsr").min_servers(1)


def main() -> None:
    from repro.metrics.report import emit

    report = run_benchmark()
    write_report(report)
    emit(format_report(report))
    emit(f"\nwrote {OUTPUT}")
    if report["sim_only_protocols"]:
        emit(f"sim-only (no runtime row): {report['sim_only_protocols']}")
    unsafe = [row["algorithm"] for row in report["results"]
              if not row["safety_ok"]]
    emit("all scorecard traces safe" if not unsafe
         else f"SAFETY VIOLATIONS in: {unsafe}")


if __name__ == "__main__":
    main()
