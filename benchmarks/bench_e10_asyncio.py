"""E10 -- The one-round read survives the trip to real sockets.

The simulator measures protocol rounds; this bench deploys the same state
machines on an asyncio TCP cluster (localhost) and measures wall-clock
operation latency, confirming that reads cost about half a write (one round
trip vs two) outside the simulator too.
"""

import asyncio
import time

from repro.metrics import format_table
from repro.runtime import LocalCluster

from benchmarks.conftest import emit

OPS = 30


async def timed_ops(algorithm: str):
    cluster = LocalCluster(algorithm, f=1)
    await cluster.start()
    try:
        writer = cluster.client("w000")
        reader = cluster.client("r000")
        await writer.connect()
        await reader.connect()
        write_times, read_times = [], []
        for i in range(OPS):
            start = time.perf_counter()
            await writer.write(b"x" * 64)
            write_times.append(time.perf_counter() - start)
            start = time.perf_counter()
            value = await reader.read()
            read_times.append(time.perf_counter() - start)
            assert value == b"x" * 64
        return (sum(read_times) / OPS, sum(write_times) / OPS)
    finally:
        await cluster.stop()


def run_experiment():
    rows = []
    for algorithm in ("bsr", "bcsr"):
        read_mean, write_mean = asyncio.run(timed_ops(algorithm))
        rows.append((algorithm, read_mean * 1000, write_mean * 1000,
                     read_mean / write_mean))
    return rows


def test_e10_asyncio_latency(benchmark, once_per_session):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    if "e10" not in once_per_session:
        once_per_session.add("e10")
        emit(format_table(
            ("algorithm", "read mean(ms)", "write mean(ms)", "read/write"),
            rows,
            title=f"E10: TCP localhost latency over {OPS} ops",
        ))
    for algorithm, read_ms, write_ms, ratio in rows:
        # One round vs two: reads well under write latency.  Localhost
        # scheduling is noisy, so only the coarse shape is asserted.
        assert ratio < 0.95
