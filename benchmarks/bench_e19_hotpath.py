"""E19: profiled hot-path ceiling -- loopback ops/sec by depth and wire.

E18 measured pipelining against 1 ms links, where propagation dominates
and the wire path hides behind the RTT.  E19 removes the network: a
:class:`LocalCluster` on loopback with no chaos proxies, so every read
pays only the runtime itself -- encode, seal, syscall, reassemble,
verify, decode, dispatch.  That makes it the *ceiling* benchmark for the
wire-path work: binary codec (v2), batched HMAC sealing and zero-copy
framing all show up directly in ops/sec, and a cProfile pass attributes
the remaining time to named buckets so the next optimisation target is
data, not guesswork.

Run directly (or via ``make bench-hotpath``) to write
``BENCH_hotpath.json`` at the repository root:

    PYTHONPATH=src python benchmarks/bench_e19_hotpath.py

The pytest entry point is marked ``slow_bench`` and excluded from the
tier-1 run; it asserts the acceptance floor: BSR v2 reads at depth 16 on
loopback reach at least 5x the E18 depth-16 throughput (the 1 ms-link
number this benchmark exists to tower over).
"""

import asyncio
import cProfile
import json
import pstats
import time
from pathlib import Path

import pytest

from repro.runtime import LocalCluster
from repro.transport.codec2 import CachedDecoder, CachedEncoder

pytestmark = pytest.mark.slow_bench

WIRES = ("v1", "v2")

DEPTHS = (1, 4, 16, 64)

#: Reads measured per configuration (after warmup).
OPS = 2000

#: Timed passes per configuration; the *fastest* is reported.  This is
#: a ceiling benchmark: host contention (a shared box, CPU steal) only
#: ever subtracts from the observed rate, so the best pass is the
#: closest estimate of what the runtime itself can do.
REPEATS = 5

#: Unmeasured reads to settle connections and code paths.
WARMUP = 64

#: Acceptance floor: v2 depth-16 loopback ops/sec vs E18's depth-16
#: ops/sec over 1 ms links (recorded in BENCH_pipeline.json).
MIN_SPEEDUP_VS_E18 = 5.0

#: E18 depth-16 BSR ops/sec, used when BENCH_pipeline.json is absent.
E18_DEPTH16_FALLBACK = 1252.6

ROOT = Path(__file__).resolve().parent.parent
OUTPUT = ROOT / "BENCH_hotpath.json"
E18_REPORT = ROOT / "BENCH_pipeline.json"

#: Profile bucket -> how to recognise it in the pstats table.  Python
#: functions are charged *cumulative* time (they own their callees);
#: C-level socket/poll primitives are charged *total* time.  The v2
#: encode/decode hot paths run through the cached codec's ``__call__``
#: methods (which own their full-codec fallbacks, so one cumulative
#: entry covers hits and misses of either wire); they are matched by
#: line number below since both share the name ``__call__``.
_CUMULATIVE_BUCKETS = {
    "encode": ("encode_message",),
    "seal": ("seal_frames",),
    "verify": ("open_any",),
    "decode": (),
    "assemble": ("feed",),
}

_ENCODE_CALL_LINE = CachedEncoder.__call__.__code__.co_firstlineno
_DECODE_CALL_LINE = CachedDecoder.__call__.__code__.co_firstlineno


def e18_depth16_ops_per_sec() -> float:
    """The recorded E18 depth-16 BSR throughput (or its fallback)."""
    try:
        report = json.loads(E18_REPORT.read_text())
        for row in report["results"]:
            if row["algorithm"] == "bsr" and row["depth"] == 16:
                return float(row["ops_per_sec"])
    except (OSError, ValueError, KeyError):
        pass
    return E18_DEPTH16_FALLBACK


async def _measure(cluster, wire: str, depth: int, ops: int) -> float:
    """Seconds to complete ``ops`` loopback reads at ``depth``."""
    client = cluster.client(f"r{depth:03d}", timeout=30.0,
                            max_inflight=depth, wire=wire)
    await client.connect()
    for _ in range(WARMUP):
        await client.read()
    remaining = ops

    async def worker() -> None:
        nonlocal remaining
        while remaining > 0:
            remaining -= 1
            await client.read()

    started = time.perf_counter()
    await asyncio.gather(*(worker() for _ in range(depth)))
    elapsed = time.perf_counter() - started
    await client.close()
    return elapsed


async def _run_wire(wire: str, depths=DEPTHS, ops=OPS) -> list:
    cluster = LocalCluster("bsr", f=1, wire=wire)
    await cluster.start()
    try:
        rows = []
        for depth in depths:
            seconds = min([await _measure(cluster, wire, depth, ops)
                           for _ in range(REPEATS)])
            rows.append({
                "wire": wire,
                "depth": depth,
                "ops": ops,
                "seconds": round(seconds, 4),
                "ops_per_sec": round(ops / seconds, 1),
            })
        return rows
    finally:
        await cluster.stop()


def _bucket_times(stats: pstats.Stats, wall: float) -> dict:
    """Attribute profiled time to wire-path buckets (fractions of wall).

    Cumulative times of the bucket entry points do not overlap (encode,
    seal, verify, decode and assemble call disjoint subtrees), so each
    is a clean slice of the wall clock; socket send/recv and the epoll
    wait are C primitives charged by total time.  ``other`` is the
    remainder: event-loop bookkeeping, protocol logic, dispatch.
    """
    buckets = {name: 0.0 for name in _CUMULATIVE_BUCKETS}
    buckets["syscall"] = 0.0
    buckets["poll"] = 0.0
    for (filename, line, funcname), row in stats.stats.items():
        _cc, _nc, tottime, cumtime, _callers = row
        for name, funcnames in _CUMULATIVE_BUCKETS.items():
            if funcname in funcnames and (
                    filename.endswith(("codec.py", "codec2.py", "auth.py"))):
                buckets[name] += cumtime
        if funcname == "__call__" and filename.endswith("codec2.py"):
            if line == _ENCODE_CALL_LINE:
                buckets["encode"] += cumtime
            elif line == _DECODE_CALL_LINE:
                buckets["decode"] += cumtime
        if "_socket.socket" in funcname:
            buckets["syscall"] += tottime
        elif "select.epoll" in funcname or "select.kqueue" in funcname:
            buckets["poll"] += tottime
    accounted = sum(buckets.values())
    buckets["other"] = max(0.0, wall - accounted)
    return {name: round(seconds / wall, 4) if wall else 0.0
            for name, seconds in buckets.items()}


async def _profiled_run(wire: str, depth: int, ops: int) -> dict:
    """One profiled measurement pass; returns the time breakdown."""
    cluster = LocalCluster("bsr", f=1, wire=wire)
    await cluster.start()
    try:
        client = cluster.client("rprof", timeout=30.0,
                                max_inflight=depth, wire=wire)
        await client.connect()
        for _ in range(WARMUP):
            await client.read()
        remaining = ops

        async def worker() -> None:
            nonlocal remaining
            while remaining > 0:
                remaining -= 1
                await client.read()

        profile = cProfile.Profile()
        started = time.perf_counter()
        profile.enable()
        await asyncio.gather(*(worker() for _ in range(depth)))
        profile.disable()
        wall = time.perf_counter() - started
        await client.close()
        stats = pstats.Stats(profile)
        breakdown = _bucket_times(stats, wall)
        return {
            "wire": wire,
            "depth": depth,
            "ops": ops,
            "profiled_ops_per_sec": round(ops / wall, 1),
            "time_fraction": breakdown,
        }
    finally:
        await cluster.stop()


def run_benchmark(wires=WIRES, depths=DEPTHS, ops=OPS,
                  profile_depth: int = 16) -> dict:
    results = []
    for wire in wires:
        results.extend(asyncio.run(_run_wire(wire, depths, ops)))
    profiles = [asyncio.run(_profiled_run(wire, profile_depth, ops))
                for wire in wires]
    reference = e18_depth16_ops_per_sec()
    for row in results:
        row["speedup_vs_e18_depth16"] = round(
            row["ops_per_sec"] / reference, 2)
    return {
        "experiment": ("E19: loopback hot-path ceiling "
                       "(LocalCluster bsr, f=1, no link latency)"),
        "ops_per_config": ops,
        "e18_depth16_ops_per_sec": reference,
        "results": results,
        "profiles": profiles,
    }


def write_report(report: dict) -> None:
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")


def format_report(report: dict) -> str:
    header = (f"{'wire':>4} {'depth':>5} {'ops':>6} {'seconds':>8} "
              f"{'ops/sec':>9} {'vs E18@16':>9}")
    lines = [header, "-" * len(header)]
    for row in report["results"]:
        lines.append(
            f"{row['wire']:>4} {row['depth']:>5} {row['ops']:>6} "
            f"{row['seconds']:>8.3f} {row['ops_per_sec']:>9.1f} "
            f"{row['speedup_vs_e18_depth16']:>8.2f}x"
        )
    lines.append("")
    lines.append("profiled time fractions (depth-16 pass):")
    for profiled in report["profiles"]:
        parts = " ".join(
            f"{name}={fraction:.1%}"
            for name, fraction in profiled["time_fraction"].items())
        lines.append(f"  {profiled['wire']}: {parts}")
    return "\n".join(lines)


def test_hotpath_depth16_beats_e18_floor():
    """v2 loopback reads at depth 16 must reach 5x E18's depth-16 rate."""
    report = run_benchmark(wires=("v2",), depths=(16,))
    row = report["results"][0]
    assert row["speedup_vs_e18_depth16"] >= MIN_SPEEDUP_VS_E18, (
        f"loopback depth-16 v2 reads only {row['speedup_vs_e18_depth16']}x "
        f"the E18 reference (need >= {MIN_SPEEDUP_VS_E18}x)"
    )


def test_v2_not_slower_than_v1_at_depth():
    """The binary wire must not lose to JSON on its home turf."""
    report = run_benchmark(wires=("v1", "v2"), depths=(16,))
    by_wire = {row["wire"]: row for row in report["results"]}
    assert (by_wire["v2"]["ops_per_sec"]
            >= 0.9 * by_wire["v1"]["ops_per_sec"])


def main() -> None:
    from repro.metrics.report import emit

    report = run_benchmark()
    write_report(report)
    emit(format_report(report))
    emit(f"\nwrote {OUTPUT}")
    best = max((row for row in report["results"] if row["wire"] == "v2"
                and row["depth"] == 16),
               key=lambda row: row["ops_per_sec"])
    emit(f"v2 depth-16 loopback: {best['ops_per_sec']:.1f} ops/s = "
         f"{best['speedup_vs_e18_depth16']:.2f}x the E18 depth-16 "
         f"reference (target {MIN_SPEEDUP_VS_E18}x)")


if __name__ == "__main__":
    main()
