"""Codec throughput: vectorized GF(256) kernels vs the scalar reference.

Measures ``StripedCodec`` encode and decode MB/s across value sizes and
``[n, k]`` shapes for both the column-oriented kernel paths
(``kernels=True``, the default) and the byte-at-a-time scalar reference
(``kernels=False``), on the clean path (all honest elements) and the
corrupted path (``f`` erasures plus ``2f`` corrupted elements, the BCSR
read regime of Lemma 4).

Run directly (or via ``make bench-codec``) to write ``BENCH_codec.json``
at the repository root:

    PYTHONPATH=src python benchmarks/bench_codec_throughput.py

The pytest entry point is marked ``slow_bench`` and excluded from the
tier-1 run; it asserts the speedup floor the kernels are expected to hold
(>= 50x encode and errorless decode on 64 KiB values, >= 5x corrupted).
"""

import json
import time
from pathlib import Path

import pytest

from repro.erasure.striping import CodedElement, StripedCodec
from repro.metrics.report import emit
from repro.sim.rng import SimRng

pytestmark = pytest.mark.slow_bench

#: (n, f) shapes; the BCSR code dimension is k = n - 5f.
SHAPES = ((11, 2), (16, 2), (10, 1))

#: Value sizes in bytes.
SIZES = (4096, 65536, 262144)

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_codec.json"

#: Speedup floors asserted on >= 64 KiB values.
MIN_SPEEDUP_CLEAN = 50.0
MIN_SPEEDUP_CORRUPTED = 5.0


def _value(size: int, seed: int = 0) -> bytes:
    rng = SimRng(seed, f"codec-bench-{size}")
    return bytes(rng.randint(0, 255) for _ in range(size))


def _time(fn, repeats: int) -> float:
    """Best-of-``repeats`` wall time of ``fn()`` in seconds."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _corrupt(elements, f: int, rng: SimRng):
    """The Lemma 4 read regime: keep n - f elements, corrupt 2f of them."""
    received = list(elements[: len(elements) - f])
    targets = set(rng.sample(range(len(received)), 2 * f))
    return [
        CodedElement(e.index, bytes(b ^ 0xFF for b in e.data))
        if i in targets else e
        for i, e in enumerate(received)
    ]


def _measure_shape(n: int, f: int, size: int, scalar_repeats: int = 1,
                   kernel_repeats: int = 5) -> list:
    """Rows of (path, scalar MB/s, kernel MB/s, speedup) for one config."""
    k = n - 5 * f
    fast = StripedCodec(n, k, kernels=True)
    slow = StripedCodec(n, k, kernels=False)
    value = _value(size)
    rng = SimRng(size, f"codec-bench-{n}-{f}")
    encoded = fast.encode(value)
    clean = encoded[: n - f]
    corrupted = _corrupt(encoded, f, rng)

    assert fast.decode(clean) == value
    assert slow.decode(clean) == value
    assert fast.decode(corrupted, max_errors=2 * f) == value

    mb = size / 1e6
    rows = []
    for path, fast_fn, slow_fn in (
        ("encode", lambda: fast.encode(value), lambda: slow.encode(value)),
        ("decode_clean", lambda: fast.decode(clean), lambda: slow.decode(clean)),
        ("decode_corrupted",
         lambda: fast.decode(corrupted, max_errors=2 * f),
         lambda: slow.decode(corrupted, max_errors=2 * f)),
    ):
        kernel_s = _time(fast_fn, kernel_repeats)
        scalar_s = _time(slow_fn, scalar_repeats)
        rows.append({
            "shape": [n, k],
            "f": f,
            "value_bytes": size,
            "path": path,
            "scalar_mbps": round(mb / scalar_s, 3),
            "kernels_mbps": round(mb / kernel_s, 3),
            "speedup": round(scalar_s / kernel_s, 1),
        })
    return rows


def run_benchmark(sizes=SIZES, shapes=SHAPES) -> dict:
    results = []
    for n, f in shapes:
        for size in sizes:
            results.extend(_measure_shape(n, f, size))
    return {
        "benchmark": "codec_throughput",
        "unit": "MB/s",
        "paths": ["encode", "decode_clean", "decode_corrupted"],
        "results": results,
    }


def write_report(report: dict) -> None:
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")


def format_report(report: dict) -> str:
    header = (f"{'shape':>8} {'size':>8} {'path':>17} "
              f"{'scalar MB/s':>12} {'kernel MB/s':>12} {'speedup':>8}")
    lines = [header, "-" * len(header)]
    for row in report["results"]:
        n, k = row["shape"]
        lines.append(
            f"[{n},{k:2d}] {row['value_bytes']:>8} {row['path']:>17} "
            f"{row['scalar_mbps']:>12.2f} {row['kernels_mbps']:>12.2f} "
            f"{row['speedup']:>7.1f}x"
        )
    return "\n".join(lines)


def test_codec_kernel_speedup_floor():
    """Kernels hold the promised floor on 64 KiB values, every shape."""
    report = run_benchmark(sizes=(65536,))
    for row in report["results"]:
        floor = (MIN_SPEEDUP_CORRUPTED if row["path"] == "decode_corrupted"
                 else MIN_SPEEDUP_CLEAN)
        assert row["speedup"] >= floor, (
            f"{row['path']} on {row['shape']} only {row['speedup']}x "
            f"(need >= {floor}x)"
        )


def main() -> None:
    report = run_benchmark()
    write_report(report)
    emit(format_report(report))
    emit(f"\nwrote {OUTPUT}")
    big = [r for r in report["results"] if r["value_bytes"] >= 65536]
    clean = [r for r in big if r["path"] != "decode_corrupted"]
    corrupted = [r for r in big if r["path"] == "decode_corrupted"]
    emit(f"min clean-path speedup  (>=64 KiB): "
         f"{min(r['speedup'] for r in clean):.1f}x (target {MIN_SPEEDUP_CLEAN}x)")
    emit(f"min corrupted-path speedup (>=64 KiB): "
         f"{min(r['speedup'] for r in corrupted):.1f}x (target {MIN_SPEEDUP_CORRUPTED}x)")


if __name__ == "__main__":
    main()
