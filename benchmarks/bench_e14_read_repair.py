"""E14 -- Ablation: read repair (extension) on a straggler-heavy network.

BSR reads are already fresh at the bound (a witnessed pair exists in every
``n - f`` sample -- the paper's whole point), so read repair does not change
what reads *return*.  What it changes is *server-level* staleness: without
it, a server whose PUT-DATA copy crawls stays behind until that copy lands;
with it, the next read catches the server up.  Server staleness matters
downstream: pruned histories (E12), the two-round variant's round-2
liveness, and recovery time after partitions all depend on it.

The bench interleaves writes and reads while one deterministic straggler
per write has its PUT-DATA delayed beyond the horizon, and counts
**stale server-rounds**: at the end of each round, how many servers lack
that round's value.  Reads must stay one-round either way (asserted).
"""

from repro.core.messages import PutData
from repro.core.register import RegisterSystem
from repro.metrics import format_table
from repro.sim.delays import ConstantDelay, RuleBasedDelays

from benchmarks.conftest import emit

ROUNDS = 12
N = 5


def straggler_delays():
    """Exactly one straggler per write: its PUT-DATA copy takes ~forever."""
    delays = RuleBasedDelays(fallback=ConstantDelay(0.4))
    delays.add_rule(
        lambda src, dst, msg: (isinstance(msg, PutData)
                               and src.startswith("w")   # the writer's copy,
                               and (msg.tag.num % N) == int(dst[1:])),
        50_000.0, label="one crawling put-data copy per write",
    )
    return delays


def run_stream(read_repair: bool):
    system = RegisterSystem("bsr", f=1, n=N, seed=6, num_writers=2,
                            num_readers=2, initial_value=b"v0",
                            read_repair=read_repair,
                            delay_model=straggler_delays())
    stale_samples = []
    reads = []
    for i in range(ROUNDS):
        base = i * 20.0
        system.write(f"value-{i:03d}".encode(), writer=i % 2, at=base)
        reads.append(system.read(reader=i % 2, at=base + 5.0))

        def sample(round_index=i):
            expected_tag_num = round_index + 1
            stale = sum(
                1 for protocol in system.server_protocols.values()
                if protocol.max_tag.num < expected_tag_num
            )
            stale_samples.append(stale)

        system.sim.schedule_at(base + 19.0, sample)
    system.sim.run_for(ROUNDS * 20.0 + 10.0)
    assert all(read.done and read.rounds == 1 for read in reads)
    fresh_reads = sum(
        1 for i, read in enumerate(reads)
        if read.value == f"value-{i:03d}".encode()
    )
    return (sum(stale_samples), max(stale_samples), fresh_reads)


def run_experiment():
    return run_stream(False), run_stream(True)


def test_e14_read_repair_ablation(benchmark, once_per_session):
    (plain, repaired) = benchmark(run_experiment)
    if "e14" not in once_per_session:
        once_per_session.add("e14")
        emit(format_table(
            ("read repair", "stale server-rounds", "max stale at once",
             f"fresh reads / {ROUNDS}"),
            [("off", *plain), ("on", *repaired)],
            title=f"E14: read repair vs server staleness "
                  f"({ROUNDS} write+read rounds, 1 straggler/write)",
        ))
    # Reads are fresh either way: the witness quorum guarantees it.
    assert plain[2] == ROUNDS and repaired[2] == ROUNDS
    # Repair eliminates the lingering staleness the stragglers cause.
    assert plain[0] > 0
    assert repaired[0] < plain[0] / 2
