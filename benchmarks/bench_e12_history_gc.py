"""E12 -- Ablation: bounded server history vs the history-read variant.

The paper's servers keep the full write history ``L`` (unbounded); the
one-shot *regular* variant (Section III-C a) reads that history.  This
repository adds a ``max_history`` GC knob, and this bench quantifies the
trade it makes:

* **Space**: per-server history bytes after a stream of writes, with and
  without the bound.
* **Correctness coverage**: replaying the Theorem-3 schedule against the
  history variant while sweeping ``max_history`` -- a depth of 1 degenerates
  to plain BSR (regularity lost); enough depth restores it.  Plain BSR is
  unaffected at any depth (it only serves the newest pair).
"""

from repro.consistency import check_regularity
from repro.core.messages import PutData
from repro.core.register import RegisterSystem
from repro.metrics import format_table
from repro.sim.delays import ConstantDelay, RuleBasedDelays, UniformDelay
from repro.types import server_id, writer_id

from benchmarks.conftest import emit

WRITES = 50
VALUE_SIZE = 256


def history_footprint(max_history):
    system = RegisterSystem("bsr-history", f=1, seed=2,
                            delay_model=UniformDelay(0.2, 0.8),
                            max_history=max_history)
    for i in range(WRITES):
        system.write(bytes([i % 256]) * VALUE_SIZE, writer=i % 2, at=i * 5.0)
    system.run()
    per_server = [protocol.history_bytes()
                  for protocol in system.server_protocols.values()]
    return max(per_server)


def theorem3_with_bound(max_history):
    """Theorem-3 schedule against bsr-history at the given history bound."""
    delays = RuleBasedDelays(fallback=ConstantDelay(0.1))
    for i in range(1, 5):
        writer, fast_server = writer_id(i), server_id(i)

        def match(src, dst, msg, writer=writer, fast_server=fast_server):
            return (isinstance(msg, PutData) and src == writer
                    and dst != fast_server)

        delays.hold(match)
    system = RegisterSystem("bsr-history", f=1, n=5, num_writers=5,
                            num_readers=1, seed=0, delay_model=delays,
                            initial_value=b"v0", max_history=max_history)
    system.write(b"v1", writer=0, at=0.0)
    for i in range(1, 5):
        system.write(f"v{i + 1}".encode(), writer=i, at=10.0)
    read = system.read(reader=0, at=20.0)
    trace = system.run()
    regular = check_regularity(trace, initial_value=b"v0").ok
    return read.value, regular


def run_experiment():
    rows = []
    for max_history in (1, 2, 4, None):
        footprint = history_footprint(max_history)
        read_value, regular = theorem3_with_bound(max_history)
        rows.append((
            "unbounded" if max_history is None else max_history,
            footprint,
            read_value.decode(),
            "yes" if regular else "NO",
        ))
    return rows


def test_e12_history_gc_ablation(benchmark, once_per_session):
    rows = benchmark(run_experiment)
    if "e12" not in once_per_session:
        once_per_session.add("e12")
        emit(format_table(
            ("max_history", f"history bytes after {WRITES} writes",
             "Thm-3 read", "regular"),
            rows,
            title="E12: history GC vs regularity coverage (bsr-history)",
        ))
    by_bound = {row[0]: row for row in rows}
    # Depth 1 degenerates to plain BSR: the Theorem-3 read is stale again.
    assert by_bound[1][2] == "v0" and by_bound[1][3] == "NO"
    # Unbounded (and any depth >= 2 here) keeps regularity.
    assert by_bound["unbounded"][3] == "yes"
    assert by_bound[2][3] == "yes"
    # The GC actually reclaims space.
    assert by_bound[1][1] < by_bound["unbounded"][1] / 10
