"""Hot-path smoke: encode + seal + frame 10k messages under a time budget.

A fast regression tripwire for the wire path (`make lint` runs it): both
codecs encode a realistic message mix, the bursts are batch-sealed and
framed, then reassembled, verified and decoded back to equal objects.
If an accidental O(n^2) or a per-frame allocation regression lands in
the codec, authenticator or assembler, this blows the budget loudly
long before a benchmark run would notice.

Exit status: 0 on success, 1 on wrong results or a blown budget.
"""

import sys
import time

from repro.core.messages import DataReply, PutData, QueryData, QueryTag
from repro.core.tags import Tag
from repro.transport.auth import Authenticator, KeyChain
from repro.transport.codec import (
    FrameAssembler,
    encode_message,
    decode_message,
    _PACK_HEADER,
)
from repro.transport.codec2 import encode_message_v2

#: Messages per codec pass.
COUNT = 10_000

#: Wall-clock budget per codec pass (generous: ~10x the observed cost on
#: a slow container, tight enough to catch a 100x regression).
BUDGET_SECONDS = 5.0

#: Frames per sealed batch (mirrors a deep pipeline's per-tick burst).
BURST = 16


def build_messages(count):
    tag = Tag(3, "w000")
    value = b"v" * 128
    mix = [
        QueryTag(op_id=0),
        PutData(op_id=0, tag=tag, payload=value),
        QueryData(op_id=0),
        DataReply(op_id=0, tag=tag, payload=value),
    ]
    return [type(m)(**{**m.__dict__, "op_id": i})
            for i, m in ((i, mix[i % len(mix)]) for i in range(count))]


def run_pass(label, encode, batch):
    auth = Authenticator(KeyChain.from_secret(b"smoke", ["w000"]))
    assembler = FrameAssembler()
    messages = build_messages(COUNT)
    started = time.perf_counter()
    decoded = 0
    for at in range(0, COUNT, BURST):
        burst = messages[at:at + BURST]
        payloads = [encode(m) for m in burst]
        wire = b"".join(
            _PACK_HEADER(len(f)) + f
            for f in auth.seal_frames("w000", payloads, batch=batch))
        for frame in assembler.feed(wire):
            _, opened = auth.open_any(frame)
            for payload in opened:
                message = decode_message(payload)
                if message != burst[decoded % BURST]:
                    print(f"hotpath-smoke[{label}]: round-trip mismatch "
                          f"at message {decoded}: {message!r}")
                    return None
                decoded += 1
    elapsed = time.perf_counter() - started
    if decoded != COUNT:
        print(f"hotpath-smoke[{label}]: decoded {decoded} of {COUNT}")
        return None
    if len(assembler) != 0:
        print(f"hotpath-smoke[{label}]: {len(assembler)} bytes left "
              "buffered")
        return None
    return elapsed


def main():
    ok = True
    for label, encode, batch in (("v2", encode_message_v2, True),
                                 ("v1", encode_message, False)):
        elapsed = run_pass(label, encode, batch)
        if elapsed is None:
            ok = False
            continue
        rate = COUNT / elapsed
        status = "ok"
        if elapsed > BUDGET_SECONDS:
            status = f"BLOWN BUDGET ({BUDGET_SECONDS:.1f}s)"
            ok = False
        print(f"hotpath-smoke[{label}]: {COUNT} messages in "
              f"{elapsed * 1000:.0f} ms ({rate:,.0f}/s) -- {status}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
