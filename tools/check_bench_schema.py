#!/usr/bin/env python
"""Lint: every ``BENCH_*.json`` at the repo root is a sane bench document.

The benchmarks all publish the same coarse shape -- a name under
``"experiment"`` (or the older ``"benchmark"``) plus a non-empty
``"results"`` list of row dicts, each carrying at least one finite
numeric field.  CI regenerates some of these documents and notebooks
consume all of them, so a truncated write, a NaN that leaked through a
division, or an empty sweep should fail the lint rather than surface as
a confusing plot later.

Exit status is the number of malformed documents (0 == clean).
"""

import glob
import json
import math
import os
import sys

#: Either key may carry the document's name (the codec bench predates
#: the ``experiment`` convention).
NAME_KEYS = ("experiment", "benchmark")


def _bad_numbers(value, path):
    """Yield the paths of every NaN/Inf anywhere under ``value``."""
    if isinstance(value, float) and not math.isfinite(value):
        yield path
    elif isinstance(value, dict):
        for key, item in value.items():
            yield from _bad_numbers(item, f"{path}.{key}")
    elif isinstance(value, list):
        for index, item in enumerate(value):
            yield from _bad_numbers(item, f"{path}[{index}]")


def check_document(path):
    """Yield human-readable problems with one bench document."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        yield f"unreadable JSON ({exc})"
        return
    if not isinstance(doc, dict):
        yield f"top level must be an object, got {type(doc).__name__}"
        return
    if not any(isinstance(doc.get(key), str) and doc[key]
               for key in NAME_KEYS):
        yield f"missing a name under one of {NAME_KEYS}"
    results = doc.get("results")
    if not isinstance(results, list) or not results:
        yield "'results' must be a non-empty list"
        return
    for index, row in enumerate(results):
        if not isinstance(row, dict):
            yield f"results[{index}] is not an object"
            continue
        numeric = [v for v in row.values()
                   if isinstance(v, (int, float))
                   and not isinstance(v, bool)
                   and math.isfinite(v)]
        if not numeric:
            yield f"results[{index}] has no finite numeric field"
    for where in _bad_numbers(doc, "$"):
        yield f"non-finite number at {where}"


def main(argv):
    if len(argv) > 1 and argv[1].endswith(".json"):
        paths = argv[1:]
    else:
        root = argv[1] if len(argv) > 1 else os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))
        paths = sorted(glob.glob(os.path.join(root, "BENCH_*.json")))
    bad = 0
    for path in paths:
        problems = list(check_document(path))
        if problems:
            bad += 1
            for problem in problems:
                print(f"{os.path.basename(path)}: {problem}",
                      file=sys.stderr)
    print(f"check_bench_schema: {len(paths)} documents, "
          f"{bad} malformed", file=sys.stderr)
    return bad


if __name__ == "__main__":
    sys.exit(main(sys.argv))
