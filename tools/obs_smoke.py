#!/usr/bin/env python
"""End-to-end observability smoke: trace -> stitch -> exporter.

Boots an in-process cluster on live TCP with the flight recorder set to
trace every operation, runs a small mixed workload through a traced
client, then exercises the whole observability plane:

1. scrapes every node's flight recorder over the wire (``TraceDump``,
   the same frame ``repro trace show`` uses),
2. stitches the final write into a causal timeline and checks the
   paper's ``witness`` (f+1) and ``quorum`` (n-f) instants are present,
3. serves the merged metrics through :class:`MetricsExporter` and
   fetches ``/metrics``, ``/healthz`` and ``/traces/<op_id>`` over
   real HTTP.

Run via ``make obs-smoke``.  Exits non-zero with a message on stderr at
the first broken link in that chain.
"""

import asyncio
import json
import sys
import urllib.request

from repro.deploy import stats_ping, trace_dump
from repro.obs import (
    MemorySink,
    MetricsExporter,
    merge_registry_snapshots,
    stitch_op,
)
from repro.runtime import LocalCluster

OPS = 4


def fail(message):
    print(f"obs smoke: {message}", file=sys.stderr)
    raise SystemExit(1)


async def scenario():
    cluster = LocalCluster("bsr", f=1, flight_sample=1)
    await cluster.start()
    try:
        sink = MemorySink()
        client = cluster.client("w000", timeout=10.0, trace_sink=sink)
        await client.connect()
        for index in range(OPS):
            await client.write(f"value-{index}".encode())
            await client.read()

        # 1. Scrape every node's flight recorder over the wire.
        server_records = []
        for pid, node in cluster.nodes.items():
            ack = await trace_dump(node.address, node.auth)
            if ack.node_id != pid:
                fail(f"trace ack for {pid} answered as {ack.node_id}")
            if not ack.records:
                fail(f"node {pid} recorded no flights at sample=1")
            server_records.extend(dict(r) for r in ack.records)

        # 2. Stitch the last traced op into a causal timeline.
        op_id = sink.records[-1]["op_id"]
        op = stitch_op(op_id, sink.records, server_records)
        if op is None:
            fail(f"op {op_id} did not stitch")
        if not op.aligned:
            fail("client/server clocks failed to align in-process")
        if op.missing_servers:
            fail(f"stitched op missing servers: {op.missing_servers}")
        texts = [text for _, _, text in op.events()]
        for needle in ("witness reached (f+1 replies)",
                       "quorum reached (n-f replies)"):
            if needle not in texts:
                fail(f"timeline lacks {needle!r}")

        # 3. Serve it all over HTTP.  The exporter's handler threads call
        # scrape()/lookup() synchronously, so they wrap their own
        # asyncio.run and the fetches run in an executor thread.
        addresses = [node.address for node in cluster.nodes.values()]
        auth = next(iter(cluster.nodes.values())).auth

        def scrape():
            async def sweep():
                acks = await asyncio.gather(
                    *(stats_ping(address, auth) for address in addresses))
                return [ack.metrics for ack in acks]
            return asyncio.run(sweep())

        def lookup(wanted):
            return [r for r in server_records if r["op_id"] == wanted] or None

        def fetch(base, path):
            with urllib.request.urlopen(base + path, timeout=10.0) as reply:
                return reply.read().decode()

        loop = asyncio.get_running_loop()
        with MetricsExporter(scrape, trace_lookup=lookup, port=0) as exporter:
            host, port = exporter.address
            base = f"http://{host}:{port}"
            health = await loop.run_in_executor(None, fetch, base, "/healthz")
            metrics = await loop.run_in_executor(None, fetch, base,
                                                 "/metrics")
            traces = await loop.run_in_executor(None, fetch, base,
                                                f"/traces/{op_id}")
        if health.strip() != "ok":
            fail(f"/healthz said {health!r}")
        for needle in ("# TYPE repro_node_frames_total counter",
                       "# TYPE repro_node_phase_seconds histogram",
                       "# TYPE repro_client_ops_total counter"):
            if needle not in metrics:
                fail(f"/metrics lacks {needle!r}")
        served = json.loads(traces)
        if not served or any(r["op_id"] != op_id for r in served):
            fail(f"/traces/{op_id} returned {served!r}")

        acks = await asyncio.gather(
            *(stats_ping(address, auth) for address in addresses))
        merged = merge_registry_snapshots([ack.metrics for ack in acks])
        return op_id, len(server_records), len(metrics.splitlines()), merged
    finally:
        await cluster.stop()


def main():
    op_id, flights, lines, merged = asyncio.run(scenario())
    counters = {c["name"] for c in merged["counters"]}
    if "node_frames_total" not in counters:
        fail("merged snapshot lost node_frames_total")
    print(f"obs smoke: ok (op {op_id} stitched from {flights} flight "
          f"records, {lines} exposition lines served over HTTP)",
          file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
