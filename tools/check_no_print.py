#!/usr/bin/env python
"""Lint: no bare ``print(...)`` inside the library or the benchmarks.

Library code reports through the metric registry and the ``logging``
module; only the CLI front-ends (``cli.py``, ``metrics/report.py``) may
write to stdout directly.  Benchmark scripts report through
:func:`repro.metrics.report.emit` so their output stays greppable and
redirectable as one stream.  A ``print`` that routes to an explicit
stream (``print(..., file=stream)``) is allowed anywhere -- that is how
node processes emit their READY line to the supervisor pipe.

Exit status is the number of violations (0 == clean).
"""

import ast
import os
import sys

ALLOWED_FILES = frozenset({"cli.py", "report.py"})


def bare_prints(path):
    """Yield (line, column) of every print() call without a file= kwarg."""
    with open(path, "r", encoding="utf-8") as fh:
        tree = ast.parse(fh.read(), filename=path)
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Name) and func.id == "print"):
            continue
        if any(keyword.arg == "file" for keyword in node.keywords):
            continue
        yield node.lineno, node.col_offset


def main(*roots):
    roots = roots or ("src/repro", "benchmarks")
    violations = []
    for root in roots:
        for dirpath, _, filenames in os.walk(root):
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                if filename in ALLOWED_FILES:
                    continue
                path = os.path.join(dirpath, filename)
                for line, column in bare_prints(path):
                    violations.append(
                        f"{path}:{line}:{column}: bare print() "
                        f"-- use logging or the metric registry")
    for violation in violations:
        print(violation, file=sys.stderr)
    if not violations:
        print("no bare print() calls under " + ", ".join(roots),
              file=sys.stderr)
    return len(violations)


if __name__ == "__main__":
    sys.exit(main(*sys.argv[1:]))
