#!/usr/bin/env python
"""Lint: no algorithm-string dispatch outside the protocol registry.

The whole point of ``repro.protocols`` is that infrastructure consumes
:class:`~repro.protocols.ProtocolSpec` capabilities instead of comparing
algorithm names.  This lint walks every module under ``src/repro``
(except ``repro/protocols/`` itself, where the names are *defined*) and
rejects comparisons against registered protocol names::

    if algorithm == "bcsr": ...          # rejected
    if self.algorithm in ("rb", "mpr"):  # rejected
    if spec.single_writer: ...           # what to write instead

Flagged forms: ``==`` / ``!=`` / ``in`` / ``not in`` where one side is a
protocol-name string literal (or a tuple/list/set of them) and the other
side is an expression mentioning ``algorithm`` (a bare name, attribute,
or subscript such as ``profile.algorithm`` / ``row["algorithm"]``).
Comparisons of unrelated strings that happen to equal a protocol name
(``wire == "v2"``) never trip it, and iteration over algorithm lists
(``for algorithm in ALGORITHMS``) is not a comparison at all.

Exit status is the number of violations (0 == clean).
"""

import ast
import os
import sys

#: Kept literal (not imported from the registry) so the lint still runs
#: when the package under test is too broken to import; the conformance
#: suite asserts this set matches the registry.
PROTOCOL_NAMES = frozenset({
    "bsr", "bsr-history", "bsr-2round", "bcsr", "rb", "abd", "mpr", "rb2",
})

SKIP_DIRS = {"protocols", "__pycache__"}


def _literal_names(node):
    """Protocol names in a string literal or a container of them."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return {node.value} & PROTOCOL_NAMES
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        found = set()
        for element in node.elts:
            found |= _literal_names(element)
        return found
    return set()


def _mentions_algorithm(node):
    """Whether an expression plausibly holds an algorithm name."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and "algorithm" in sub.id.lower():
            return True
        if isinstance(sub, ast.Attribute) and "algorithm" in sub.attr.lower():
            return True
        if (isinstance(sub, ast.Constant) and isinstance(sub.value, str)
                and "algorithm" in sub.value.lower()):
            return True  # row["algorithm"], labels.get("algorithm")
    return False


def dispatch_comparisons(path):
    """Yield (line, detail) for every algorithm-string comparison."""
    with open(path, "r", encoding="utf-8") as fh:
        tree = ast.parse(fh.read(), filename=path)
    for node in ast.walk(tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left] + list(node.comparators)
        ops = node.ops
        for op, left, right in zip(ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq, ast.In, ast.NotIn)):
                continue
            for literal, other in ((left, right), (right, left)):
                names = _literal_names(literal)
                if names and _mentions_algorithm(other):
                    yield node.lineno, ", ".join(sorted(names))
                    break


def main(*roots):
    roots = roots or ("src/repro",)
    violations = []
    for root in roots:
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(dirpath, filename)
                for line, names in dispatch_comparisons(path):
                    violations.append(f"{path}:{line}: compares against "
                                      f"protocol name(s) {names}; consume "
                                      f"a ProtocolSpec capability instead")
    for violation in violations:
        print(violation, file=sys.stderr)
    if not violations:
        print("protocol-dispatch lint: clean", file=sys.stderr)
    return len(violations)


if __name__ == "__main__":
    sys.exit(main(*sys.argv[1:]))
