#!/usr/bin/env python
"""End-to-end telemetry smoke: workload -> scrape -> Prometheus text.

Boots an in-process cluster on live TCP, runs a small mixed workload,
scrapes every node over the wire with a ``StatsPing`` (the same frame
``repro metrics dump`` uses), merges the snapshots and validates the
rendered Prometheus exposition.  Run via ``make metrics-smoke``.

Exits non-zero (with a message on stderr) on the first missing series.
"""

import asyncio
import sys

from repro.deploy import stats_ping
from repro.obs import render_prometheus
from repro.runtime import LocalCluster

OPS = 6

REQUIRED_SERIES = (
    "# TYPE repro_node_frames_total counter",
    "# TYPE repro_node_phase_seconds histogram",
    "# TYPE repro_client_ops_total counter",
    "# TYPE repro_client_phase_seconds histogram",
    "# TYPE repro_client_quorum_wait_seconds histogram",
    'phase="get-tag"',
    'phase="put-data"',
    'phase="get-data"',
    'outcome="ok"',
)


async def scenario():
    cluster = LocalCluster("bsr", f=1)
    await cluster.start()
    try:
        client = cluster.client("w000", timeout=10.0)
        await client.connect()
        for index in range(OPS):
            await client.write(f"value-{index}".encode())
            await client.read()
        # Exercise the wire path against every node.  An in-process
        # cluster shares one registry, so each ack carries the same
        # snapshot -- render one, but check each node answered for
        # itself (a procs deployment merges these; see `repro metrics
        # dump`).
        snapshot = None
        for pid, node in cluster.nodes.items():
            ack = await stats_ping(node.address, node.auth)
            assert ack.node_id == pid, (ack.node_id, pid)
            snapshot = ack.metrics
        return render_prometheus(snapshot)
    finally:
        await cluster.stop()


def main():
    text = asyncio.run(scenario())
    missing = [needle for needle in REQUIRED_SERIES if needle not in text]
    for needle in missing:
        print(f"metrics smoke: missing {needle!r} in exposition",
              file=sys.stderr)
    if missing:
        return 1
    lines = len(text.splitlines())
    print(f"metrics smoke: ok ({lines} exposition lines, "
          f"{OPS} writes + {OPS} reads traced)", file=sys.stderr)
    sys.stdout.write(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
