#!/usr/bin/env python3
"""Lint metric names at every ``registry.counter/gauge/histogram`` call.

The observability plane leans on a naming convention instead of a central
schema: counters end in ``_total``, histograms end in ``_seconds`` (every
histogram in the tree measures a duration), and gauges carry neither
suffix.  Prometheus consumers and the ``repro top`` phase table both key
off those suffixes, so a drive-by metric with the wrong shape silently
vanishes from dashboards.  This walks the AST and rejects:

* counters whose name does not end in ``_total``
* histograms whose name does not end in ``_seconds``
* gauges whose name ends in ``_total`` or ``_seconds``
* fully dynamic names (a bare variable or call as the name argument) --
  f-strings are fine as long as they *end* in a literal chunk that
  carries the suffix, e.g. ``f"client_{name}_total"``.

Exit status is the number of violations, so ``make lint`` fails fast.
"""

import ast
import sys
from typing import List, Optional, Tuple

INSTRUMENTS = ("counter", "gauge", "histogram")
SUFFIX = {"counter": "_total", "histogram": "_seconds"}
GAUGE_FORBIDDEN = ("_total", "_seconds")


def _name_tail(node: ast.AST) -> Optional[str]:
    """The trailing literal text of the metric-name argument.

    Returns the full string for a constant, the last literal chunk for an
    f-string ending in one, and ``None`` when the name is fully dynamic.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr) and node.values:
        last = node.values[-1]
        if isinstance(last, ast.Constant) and isinstance(last.value, str):
            return last.value
    return None


def check_file(path: str) -> List[Tuple[str, int, str]]:
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    tree = ast.parse(source, filename=path)
    violations = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr in INSTRUMENTS):
            continue
        if not node.args:
            continue  # the registry itself rejects a missing name
        kind = func.attr
        tail = _name_tail(node.args[0])
        if tail is None:
            violations.append((path, node.lineno,
                               f"{kind}() name is fully dynamic; use a "
                               "literal or an f-string ending in the "
                               "suffix literal"))
            continue
        if kind == "gauge":
            for forbidden in GAUGE_FORBIDDEN:
                if tail.endswith(forbidden):
                    violations.append(
                        (path, node.lineno,
                         f"gauge() name ends in '{forbidden}' -- reserved "
                         "for counters/histograms"))
        elif not tail.endswith(SUFFIX[kind]):
            violations.append(
                (path, node.lineno,
                 f"{kind}() name must end in '{SUFFIX[kind]}', "
                 f"got '...{tail[-24:]}'"))
    return violations


def iter_python_files(root: str):
    import os

    if os.path.isfile(root):
        yield root
        return
    for dirpath, _dirnames, filenames in os.walk(root):
        for filename in sorted(filenames):
            if filename.endswith(".py"):
                yield os.path.join(dirpath, filename)


def main(*roots: str) -> int:
    roots = roots or ("src/repro", "benchmarks")
    violations: List[Tuple[str, int, str]] = []
    checked = 0
    for root in roots:
        for path in iter_python_files(root):
            checked += 1
            violations.extend(check_file(path))
    for path, line, message in violations:
        print(f"{path}:{line}: {message}", file=sys.stderr)
    status = "FAIL" if violations else "ok"
    print(f"check_metric_names: {checked} files, "
          f"{len(violations)} violations [{status}]", file=sys.stderr)
    return len(violations)


if __name__ == "__main__":
    sys.exit(main(*sys.argv[1:]))
