"""Ring-determinism lint: one spec, one placement, everywhere, forever.

Sharding is only safe if every component that maps a key to its server
group computes the *same* map: a client routing a write, a server
validating its share, the simulator checking consistency, the CLI
answering ``repro keys locate``.  This check (`make lint` runs it)
derives the placement of 512 keys through each of those paths from one
fixed spec and fails loudly on any disagreement.

It also pins a golden fingerprint of that placement.  The fingerprint
is a SHA-256 over every key -> group assignment, so *any* change to the
ring hash, the vnode walk, or the group-selection order shows up here
as a mismatch.  That is deliberate: such a change silently remaps live
data, so it must be a conscious decision -- re-pin GOLDEN_FINGERPRINT
in the same commit and call out the data migration in the message.

Exit status: 0 on success, 1 on any placement disagreement or drift.
"""

import sys

from repro.core.register import RegisterSystem
from repro.deploy import ClusterSpec
from repro.sharding import key_name

#: The fixed deployment every path derives placement from.
SPEC = dict(algorithm="bsr", f=1, n=9, secret="ring-lint",
            keyspace={"group_size": 5, "vnodes": 64, "seed": 7})

#: Keys fingerprinted (key-0000 .. key-0511).
KEYS = 512

#: Pinned placement digest for SPEC over KEYS keys.  A mismatch means
#: the hash/walk changed and existing deployments would reshuffle.
GOLDEN_FINGERPRINT = (
    "7ac31263afb06efcf707e1912f86e25e2c9acee9a5e9b8a1141e7d203d12560c")


def main() -> int:
    spec = ClusterSpec(**SPEC)
    config = spec.keyspace_config()
    group_size = config.group_size
    keys = [key_name(index) for index in range(KEYS)]

    # The four independent derivation paths.
    deploy = {key: spec.locate(key) for key in keys}
    client = spec.client("lint-client").placement
    simulator = RegisterSystem("bsr", f=spec.f, n=spec.n,
                               keyspace=config)._placement
    reloaded = ClusterSpec.from_dict(spec.to_dict())

    failures = 0
    for key in keys:
        groups = {
            "deploy": deploy[key],
            "client": client.servers_for(key),
            "simulator": simulator.servers_for(key),
            "reloaded-spec": reloaded.locate(key),
        }
        if len(set(groups.values())) != 1:
            failures += 1
            if failures <= 5:
                detail = ", ".join(f"{path}={group}"
                                   for path, group in groups.items())
                sys.stderr.write(f"PLACEMENT DISAGREES for {key}: "
                                 f"{detail}\n")
    if failures:
        sys.stderr.write(f"ring determinism: {failures}/{KEYS} keys "
                         f"disagree across derivation paths\n")
        return 1

    fingerprint = spec.ring().fingerprint(keys, group_size)
    if fingerprint != GOLDEN_FINGERPRINT:
        sys.stderr.write(
            "ring fingerprint drift: the key -> group map for a fixed "
            "spec changed.\n"
            f"  pinned:   {GOLDEN_FINGERPRINT}\n"
            f"  computed: {fingerprint}\n"
            "If the ring change is intentional, re-pin "
            "GOLDEN_FINGERPRINT and flag the data reshuffle in the "
            "commit message.\n")
        return 1

    sys.stderr.write(f"ring determinism: {KEYS} keys, 4 derivation "
                     f"paths, fingerprint pinned -- ok\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
