# Convenience targets for the repro repository.

PYTHON ?= python

.PHONY: install test bench bench-codec bench-hotpath bench-keyspace bench-load bench-obs bench-pipeline bench-rivals bench-tables chaos-soak cluster-smoke examples lint load-smoke metrics-smoke obs-smoke modelcheck clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/ -x -q --ignore=tests/modelcheck

# -m "" clears the default "not slow_bench" filter so the full suite runs.
bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -m ""

# Codec throughput (vectorized GF(256) kernels vs the scalar reference);
# writes BENCH_codec.json at the repository root.
bench-codec:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_codec_throughput.py

# E18 pipelining: ops/sec vs in-flight depth over 1 ms links; writes
# BENCH_pipeline.json at the repository root.
bench-pipeline:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_e18_pipeline.py

# E19 hot-path ceiling: profiled loopback ops/sec by depth and wire
# version with a time breakdown; writes BENCH_hotpath.json at the root.
bench-hotpath:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_e19_hotpath.py

# E20 sharded keyspace: 10k-key Zipf mixed workload (local + procs)
# with self-certifying consistency checks; writes BENCH_keyspace.json.
bench-keyspace:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_e20_keyspace.py

# E21 open-loop load rig: multi-process workers against a
# process-per-node cluster, honest (coordinated-omission-free) latency,
# SLO sweep for max sustainable throughput; writes BENCH_load.json.
bench-load:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_e21_load.py

# Fast end-to-end sanity of the load rig (inline workers, ~10 s).
load-smoke:
	PYTHONPATH=src $(PYTHON) -m repro load --users 20 --rps 60 \
		--duration 3 --warmup 0.5 --cooldown 0.25 --keys 16 \
		--workers 1 --inline --no-sweep --out /tmp/BENCH_load_smoke.json
	PYTHONPATH=src $(PYTHON) tools/check_bench_schema.py /tmp/BENCH_load_smoke.json

# E22 observability overhead: depth-16 loopback throughput with the
# flight recorder off / sampling 1-in-64 / sampling plus a live scrape
# loop; asserts the <=5% budget and writes BENCH_obs.json at the root.
bench-obs:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_e22_obs.py
	PYTHONPATH=src $(PYTHON) tools/check_bench_schema.py BENCH_obs.json

# E23 rivals scorecard: every registered protocol (resilience bound,
# measured round-trips, loopback throughput, p99, safety-checked trace);
# writes BENCH_rivals.json at the repository root.
bench-rivals:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_e23_rivals.py
	PYTHONPATH=src $(PYTHON) tools/check_bench_schema.py BENCH_rivals.json

# Regenerate every experiment table (what EXPERIMENTS.md records).
bench-tables:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s -m ""

# Extended chaos soak: every nemesis schedule against bsr and bcsr over
# live TCP, plus the E17 latency-under-faults benchmark (-m "" clears the
# default marker filter so the soak-marked tests run).
chaos-soak:
	$(PYTHON) -m pytest tests/ -m soak -q
	$(PYTHON) -m pytest benchmarks/bench_e17_chaos.py --benchmark-only -s -m ""

# Process-per-node smoke: just the tests that spawn real node processes
# (supervisor lifecycle, SIGKILL recovery, the acceptance soak).
cluster-smoke:
	PYTHONPATH=src $(PYTHON) -m pytest tests -m procs -q

# Telemetry smoke: workload -> StatsPing scrape -> Prometheus exposition
# validation, plus the no-bare-print lint (library code must report via
# the metric registry / logging, never stdout).
metrics-smoke: lint
	PYTHONPATH=src $(PYTHON) tools/metrics_smoke.py > /dev/null

# Observability-plane smoke: flight-recorder scrape -> causal stitch
# (witness/quorum instants) -> MetricsExporter over live HTTP.
obs-smoke: lint
	PYTHONPATH=src $(PYTHON) tools/obs_smoke.py

lint:
	PYTHONPATH=src $(PYTHON) tools/check_no_print.py
	PYTHONPATH=src $(PYTHON) tools/check_metric_names.py
	PYTHONPATH=src $(PYTHON) tools/hotpath_smoke.py
	PYTHONPATH=src $(PYTHON) tools/check_ring_determinism.py
	PYTHONPATH=src $(PYTHON) tools/check_protocol_dispatch.py
	PYTHONPATH=src $(PYTHON) tools/check_bench_schema.py

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		$(PYTHON) $$script > /dev/null || exit 1; \
	done; echo "all examples ran clean"

modelcheck:
	$(PYTHON) -m repro modelcheck --n 4
	$(PYTHON) -m repro modelcheck --n 5 --exhaustive --max-states 300000

clean:
	rm -rf .pytest_cache .hypothesis build dist src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
