# Convenience targets for the repro repository.

PYTHON ?= python

.PHONY: install test bench bench-tables examples modelcheck clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/ -x -q --ignore=tests/modelcheck

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Regenerate every experiment table (what EXPERIMENTS.md records).
bench-tables:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		$(PYTHON) $$script > /dev/null || exit 1; \
	done; echo "all examples ran clean"

modelcheck:
	$(PYTHON) -m repro modelcheck --n 4
	$(PYTHON) -m repro modelcheck --n 5 --exhaustive --max-states 300000

clean:
	rm -rf .pytest_cache .hypothesis build dist src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
