"""Geo-replication: where does the one-shot read pay off on a WAN?

Deploys registers across three regions (us-east, eu-west, ap-south) with
realistic inter-region latencies and compares per-region client latencies
across three read protocols.  Two lessons fall out:

* Any phase that waits for ``n - f`` replies must cross an ocean, so
  ABD's two full-quorum read rounds cost ~2x the one-shot read.
* The Section III-C two-round variant's *second* round only needs
  ``f + 1`` **matching** replies -- which co-located replicas can serve --
  so on geo topologies with local replicas its penalty nearly vanishes.
  (Under uniform random delays, benchmark E6 shows it costing ~1.8x.)
  Quorum *size* matters as much as round count on a WAN.

Run with::

    python examples/geo_replication.py
"""

from repro import RegisterSystem
from repro.metrics import format_table
from repro.sim.delays import TopologyDelay
from repro.types import reader_id, server_id, writer_id

#: Inter-region round-trip-ish one-way latencies (seconds).
LATENCY = {
    ("us-east", "us-east"): 0.002,
    ("eu-west", "eu-west"): 0.002,
    ("ap-south", "ap-south"): 0.002,
    ("us-east", "eu-west"): 0.040,
    ("us-east", "ap-south"): 0.110,
    ("eu-west", "ap-south"): 0.085,
}
REGIONS = ("us-east", "eu-west", "ap-south")


def build_topology(client_region: str) -> TopologyDelay:
    # 6 servers: two per region (n = 6 > 4f + 1 for f = 1).
    regions = {server_id(i): REGIONS[i // 2] for i in range(6)}
    regions[writer_id(0)] = client_region
    regions[reader_id(0)] = client_region
    return TopologyDelay(regions=regions, latency=LATENCY, jitter=0.05)


def measure(algorithm: str, client_region: str):
    system = RegisterSystem(algorithm, f=1, n=6, seed=11,
                            delay_model=build_topology(client_region))
    write = system.write(b"geo-value", writer=0, at=0.0)
    read = system.read(reader=0, at=10.0)
    system.run()
    assert read.value == b"geo-value"
    return write.latency * 1000, read.latency * 1000  # ms


def main() -> None:
    print("Registers across us-east/eu-west/ap-south, 2 servers per region, f=1\n")
    rows = []
    for region in REGIONS:
        bsr_write, bsr_read = measure("bsr", region)
        _, variant_read = measure("bsr-2round", region)
        _, abd_read = measure("abd", region)
        rows.append((region, bsr_write, bsr_read, variant_read, abd_read,
                     abd_read / bsr_read))
    print(format_table(
        ("client region", "BSR write ms", "1-shot read ms",
         "2-round(f+1) ms", "ABD read ms", "ABD/1-shot"),
        rows,
        title="operation latency by client region (simulated WAN)",
    ))
    print("\nABD reads pay two full n-f quorums (two ocean crossings); the "
          "one-shot read\npays one. The III-C two-round variant dodges the "
          "second crossing because its\nround 2 needs only f+1 matching "
          "replies, served by the client's local replicas.")


if __name__ == "__main__":
    main()
