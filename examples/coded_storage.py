"""Erasure-coded storage: BCSR's cost savings and corruption tolerance.

Stores a sizeable blob in a BCSR deployment (n = 16, f = 2, so the
``[16, 6]`` code stores ~1/6 of the blob per server), compares the
footprint with full replication, and then reads the blob back while two
Byzantine servers hand out corrupted coded elements.

Run with::

    python examples/coded_storage.py
"""

from repro import RegisterSystem
from repro.metrics import format_table
from repro.sim.delays import UniformDelay

N, F = 16, 2
BLOB = bytes(range(256)) * 64   # a 16 KiB "document"


def deploy(algorithm: str, byzantine=None) -> RegisterSystem:
    return RegisterSystem(algorithm, f=F, n=N, seed=99,
                          delay_model=UniformDelay(0.2, 1.0),
                          byzantine=byzantine or {})


def footprint(system: RegisterSystem):
    stored = system.storage_bytes()
    total = sum(stored.values())
    return max(stored.values()), total


def main() -> None:
    print(f"Storing a {len(BLOB)} byte blob on n={N} servers, f={F}\n")

    replicated = deploy("bsr")
    replicated.write(BLOB, at=0.0)
    replicated.run()
    repl_per_server, repl_total = footprint(replicated)

    coded = deploy("bcsr", byzantine={0: "corrupt_value", 1: "corrupt_value"})
    coded.write(BLOB, at=0.0)
    read = coded.read(reader=0, at=20.0)
    coded.run()
    coded_per_server, coded_total = footprint(coded)

    k = N - 5 * F
    print(format_table(
        ("scheme", "per-server bytes", "total bytes", "vs value size"),
        [
            ("replication (BSR)", repl_per_server, repl_total,
             f"{repl_total / len(BLOB):.1f}x"),
            (f"[{N},{k}] MDS code (BCSR)", coded_per_server, coded_total,
             f"{coded_total / len(BLOB):.1f}x"),
        ],
        title="Storage footprint",
    ))
    print(f"\ncoding saves {repl_total / coded_total:.1f}x storage "
          f"(theory: k = {k}x, minus framing)")

    ok = read.value == BLOB
    print(f"\nread-back with 2 corrupting Byzantine servers: "
          f"{'intact' if ok else 'CORRUPTED'} "
          f"({read.rounds} round, {read.latency:.2f}s simulated)")
    assert ok, "Berlekamp-Welch must fix 2f corrupted elements"


if __name__ == "__main__":
    main()
