"""Replaying the paper's adversarial executions, end to end.

Three attacks, each the executable form of one proof:

1. **Theorem 3** -- five concurrent writes scatter values across servers;
   a plain BSR read finds no ``f + 1`` witnesses and falls back to ``v0``
   (safe, but not regular).  The two Section III-C extensions survive it.
2. **Theorem 5** -- with only ``n = 4f`` servers, a history-replaying
   Byzantine server gets a *superseded* value accepted by a completed read.
3. **Theorem 6** -- the coded register at ``n = 5f`` faces more erroneous
   coded elements than Berlekamp-Welch can fix.

Run with::

    python examples/attack_demo.py
"""

from repro.byzantine.scenarios import (
    theorem3_regularity_violation,
    theorem5_bsr_below_bound,
    theorem6_bcsr_below_bound,
)


def banner(text: str) -> None:
    print("\n" + "=" * 72)
    print(text)
    print("=" * 72)


def report(result) -> None:
    print(result.description)
    print("-" * 60)
    print(result.trace.format())
    print(f"\nthe read returned: {result.read_value!r}")
    print(f"  {result.safety}")
    print(f"  {result.regularity}")
    for violation in result.safety.violations + result.regularity.violations:
        print(f"    - {violation}")


def main() -> None:
    banner("Attack 1: Theorem 3 -- BSR is safe but NOT regular")
    bsr = theorem3_regularity_violation("bsr")
    report(bsr)
    assert bsr.safety.ok and not bsr.regularity.ok

    print("\n  ... the same schedule against the two regular variants:")
    for variant in ("bsr-history", "bsr-2round"):
        fixed = theorem3_regularity_violation(variant)
        print(f"  {variant:12s} read={fixed.read_value!r} "
              f"regular={'yes' if fixed.regularity.ok else 'NO'}")
        assert fixed.regularity.ok

    banner("Attack 2: Theorem 5 -- BSR below n = 4f + 1 loses safety")
    broken = theorem5_bsr_below_bound(n=4, f=1)
    report(broken)
    assert not broken.safety.ok
    survived = theorem5_bsr_below_bound(n=5, f=1)
    print(f"\n  same adversary at n = 4f + 1: read={survived.read_value!r}, "
          f"safety={'ok' if survived.safety.ok else 'VIOLATED'}")
    assert survived.safety.ok

    banner("Attack 3: Theorem 6 -- BCSR below n = 5f + 1 loses safety")
    broken = theorem6_bcsr_below_bound(n=5, f=1)
    report(broken)
    assert not broken.safety.ok
    survived = theorem6_bcsr_below_bound(n=6, f=1)
    print(f"\n  same adversary at n = 5f + 1: read={survived.read_value!r}, "
          f"safety={'ok' if survived.safety.ok else 'VIOLATED'}")
    assert survived.safety.ok

    banner("All three proofs reproduced mechanically.")


if __name__ == "__main__":
    main()
