"""Crash recovery: a TCP cluster survives a full restart from snapshots.

Every server node checkpoints its history after each accepted write;
restarting the cluster against the same snapshot directory restores state.
Losing up to ``f`` snapshots is harmless -- a server restored from nothing
is just a slow replica the protocol already tolerates.

Run with::

    python examples/crash_recovery.py
"""

import asyncio
import os
import tempfile

from repro.runtime import LocalCluster


async def first_life(snapshot_dir: str) -> None:
    cluster = LocalCluster("bsr", f=1, snapshot_dir=snapshot_dir)
    await cluster.start()
    try:
        writer = cluster.client("w000")
        await writer.connect()
        for i, value in enumerate((b"alpha", b"beta", b"gamma")):
            tag = await writer.write(value)
            print(f"  wrote {value!r} under tag {tag}")
    finally:
        await cluster.stop()
    print(f"  cluster stopped; snapshots on disk: "
          f"{sorted(os.listdir(snapshot_dir))}")


async def second_life(snapshot_dir: str) -> None:
    # Simulate losing one server's disk entirely (f = 1 budget).
    lost = os.path.join(snapshot_dir, "s002.snapshot")
    os.remove(lost)
    print("  simulated disk loss: removed s002.snapshot")

    cluster = LocalCluster("bsr", f=1, snapshot_dir=snapshot_dir)
    await cluster.start()
    try:
        reader = cluster.client("r000")
        await reader.connect()
        value = await reader.read()
        print(f"  after restart, read returned: {value!r}")
        assert value == b"gamma", "the freshest pre-crash write must survive"
    finally:
        await cluster.stop()


async def main() -> None:
    with tempfile.TemporaryDirectory() as snapshot_dir:
        print("life 1: write three values, checkpointing each")
        await first_life(snapshot_dir)
        print("\nlife 2: full restart from disk, one snapshot lost")
        await second_life(snapshot_dir)
        print("\nRecovery held: the register's durable state outlives its "
              "processes,\nand a lost disk within the f budget is absorbed "
              "like any slow server.")


if __name__ == "__main__":
    asyncio.run(main())
