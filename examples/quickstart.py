"""Quickstart: a Byzantine-tolerant safe register in a few lines.

Builds a BSR deployment (n = 5 servers, f = 1 Byzantine), runs writes and
one-shot reads under a lying server, and verifies the execution against the
paper's safety definition.

Run with::

    python examples/quickstart.py
"""

from repro import RegisterSystem
from repro.consistency import check_safety
from repro.sim.delays import UniformDelay


def main() -> None:
    # A register with 5 servers tolerating 1 Byzantine fault; server s002
    # answers every read with fabricated data under an inflated timestamp.
    system = RegisterSystem(
        "bsr", f=1, seed=2026,
        delay_model=UniformDelay(0.5, 2.0),   # asynchronous-ish network
        byzantine={2: "forge_tag"},
        initial_value=b"v0",
    )

    # Two writers and a reader, scheduled on the simulated clock.
    system.write(b"first-value", writer=0, at=0.0)
    system.write(b"second-value", writer=1, at=20.0)
    read = system.read(reader=0, at=40.0)

    trace = system.run()

    print("Execution:")
    print(trace.format())
    print()
    print(f"Read returned {read.value!r} "
          f"in {read.rounds} round ({read.latency:.2f}s simulated)")
    assert read.value == b"second-value", "the forged tag must not win"

    verdict = check_safety(trace, initial_value=b"v0")
    print(verdict)
    verdict.raise_if_violated()
    print("The lying server changed nothing: safety holds with one-shot reads.")


if __name__ == "__main__":
    main()
