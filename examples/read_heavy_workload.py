"""A TAO-style read-dominated workload across all register designs.

Facebook's TAO sees ~99.8 % reads (the paper's motivating footnote); this
example replays one identical 99.8 %-read schedule against every
implemented algorithm and prints the latency/round statistics, showing why
"semi-fast" (fast reads, slow writes) is the right asymmetry.

Run with::

    python examples/read_heavy_workload.py
"""

from repro import RegisterSystem
from repro.consistency import check_safety
from repro.metrics import format_table, summarize_trace
from repro.sim.delays import UniformDelay
from repro.sim.rng import SimRng
from repro.workloads import (
    TAO_READ_RATIO,
    WorkloadSpec,
    apply_schedule,
    generate_schedule,
)

ALGORITHMS = ("bsr", "bsr-history", "bsr-2round", "bcsr", "rb", "abd")


def main() -> None:
    spec = WorkloadSpec(
        num_ops=400, read_ratio=TAO_READ_RATIO, value_size=128,
        mean_interarrival=1.5, num_writers=2, num_readers=4,
    )
    schedule = generate_schedule(spec, SimRng(7, "tao"))
    reads = sum(1 for op in schedule if op.kind == "read")
    print(f"workload: {spec.num_ops} ops, {reads} reads "
          f"({reads / spec.num_ops:.1%}), exponential arrivals\n")

    rows = []
    for algorithm in ALGORITHMS:
        system = RegisterSystem(
            algorithm, f=1, seed=7, num_writers=2, num_readers=4,
            delay_model=UniformDelay(0.4, 1.2), initial_value=b"v0",
        )
        handles = apply_schedule(system, schedule)
        trace = system.run()
        assert all(handle.done for handle in handles)
        check_safety(trace, initial_value=b"v0").raise_if_violated()
        summary = summarize_trace(trace)
        read_stats = summary["read"].latency
        rows.append((
            algorithm, system.n,
            summary["read"].mean_rounds,
            read_stats.mean, read_stats.p99,
            summary["write"].latency.mean or 0.0,
        ))

    print(format_table(
        ("algorithm", "servers", "read rounds", "read mean(s)",
         "read p99(s)", "write mean(s)"),
        rows,
        title=f"{TAO_READ_RATIO:.1%}-read workload, per-algorithm latency",
    ))
    print("\nOne-shot-read designs (bsr, bsr-history, bcsr) pay one round "
          "per read; every")
    print("other design pays ~2x on the 99.8% path. The rb baseline "
          "matches on reads but")
    print("needs reliable broadcast (extra 1.5x) on every write and f "
          "fewer servers.")


if __name__ == "__main__":
    main()
