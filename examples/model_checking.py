"""Machine-checking the paper's resilience bound.

Theorem 5 proves by hand that no one-shot-read safe register exists on
``n = 4f`` servers.  This example lets the bounded model checker rediscover
that proof: it explores *every* read-stage delivery schedule of BSR for
every choice of write quorums, below and at the bound.

Run with::

    python examples/model_checking.py
"""

from repro.metrics import format_table
from repro.modelcheck import ModelChecker
from repro.modelcheck.scenarios import all_quorum_pairs, bsr_read_stage


def main() -> None:
    print("Scenario: W1(v1) and W2(v2) completed sequentially; their missed")
    print("PUT-DATA copies are still in flight; f=1 Byzantine server replays")
    print("stale state; the reader runs one one-shot read.\n")

    # Below the bound: hunt for violations over every quorum choice.
    rows = []
    example = None
    for w1, w2 in all_quorum_pairs(4, 1):
        factory, predicate = bsr_read_stage(4, 1, w1, w2)
        found = ModelChecker(factory, predicate,
                             max_states=100_000).find_violation()
        rows.append((str(w1), str(w2),
                     "VIOLATION FOUND" if found else "safe"))
        if found and example is None:
            example = (w1, w2, found)
    print(format_table(("W1 quorum", "W2 quorum", "n = 4f outcome"), rows,
                       title="n = 4 (below the bound)"))
    violating = sum(1 for row in rows if row[2] != "safe")
    print(f"\n{violating}/{len(rows)} quorum choices admit a violating "
          "schedule -- Theorem 5, rediscovered.\n")
    if example:
        w1, w2, (description, schedule) = example
        print(f"One machine-found counterexample (W1={w1}, W2={w2}):")
        print(f"  {description}")
        print(f"  schedule ({len(schedule)} deliveries): "
              f"{' '.join(schedule[:8])} ...")

    # At the bound: exhaustively verify a few representative quorum pairs.
    print("\nn = 5 (at the bound), exhaustive verification:")
    for w1, w2 in (((0, 1, 2, 3), (1, 2, 3, 4)),
                   ((1, 2, 3, 4), (0, 2, 3, 4))):
        factory, predicate = bsr_read_stage(5, 1, w1, w2)
        report = ModelChecker(factory, predicate,
                              max_states=300_000).verify(strict=True)
        print(f"  W1={w1} W2={w2}: {report}")
        assert report.ok
    print("\nNo schedule breaks safety at n = 4f + 1: the bound is tight.")


if __name__ == "__main__":
    main()
