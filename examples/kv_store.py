"""A sharded geo-replicated key-value store over TCP.

The paper motivates Byzantine-tolerant registers with geo-replicated
key-value storage (Cassandra, Redis -- Section I).  This example builds a
small KV store from the public API alone:

* keys are hashed onto shards;
* each shard is an independent BSR register cluster (5 asyncio TCP server
  nodes on localhost, 1 of them Byzantine-stale);
* ``put``/``get`` map to register writes and one-shot reads.

Run with::

    python examples/kv_store.py
"""

import asyncio
import hashlib
import json

from repro.runtime import LocalCluster

NUM_SHARDS = 3


class ShardedKVStore:
    """A toy strongly-consistent KV store: one BSR register per shard.

    Each shard cluster stores one register holding the JSON-serialized map
    of every key on that shard; ``put`` is a read-modify-write of the map
    and ``get`` is a one-shot read (a real store would run one register per
    key or a log -- a single map per shard keeps the demo small).
    """

    def __init__(self, num_shards: int = NUM_SHARDS) -> None:
        self._clusters = [
            LocalCluster("bsr", f=1, byzantine={1: "stale"},
                         secret=f"shard-{i}".encode())
            for i in range(num_shards)
        ]
        self._writers = []
        self._readers = []

    async def start(self) -> None:
        for i, cluster in enumerate(self._clusters):
            await cluster.start()
            writer = cluster.client(f"kvw{i}")
            reader = cluster.client(f"kvr{i}")
            await writer.connect()
            await reader.connect()
            self._writers.append(writer)
            self._readers.append(reader)

    async def stop(self) -> None:
        for cluster in self._clusters:
            await cluster.stop()

    def _shard_of(self, key: str) -> int:
        digest = hashlib.sha256(key.encode()).digest()
        return digest[0] % len(self._clusters)

    @staticmethod
    def _parse(record: bytes) -> dict:
        if not record:
            return {}
        return json.loads(record.decode())

    async def put(self, key: str, value: bytes) -> None:
        shard = self._shard_of(key)
        current = self._parse(await self._readers[shard].read())
        current[key] = value.hex()
        await self._writers[shard].write(json.dumps(current).encode())

    async def get(self, key: str) -> bytes:
        shard = self._shard_of(key)
        record = self._parse(await self._readers[shard].read())
        if key not in record:
            raise KeyError(key)
        return bytes.fromhex(record[key])


async def main() -> None:
    store = ShardedKVStore()
    await store.start()
    try:
        print(f"KV store up: {NUM_SHARDS} shards x 5 servers, "
              "1 Byzantine-stale server per shard\n")
        entries = {
            "user:42": b"alice",
            "session:9f": b"token-abcdef",
            "cart:42": b"widget,gadget",
        }
        for key, value in entries.items():
            await store.put(key, value)
            print(f"put {key!r} -> {value!r}  (shard {store._shard_of(key)})")
        print()
        for key, expected in entries.items():
            value = await store.get(key)
            status = "ok" if value == expected else "MISMATCH"
            print(f"get {key!r} -> {value!r}  [{status}]")
            assert value == expected
        print("\nAll reads returned the freshest value despite the stale "
              "Byzantine replica in every shard.")
    finally:
        await store.stop()


if __name__ == "__main__":
    asyncio.run(main())
