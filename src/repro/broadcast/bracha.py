"""Bracha's asynchronous reliable broadcast among servers.

Classic three-phase protocol [Bracha 1987] for ``n >= 3f + 1`` servers:

1. The source sends ``SEND(m)`` to every server.
2. On first ``SEND(m)``: broadcast ``ECHO(m)``.
3. On ``ceil((n + f + 1) / 2)`` ``ECHO(m)``: broadcast ``READY(m)``.
4. On ``f + 1`` ``READY(m)`` (amplification): broadcast ``READY(m)`` too.
5. On ``2f + 1`` ``READY(m)``: **deliver** ``m``.

Guarantees: if the source is correct every correct server delivers ``m``;
if any correct server delivers ``m`` every correct server eventually
delivers ``m`` (the "all or none" property); no two correct servers deliver
different messages for the same instance.

Counting rounds: SEND is the client's own round; ECHO and READY add the
"1.5 rounds" of extra latency the paper attributes to RB (two server-to-
server hops, overlapping in the optimistic case).

This module is deliberately *payload-agnostic*: each broadcast instance is
identified by an opaque key (source + operation id for register writes) and
tracks message counts per payload digest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.errors import ConfigurationError
from repro.types import ProcessId

#: Phases of the protocol, used as message markers by the register baseline.
SEND, ECHO, READY = "send", "echo", "ready"


def echo_threshold(n: int, f: int) -> int:
    """Echoes required before sending READY: ``ceil((n + f + 1) / 2)``."""
    return (n + f + 2) // 2


def ready_amplify_threshold(f: int) -> int:
    """Readies that trigger READY amplification: ``f + 1``."""
    return f + 1


def deliver_threshold(f: int) -> int:
    """Readies required to deliver: ``2f + 1``."""
    return 2 * f + 1


@dataclass
class BrachaState:
    """Per-(instance, server) protocol state."""

    sent_echo: bool = False
    sent_ready: bool = False
    delivered: bool = False
    #: payload -> set of servers whose ECHO we counted
    echoes: Dict[Any, Set[ProcessId]] = field(default_factory=dict)
    #: payload -> set of servers whose READY we counted
    readies: Dict[Any, Set[ProcessId]] = field(default_factory=dict)


class BrachaInstance:
    """One server's view of all broadcast instances it participates in.

    The register baseline drives this object: it feeds in SEND/ECHO/READY
    events and receives two kinds of outputs -- messages to broadcast to the
    other servers, and local deliveries.
    """

    def __init__(self, server_id: ProcessId, peers: List[ProcessId], f: int) -> None:
        n = len(peers)
        if n < 3 * f + 1:
            raise ConfigurationError(
                f"Bracha reliable broadcast requires n >= 3f + 1, got n={n}, f={f}"
            )
        if server_id not in peers:
            raise ConfigurationError("server must be among the peers")
        self.server_id = server_id
        self.peers = list(peers)
        self.n = n
        self.f = f
        self._instances: Dict[Any, BrachaState] = {}

    def _state(self, key: Any) -> BrachaState:
        if key not in self._instances:
            self._instances[key] = BrachaState()
        return self._instances[key]

    # Outputs: ("broadcast", phase, payload) to all peers, or
    #          ("deliver", payload) locally.
    def on_send(self, key: Any, payload: Any) -> List[Tuple[str, Any, Any]]:
        """Handle the source's SEND for instance ``key``."""
        state = self._state(key)
        if state.sent_echo:
            return []
        state.sent_echo = True
        return [("broadcast", ECHO, payload)]

    def on_echo(self, key: Any, payload: Any, sender: ProcessId) -> List[Tuple[str, Any, Any]]:
        """Handle a peer's ECHO; may trigger our READY."""
        state = self._state(key)
        state.echoes.setdefault(payload, set()).add(sender)
        outputs: List[Tuple[str, Any, Any]] = []
        if (not state.sent_ready
                and len(state.echoes[payload]) >= echo_threshold(self.n, self.f)):
            state.sent_ready = True
            outputs.append(("broadcast", READY, payload))
        return outputs

    def on_ready(self, key: Any, payload: Any, sender: ProcessId) -> List[Tuple[str, Any, Any]]:
        """Handle a peer's READY; may amplify and/or deliver."""
        state = self._state(key)
        state.readies.setdefault(payload, set()).add(sender)
        outputs: List[Tuple[str, Any, Any]] = []
        count = len(state.readies[payload])
        if not state.sent_ready and count >= ready_amplify_threshold(self.f):
            state.sent_ready = True
            outputs.append(("broadcast", READY, payload))
        if not state.delivered and count >= deliver_threshold(self.f):
            state.delivered = True
            outputs.append(("deliver", payload, None))
        return outputs

    def delivered(self, key: Any) -> bool:
        """Whether instance ``key`` has delivered at this server."""
        state = self._instances.get(key)
        return bool(state and state.delivered)
