"""Imbs-Raynal 2-step asynchronous reliable broadcast among servers.

Communication-optimal reliable broadcast [Imbs-Raynal 2015,
arXiv:1510.06882] trading resilience for a whole message step: it needs
``n >= 5f + 1`` servers but delivers after only two communication steps
(INIT then one wave of WITNESS), where Bracha's classic protocol needs
three (SEND, ECHO, READY) at ``n >= 3f + 1``.

1. The source sends ``INIT(m)`` to every server.
2. On first ``INIT(m)``: broadcast ``WITNESS(m)``.
3. On ``n - 2f`` ``WITNESS(m)`` from distinct servers: broadcast
   ``WITNESS(m)`` too, if not already done (amplification for servers the
   source never reached).
4. On ``n - f`` ``WITNESS(m)``: **deliver** ``m``.

Guarantees (for ``n >= 5f + 1``): if the source is correct every correct
server delivers ``m``; if any correct server delivers, every correct
server eventually delivers the same ``m``; no two correct servers deliver
different payloads for the same instance.

Like :mod:`repro.broadcast.bracha` this module is payload-agnostic: each
broadcast instance is an opaque key (source + operation id for register
writes) and counts come per payload value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Set, Tuple

from repro.errors import ConfigurationError
from repro.types import ProcessId

#: Phases of the protocol, used as message markers by the rb2 register.
INIT, WITNESS = "init", "witness"


def witness_amplify_threshold(n: int, f: int) -> int:
    """Witnesses that make a server witness too: ``n - 2f``.

    With ``n >= 5f + 1`` this exceeds ``3f``, so at least ``2f + 1``
    *correct* servers stand behind the payload -- more than the ``f``
    Byzantine servers could ever fake.
    """
    return n - 2 * f


def ir2_deliver_threshold(n: int, f: int) -> int:
    """Witnesses required to deliver: ``n - f``."""
    return n - f


@dataclass
class IR2State:
    """Per-(instance, server) protocol state."""

    sent_witness: bool = False
    delivered: bool = False
    #: payload -> set of servers whose WITNESS we counted
    witnesses: Dict[Any, Set[ProcessId]] = field(default_factory=dict)


class IR2Instance:
    """One server's view of all 2-step broadcast instances.

    Drop-in structural sibling of :class:`~repro.broadcast.bracha.
    BrachaInstance`: feed INIT/WITNESS events in, get ``("broadcast",
    phase, payload)`` and ``("deliver", payload, None)`` tuples out.
    """

    def __init__(self, server_id: ProcessId, peers: List[ProcessId],
                 f: int) -> None:
        n = len(peers)
        if n < 5 * f + 1:
            raise ConfigurationError(
                f"2-step reliable broadcast requires n >= 5f + 1, "
                f"got n={n}, f={f}"
            )
        if server_id not in peers:
            raise ConfigurationError("server must be among the peers")
        self.server_id = server_id
        self.peers = list(peers)
        self.n = n
        self.f = f
        self._instances: Dict[Any, IR2State] = {}

    def _state(self, key: Any) -> IR2State:
        if key not in self._instances:
            self._instances[key] = IR2State()
        return self._instances[key]

    # Outputs: ("broadcast", phase, payload) to all peers, or
    #          ("deliver", payload, None) locally.
    def on_init(self, key: Any, payload: Any) -> List[Tuple[str, Any, Any]]:
        """Handle the source's INIT for instance ``key``."""
        state = self._state(key)
        if state.sent_witness:
            return []
        state.sent_witness = True
        return [("broadcast", WITNESS, payload)]

    def on_witness(self, key: Any, payload: Any,
                   sender: ProcessId) -> List[Tuple[str, Any, Any]]:
        """Handle a peer's WITNESS; may amplify and/or deliver."""
        state = self._state(key)
        state.witnesses.setdefault(payload, set()).add(sender)
        outputs: List[Tuple[str, Any, Any]] = []
        count = len(state.witnesses[payload])
        if (not state.sent_witness
                and count >= witness_amplify_threshold(self.n, self.f)):
            state.sent_witness = True
            outputs.append(("broadcast", WITNESS, payload))
        if (not state.delivered
                and count >= ir2_deliver_threshold(self.n, self.f)):
            state.delivered = True
            outputs.append(("deliver", payload, None))
        return outputs

    def delivered(self, key: Any) -> bool:
        """Whether instance ``key`` has delivered at this server."""
        state = self._instances.get(key)
        return bool(state and state.delivered)
