"""Reliable broadcast -- the primitive the paper's algorithms avoid.

Provided so the repository can implement the *prior-work baselines* the
paper compares against (Section I-B): registers whose writes go through a
reliable broadcast, paying extra server-to-server communication per write.
Two broadcasts are available:

* :class:`BrachaInstance` -- Bracha's classic 3-step protocol at
  ``n >= 3f + 1`` (SEND / ECHO / READY).
* :class:`IR2Instance` -- the Imbs-Raynal 2-step protocol at
  ``n >= 5f + 1`` (INIT / WITNESS), one communication step cheaper.
"""

from repro.broadcast.bracha import BrachaInstance, BrachaState
from repro.broadcast.imbs_raynal import IR2Instance, IR2State

__all__ = ["BrachaInstance", "BrachaState", "IR2Instance", "IR2State"]
