"""Reliable broadcast (Bracha) -- the primitive the paper's algorithms avoid.

Provided so the repository can implement the *prior-work baseline* the paper
compares against (Section I-B): an ``n >= 3f + 1`` register whose writes go
through reliable broadcast, paying the extra ~1.5 rounds of server-to-server
communication per write.
"""

from repro.broadcast.bracha import BrachaInstance, BrachaState

__all__ = ["BrachaInstance", "BrachaState"]
