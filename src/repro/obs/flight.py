"""Bounded in-memory flight recorder for server-side span records.

Each node keeps the last ``capacity`` per-operation service records --
what phase a frame carried, how long it waited behind earlier frames in
the same burst, how long the protocol handler ran, and whether the
frame was served or shed -- in a ring buffer that costs two dict writes
and a deque append per sampled operation.  The records are scraped over
the wire (``TraceDump`` -> ``TraceAck``) and joined with client-side
``OpSpan`` records by :mod:`repro.obs.stitch` into one causal timeline
per operation.

Sampling is deterministic: an operation is recorded iff
``op_id % sample == 0``.  The client side uses the same predicate
(:class:`repro.obs.tracing.SamplingSink`), so client and servers always
sample the *same* operations and every sampled op can be stitched
end-to-end without coordination.

Timestamps are ``loop.time()`` instants (``time.monotonic`` --
CLOCK_MONOTONIC, which on Linux is system-wide since boot), so records
from different processes on the same host share one clock and align
absolutely; the stitcher falls back to duration-only rendering when
clocks are not comparable.

Like the rest of :mod:`repro.obs` this module imports nothing from the
rest of the repository.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Dict, List, Optional

__all__ = ["FlightRecorder"]

#: Default ring capacity (records, not operations: one record per
#: sampled frame a node serves).
DEFAULT_CAPACITY = 1024

#: Default sampling modulus: record one in 64 operations.
DEFAULT_SAMPLE = 64


class FlightRecorder:
    """Bounded ring of per-frame service records, scrapeable by op_id.

    ``sample == 0`` disables recording entirely (``wants`` is always
    false); ``sample == 1`` records every operation.  ``record`` accepts
    any dict -- by convention the node writes::

        {"op_id": int, "node": str, "phase": str, "recv": float,
         "queue_wait": float, "service": float,
         "verdict": "served" | "throttled", "repeat": bool}

    Mutation happens under a lock; the operations are a deque append and
    an int increment, so contention is negligible at frame rates, and
    ``dump`` snapshots the ring without blocking writers for long.
    """

    __slots__ = ("node_id", "capacity", "sample", "_records", "_total",
                 "_lock")

    def __init__(self, node_id: str = "", capacity: int = DEFAULT_CAPACITY,
                 sample: int = DEFAULT_SAMPLE) -> None:
        if capacity <= 0:
            raise ValueError("flight recorder capacity must be positive")
        if sample < 0:
            raise ValueError("sampling modulus must be >= 0")
        self.node_id = node_id
        self.capacity = capacity
        self.sample = sample
        self._records: deque = deque(maxlen=capacity)
        self._total = 0
        self._lock = threading.Lock()

    def wants(self, op_id) -> bool:
        """True when ``op_id`` falls in the deterministic sample."""
        return (self.sample > 0 and type(op_id) is int
                and op_id % self.sample == 0)

    def record(self, entry: Dict) -> None:
        """Retain one service record (evicting the oldest at capacity)."""
        with self._lock:
            self._records.append(entry)
            self._total += 1

    def dump(self, op_id: Optional[int] = None, limit: int = 0) -> List[Dict]:
        """Retained records, oldest first.

        ``op_id`` filters to one operation (``None`` or ``-1`` keeps
        all); ``limit > 0`` keeps only the *newest* that many records
        after filtering.
        """
        with self._lock:
            records = list(self._records)
        if op_id is not None and op_id >= 0:
            records = [r for r in records if r.get("op_id") == op_id]
        if limit > 0:
            records = records[-limit:]
        return records

    @property
    def total(self) -> int:
        """Records ever captured (including ones the ring evicted)."""
        return self._total

    def __len__(self) -> int:
        return len(self._records)

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
