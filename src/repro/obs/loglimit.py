"""Rate-limited warnings: a Byzantine peer must not own your log volume.

A node facing a peer that spews garbage frames would otherwise emit one
``logger.warning`` per frame -- megabytes a second of log I/O that is
itself a denial of service.  :class:`LogGate` wraps a logger with one
token bucket *per reason*: the first few warnings of each kind get
through (you still see that something is wrong and what), the flood is
swallowed, and every suppressed line is counted in the metric registry
(``log_suppressed_total{reason=...}``) so the volume of abuse stays
measurable even though it is no longer printed.

The bucket is self-contained (no import of :mod:`repro.runtime.limits`)
because the runtime imports this package -- observability sits below
everything else in the dependency order.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

from repro.obs.registry import MetricRegistry


class _Bucket:
    """Minimal refill-at-rate token bucket (monotonic clock)."""

    __slots__ = ("rate", "burst", "tokens", "last")

    def __init__(self, rate: float, burst: float, now: float) -> None:
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.last = now

    def allow(self, now: float) -> bool:
        self.tokens = min(self.burst,
                          self.tokens + (now - self.last) * self.rate)
        self.last = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class LogGate:
    """Per-reason rate limit in front of ``logger.warning``.

    ``rate`` warnings/second (burst ``burst``) pass through per reason;
    the rest increment ``log_suppressed_total{component=..., reason=...}``
    in ``registry``.  Suppression announces itself once per dry spell --
    the first swallowed line of a burst logs a single "suppressing
    further ..." marker so readers know the gate closed.
    """

    def __init__(self, logger, registry: Optional[MetricRegistry] = None,
                 component: str = "", rate: float = 1.0, burst: float = 5.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self._logger = logger
        self._registry = registry
        self.component = str(component)
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._buckets: Dict[str, _Bucket] = {}
        self._suppressing: Dict[str, bool] = {}

    def suppressed(self, reason: str) -> int:
        """How many warnings of ``reason`` were swallowed so far."""
        if self._registry is None:
            return 0
        return int(self._registry.counter_value(
            "log_suppressed_total", component=self.component, reason=reason))

    def warning(self, reason: str, message: str, *args) -> bool:
        """Log unless ``reason`` is over budget; returns True when logged."""
        now = self._clock()
        bucket = self._buckets.get(reason)
        if bucket is None:
            bucket = _Bucket(self.rate, self.burst, now)
            self._buckets[reason] = bucket
        if bucket.allow(now):
            self._suppressing[reason] = False
            self._logger.warning(message, *args)
            return True
        if not self._suppressing.get(reason):
            self._suppressing[reason] = True
            self._logger.warning(
                "%s: suppressing further %r warnings (rate limit %g/s; "
                "see log_suppressed_total)", self.component or "log",
                reason, self.rate)
        if self._registry is not None:
            self._registry.counter("log_suppressed_total",
                                   component=self.component,
                                   reason=reason).inc()
        return False
