"""Per-operation tracing: one span per client read/write.

A span records what the paper's round-trip claims are *about*: which
phases the operation ran (``get-tag`` then ``put-data`` for a write, a
single ``get-data`` round for a semi-fast read), how long each phase
took, how quickly each server answered, and the quorum-wait breakdown --
the time until ``f + 1`` distinct servers had replied (enough witnesses
to trust a value) versus the time until ``n - f`` had (enough replies to
decide).  Spans finish with an outcome: ``ok``, ``retried`` (a lost
link forced an in-flight re-send), ``throttled`` (a server shed a
frame), ``timeout`` (the liveness deadline expired) or ``error``.

Spans always feed the operation/phase histograms of a
:class:`~repro.obs.registry.MetricRegistry`; attaching a *sink*
additionally emits one structured JSON record per operation.  Sinks are
pluggable -- :class:`JsonlSink` appends lines to a file (the default
production choice), :class:`MemorySink` keeps records in a list for
tests, and anything with an ``emit(record: dict)`` method works.

The hot path is deliberately cheap -- a few clock reads and dict writes
per reply -- so tracing can stay on under benchmark load (the E17
overhead budget is 5%).
"""

from __future__ import annotations

import json
import threading
from typing import IO, Dict, List, Optional, Union

from repro.obs.registry import MetricRegistry


class NullSink:
    """Discard every record (tracing off, histograms still fed)."""

    def emit(self, record: Dict) -> None:
        pass

    def close(self) -> None:
        pass


class MemorySink:
    """Keep records in a list -- for tests and interactive inspection."""

    def __init__(self) -> None:
        self.records: List[Dict] = []

    def emit(self, record: Dict) -> None:
        self.records.append(record)

    def close(self) -> None:
        pass


class JsonlSink:
    """Append one JSON line per span to a file or writable stream.

    Writes are serialized under a lock so several clients (or threads)
    can share one sink; lines are flushed eagerly because trace files
    are most wanted exactly when the process dies unexpectedly.
    """

    def __init__(self, target: Union[str, IO[str]]) -> None:
        self._own = isinstance(target, str)
        self._fh = open(target, "a", encoding="utf-8") if self._own else target
        self._lock = threading.Lock()

    def emit(self, record: Dict) -> None:
        line = json.dumps(record, separators=(",", ":"), sort_keys=True)
        with self._lock:
            self._fh.write(line + "\n")
            self._fh.flush()

    def close(self) -> None:
        if self._own:
            self._fh.close()


class SamplingSink:
    """Keep one span record in ``sample`` by deterministic op_id modulus.

    The predicate (``op_id % sample == 0``) matches
    :meth:`repro.obs.flight.FlightRecorder.wants`, so a client tracing
    through a sampling sink and servers recording at the same modulus
    retain records for exactly the same operations -- every sampled op
    can be stitched end-to-end without any cross-process coordination.
    ``sample <= 1`` keeps everything.
    """

    def __init__(self, sink, sample: int = 64) -> None:
        if sample < 1:
            raise ValueError("sampling modulus must be >= 1")
        self.sink = sink
        self.sample = sample

    def emit(self, record: Dict) -> None:
        op_id = record.get("op_id")
        if self.sample <= 1 or (type(op_id) is int
                                and op_id % self.sample == 0):
            self.sink.emit(record)

    def close(self) -> None:
        self.sink.close()


class PhaseTimings:
    """Mutable per-phase accumulator inside a span."""

    __slots__ = ("name", "started", "ended", "replies", "witness_wait",
                 "quorum_wait")

    def __init__(self, name: str, started: float) -> None:
        self.name = name
        self.started = started
        self.ended: Optional[float] = None
        #: server id -> seconds from phase start to its first reply.
        self.replies: Dict[str, float] = {}
        self.witness_wait: Optional[float] = None
        self.quorum_wait: Optional[float] = None


class OpSpan:
    """One traced operation; create through :meth:`OpTracer.start`."""

    def __init__(self, tracer: "OpTracer", kind: str, op_id: int,
                 witness: int, quorum: int, started: float) -> None:
        self._tracer = tracer
        self.kind = kind
        self.op_id = op_id
        self.witness = witness
        self.quorum = quorum
        self.started = started
        self.phases: List[PhaseTimings] = []
        self.throttles = 0
        self.resends = 0
        self.finished = False

    # -- recording ---------------------------------------------------------
    def begin_phase(self, name: str, now: float) -> None:
        """Close the current phase (if any) and open ``name``."""
        if self.phases:
            self.phases[-1].ended = now
        self.phases.append(PhaseTimings(name, now))

    def record_reply(self, server: str, now: float) -> None:
        """Attribute one accepted reply to the current phase."""
        if not self.phases:
            return
        phase = self.phases[-1]
        server = str(server)
        if server in phase.replies:
            return  # duplicate (re-sent frame / Byzantine chatter)
        wait = now - phase.started
        phase.replies[server] = wait
        if len(phase.replies) == self.witness and phase.witness_wait is None:
            phase.witness_wait = wait
        if len(phase.replies) == self.quorum and phase.quorum_wait is None:
            phase.quorum_wait = wait

    def note_throttle(self) -> None:
        self.throttles += 1

    def note_resend(self, frames: int = 1) -> None:
        self.resends += frames

    # -- completion --------------------------------------------------------
    def finish(self, outcome: str, now: float) -> None:
        """Feed the histograms and emit the structured record (once)."""
        if self.finished:
            return
        self.finished = True
        if self.phases and self.phases[-1].ended is None:
            self.phases[-1].ended = now
        self._tracer._record(self, outcome, now)


class OpTracer:
    """Factory for :class:`OpSpan`; owns the registry and the sink.

    Spans may overlap: a multiplexed client runs many operations at
    once, each with its own span keyed by ``op_id``.  The tracer keeps
    the set of active (started, unfinished) spans and mirrors its size
    into the ``client_inflight_ops`` gauge, so scrapes show how deep the
    pipeline currently is.
    """

    def __init__(self, registry: MetricRegistry,
                 sink: Optional[object] = None,
                 client_id: str = "", algorithm: str = "") -> None:
        self.registry = registry
        self.sink = sink
        self.client_id = str(client_id)
        self.algorithm = algorithm
        #: Active spans by ``op_id`` (started but not yet finished).
        self._active: Dict[int, OpSpan] = {}
        self._inflight_gauge = registry.gauge("client_inflight_ops",
                                              client=self.client_id)
        #: Resolved-metric caches: every span finish records into the
        #: same handful of (kind, phase, outcome) metrics, and resolving
        #: them through the registry costs a lock and a label sort each
        #: time -- noticeable at thousands of ops per second.
        self._ops_counters: Dict = {}
        self._op_hists: Dict = {}
        self._phase_hists: Dict = {}
        self._wait_hists: Dict = {}
        self._server_hists: Dict = {}

    def start(self, kind: str, op_id: int, witness: int, quorum: int,
              now: float) -> OpSpan:
        span = OpSpan(self, kind, op_id, witness, quorum, now)
        self._active[op_id] = span
        self._inflight_gauge.set(len(self._active))
        return span

    def active(self) -> List[OpSpan]:
        """The currently in-flight spans (snapshot)."""
        return list(self._active.values())

    # -- internal ----------------------------------------------------------
    def _record(self, span: OpSpan, outcome: str, now: float) -> None:
        self._active.pop(span.op_id, None)
        self._inflight_gauge.set(len(self._active))
        latency = now - span.started
        registry = self.registry
        kind = span.kind
        counter = self._ops_counters.get((kind, outcome))
        if counter is None:
            counter = self._ops_counters[(kind, outcome)] = registry.counter(
                "client_ops_total", op=kind, outcome=outcome)
        counter.inc()
        op_hist = self._op_hists.get(kind)
        if op_hist is None:
            op_hist = self._op_hists[kind] = registry.histogram(
                "client_op_seconds", op=kind)
        op_hist.observe(latency)
        for phase in span.phases:
            duration = (phase.ended if phase.ended is not None
                        else now) - phase.started
            phase_hist = self._phase_hists.get((kind, phase.name))
            if phase_hist is None:
                phase_hist = self._phase_hists[(kind, phase.name)] = (
                    registry.histogram("client_phase_seconds", op=kind,
                                       phase=phase.name))
            phase_hist.observe(duration)
            if phase.witness_wait is not None:
                self._wait_hist(kind, "witness").observe(phase.witness_wait)
            if phase.quorum_wait is not None:
                self._wait_hist(kind, "quorum").observe(phase.quorum_wait)
            for server, wait in phase.replies.items():
                server_hist = self._server_hists.get(server)
                if server_hist is None:
                    server_hist = self._server_hists[server] = (
                        registry.histogram("client_server_reply_seconds",
                                           server=server))
                server_hist.observe(wait)
        if self.sink is not None:
            self.sink.emit(self._render(span, outcome, latency, now))

    def _wait_hist(self, kind: str, stage: str):
        hist = self._wait_hists.get((kind, stage))
        if hist is None:
            hist = self._wait_hists[(kind, stage)] = self.registry.histogram(
                "client_quorum_wait_seconds", op=kind, stage=stage)
        return hist

    def _render(self, span: OpSpan, outcome: str, latency: float,
                now: float) -> Dict:
        return {
            "ts": now,
            "client": self.client_id,
            "algorithm": self.algorithm,
            "kind": span.kind,
            "op_id": span.op_id,
            "outcome": outcome,
            "latency": latency,
            "throttles": span.throttles,
            "resends": span.resends,
            # Operations still in flight when this one finished (pipeline
            # depth at completion time).
            "inflight": len(self._active),
            "phases": [
                {
                    "phase": phase.name,
                    "duration": ((phase.ended if phase.ended is not None
                                  else now) - phase.started),
                    "witness_wait": phase.witness_wait,
                    "quorum_wait": phase.quorum_wait,
                    "replies": dict(phase.replies),
                }
                for phase in span.phases
            ],
        }


#: Request message type -> protocol phase, shared by the client (naming
#: its rounds) and the node (bucketing its per-frame service times), so
#: client-side and server-side histograms line up phase for phase.  The
#: protocol registry merges each registered protocol's message vocabulary
#: into this dict (the node keeps a reference, so updates are live).
PHASE_BY_MESSAGE = {
    "QueryTag": "get-tag",
    "PutData": "put-data",
    "QueryData": "get-data",
}

#: algorithm -> {"write": {round: phase}, "read": {round: phase}},
#: populated by :func:`register_phase_names` as protocols register.
_ROUND_PHASES: dict = {}

#: Fallbacks for rounds no protocol named explicitly: the get-tag /
#: put-data write shape and one-shot get-data reads are the lingua
#: franca of every register here.
_DEFAULT_PHASES = {
    "write": {1: "get-tag", 2: "put-data"},
    "read": {1: "get-data"},
}


def register_phase_names(algorithm: str, write_phases, read_phases,
                         message_phases=None) -> None:
    """Teach the tracer a protocol's phase vocabulary.

    Called by the protocol registry at registration time, keeping this
    module free of per-algorithm knowledge: ``write_phases`` and
    ``read_phases`` map round numbers to phase names for the client
    side, ``message_phases`` maps request type names to phases for the
    server side (merged into :data:`PHASE_BY_MESSAGE`).
    """
    _ROUND_PHASES[algorithm] = {
        "write": dict(write_phases or {}),
        "read": dict(read_phases or {}),
    }
    PHASE_BY_MESSAGE.update(message_phases or {})


def phase_name(kind: str, round_number: int, algorithm: str = "") -> str:
    """Human name of a client round (``get-tag``, ``put-data``, ...)."""
    if algorithm and not _ROUND_PHASES:
        # Lazily pull in the registrations; importing the registry from
        # here at module load would be circular.
        import repro.protocols  # noqa: F401
    table = _ROUND_PHASES.get(algorithm, _DEFAULT_PHASES)
    name = table.get(kind, {}).get(round_number)
    if name is None:
        name = _DEFAULT_PHASES.get(kind, {}).get(round_number)
    return name if name is not None else f"round-{round_number}"
