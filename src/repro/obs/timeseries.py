"""Append-only JSON-lines log of registry snapshots.

The minimal metrics sidecar: one line per scrape, each a self-contained
``{"ts": <unix seconds>, "snapshot": <MetricRegistry.snapshot()>}``
document.  ``repro metrics dump --watch`` appends one line per interval
while a cluster serves, and the load rig's coordinator appends every
worker snapshot it receives over the IPC pipe -- either way the result
is a replayable time series a notebook (or a later Prometheus importer)
can walk without holding the whole run in memory.

Two optional behaviours turn the sidecar into a long-run artifact:

* **Rotation** (``max_bytes``): when a path-backed log would grow past
  the limit, the active file rolls to ``<path>.1`` (older segments
  shifting to ``.2`` ... ``.keep``, the oldest dropped), so a
  ``--watch`` loop can run for days bounded at roughly
  ``(keep + 1) * max_bytes``.  :func:`read_snapshot_log` and
  :func:`iter_snapshot_log` transparently read across segments, oldest
  first.

* **Windows** (``windows=True``): each appended record additionally
  carries the per-window histogram *deltas* since the previous append
  of the same series (series = the ``extra`` labels, so interleaved
  per-worker appends each get their own baseline).  Deltas store raw
  bucket counts -- cheap to write, exact to merge -- and the percentile
  summaries (p50/p99/p999) are computed at *read* time by
  ``read_snapshot_log(..., windows=True)``.  A cumulative counter
  reset (process restart) makes the deltas negative; the window adopts
  the fresh cumulative counts instead, mirroring Prometheus ``rate()``
  semantics.
"""

from __future__ import annotations

import json
import os
from typing import IO, Dict, Iterator, List, Optional, Tuple, Union

from repro.obs.stats import bucket_percentile


def _series_key(extra: Optional[Dict]) -> Tuple:
    return tuple(sorted((str(k), str(v)) for k, v in (extra or {}).items()))


def _hist_key(entry: Dict) -> Tuple:
    return (entry["name"],
            tuple(sorted((str(k), str(v))
                         for k, v in entry.get("labels", {}).items())))


class SnapshotLog:
    """Writer for a snapshot time-series file (JSON lines, append mode).

    Accepts a path (opened in append mode, so successive runs extend the
    series) or an already-open text stream (left open on :meth:`close`,
    so ``stdout`` works).  Every :meth:`append` is one flushed line --
    a crashed run keeps every snapshot recorded before the crash.

    ``max_bytes`` enables size-based rotation and requires a path
    target (a stream cannot be rolled).  ``windows`` adds per-append
    histogram deltas (see the module docstring).
    """

    def __init__(self, target: Union[str, IO[str]],
                 max_bytes: Optional[int] = None, keep: int = 4,
                 windows: bool = False) -> None:
        if isinstance(target, str):
            self._path: Optional[str] = target
            self._fh: IO[str] = open(target, "a", encoding="utf-8")
            self._owns = True
            self._size = self._fh.tell()
        else:
            if max_bytes is not None:
                raise ValueError("rotation requires a path target")
            self._path = None
            self._fh = target
            self._owns = False
            self._size = 0
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        if keep < 1:
            raise ValueError("must keep at least one rolled segment")
        self.max_bytes = max_bytes
        self.keep = keep
        self.windows = windows
        #: series key -> histogram key -> (cumulative counts, sum).
        self._prev: Dict[Tuple, Dict[Tuple, Tuple[List[int], float]]] = {}
        self.lines = 0

    def append(self, snapshot: Dict, ts: float,
               extra: Optional[Dict] = None) -> None:
        """Write one ``{"ts", "snapshot", **extra}`` line, flushed."""
        record: Dict = {"ts": ts, "snapshot": snapshot}
        if extra:
            record.update(extra)
        if self.windows:
            deltas = self._window_deltas(snapshot, extra)
            if deltas:
                record["window"] = {"histograms": deltas}
        data = json.dumps(record, separators=(",", ":"),
                          sort_keys=True) + "\n"
        if (self.max_bytes is not None and self._size > 0
                and self._size + len(data) > self.max_bytes):
            self._rotate()
        self._fh.write(data)
        self._fh.flush()
        self._size += len(data)
        self.lines += 1

    def _window_deltas(self, snapshot: Dict,
                       extra: Optional[Dict]) -> List[Dict]:
        prev = self._prev.setdefault(_series_key(extra), {})
        deltas: List[Dict] = []
        for entry in snapshot.get("histograms", ()):
            key = _hist_key(entry)
            counts = [int(c) for c in entry["counts"]]
            total = float(entry["sum"])
            last = prev.get(key)
            prev[key] = (counts, total)
            if (last is None or len(last[0]) != len(counts)
                    or any(c < p for c, p in zip(counts, last[0]))):
                # First sight of the series, or a cumulative reset
                # (restarted process): the window is the fresh totals.
                window_counts, window_sum = counts, total
            else:
                window_counts = [c - p for c, p in zip(counts, last[0])]
                window_sum = total - last[1]
            if not sum(window_counts):
                continue
            deltas.append({
                "name": entry["name"],
                "labels": dict(entry.get("labels", {})),
                "buckets": list(entry["buckets"]),
                "counts": window_counts,
                "sum": window_sum,
                # Cumulative max: an upper bound on the window max,
                # used only to clamp the overflow-bucket percentile.
                "max": float(entry.get("max", 0.0)),
            })
        return deltas

    def _rotate(self) -> None:
        assert self._path is not None
        self._fh.close()
        oldest = f"{self._path}.{self.keep}"
        if os.path.exists(oldest):
            os.unlink(oldest)
        for n in range(self.keep - 1, 0, -1):
            src = f"{self._path}.{n}"
            if os.path.exists(src):
                os.replace(src, f"{self._path}.{n + 1}")
        os.replace(self._path, f"{self._path}.1")
        self._fh = open(self._path, "a", encoding="utf-8")
        self._size = 0

    def close(self) -> None:
        if self._owns:
            self._fh.close()

    def __enter__(self) -> "SnapshotLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def window_summary(entry: Dict) -> Dict:
    """p50/p99/p999 summary of one stored window-delta entry."""
    counts = entry["counts"]
    bounds = entry["buckets"]
    count = sum(counts)
    maximum = float(entry.get("max") or (bounds[-1] if bounds else 0.0))
    return {
        "count": count,
        "mean": (entry["sum"] / count) if count else 0.0,
        "p50": bucket_percentile(bounds, counts, 0.50, maximum),
        "p99": bucket_percentile(bounds, counts, 0.99, maximum),
        "p999": bucket_percentile(bounds, counts, 0.999, maximum),
    }


def read_snapshot_log(path: str, windows: bool = False) -> List[Dict]:
    """Parse every line of a snapshot log (blank lines skipped).

    Reads across rotation segments (``path.N`` oldest-first, then the
    active file).  With ``windows=True``, every stored window-delta
    histogram gains a ``"summary"`` dict (count/mean/p50/p99/p999)
    computed from its bucket deltas.
    """
    return list(iter_snapshot_log(path, windows=windows))


def iter_snapshot_log(path: str, windows: bool = False) -> Iterator[Dict]:
    """Yield each record of a snapshot log without loading the file."""
    for segment in _segments(path):
        with open(segment, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                if windows:
                    for entry in record.get("window", {}).get(
                            "histograms", ()):
                        entry["summary"] = window_summary(entry)
                yield record


def _segments(path: str) -> List[str]:
    """Files making up one logical log: rolled segments oldest first."""
    rolled: List[str] = []
    n = 1
    while os.path.exists(f"{path}.{n}"):
        rolled.append(f"{path}.{n}")
        n += 1
    ordered = list(reversed(rolled))
    if os.path.exists(path):
        ordered.append(path)
    return ordered
