"""Append-only JSON-lines log of registry snapshots.

The minimal metrics sidecar: one line per scrape, each a self-contained
``{"ts": <unix seconds>, "snapshot": <MetricRegistry.snapshot()>}``
document.  ``repro metrics dump --watch`` appends one line per interval
while a cluster serves, and the load rig's coordinator appends every
worker snapshot it receives over the IPC pipe -- either way the result
is a replayable time series a notebook (or a later Prometheus importer)
can walk without holding the whole run in memory.
"""

from __future__ import annotations

import json
from typing import IO, Dict, Iterator, List, Optional, Union


class SnapshotLog:
    """Writer for a snapshot time-series file (JSON lines, append mode).

    Accepts a path (opened in append mode, so successive runs extend the
    series) or an already-open text stream (left open on :meth:`close`,
    so ``stdout`` works).  Every :meth:`append` is one flushed line --
    a crashed run keeps every snapshot recorded before the crash.
    """

    def __init__(self, target: Union[str, IO[str]]) -> None:
        if isinstance(target, str):
            self._fh: IO[str] = open(target, "a", encoding="utf-8")
            self._owns = True
        else:
            self._fh = target
            self._owns = False
        self.lines = 0

    def append(self, snapshot: Dict, ts: float,
               extra: Optional[Dict] = None) -> None:
        """Write one ``{"ts", "snapshot", **extra}`` line, flushed."""
        record: Dict = {"ts": ts, "snapshot": snapshot}
        if extra:
            record.update(extra)
        self._fh.write(json.dumps(record, separators=(",", ":"),
                                  sort_keys=True) + "\n")
        self._fh.flush()
        self.lines += 1

    def close(self) -> None:
        if self._owns:
            self._fh.close()

    def __enter__(self) -> "SnapshotLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_snapshot_log(path: str) -> List[Dict]:
    """Parse every line of a snapshot log (blank lines skipped)."""
    return list(iter_snapshot_log(path))


def iter_snapshot_log(path: str) -> Iterator[Dict]:
    """Yield each record of a snapshot log without loading the file."""
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                yield json.loads(line)
