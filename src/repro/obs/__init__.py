"""Runtime observability: metrics, tracing, stitching, export, flood control.

The paper's headline numbers are *round-trip counts* -- one-round BSR
reads versus two-round writes (``get-tag`` + ``put-data``), one-shot
coded BCSR reads -- and this package is how the live runtime shows them:

* :class:`MetricRegistry` -- thread/asyncio-safe counters, gauges and
  fixed-bucket histograms, snapshotting to plain JSON (the ``StatsPing``
  scrape payload) and Prometheus text exposition.  Histogram snapshots
  summarize to the same :class:`LatencySummary` the simulator's trace
  metrics use, so simulated and live numbers render through one path.
* :class:`OpTracer` / :class:`OpSpan` -- per-operation spans with
  per-phase timing, per-server reply latency and the quorum-wait
  breakdown (time to ``f + 1`` witnesses vs ``n - f`` replies), emitted
  as JSONL through pluggable sinks (:class:`SamplingSink` thins them by
  deterministic op_id modulus).
* :class:`FlightRecorder` / :mod:`repro.obs.stitch` -- the server-side
  halves of those spans (recv/queue/service per frame, scraped over
  ``TraceDump``) and the joiner that stitches both sides into one
  causal timeline per operation.
* :class:`MetricsExporter` -- a stdlib HTTP sidecar serving merged
  Prometheus text (``/metrics``), JSON snapshots and per-op traces.
* :class:`SnapshotLog` -- the JSONL time-series sidecar, with
  size-based rotation and per-window percentile deltas.
* :class:`LogGate` -- per-reason rate limiting on warnings so a
  Byzantine peer cannot turn logging into a denial of service.
* :mod:`repro.obs.stats` -- the single nearest-rank percentile
  implementation everything summarizes with.

The package imports nothing from the rest of the repository (except its
own modules), so every layer -- transport, runtime, chaos, deploy -- can
depend on it without cycles.
"""

from repro.obs.flight import FlightRecorder
from repro.obs.httpd import MetricsExporter
from repro.obs.loglimit import LogGate
from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    aggregate_histograms,
    merge_registry_snapshots,
    merge_snapshots,
    render_prometheus,
    summarize_histogram_snapshot,
)
from repro.obs.stats import (
    LatencySummary,
    bucket_percentile,
    nearest_rank,
    percentile,
    summarize_buckets,
    summarize_latencies,
)
from repro.obs.stitch import (
    StitchedOp,
    format_timeline,
    slowest,
    stitch,
    stitch_op,
)
from repro.obs.timeseries import (
    SnapshotLog,
    iter_snapshot_log,
    read_snapshot_log,
    window_summary,
)
from repro.obs.tracing import (
    PHASE_BY_MESSAGE,
    JsonlSink,
    MemorySink,
    NullSink,
    OpSpan,
    OpTracer,
    SamplingSink,
    phase_name,
    register_phase_names,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "LatencySummary",
    "LogGate",
    "MemorySink",
    "MetricRegistry",
    "MetricsExporter",
    "NullSink",
    "OpSpan",
    "OpTracer",
    "PHASE_BY_MESSAGE",
    "SamplingSink",
    "register_phase_names",
    "SnapshotLog",
    "StitchedOp",
    "aggregate_histograms",
    "bucket_percentile",
    "format_timeline",
    "iter_snapshot_log",
    "merge_registry_snapshots",
    "merge_snapshots",
    "nearest_rank",
    "percentile",
    "phase_name",
    "read_snapshot_log",
    "render_prometheus",
    "slowest",
    "stitch",
    "stitch_op",
    "summarize_buckets",
    "summarize_histogram_snapshot",
    "summarize_latencies",
    "window_summary",
]
