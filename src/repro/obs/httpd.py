"""Stdlib HTTP exporter: Prometheus text and stitched traces over HTTP.

:class:`MetricsExporter` binds a ``ThreadingHTTPServer`` on a
background daemon thread and serves four endpoints:

========================  ===================================================
``/metrics``              Prometheus text exposition, merged across every
                          snapshot the ``scrape`` callback returns.
``/metrics.json``         The same merged snapshot as plain JSON.
``/traces/<op_id>``       JSON flight/span records for one operation via the
                          ``trace_lookup`` callback (404 when absent).
``/healthz``              ``ok`` once the server is up (a liveness probe for
                          the sidecar itself, not the cluster).
========================  ===================================================

The exporter knows nothing about nodes or wires: ``scrape`` is a
synchronous callable returning a list of registry-snapshot dicts (the
deploy layer wraps its StatsPing fan-out in ``asyncio.run``; a local
process just returns ``[registry.snapshot()]``), and ``trace_lookup``
maps an op_id to a JSON-serializable object or ``None``.  Handler
threads call them directly, so a slow scrape slows that one request,
never the cluster.

Like the rest of :mod:`repro.obs` this module imports nothing from the
rest of the repository.
"""

from __future__ import annotations

import json
import logging
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, List, Optional, Tuple

from repro.obs.registry import merge_snapshots, render_prometheus

__all__ = ["MetricsExporter"]

log = logging.getLogger(__name__)

#: Content type mandated by the Prometheus text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class MetricsExporter:
    """Background HTTP endpoint over pluggable scrape/trace callbacks.

    ``port=0`` binds an ephemeral port; :meth:`start` returns the
    resolved ``(host, port)``.  :meth:`stop` shuts the server down and
    joins the thread -- safe to call more than once.
    """

    def __init__(self, scrape: Callable[[], List[dict]],
                 trace_lookup: Optional[Callable[[int], object]] = None,
                 host: str = "127.0.0.1", port: int = 0,
                 namespace: str = "repro") -> None:
        self.scrape = scrape
        self.trace_lookup = trace_lookup
        self.host = host
        self.port = port
        self.namespace = namespace
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> Tuple[str, int]:
        """Bind and serve on a daemon thread; returns ``(host, port)``."""
        if self._server is not None:
            return self.host, self.port
        handler = _make_handler(self)
        self._server = ThreadingHTTPServer((self.host, self.port), handler)
        self._server.daemon_threads = True
        self.host, self.port = self._server.server_address[:2]
        self._thread = threading.Thread(target=self._server.serve_forever,
                                        name="metrics-exporter", daemon=True)
        self._thread.start()
        return self.host, self.port

    def stop(self) -> None:
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._server = None
        self._thread = None

    @property
    def address(self) -> Tuple[str, int]:
        return self.host, self.port

    def __enter__(self) -> "MetricsExporter":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- endpoint bodies (shared by the handler) ---------------------------
    def merged_snapshot(self) -> dict:
        snapshots = self.scrape() or []
        return merge_snapshots(snapshots, namespace=self.namespace)


def _make_handler(exporter: MetricsExporter):
    class Handler(BaseHTTPRequestHandler):
        # One exporter instance per handler class; closures keep the
        # stdlib's handler-per-request model out of the exporter API.

        def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
            try:
                self._route()
            except (BrokenPipeError, ConnectionResetError):
                pass  # client went away mid-reply
            except Exception as exc:  # scrape/lookup failures -> 500
                log.debug("exporter request failed: %s", exc)
                try:
                    self._send(500, "text/plain; charset=utf-8",
                               f"error: {exc}\n".encode())
                except OSError:
                    pass

        def _route(self) -> None:
            path = self.path.split("?", 1)[0]
            if path == "/metrics":
                body = render_prometheus(exporter.merged_snapshot())
                self._send(200, PROMETHEUS_CONTENT_TYPE, body.encode())
            elif path == "/metrics.json":
                body = json.dumps(exporter.merged_snapshot(),
                                  separators=(",", ":"), sort_keys=True)
                self._send(200, "application/json", body.encode())
            elif path == "/healthz":
                self._send(200, "text/plain; charset=utf-8", b"ok\n")
            elif path.startswith("/traces/"):
                self._trace(path[len("/traces/"):])
            else:
                self._send(404, "text/plain; charset=utf-8",
                           b"not found\n")

        def _trace(self, raw: str) -> None:
            if exporter.trace_lookup is None:
                self._send(404, "text/plain; charset=utf-8",
                           b"trace lookup not configured\n")
                return
            try:
                op_id = int(raw)
            except ValueError:
                self._send(400, "text/plain; charset=utf-8",
                           b"op_id must be an integer\n")
                return
            found = exporter.trace_lookup(op_id)
            if not found:
                self._send(404, "text/plain; charset=utf-8",
                           f"no records for op {op_id}\n".encode())
                return
            body = json.dumps(found, separators=(",", ":"), sort_keys=True)
            self._send(200, "application/json", body.encode())

        def _send(self, status: int, content_type: str,
                  body: bytes) -> None:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, fmt: str, *args) -> None:
            log.debug("exporter: " + fmt, *args)

    return Handler
