"""A thread/asyncio-safe metric registry for the live runtime.

Every live component (client, node, proxy, nemesis, supervisor) records
its counters, gauges and fixed-bucket histograms into a
:class:`MetricRegistry`.  A registry serializes to a plain-JSON snapshot
(the :class:`~repro.core.messages.StatsAck` payload nodes answer scrapes
with) and renders to Prometheus text exposition; histogram snapshots
summarize to the same :class:`~repro.obs.stats.LatencySummary` the
simulator's trace metrics use, so live and simulated numbers flow
through one report path.

Metrics are identified by ``(name, labels)``.  Registration is
idempotent: asking for an existing metric returns it, so call sites can
``registry.counter("frames_total", node="s000").inc()`` on the hot path
-- though components that care pre-resolve their metrics once.  All
mutation happens under a per-registry lock; the operations are tiny
(float adds, one bisect for histograms), so contention is negligible at
the runtime's frame rates.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.stats import LatencySummary, summarize_buckets

#: Default histogram bounds (seconds): sub-millisecond to tens of seconds,
#: roughly logarithmic -- sized for op/phase latencies on localhost and
#: LAN deployments alike.  A final overflow bucket is implicit.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

LabelPairs = Tuple[Tuple[str, str], ...]


def _label_pairs(labels: Dict[str, str]) -> LabelPairs:
    if len(labels) < 2:
        # Hot path: most metrics carry zero or one label, where sorting
        # is a no-op by definition.
        return tuple((str(k), str(v)) for k, v in labels.items())
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format.

    Backslash, double quote and newline are the three characters the
    format requires escaping inside quoted label values; anything else
    passes through verbatim.  Hostile register names (a key is
    client-chosen) surface in per-key table metrics, so this is a
    correctness fix, not cosmetics.
    """
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _render_labels(pairs: LabelPairs, extra: str = "") -> str:
    parts = [f'{key}="{_escape_label_value(value)}"' for key, value in pairs]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: LabelPairs,
                 lock: threading.Lock) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = lock

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that can go up and down (live connections, queue depth)."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: LabelPairs,
                 lock: threading.Lock) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = lock

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket histogram with exact count/sum/min/max.

    ``bounds`` are inclusive upper bucket edges; observations above the
    last bound land in an implicit overflow bucket whose percentile
    estimate is the exact observed maximum.
    """

    __slots__ = ("name", "labels", "bounds", "_counts", "_count", "_sum",
                 "_min", "_max", "_lock")

    def __init__(self, name: str, labels: LabelPairs,
                 bounds: Sequence[float], lock: threading.Lock) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be ascending and non-empty")
        self.name = name
        self.labels = labels
        self.bounds = tuple(float(b) for b in bounds)
        self._counts = [0] * (len(self.bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = 0.0
        self._max = 0.0
        self._lock = lock

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._counts[bisect_left(self.bounds, value)] += 1
            self._count += 1
            self._sum += value
            if self._count == 1 or value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    def summary(self) -> LatencySummary:
        """A :class:`LatencySummary` estimated from the buckets."""
        with self._lock:
            return summarize_buckets(self.bounds, self._counts, self._sum,
                                     self._min, self._max)

    def snapshot(self) -> Dict:
        with self._lock:
            return {
                "buckets": list(self.bounds),
                "counts": list(self._counts),
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
            }


class MetricRegistry:
    """Create-once, mutate-often store of counters, gauges and histograms."""

    def __init__(self, namespace: str = "repro") -> None:
        self.namespace = namespace
        self._lock = threading.Lock()
        self._counters: Dict[Tuple[str, LabelPairs], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelPairs], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelPairs], Histogram] = {}

    # -- registration ------------------------------------------------------
    def counter(self, name: str, **labels: str) -> Counter:
        key = (name, _label_pairs(labels))
        with self._lock:
            metric = self._counters.get(key)
            if metric is None:
                metric = Counter(name, key[1], self._lock)
                self._counters[key] = metric
            return metric

    def gauge(self, name: str, **labels: str) -> Gauge:
        key = (name, _label_pairs(labels))
        with self._lock:
            metric = self._gauges.get(key)
            if metric is None:
                metric = Gauge(name, key[1], self._lock)
                self._gauges[key] = metric
            return metric

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
                  **labels: str) -> Histogram:
        key = (name, _label_pairs(labels))
        with self._lock:
            metric = self._histograms.get(key)
            if metric is None:
                metric = Histogram(name, key[1], buckets, self._lock)
                self._histograms[key] = metric
            return metric

    # -- read access -------------------------------------------------------
    def counter_value(self, name: str, **labels: str) -> float:
        """Current value, 0.0 when the counter was never created."""
        metric = self._counters.get((name, _label_pairs(labels)))
        return metric.value if metric is not None else 0.0

    def sum_counters(self, name: str) -> float:
        """Sum of ``name`` across every label set."""
        return sum(metric.value for (n, _), metric in self._counters.items()
                   if n == name)

    def histograms_named(self, name: str) -> List[Histogram]:
        """Every histogram registered under ``name`` (any labels)."""
        return [metric for (n, _), metric in self._histograms.items()
                if n == name]

    # -- exposition --------------------------------------------------------
    def snapshot(self) -> Dict:
        """Plain-JSON rendering of every metric (the scrape payload)."""
        with self._lock:
            counters = [
                {"name": name, "labels": dict(pairs), "value": metric._value}
                for (name, pairs), metric in sorted(self._counters.items())
            ]
            gauges = [
                {"name": name, "labels": dict(pairs), "value": metric._value}
                for (name, pairs), metric in sorted(self._gauges.items())
            ]
            histograms = [
                {
                    "name": name,
                    "labels": dict(pairs),
                    "buckets": list(metric.bounds),
                    "counts": list(metric._counts),
                    "sum": metric._sum,
                    "min": metric._min,
                    "max": metric._max,
                }
                for (name, pairs), metric in sorted(self._histograms.items())
            ]
        return {"namespace": self.namespace, "counters": counters,
                "gauges": gauges, "histograms": histograms}

    def to_prometheus(self) -> str:
        """Prometheus text exposition of the whole registry."""
        return render_prometheus(self.snapshot())


def summarize_histogram_snapshot(entry: Dict) -> LatencySummary:
    """A :class:`LatencySummary` from one snapshot histogram entry."""
    return summarize_buckets(entry["buckets"], entry["counts"], entry["sum"],
                             entry["min"], entry["max"])


def merge_snapshots(snapshots: Iterable[Dict],
                    namespace: str = "repro") -> Dict:
    """Concatenate several snapshots into one document.

    Entries are kept verbatim -- scraped components already distinguish
    themselves through labels (``node=...``, ``client=...``), so merging
    is pure concatenation, not aggregation.
    """
    merged = {"namespace": namespace, "counters": [], "gauges": [],
              "histograms": []}
    for snapshot in snapshots:
        for kind in ("counters", "gauges", "histograms"):
            merged[kind].extend(snapshot.get(kind, ()))
    return merged


def merge_registry_snapshots(snapshots: Iterable[Dict],
                             namespace: str = "repro") -> Dict:
    """*Aggregate* several snapshots into one (same-metric entries fold).

    Unlike :func:`merge_snapshots` (pure concatenation for components
    that already distinguish themselves by label), this is the merge the
    load rig's coordinator applies to per-worker registries shipped over
    IPC: entries with the same ``(name, labels)`` are combined --
    counters and gauges sum, histograms add bucket-wise (their bounds
    must agree; mismatched bounds raise ``ValueError`` rather than
    silently mixing scales).  Min/max/sum stay exact across the fold, so
    a percentile computed from the merged histogram equals one computed
    from a single registry that had observed every worker's samples.
    """
    counters: Dict[Tuple[str, LabelPairs], float] = {}
    gauges: Dict[Tuple[str, LabelPairs], float] = {}
    histograms: Dict[Tuple[str, LabelPairs], Dict] = {}
    for snapshot in snapshots:
        for entry in snapshot.get("counters", ()):
            key = (entry["name"], _label_pairs(entry.get("labels", {})))
            counters[key] = counters.get(key, 0.0) + float(entry["value"])
        for entry in snapshot.get("gauges", ()):
            key = (entry["name"], _label_pairs(entry.get("labels", {})))
            gauges[key] = gauges.get(key, 0.0) + float(entry["value"])
        for entry in snapshot.get("histograms", ()):
            key = (entry["name"], _label_pairs(entry.get("labels", {})))
            merged = histograms.get(key)
            if merged is None:
                histograms[key] = {
                    "buckets": list(entry["buckets"]),
                    "counts": list(entry["counts"]),
                    "sum": float(entry["sum"]),
                    "min": entry["min"],
                    "max": entry["max"],
                }
                continue
            if list(entry["buckets"]) != merged["buckets"]:
                raise ValueError(
                    f"histogram {entry['name']!r} bucket bounds differ "
                    f"across snapshots; cannot merge")
            merged["counts"] = [a + b for a, b in
                                zip(merged["counts"], entry["counts"])]
            merged["sum"] += float(entry["sum"])
            if sum(entry["counts"]):
                if sum(merged["counts"]) == sum(entry["counts"]):
                    # The accumulator was empty so far: adopt the
                    # entry's extrema instead of comparing with zeros.
                    merged["min"], merged["max"] = entry["min"], entry["max"]
                else:
                    merged["min"] = min(merged["min"], entry["min"])
                    merged["max"] = max(merged["max"], entry["max"])
    return {
        "namespace": namespace,
        "counters": [{"name": name, "labels": dict(pairs), "value": value}
                     for (name, pairs), value in sorted(counters.items())],
        "gauges": [{"name": name, "labels": dict(pairs), "value": value}
                   for (name, pairs), value in sorted(gauges.items())],
        "histograms": [{"name": name, "labels": dict(pairs), **body}
                       for (name, pairs), body in sorted(histograms.items())],
    }


def aggregate_histograms(snapshot: Dict, name: str,
                         **labels: str) -> Optional[Dict]:
    """Fold every ``name`` histogram matching ``labels`` into one entry.

    ``labels`` is a *subset* match: an entry qualifies when every given
    pair appears among its labels, whatever else it carries (the worker
    / op labels the load rig adds).  Returns one snapshot-shaped entry
    (labels = the filter) or ``None`` when nothing matched.
    """
    wanted = [entry for entry in snapshot.get("histograms", ())
              if entry.get("name") == name
              and all(entry.get("labels", {}).get(k) == v
                      for k, v in labels.items())]
    if not wanted:
        return None
    merged = merge_registry_snapshots(
        [{"histograms": [dict(entry, labels=labels)]} for entry in wanted])
    return merged["histograms"][0]


def render_prometheus(snapshot: Dict) -> str:
    """Prometheus text format from a :meth:`MetricRegistry.snapshot` dict.

    Works on snapshots as well as live registries so the CLI can render
    metrics it scraped from remote nodes.
    """
    namespace = snapshot.get("namespace", "repro")
    lines: List[str] = []
    seen_types: set = set()

    def type_line(name: str, kind: str) -> None:
        if name not in seen_types:
            seen_types.add(name)
            lines.append(f"# TYPE {namespace}_{name} {kind}")

    for entry in snapshot.get("counters", ()):
        name = entry["name"]
        type_line(name, "counter")
        pairs = _label_pairs(entry.get("labels", {}))
        lines.append(f"{namespace}_{name}{_render_labels(pairs)} "
                     f"{_format_value(entry['value'])}")
    for entry in snapshot.get("gauges", ()):
        name = entry["name"]
        type_line(name, "gauge")
        pairs = _label_pairs(entry.get("labels", {}))
        lines.append(f"{namespace}_{name}{_render_labels(pairs)} "
                     f"{_format_value(entry['value'])}")
    for entry in snapshot.get("histograms", ()):
        name = entry["name"]
        type_line(name, "histogram")
        pairs = _label_pairs(entry.get("labels", {}))
        cumulative = 0
        for bound, count in zip(entry["buckets"], entry["counts"]):
            cumulative += count
            le = _render_labels(pairs, f'le="{_format_value(bound)}"')
            lines.append(f"{namespace}_{name}_bucket{le} {cumulative}")
        cumulative += entry["counts"][len(entry["buckets"])]
        le = _render_labels(pairs, 'le="+Inf"')
        lines.append(f"{namespace}_{name}_bucket{le} {cumulative}")
        lines.append(f"{namespace}_{name}_sum{_render_labels(pairs)} "
                     f"{_format_value(entry['sum'])}")
        lines.append(f"{namespace}_{name}_count{_render_labels(pairs)} "
                     f"{cumulative}")
    return "\n".join(lines) + ("\n" if lines else "")


def _format_value(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))
