"""Order statistics shared by simulated and live telemetry.

This module is the single home of the nearest-rank percentile logic: the
trace summaries in :mod:`repro.metrics.collectors` and the fixed-bucket
histogram snapshots in :mod:`repro.obs.registry` both resolve ranks
through :func:`nearest_rank`, so a p99 printed from a simulated trace
and a p99 scraped from a live node mean exactly the same thing.

It deliberately imports nothing from the rest of the package (no sim, no
runtime) so every layer can depend on it without cycles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class LatencySummary:
    """Order statistics of a latency sample (seconds, simulated or wall)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    minimum: float
    maximum: float

    @classmethod
    def empty(cls) -> "LatencySummary":
        """Summary of an empty sample (all zeros)."""
        return cls(count=0, mean=0.0, p50=0.0, p95=0.0, p99=0.0,
                   minimum=0.0, maximum=0.0)

    def to_dict(self) -> dict:
        """JSON-ready rendering (the scrape and report paths share it)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "min": self.minimum,
            "max": self.maximum,
        }


def nearest_rank(count: int, fraction: float) -> int:
    """Zero-based nearest-rank index of the ``fraction`` percentile.

    The one rank formula behind every percentile in the repository:
    ``percentile`` indexes a sorted sample with it and the histogram
    snapshots walk cumulative bucket counts with it.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    return max(0, math.ceil(fraction * count) - 1)


def percentile(sorted_sample: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending sample."""
    if not sorted_sample:
        return 0.0
    return sorted_sample[nearest_rank(len(sorted_sample), fraction)]


def summarize_latencies(latencies: Sequence[float]) -> LatencySummary:
    """Summarize a latency sample."""
    if not latencies:
        return LatencySummary.empty()
    ordered = sorted(latencies)
    return LatencySummary(
        count=len(ordered),
        mean=sum(ordered) / len(ordered),
        p50=percentile(ordered, 0.50),
        p95=percentile(ordered, 0.95),
        p99=percentile(ordered, 0.99),
        minimum=ordered[0],
        maximum=ordered[-1],
    )


def bucket_percentile(bounds: Sequence[float], counts: Sequence[int],
                      fraction: float, maximum: float) -> float:
    """Nearest-rank percentile estimated from fixed histogram buckets.

    ``counts`` has one entry per bound plus a final overflow bucket.  The
    estimate is the upper bound of the bucket holding the rank (clamped
    by the exact observed ``maximum``, which the histogram tracks), so it
    errs upward by at most one bucket width -- good enough for p50/p95/p99
    reporting without retaining every sample.
    """
    total = sum(counts)
    if total == 0:
        return 0.0
    rank = nearest_rank(total, fraction)
    cumulative = 0
    for bound, count in zip(bounds, counts):
        cumulative += count
        if cumulative > rank:
            return min(bound, maximum)
    return maximum  # rank fell in the overflow bucket


def summarize_buckets(bounds: Sequence[float], counts: Sequence[int],
                      total: float, minimum: float,
                      maximum: float) -> LatencySummary:
    """A :class:`LatencySummary` built from a histogram snapshot.

    Count, mean, min and max are exact (the histogram tracks them);
    the percentiles come from :func:`bucket_percentile`.
    """
    count = sum(counts)
    if count == 0:
        return LatencySummary.empty()
    return LatencySummary(
        count=count,
        mean=total / count,
        p50=bucket_percentile(bounds, counts, 0.50, maximum),
        p95=bucket_percentile(bounds, counts, 0.95, maximum),
        p99=bucket_percentile(bounds, counts, 0.99, maximum),
        minimum=minimum,
        maximum=maximum,
    )
