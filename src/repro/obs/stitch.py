"""Causal trace stitching: join client spans with server flight records.

A sampled operation leaves two kinds of evidence: the client's
``OpSpan`` record (phases, per-server reply waits, the f+1 witness and
n-f quorum instants) and each server's flight-recorder entry (when the
frame arrived, how long it queued behind earlier frames in the burst,
how long the protocol handler ran, and whether it was served or shed).
This module joins them by ``op_id`` into one causal timeline::

    client op start
      -> phase begins
        -> server recv / serve / reply   (one line per server record)
        -> reply accepted by client      (per-server wait)
      -> f+1 witness instant
      -> n-f quorum instant
    client op finish

Both sides stamp ``time.monotonic()`` instants (CLOCK_MONOTONIC is
system-wide on Linux), so client and server events from processes on
one host align on a single absolute axis.  When the clocks are clearly
not comparable (multi-host scrape), the stitcher flags the op
``aligned=False`` and the renderer falls back to durations only.

A Byzantine node can withhold (or forge) its trace; stitching is
therefore *best effort by construction*: missing server records leave
a visible gap (``missing_servers``), never an error, and out-of-order
input is sorted before use.

Like the rest of :mod:`repro.obs` this module imports nothing from the
rest of the repository -- inputs are the plain dicts the tracer sinks
and the ``TraceAck`` scrapes already carry.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["StitchedOp", "stitch", "stitch_op", "slowest",
           "format_timeline"]

#: A server recv more than this many seconds outside the client's
#: [start, finish] envelope means the clocks are not comparable.
ALIGNMENT_SLACK = 60.0


class StitchedOp:
    """One operation's joined client + server evidence.

    ``phases`` are dicts with absolute ``start`` plus ``duration``,
    ``witness_at`` / ``quorum_at`` instants (``None`` when the phase
    never accumulated that many replies) and the per-server reply
    waits.  ``servers`` are the flight records that matched the op,
    sorted by recv instant.  ``missing_servers`` names servers that
    answered the client but produced no flight record (withheld,
    evicted, or past the sampling window).
    """

    def __init__(self, client_record: Dict,
                 server_records: Iterable[Dict]) -> None:
        self.record = client_record
        self.op_id = client_record.get("op_id")
        self.client = client_record.get("client", "")
        self.kind = client_record.get("kind", "")
        self.algorithm = client_record.get("algorithm", "")
        self.outcome = client_record.get("outcome", "")
        self.latency = float(client_record.get("latency", 0.0))
        #: Client clock: the sink stamps the *finish* instant.
        self.finished = float(client_record.get("ts", 0.0))
        self.started = self.finished - self.latency
        self.servers = sorted((dict(r) for r in server_records),
                              key=lambda r: r.get("recv", 0.0))
        self.phases = self._build_phases(client_record.get("phases", ()))
        self.aligned = self._check_alignment()
        replied = set()
        for phase in self.phases:
            replied.update(phase["replies"])
        recorded = {r.get("node") for r in self.servers}
        self.missing_servers = sorted(replied - recorded)

    def _build_phases(self, phases: Iterable[Dict]) -> List[Dict]:
        built: List[Dict] = []
        cursor = self.started
        for phase in phases:
            duration = float(phase.get("duration", 0.0))
            witness = phase.get("witness_wait")
            quorum = phase.get("quorum_wait")
            built.append({
                "phase": phase.get("phase", ""),
                "start": cursor,
                "duration": duration,
                "witness_at": (cursor + witness
                               if witness is not None else None),
                "quorum_at": cursor + quorum if quorum is not None else None,
                "replies": dict(phase.get("replies", {})),
            })
            cursor += duration
        return built

    def _check_alignment(self) -> bool:
        lo = self.started - ALIGNMENT_SLACK
        hi = self.finished + ALIGNMENT_SLACK
        for record in self.servers:
            recv = record.get("recv")
            if recv is None or not lo <= float(recv) <= hi:
                return False
        return True

    @property
    def dominant_phase(self) -> str:
        """Name of the longest client phase (empty when phase-less)."""
        if not self.phases:
            return ""
        return max(self.phases, key=lambda p: p["duration"])["phase"]

    def events(self) -> List[Tuple[float, str, str]]:
        """The timeline as ``(offset_seconds, actor, text)``, sorted.

        Offsets are relative to the client's op start.  Server events
        appear only when the clocks aligned; the renderer lists
        unaligned server records separately with durations only.
        """
        out: List[Tuple[float, str, str]] = [
            (0.0, "client", f"op start ({self.kind})")]
        for phase in self.phases:
            out.append((phase["start"] - self.started, "client",
                        f"phase {phase['phase']} begins"))
            for server, wait in sorted(phase["replies"].items(),
                                       key=lambda kv: kv[1]):
                out.append((phase["start"] + wait - self.started, "client",
                            f"reply from {server} accepted"))
            if phase["witness_at"] is not None:
                out.append((phase["witness_at"] - self.started, "client",
                            "witness reached (f+1 replies)"))
            if phase["quorum_at"] is not None:
                out.append((phase["quorum_at"] - self.started, "client",
                            "quorum reached (n-f replies)"))
        if self.aligned:
            for record in self.servers:
                out.append((float(record["recv"]) - self.started,
                            str(record.get("node", "?")),
                            _describe_service(record)))
        out.append((self.latency, "client", f"op finish ({self.outcome})"))
        out.sort(key=lambda item: item[0])
        return out


def _describe_service(record: Dict) -> str:
    phase = record.get("phase", "?")
    queue = float(record.get("queue_wait", 0.0))
    service = float(record.get("service", 0.0))
    verdict = record.get("verdict", "served")
    text = (f"recv {phase} (queue {_ms(queue)}, "
            f"serve {_ms(service)}, {verdict})")
    if record.get("repeat"):
        text += " [repeat]"
    return text


def _ms(seconds: float) -> str:
    return f"{seconds * 1000.0:.3f}ms"


def _index_servers(server_records: Iterable[Dict]) -> Dict[int, List[Dict]]:
    by_op: Dict[int, List[Dict]] = {}
    for record in server_records or ():
        op_id = record.get("op_id")
        if isinstance(op_id, int):
            by_op.setdefault(op_id, []).append(record)
    return by_op


def stitch(client_records: Iterable[Dict],
           server_records: Iterable[Dict]) -> List[StitchedOp]:
    """Join every client record with its servers' flight records.

    Server records that match no client record are dropped (the client
    side drives: without a span there is no envelope to hang them on).
    """
    by_op = _index_servers(server_records)
    stitched = []
    for record in client_records or ():
        op_id = record.get("op_id")
        stitched.append(StitchedOp(record, by_op.get(op_id, ())))
    return stitched


def stitch_op(op_id: int, client_records: Iterable[Dict],
              server_records: Iterable[Dict]) -> Optional[StitchedOp]:
    """Stitch one operation; ``None`` when no client record matches."""
    for record in client_records or ():
        if record.get("op_id") == op_id:
            return StitchedOp(
                record, _index_servers(server_records).get(op_id, ()))
    return None


def slowest(stitched: Iterable[StitchedOp], top: int = 10) -> List[StitchedOp]:
    """The ``top`` highest-latency stitched ops, slowest first."""
    ranked = sorted(stitched, key=lambda op: op.latency, reverse=True)
    return ranked[:max(0, top)]


def format_timeline(op: StitchedOp) -> str:
    """Render one stitched op as an indented ASCII timeline."""
    head = (f"op {op.op_id} {op.kind} by {op.client or '?'}"
            f"{f' ({op.algorithm})' if op.algorithm else ''}"
            f" -- {op.outcome} in {_ms(op.latency)}")
    lines = [head]
    if op.record.get("throttles") or op.record.get("resends"):
        lines.append(f"  throttles={op.record.get('throttles', 0)} "
                     f"resends={op.record.get('resends', 0)}")
    width = 10
    for offset, actor, text in op.events():
        stamp = f"+{_ms(max(0.0, offset))}"
        lines.append(f"  {stamp:>{width}}  {actor:>8}  {text}")
    if not op.aligned and op.servers:
        lines.append("  (server clocks not aligned; durations only)")
        for record in op.servers:
            lines.append(f"    {str(record.get('node', '?')):>8}  "
                         f"{_describe_service(record)}")
    if op.missing_servers:
        lines.append("  no server-side records from: "
                     + ", ".join(op.missing_servers))
    return "\n".join(lines)
