"""Per-register consistency checking for namespaced executions.

Safety and regularity are per-register properties: operations on different
named registers never interact.  A namespaced execution's trace mixes all
registers, so these helpers split it and run the checkers register by
register.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable

from repro.consistency.atomicity import check_atomicity_by_tags
from repro.consistency.regularity import check_regularity
from repro.consistency.result import CheckResult
from repro.consistency.safety import check_safety
from repro.sim.trace import Trace

#: Key under which the sim adapters record the operation's register name.
REGISTER_META = "register"

#: Bucket for operations without a register annotation.
UNNAMED = "<single-register>"


def split_trace_by_register(trace: Trace) -> Dict[str, Trace]:
    """Group a trace's operations into one sub-trace per register name.

    Records keep their identity (no copies), so checker violations still
    point at the original operations.
    """
    buckets: Dict[str, Trace] = {}
    for record in trace:
        name = record.meta.get(REGISTER_META, UNNAMED)
        bucket = buckets.setdefault(name, Trace())
        bucket._ops.append(record)
    return buckets


def check_safety_per_register(trace: Trace, initial_value: Any = b"",
                              extra_values: Iterable[Any] = ()) -> CheckResult:
    """Run the Definition-1 checker independently on every register.

    Returns one merged :class:`CheckResult` whose violations carry the
    register name in their message.
    """
    merged = CheckResult(condition="MWMR safety (per register)")
    for name, sub_trace in sorted(split_trace_by_register(trace).items()):
        result = check_safety(sub_trace, initial_value=initial_value,
                              extra_values=extra_values)
        merged.reads_checked += result.reads_checked
        for violation in result.violations:
            merged.record(f"[register {name}] {violation.message}",
                          *violation.operations)
    return merged


def check_regularity_per_register(trace: Trace,
                                  initial_value: Any = b"") -> CheckResult:
    """Run the Definition-2 checker independently on every register.

    The register abstraction composes: a multi-key history is regular iff
    each key's projection is (operations on different keys never interact),
    so per-key checking is both sound and complete here.
    """
    merged = CheckResult(condition="MWMR regularity (per register)")
    for name, sub_trace in sorted(split_trace_by_register(trace).items()):
        result = check_regularity(sub_trace, initial_value=initial_value)
        merged.reads_checked += result.reads_checked
        for violation in result.violations:
            merged.record(f"[register {name}] {violation.message}",
                          *violation.operations)
    return merged


def check_atomicity_per_register(trace: Trace) -> CheckResult:
    """Run the tag-based atomicity checker independently on every register.

    Tags are per-register (each key's state machine starts from tag 0), so
    the whole-trace checker would see spurious duplicate tags across keys;
    splitting first is required, not just convenient.
    """
    merged = CheckResult(condition="atomicity (tag-based, per register)")
    for name, sub_trace in sorted(split_trace_by_register(trace).items()):
        result = check_atomicity_by_tags(sub_trace)
        merged.reads_checked += result.reads_checked
        for violation in result.violations:
            merged.record(f"[register {name}] {violation.message}",
                          *violation.operations)
    return merged
