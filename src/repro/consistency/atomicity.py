"""Tag-based atomicity (linearizability) check for register traces.

Used to validate the ABD baseline.  The check relies on the writes being
totally ordered by their tags (true in every algorithm here) and verifies
the two properties that, together with regularity, characterise an atomic
register [Lamport 86]:

1. **No stale reads**: a read's tag is at least the tag of every write that
   precedes it.
2. **No new/old inversion**: if read ``r1`` precedes read ``r2``, then
   ``tag(r1) <= tag(r2)``.
3. **No reads from the future**: a read's tag belongs to a write invoked
   before the read responded (or is the initial tag).

Reads/writes must carry tags in their trace records; records without tags
are skipped (and counted, so callers can assert full coverage).
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.consistency.result import CheckResult
from repro.core.tags import TAG_ZERO
from repro.sim.trace import OperationRecord, Trace


def check_atomicity_by_tags(trace: Trace) -> CheckResult:
    """Check atomicity of a trace whose operations carry tags."""
    result = CheckResult(condition="atomicity (tag-based)")
    writes = [w for w in trace.writes(completed_only=False) if w.tag is not None]
    reads = [r for r in trace.reads(completed_only=True) if r.tag is not None]

    known_tags = {w.tag: w for w in writes}
    for read in reads:
        result.reads_checked += 1
        # 1. No stale reads.
        for write in writes:
            if write.complete and write.precedes(read) and read.tag < write.tag:
                result.record(
                    f"read tag {read.tag} older than preceding write tag "
                    f"{write.tag}", read, write,
                )
        # 3. The tag must correspond to a real write that had been invoked.
        if read.tag != TAG_ZERO:
            source = known_tags.get(read.tag)
            if source is None:
                result.record(
                    f"read returned unknown tag {read.tag} (fabricated?)", read,
                )
            elif source.invoked_at > read.responded_at:
                result.record(
                    f"read returned tag {read.tag} of a write invoked only "
                    "after the read responded", read, source,
                )
    # 2. No new/old inversion between reads.
    for i, first in enumerate(reads):
        for second in reads[i + 1:]:
            if first.precedes(second) and first.tag > second.tag:
                result.record(
                    f"new/old inversion: earlier read saw {first.tag}, later "
                    f"read saw {second.tag}", first, second,
                )
            elif second.precedes(first) and second.tag > first.tag:
                result.record(
                    f"new/old inversion: earlier read saw {second.tag}, later "
                    f"read saw {first.tag}", second, first,
                )
    return result
