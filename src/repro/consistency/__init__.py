"""Consistency checkers over execution traces.

Implements the paper's Definition 1 (MWMR safety) and Definition 2 (MWMR
regularity) as mechanical checks on :class:`repro.sim.trace.Trace` objects,
plus a tag-based atomicity check for the ABD baseline.  Every integration
test and resilience experiment funnels its execution through these.
"""

from repro.consistency.result import CheckResult, Violation
from repro.consistency.safety import admissible_read_values, check_safety
from repro.consistency.regularity import check_regularity, fresh_read_values
from repro.consistency.atomicity import check_atomicity_by_tags
from repro.consistency.liveness import check_liveness
from repro.consistency.registers import (
    check_atomicity_per_register,
    check_regularity_per_register,
    check_safety_per_register,
    split_trace_by_register,
)

__all__ = [
    "CheckResult",
    "Violation",
    "check_safety",
    "check_regularity",
    "check_atomicity_by_tags",
    "check_liveness",
    "admissible_read_values",
    "fresh_read_values",
    "split_trace_by_register",
    "check_safety_per_register",
    "check_regularity_per_register",
    "check_atomicity_per_register",
]
