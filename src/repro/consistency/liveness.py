"""Liveness accounting: which operations never completed, and why that's ok.

Liveness (Theorem 1) guarantees termination only while at most ``f``
servers are unresponsive and the client stays up.  This checker does not
try to prove termination -- it reports which operations remain incomplete
at the end of a finite run so tests and benchmarks can assert the *right*
operations completed.

``allowed_incomplete`` names clients whose operations were expected to die
(crashed clients, stranded partitions); any other incomplete operation is a
violation.
"""

from __future__ import annotations

from typing import Iterable, Set

from repro.consistency.result import CheckResult
from repro.sim.trace import Trace
from repro.types import ProcessId


def check_liveness(trace: Trace,
                   allowed_incomplete: Iterable[ProcessId] = ()) -> CheckResult:
    """Flag incomplete operations from clients expected to finish."""
    allowed: Set[ProcessId] = set(allowed_incomplete)
    result = CheckResult(condition="liveness (finite-run)")
    for record in trace:
        if record.kind.value == "read":
            result.reads_checked += 1
        if record.complete or record.client in allowed:
            continue
        result.record(
            f"{record.kind} by {record.client} invoked at "
            f"{record.invoked_at:.3f} never completed", record,
        )
    return result
