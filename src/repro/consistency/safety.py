"""Definition 1: MWMR safety.

    A MWMR register is *safe* if (i) a read r that is not concurrent with
    any write returns the value of some write w that precedes r, as long as
    no other write falls completely between w and r; (ii) otherwise the
    value returned is within the register's allowed range of values.

Operationally, for each complete read ``r``:

* ``r`` is concurrent with a write ``w`` when neither precedes the other.
  An *incomplete* write that was invoked before ``r`` responded counts as
  concurrent (it never precedes anything, and ``r`` precedes it only if
  ``r`` responded before its invocation).
* If ``r`` is concurrent with no write, its value must come from an
  *admissible* preceding write: one whose response is before ``r``'s
  invocation and that is not *superseded* (no other complete write starts
  after it finishes and finishes before ``r`` starts).  When no write
  precedes ``r`` at all, the initial value is the only admissible one.
* Otherwise ``r`` may return anything in the value domain.  We take the
  domain to be every value ever passed to a write plus the initial value
  (plus any extra values the caller declares); a Byzantine-fabricated value
  outside that set violates clause (ii) -- this is the "validity" Lemma 5
  speaks about.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Set

from repro.consistency.result import CheckResult
from repro.sim.trace import OperationRecord, Trace


def _began_writes(trace: Trace) -> List[OperationRecord]:
    return trace.writes(completed_only=False)


def _is_concurrent_with_some_write(read: OperationRecord,
                                   writes: List[OperationRecord]) -> bool:
    return any(read.concurrent_with(write) for write in writes)


def _superseded(write: OperationRecord, read: OperationRecord,
                writes: List[OperationRecord]) -> bool:
    """Whether another complete write falls completely between ``write``
    and ``read``."""
    return any(
        other is not write and other.complete
        and write.precedes(other) and other.precedes(read)
        for other in writes
    )


def admissible_read_values(read: OperationRecord, trace: Trace,
                           initial_value: Any = b"") -> Set[Any]:
    """Values clause (i) permits for a read not concurrent with any write."""
    writes = _began_writes(trace)
    preceding = [w for w in writes if w.precedes(read)]
    if not preceding:
        return {initial_value}
    return {
        w.value for w in preceding if not _superseded(w, read, writes)
    }


def value_domain(trace: Trace, initial_value: Any = b"",
                 extra_values: Iterable[Any] = ()) -> Set[Any]:
    """The register's allowed range: everything written plus the initial
    value (clause ii)."""
    domain: Set[Any] = {initial_value}
    domain.update(extra_values)
    for write in _began_writes(trace):
        domain.add(write.value)
    return domain


def check_safety(trace: Trace, initial_value: Any = b"",
                 extra_values: Iterable[Any] = ()) -> CheckResult:
    """Check Definition 1 over every complete read in ``trace``."""
    result = CheckResult(condition="MWMR safety")
    writes = _began_writes(trace)
    domain = value_domain(trace, initial_value, extra_values)
    for read in trace.reads(completed_only=True):
        result.reads_checked += 1
        if _is_concurrent_with_some_write(read, writes):
            # Clause (ii): anything in the domain is fine.
            if read.value not in domain:
                result.record(
                    f"read returned {read.value!r}, which is outside the "
                    f"register's value domain (validity violation)", read,
                )
            continue
        allowed = admissible_read_values(read, trace, initial_value)
        if read.value not in allowed:
            result.record(
                f"read not concurrent with any write returned {read.value!r}; "
                f"clause (i) allows only {allowed!r}", read,
            )
    return result
