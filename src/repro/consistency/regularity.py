"""Definition 2: MWMR regularity.

    A MWMR register is *regular* if it satisfies safety and the
    linearization of any two reads agree on the ordering of all writes that
    began before both the reads complete.

The checker decomposes this into two mechanically verifiable pieces:

1. **Per-read freshness** (the substance of Theorem 3's counterexample):
   every complete read must return the value of some write that *began*
   before the read completed and is not superseded by a write that
   completed before the read began.  The initial value is only admissible
   while no write has completed before the read began.  (Under safety alone
   a read concurrent with *any* write may return *anything* in the domain,
   including ``v0`` -- regularity forbids exactly that staleness.)

2. **Cross-read write ordering**: writes carry unique tags in all our
   algorithms, and two reads agree on the induced write order iff the tag
   order is a single total order -- which it is by construction (Lemma 2).
   The checker verifies the preconditions it relies on: distinct complete
   writes never share a tag, and a read's tag (when recorded) matches the
   tag of the write whose value it returned.

The checker assumes each written value identifies its write (use distinct
values per write in experiments; the workload generator guarantees this).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, List, Set

from repro.consistency.result import CheckResult
from repro.sim.trace import OperationRecord, Trace


def fresh_read_values(read: OperationRecord, trace: Trace,
                      initial_value: Any = b"") -> Set[Any]:
    """Values regularity permits the read to return."""
    writes = trace.writes(completed_only=False)
    began_before = [w for w in writes if w.invoked_at < (read.responded_at or float("inf"))]
    completed_before_read_began = [w for w in writes if w.precedes(read)]
    allowed: Set[Any] = set()
    for write in began_before:
        superseded = any(
            other is not write and other.complete
            and write.precedes(other) and other.precedes(read)
            for other in writes
        )
        if not superseded:
            allowed.add(write.value)
    if not completed_before_read_began:
        allowed.add(initial_value)
    return allowed


def check_regularity(trace: Trace, initial_value: Any = b"") -> CheckResult:
    """Check Definition 2 over every complete read in ``trace``."""
    result = CheckResult(condition="MWMR regularity")

    # Precondition for the ordering clause: complete writes have unique tags.
    by_tag: Dict[Any, List[OperationRecord]] = defaultdict(list)
    for write in trace.writes(completed_only=True):
        if write.tag is not None:
            by_tag[write.tag].append(write)
    for tag, writes in by_tag.items():
        if len(writes) > 1:
            result.record(
                f"two distinct complete writes share tag {tag}; reads cannot "
                "agree on a single write order", *writes,
            )

    value_to_write = {
        w.value: w for w in trace.writes(completed_only=False)
    }
    for read in trace.reads(completed_only=True):
        result.reads_checked += 1
        allowed = fresh_read_values(read, trace, initial_value)
        if read.value not in allowed:
            result.record(
                f"read returned stale/invalid value {read.value!r}; "
                f"regularity allows only {allowed!r}", read,
            )
            continue
        # Tag consistency: the read's recorded tag must match the tag of the
        # write it returned (when both sides recorded tags).
        source = value_to_write.get(read.value)
        if (source is not None and read.tag is not None
                and source.tag is not None and read.tag != source.tag):
            result.record(
                f"read returned value {read.value!r} under tag {read.tag} but "
                f"the write used tag {source.tag}", read, source,
            )
    return result
