"""Check results shared by all consistency checkers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.errors import ConsistencyViolation
from repro.sim.trace import OperationRecord


@dataclass
class Violation:
    """One offending operation with a human-readable explanation."""

    message: str
    operations: Tuple[OperationRecord, ...] = ()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        ops = "; ".join(str(op) for op in self.operations)
        return f"{self.message} [{ops}]" if ops else self.message


@dataclass
class CheckResult:
    """Outcome of running one consistency check over a trace."""

    condition: str
    violations: List[Violation] = field(default_factory=list)
    reads_checked: int = 0

    @property
    def ok(self) -> bool:
        """True when no violation was found."""
        return not self.violations

    def record(self, message: str, *operations: OperationRecord) -> None:
        """Append a violation."""
        self.violations.append(Violation(message, tuple(operations)))

    def raise_if_violated(self) -> "CheckResult":
        """Raise :class:`ConsistencyViolation` on failure; else return self."""
        if self.violations:
            first = self.violations[0]
            raise ConsistencyViolation(
                f"{self.condition} violated ({len(self.violations)} violation(s)); "
                f"first: {first}",
                operations=first.operations,
            )
        return self

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        status = "OK" if self.ok else f"{len(self.violations)} violation(s)"
        return f"{self.condition}: {status} over {self.reads_checked} read(s)"
