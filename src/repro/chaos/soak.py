"""Soak runs: a mixed read/write workload under a nemesis schedule.

:func:`run_soak` is the one entry point behind the ``repro chaos`` CLI,
the chaos integration tests and benchmark E17.  It starts a cluster,
lets a writer and a pair of readers issue operations paced across the
schedule window while the :class:`~repro.chaos.nemesis.Nemesis` injects
faults, and records every operation into a
:class:`~repro.sim.trace.Trace` so the paper's safety checker
(Definition 1) can judge the execution afterwards.

Two cluster backends:

* ``procs=False`` (default): a chaos-enabled in-process
  :class:`~repro.runtime.cluster.LocalCluster` -- every schedule works,
  including frame-level faults through the chaos proxies.
* ``procs=True``: a real process-per-node cluster via
  :class:`~repro.deploy.supervisor.ClusterSupervisor` -- crashes are
  SIGKILLs of OS processes and restarts are snapshot-recovering
  respawns, so only crash/restart schedules
  (:data:`~repro.chaos.nemesis.PROCESS_SCHEDULES`) apply.

Liveness is checked the strong way: every schedule that keeps ``n - f``
servers reachable must complete every operation, so any raised
``LivenessError`` (or other failure) is recorded as an error and fails
the soak.  The deliberate exception is ``exceed-f``, which takes down
``f + 1`` servers to *demonstrate* lost liveness -- there the recorded
errors are the expected result.
"""

from __future__ import annotations

import asyncio
import os
import shutil
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.chaos.nemesis import (
    PROCESS_SCHEDULES,
    Nemesis,
    build_schedule,
)
from repro.consistency import check_safety, check_safety_per_register
from repro.consistency.registers import REGISTER_META
from repro.consistency.result import CheckResult
from repro.errors import ConfigurationError
from repro.metrics import summarize_trace
from repro.obs import (
    LatencySummary,
    MetricRegistry,
    SnapshotLog,
    summarize_histogram_snapshot,
)
from repro.protocols import get_spec
from repro.sharding import KeyspaceConfig
from repro.sim.rng import SimRng
from repro.sim.trace import OpKind, Trace
from repro.workloads.generator import ZipfSampler


@dataclass
class SoakResult:
    """Everything a soak run learned."""

    algorithm: str
    schedule: str
    seed: int
    trace: Trace
    safety: CheckResult
    nemesis_events: List[str]
    fault_counts: Dict[str, int]
    client_stats: Dict[str, Dict[str, int]]
    errors: List[str]
    wall_time: float
    #: Whether the workload ran against real OS processes.
    procs: bool = False
    #: Number of distinct keys the workload spanned (1 = single register).
    keys: int = 1
    #: Final on-disk snapshot size per node (bytes), when snapshots exist.
    snapshot_bytes: Dict[str, int] = field(default_factory=dict)
    #: Snapshot of the run's shared metric registry (clients, nodes,
    #: proxies, nemesis) -- see :meth:`repro.obs.MetricRegistry.snapshot`.
    metrics: Dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Safety held and every operation completed in time."""
        return self.safety.ok and not self.errors

    @property
    def ops_completed(self) -> int:
        return len(self.trace.completed)

    def latency_summary(self):
        """Per-kind latency/round statistics (see :mod:`repro.metrics`).

        Round counts and incompletes come from the trace; the latency
        figures come from the run's ``client_op_seconds`` histograms
        when metrics were recorded (one aggregation path with live
        scrapes) and fall back to the trace's raw latency lists.
        """
        summaries = summarize_trace(self.trace)
        for entry in self.metrics.get("histograms", ()):
            if entry["name"] != "client_op_seconds":
                continue
            op = entry.get("labels", {}).get("op")
            if op in summaries and sum(entry["counts"]):
                summaries[op].latency = summarize_histogram_snapshot(entry)
        return summaries

    def phase_summary(self) -> Dict[str, Dict[str, LatencySummary]]:
        """Per-kind, per-phase latency summaries from the histograms.

        ``{"write": {"get-tag": LatencySummary, "put-data": ...},
        "read": {"get-data": ...}}`` -- empty when the run recorded no
        metrics.
        """
        out: Dict[str, Dict[str, LatencySummary]] = {}
        for entry in self.metrics.get("histograms", ()):
            if entry["name"] != "client_phase_seconds":
                continue
            labels = entry.get("labels", {})
            op = labels.get("op", "")
            phase = labels.get("phase", "")
            if sum(entry["counts"]):
                out.setdefault(op, {})[phase] = (
                    summarize_histogram_snapshot(entry))
        return out

    def outcome_counts(self) -> Dict[str, Dict[str, int]]:
        """``{op: {outcome: count}}`` from ``client_ops_total``."""
        out: Dict[str, Dict[str, int]] = {}
        for entry in self.metrics.get("counters", ()):
            if entry["name"] != "client_ops_total":
                continue
            labels = entry.get("labels", {})
            op = labels.get("op", "")
            outcome = labels.get("outcome", "")
            out.setdefault(op, {})[outcome] = (
                out.get(op, {}).get(outcome, 0) + int(entry["value"]))
        return out


async def _run_op(client, trace: Trace, index: int, kind: OpKind,
                  value_size: int, prefix: str, errors: List[str],
                  register: Optional[str] = None) -> None:
    """Issue one traced operation on ``client``; errors are recorded.

    ``register`` targets a named register of a keyed (namespaced or
    sharded) deployment; the trace record is annotated with it so the
    per-register checkers can split the history afterwards.
    """
    loop = asyncio.get_running_loop()
    kwargs = {"register": register} if register is not None else {}
    if kind is OpKind.WRITE:
        value = f"{prefix}:{index}".encode().ljust(value_size, b".")
        record = trace.begin(client.client_id, kind, loop.time(), value=value)
        if register is not None:
            record.meta[REGISTER_META] = register
        try:
            tag = await client.write(value, **kwargs)
        except Exception as exc:
            errors.append(f"write #{index} by {client.client_id}: {exc}")
            return
        trace.complete(record, loop.time(), tag=tag)
    else:
        record = trace.begin(client.client_id, kind, loop.time())
        if register is not None:
            record.meta[REGISTER_META] = register
        try:
            value = await client.read(**kwargs)
        except Exception as exc:
            errors.append(f"read #{index} by {client.client_id}: {exc}")
            return
        trace.complete(record, loop.time(), value=value)


async def _client_loop(client, trace: Trace, kinds: List[OpKind],
                       think: float, rng: SimRng, value_size: int,
                       prefix: str, errors: List[str],
                       concurrency: int = 1,
                       registers: Optional[List[Optional[str]]] = None) -> None:
    """Issue ``kinds`` on one client, paced across the fault window.

    ``concurrency == 1`` is the classic closed loop: each operation
    completes before the think-time sleep that precedes the next one
    (and the pacing is byte-for-byte reproducible for a given rng, which
    the determinism tests rely on).  With ``concurrency > 1`` the loop
    goes open: submissions keep the schedule's pace whether or not
    earlier operations have finished, with at most ``concurrency``
    in flight at once -- the multiplexed-client load shape.
    """
    if registers is None:
        registers = [None] * len(kinds)
    if concurrency <= 1:
        for index, kind in enumerate(kinds):
            await _run_op(client, trace, index, kind, value_size, prefix,
                          errors, register=registers[index])
            await asyncio.sleep(think * (0.5 + rng.random()))
        return
    limit = asyncio.Semaphore(concurrency)

    async def paced(index: int, kind: OpKind) -> None:
        try:
            await _run_op(client, trace, index, kind, value_size, prefix,
                          errors, register=registers[index])
        finally:
            limit.release()

    tasks = []
    for index, kind in enumerate(kinds):
        await limit.acquire()
        tasks.append(asyncio.ensure_future(paced(index, kind)))
        await asyncio.sleep(think * (0.5 + rng.random()))
    await asyncio.gather(*tasks)


def _snapshot_sizes(snapshot_dir: Optional[str]) -> Dict[str, int]:
    """On-disk bytes per node snapshot (empty when nothing persisted)."""
    if snapshot_dir is None or not os.path.isdir(snapshot_dir):
        return {}
    sizes = {}
    for name in sorted(os.listdir(snapshot_dir)):
        if name.endswith(".snapshot"):
            sizes[name[:-len(".snapshot")]] = os.path.getsize(
                os.path.join(snapshot_dir, name))
    return sizes


async def run_soak(algorithm: str = "bsr", f: int = 1,
                   schedule: str = "combo", ops: int = 40,
                   read_ratio: float = 0.6, value_size: int = 32,
                   seed: int = 0, start: float = 0.5, period: float = 1.0,
                   timeout: float = 15.0,
                   snapshot_dir: Optional[str] = None,
                   max_history: Optional[int] = None,
                   procs: bool = False,
                   concurrency: int = 1,
                   keys: int = 1, zipf_s: float = 0.99,
                   client_kwargs: Optional[Dict[str, Any]] = None,
                   timeseries_path: Optional[str] = None,
                   timeseries_interval: float = 1.0) -> SoakResult:
    """Run ``ops`` mixed operations under the named nemesis schedule.

    ``procs=True`` runs the workload against a process-per-node cluster
    (one OS process per server, SIGKILL crashes, snapshot-recovery
    restarts); ``max_history`` bounds every server's history list so long
    soaks keep snapshots from growing without bound.  ``concurrency``
    switches each client's loop from closed to open: up to that many
    operations in flight per client at once (see :func:`_client_loop`).

    ``keys > 1`` turns the workload multi-key: the cluster becomes a
    sharded keyspace, every operation targets a ``key-<i>`` register
    drawn Zipf(``zipf_s``), and safety is judged per register.  Groups
    span the whole fleet (``group_size = n``) so crash schedules keep
    the same liveness margin as the single-register soak -- the point
    here is the per-key state table and routing under faults, not
    placement-induced quorum shrinkage.

    ``timeseries_path`` appends a windowed registry snapshot (JSON line
    with per-interval histogram deltas, see
    :class:`repro.obs.SnapshotLog`) every ``timeseries_interval``
    seconds while the workload runs -- the soak twin of
    ``repro load --timeseries``.
    """
    if concurrency < 1:
        raise ConfigurationError("concurrency must be at least 1")
    if keys < 1:
        raise ConfigurationError("keys must be at least 1")
    # Imported here: repro.runtime.cluster itself imports the chaos proxy,
    # so a module-level import would be circular.
    from repro.runtime.cluster import LocalCluster

    if procs and schedule not in PROCESS_SCHEDULES:
        raise ConfigurationError(
            f"schedule {schedule!r} needs frame-level chaos proxies; a "
            f"process cluster runs {PROCESS_SCHEDULES}")

    rng = SimRng(seed, f"soak/{algorithm}/{schedule}")
    proto = get_spec(algorithm)
    keyspace: Optional[KeyspaceConfig] = None
    if keys > 1:
        if not proto.namespaced_ok:
            raise ConfigurationError(
                f"algorithm {algorithm!r} does not support a sharded "
                f"keyspace")
        keyspace = KeyspaceConfig(group_size=proto.min_servers(f),
                                  seed=seed)
    #: One registry for the whole run: clients, nemesis and (in-process)
    #: nodes/proxies all record into it, so the result's histograms
    #: aggregate per phase across every client.
    registry = (client_kwargs or {}).get("registry") or MetricRegistry()
    own_snapshots = snapshot_dir is None
    if own_snapshots:
        snapshot_dir = tempfile.mkdtemp(prefix="repro-chaos-")
    loop = asyncio.get_running_loop()
    started = loop.time()
    if procs:
        from repro.deploy import ClusterSpec, ClusterSupervisor, reserve_ports
        nodes: Dict[str, Any] = {}
        if proto.peer_links:
            # Peer-linked servers dial each other from the spec, so the
            # ports must be pinned before the first process starts.
            from repro.types import server_id as _sid
            ports = reserve_ports(proto.min_servers(f))
            nodes = {str(_sid(i)): ["127.0.0.1", port]
                     for i, port in enumerate(ports)}
        spec = ClusterSpec(algorithm=algorithm, f=f,
                           snapshot_dir=snapshot_dir,
                           max_history=max_history,
                           secret=f"soak-{seed}",
                           nodes=nodes,
                           keyspace=keyspace.to_dict() if keyspace else {})
        cluster = ClusterSupervisor(spec, registry=registry)
        initial_value = spec.initial_value.encode()
    else:
        cluster = LocalCluster(algorithm, f=f, chaos=True, chaos_seed=seed,
                               snapshot_dir=snapshot_dir,
                               max_history=max_history, registry=registry,
                               keyspace=keyspace)
        initial_value = cluster.initial_value
    await cluster.start()
    try:
        steps = build_schedule(schedule, cluster.server_ids, f, seed=seed,
                               start=start, period=period)
        nemesis = Nemesis(cluster, steps, registry=registry)
        duration = max([step.at for step in steps], default=0.0) + period

        writes = max(1, round(ops * (1.0 - read_ratio)))
        reads = max(1, ops - writes)
        # One writer (BCSR is SWMR) and two readers, ops paced so the
        # workload spans the whole fault window.
        kwargs = dict(backoff_base=0.05, backoff_max=0.5, drain_timeout=0.5)
        kwargs.update(client_kwargs or {})
        kwargs["registry"] = registry
        writer = cluster.client("w000", timeout=timeout, **kwargs)
        readers = [cluster.client(f"r{i:03d}", timeout=timeout, **kwargs)
                   for i in range(2)]
        for client in [writer] + readers:
            await client.connect()

        trace = Trace()
        errors: List[str] = []
        split = (reads + 1) // 2
        plans = [
            (writer, [OpKind.WRITE] * writes, "w000"),
            (readers[0], [OpKind.READ] * split, "r000"),
            (readers[1], [OpKind.READ] * (reads - split), "r001"),
        ]
        # Key draws come from a dedicated fork so a keys=1 run's pacing
        # stream is byte-for-byte what it was before keys existed.
        sampler = ZipfSampler(keys, zipf_s) if keys > 1 else None

        ts_log: Optional[SnapshotLog] = None
        ts_task: Optional[asyncio.Task] = None
        if timeseries_path is not None:
            import time as time_module

            ts_log = SnapshotLog(timeseries_path, windows=True)

            async def sample_timeseries() -> None:
                while True:
                    await asyncio.sleep(max(0.05, timeseries_interval))
                    ts_log.append(registry.snapshot(),
                                  ts=time_module.time(),
                                  extra={"schedule": schedule})

            ts_task = asyncio.ensure_future(sample_timeseries())

        tasks = [asyncio.ensure_future(nemesis.run())]
        for client, kinds, prefix in plans:
            think = duration / (len(kinds) + 1) if kinds else 0.0
            registers = None
            if sampler is not None:
                krng = rng.fork(f"{prefix}/keys")
                registers = [sampler.key(krng) for _ in kinds]
            tasks.append(asyncio.ensure_future(_client_loop(
                client, trace, kinds, think, rng.fork(prefix), value_size,
                f"{prefix}/{seed}", errors, concurrency=concurrency,
                registers=registers)))
        try:
            await asyncio.gather(*tasks)
        finally:
            if ts_task is not None:
                ts_task.cancel()
                try:
                    await ts_task
                except asyncio.CancelledError:
                    pass
            if ts_log is not None:
                import time as time_module

                # One final window so short runs still get a snapshot.
                # Same ``extra`` as the periodic appends: the extra keys
                # the window-delta series, so changing it would reset
                # the baseline and double-count the run.
                ts_log.append(registry.snapshot(), ts=time_module.time(),
                              extra={"schedule": schedule})
                ts_log.close()
        if getattr(cluster, "chaos_plan", None) is not None:
            cluster.chaos_plan.heal()

        if keys > 1:
            safety = check_safety_per_register(trace,
                                               initial_value=initial_value)
        else:
            safety = check_safety(trace, initial_value=initial_value)
        plan = getattr(cluster, "chaos_plan", None)
        return SoakResult(
            algorithm=algorithm, schedule=schedule, seed=seed, trace=trace,
            safety=safety, nemesis_events=list(nemesis.events),
            fault_counts=dict(plan.counts) if plan is not None else {},
            client_stats={c.client_id: c.stats()
                          for c in [writer] + readers},
            errors=errors, wall_time=loop.time() - started,
            procs=procs, keys=keys,
            snapshot_bytes=_snapshot_sizes(snapshot_dir),
            metrics=registry.snapshot(),
        )
    finally:
        await cluster.stop()
        if own_snapshots:
            shutil.rmtree(snapshot_dir, ignore_errors=True)
