"""Timed fault schedules run concurrently with a live workload.

A nemesis schedule is a sorted list of :class:`NemesisStep` -- *when* to
apply *which* fault to *which* servers.  Schedules are built up front
from a seed (:func:`build_schedule`), so the injected fault sequence is
fully determined before the workload starts: replaying the same named
schedule with the same seed and server set injects the same faults at
the same offsets, which is what the determinism check in the soak test
asserts.

Named schedules (except ``exceed-f``) keep every window down to at most
``f`` servers faulted at a time, so the paper's liveness condition
(``n - f`` reachable servers, Lemma 6) holds throughout and every client
operation must still complete.  ``f-concurrent`` spends the whole fault
budget at once -- exactly ``f`` servers down simultaneously -- and
``exceed-f`` deliberately crashes ``f + 1``, demonstrating the *loss* of
liveness as a negative test.

A nemesis drives any cluster-like object that offers the capabilities
its steps need: ``crash``/``restart`` methods for process faults (both
:class:`~repro.runtime.cluster.LocalCluster` and
:class:`~repro.deploy.supervisor.ClusterSupervisor` -- the latter backs
them with SIGKILL and snapshot-recovering respawns), a ``chaos_plan``
for frame-level faults, and ``proxies`` for connection severing.
Capability checks happen up front, so an incompatible schedule fails at
construction rather than mid-soak.
"""

from __future__ import annotations

import asyncio
import logging
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.obs import MetricRegistry
from repro.sim.rng import SimRng
from repro.types import ProcessId

logger = logging.getLogger(__name__)

#: Named schedules understood by :func:`build_schedule` and the CLI.
SCHEDULES = ("none", "crash-restart", "rolling-partition", "flaky-links",
             "combo", "f-concurrent", "exceed-f")

#: Schedules made purely of crash/restart steps -- the ones a
#: process-per-node cluster (no chaos proxies) can run.
PROCESS_SCHEDULES = ("none", "crash-restart", "f-concurrent", "exceed-f")

#: Capability each action needs from the cluster object.
_NEEDS_PLAN = ("partition", "heal", "degrade")
_NEEDS_PROXIES = ("sever",)
_NEEDS_CRASH = ("crash", "restart")


@dataclass(frozen=True)
class NemesisStep:
    """One scheduled fault application.

    ``action`` is one of ``crash``, ``restart``, ``partition``, ``heal``,
    ``sever`` or ``degrade``; ``rates`` carries :class:`LinkPolicy`
    overrides for ``degrade`` as ``(name, value)`` pairs (kept as a tuple
    so steps stay hashable and comparable for the determinism check).
    """

    at: float
    action: str
    targets: Tuple[ProcessId, ...] = ()
    rates: Tuple[Tuple[str, float], ...] = ()

    def describe(self) -> str:
        """Stable one-line rendering (the determinism check compares these)."""
        detail = ""
        if self.rates:
            detail = " " + ",".join(f"{k}={v:g}" for k, v in self.rates)
        return f"{self.at:.2f}s {self.action} {','.join(self.targets)}{detail}"


class Nemesis:
    """Apply a schedule of faults to a cluster that can execute it.

    Each step's action is checked against the cluster's capabilities at
    construction: frame-level actions (``partition``/``heal``/``degrade``)
    need a ``chaos_plan``, ``sever`` needs live ``proxies``, and
    ``crash``/``restart`` need the corresponding methods (a
    :class:`~repro.deploy.supervisor.ClusterSupervisor` implements them
    with SIGKILL and respawn-from-snapshot -- the real-crash mode).
    """

    def __init__(self, cluster, steps: Sequence[NemesisStep],
                 registry: Optional[MetricRegistry] = None) -> None:
        self.cluster = cluster
        self.registry = registry
        self.steps = sorted(steps, key=lambda step: step.at)
        for step in self.steps:
            if (step.action in _NEEDS_PLAN
                    and getattr(cluster, "chaos_plan", None) is None):
                raise ConfigurationError(
                    f"step {step.describe()!r} needs a chaos-enabled "
                    f"cluster (LocalCluster(..., chaos=True))")
            if (step.action in _NEEDS_PROXIES
                    and not getattr(cluster, "proxies", None)):
                raise ConfigurationError(
                    f"step {step.describe()!r} needs chaos proxies in "
                    f"front of the nodes")
            if (step.action in _NEEDS_CRASH
                    and not (hasattr(cluster, "crash")
                             and hasattr(cluster, "restart"))):
                raise ConfigurationError(
                    f"step {step.describe()!r} needs crash/restart "
                    f"support on the cluster")
        #: Applied steps, in order -- the injected-fault record.
        self.events: List[str] = []

    async def run(self) -> List[str]:
        """Apply every step at its offset; returns the event log."""
        loop = asyncio.get_event_loop()
        started = loop.time()
        for step in self.steps:
            delay = started + step.at - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            await self._apply(step)
            self.events.append(step.describe())
        return self.events

    async def _apply(self, step: NemesisStep) -> None:
        logger.info("nemesis: %s", step.describe())
        if self.registry is not None:
            self.registry.counter("nemesis_steps_total",
                                  action=step.action).inc()
        plan = self.cluster.chaos_plan
        if step.action == "crash":
            for pid in step.targets:
                await self.cluster.crash(pid)
        elif step.action == "restart":
            for pid in step.targets:
                await self.cluster.restart(pid)
        elif step.action == "partition":
            for pid in step.targets:
                plan.blackhole(str(pid))
        elif step.action == "heal":
            if step.targets:
                for pid in step.targets:
                    plan.heal(str(pid))
            else:
                plan.heal()
        elif step.action == "sever":
            for pid in step.targets:
                self.cluster.proxies[pid].sever_all()
        elif step.action == "degrade":
            for pid in step.targets:
                plan.set_policy(str(pid), **dict(step.rates))
        else:
            raise ConfigurationError(f"unknown nemesis action {step.action!r}")


def build_schedule(name: str, server_ids: Sequence[ProcessId], f: int,
                   seed: int = 0, start: float = 0.5,
                   period: float = 1.0) -> List[NemesisStep]:
    """Build the named schedule for a cluster of ``server_ids``.

    Every window of every schedule except ``exceed-f`` faults at most
    ``f`` servers at once, so ``n - f`` servers stay reachable and
    liveness must hold; ``f-concurrent`` takes all ``f`` down in a single
    step (the paper's worst *tolerated* case), while ``exceed-f`` crashes
    ``f + 1`` concurrently and holds them down for two periods -- the
    smallest violation of the fault budget, expected to cost liveness.
    The victim order is drawn from ``seed``; equal inputs yield an
    identical step list.
    """
    if name not in SCHEDULES:
        raise ConfigurationError(
            f"unknown nemesis schedule {name!r}; choose from {SCHEDULES}")
    servers = list(server_ids)
    rng = SimRng(seed, f"nemesis/{name}")
    steps: List[NemesisStep] = []
    t = start

    def crash_restart_cycles() -> None:
        nonlocal t
        for pid in rng.sample(servers, min(f, len(servers))):
            steps.append(NemesisStep(t, "crash", (pid,)))
            steps.append(NemesisStep(t + 0.5 * period, "restart", (pid,)))
            t += period

    def rolling_partition() -> None:
        nonlocal t
        order = list(servers)
        rng.shuffle(order)
        for pid in order:
            steps.append(NemesisStep(t, "partition", (pid,)))
            steps.append(NemesisStep(t + 0.5 * period, "heal", (pid,)))
            t += period

    def concurrent_crash(count: int, cycles: int, hold: float) -> None:
        nonlocal t
        for _ in range(cycles):
            victims = tuple(rng.sample(servers, min(count, len(servers))))
            steps.append(NemesisStep(t, "crash", victims))
            steps.append(NemesisStep(t + hold, "restart", victims))
            t += hold + 0.5 * period

    if name == "none":
        return steps
    if name in ("crash-restart", "combo"):
        crash_restart_cycles()
    if name in ("rolling-partition", "combo"):
        rolling_partition()
    if name == "f-concurrent":
        # The whole fault budget at once, twice: exactly f servers down
        # simultaneously still leaves n - f reachable (Lemma 6).
        concurrent_crash(f, cycles=2, hold=0.5 * period)
    if name == "exceed-f":
        # One server past the budget, held down for two periods: clients
        # cannot gather n - f replies, so operations in the window stall.
        concurrent_crash(f + 1, cycles=1, hold=2.0 * period)
    if name == "flaky-links":
        for pid in rng.sample(servers, min(f, len(servers))):
            rates = (("drop_rate", 0.15), ("delay_rate", 0.3),
                     ("delay_min", 0.01), ("delay_max", 0.05),
                     ("duplicate_rate", 0.05))
            steps.append(NemesisStep(t, "degrade", (pid,), rates))
            steps.append(NemesisStep(t + 2.0 * period, "sever", (pid,)))
            steps.append(NemesisStep(t + 3.0 * period, "heal", (pid,)))
            t += 3.5 * period
    return steps
