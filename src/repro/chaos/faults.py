"""Deterministic per-link fault plans.

A :class:`FaultPlan` decides the fate of every frame crossing a chaos
proxy.  Decisions are drawn from seeded per-``(link, direction)`` RNG
streams (:class:`~repro.sim.rng.SimRng` forks), and every frame consumes
exactly two draws regardless of outcome, so the decision sequence on a
link is a pure function of ``(seed, link, direction, frame index,
policy in force)`` -- replaying the same schedule with the same seed
injects the same fault sequence.

The plan is also the runtime control surface: the nemesis flips links
into blackhole, degrades them with drop/delay rates, and heals them, all
without touching the proxy's sockets.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.sim.rng import SimRng

#: Keep the injected-fault log bounded under long soaks.
MAX_EVENTS = 10_000


class FaultKind(enum.Enum):
    """What happens to one frame."""

    DELIVER = "deliver"
    DROP = "drop"
    DELAY = "delay"
    DUPLICATE = "duplicate"
    SEVER = "sever"
    BLACKHOLE = "blackhole"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Decision:
    """The plan's verdict for one frame.

    ``delay`` is served inline by the proxy (it holds the link's pump
    loop, modelling pacing/service time), while ``latency`` is a
    propagation delay: delivery is *scheduled* for later without
    blocking frames behind it, so concurrent traffic overlaps the wait
    like it does on a real wire.
    """

    kind: FaultKind
    delay: float = 0.0
    latency: float = 0.0


@dataclass
class LinkPolicy:
    """Fault rates in force on one link (or the plan-wide default).

    Rates are per-frame probabilities; ``sever``, ``drop`` and
    ``duplicate`` are mutually exclusive draws, ``delay`` applies to the
    remainder.  ``throttle`` is a fixed pacing delay added to every
    delivered frame (it serializes the link -- a bandwidth bound);
    ``latency`` is a fixed propagation delay applied to every delivered
    frame *concurrently* (frames behind it are not held up -- an RTT
    bound, what a latency-hiding client pipeline overlaps).
    ``blackhole`` silently discards everything (a live connection that
    transports nothing -- how a partition looks from the endpoints).
    """

    drop_rate: float = 0.0
    delay_rate: float = 0.0
    delay_min: float = 0.02
    delay_max: float = 0.2
    duplicate_rate: float = 0.0
    sever_rate: float = 0.0
    throttle: float = 0.0
    latency: float = 0.0
    blackhole: bool = False


class FaultPlan:
    """Seeded, per-link fault decisions plus a runtime control surface."""

    def __init__(self, seed: int = 0,
                 default_policy: Optional[LinkPolicy] = None) -> None:
        self.seed = int(seed)
        self.default_policy = default_policy or LinkPolicy()
        self._root = SimRng(self.seed, "chaos")
        self._streams: Dict[Tuple[str, str], SimRng] = {}
        self._policies: Dict[str, LinkPolicy] = {}
        self._frames: Counter = Counter()
        self.counts: Counter = Counter()
        self.events: List[str] = []
        self.events_dropped = 0

    # -- policy control --------------------------------------------------
    def policy(self, link: str) -> LinkPolicy:
        """The policy in force on ``link`` (falls back to the default)."""
        return self._policies.get(link, self.default_policy)

    def set_policy(self, link: Optional[str] = None, **rates) -> LinkPolicy:
        """Override fault rates for ``link`` (or the default when None)."""
        base = self.policy(link) if link is not None else self.default_policy
        policy = replace(base, **rates)
        if link is None:
            self.default_policy = policy
        else:
            self._policies[link] = policy
        return policy

    def blackhole(self, link: str) -> None:
        """Discard every frame on ``link`` until :meth:`heal`."""
        self.set_policy(link, blackhole=True)

    def heal(self, link: Optional[str] = None) -> None:
        """Restore ``link`` (or every link) to the default policy."""
        if link is None:
            self._policies.clear()
        else:
            self._policies.pop(link, None)

    @property
    def blackholed(self) -> List[str]:
        """Links currently blackholed."""
        return sorted(link for link, policy in self._policies.items()
                      if policy.blackhole)

    # -- frame decisions -------------------------------------------------
    def _stream(self, link: str, direction: str) -> SimRng:
        key = (link, direction)
        if key not in self._streams:
            self._streams[key] = self._root.fork(f"{link}/{direction}")
        return self._streams[key]

    def decide(self, link: str, direction: str) -> Decision:
        """The fate of the next frame on ``link`` in ``direction``.

        Exactly two uniform draws are consumed per call, so the stream
        position depends only on the frame count -- not on which faults
        fired before.
        """
        stream = self._stream(link, direction)
        u, v = stream.random(), stream.random()
        seq = self._frames[(link, direction)]
        self._frames[(link, direction)] += 1
        policy = self.policy(link)
        if policy.blackhole:
            return self._record(link, direction, seq,
                                Decision(FaultKind.BLACKHOLE))
        edge = policy.sever_rate
        if u < edge:
            return self._record(link, direction, seq, Decision(FaultKind.SEVER))
        edge += policy.drop_rate
        if u < edge:
            return self._record(link, direction, seq, Decision(FaultKind.DROP))
        edge += policy.duplicate_rate
        if u < edge:
            return self._record(link, direction, seq,
                                Decision(FaultKind.DUPLICATE,
                                         delay=policy.throttle,
                                         latency=policy.latency))
        edge += policy.delay_rate
        if u < edge:
            span = policy.delay_max - policy.delay_min
            return self._record(
                link, direction, seq,
                Decision(FaultKind.DELAY,
                         delay=policy.delay_min + v * span + policy.throttle,
                         latency=policy.latency))
        if policy.throttle > 0.0 or policy.latency > 0.0:
            return Decision(FaultKind.DELIVER, delay=policy.throttle,
                            latency=policy.latency)
        return Decision(FaultKind.DELIVER)

    def _record(self, link: str, direction: str, seq: int,
                decision: Decision) -> Decision:
        self.counts[decision.kind.value] += 1
        if len(self.events) < MAX_EVENTS:
            suffix = f" {decision.delay:.3f}s" if decision.delay else ""
            self.events.append(
                f"{link}/{direction}#{seq}: {decision.kind.value}{suffix}")
        else:
            self.events_dropped += 1
        return decision
