"""A frame-aware asyncio TCP interposer that injects faults on a link.

One :class:`ChaosProxy` fronts one server node: clients dial the proxy,
the proxy dials the real node, and every length-prefixed frame crossing
either direction is submitted to the shared :class:`FaultPlan` for a
verdict.  Because the proxy speaks the runtime's framing (4-byte length
prefix), faults land on protocol-message boundaries -- a dropped frame
is a lost message, not a torn one.

The proxy is also the hand that executes connection-level faults: the
nemesis can :meth:`sever_all` live pipes (both sides see a reset) while
the plan's blackhole flag silently swallows traffic on connections that
stay open.
"""

from __future__ import annotations

import asyncio
import logging
from typing import Optional, Set, Tuple

from repro.chaos.faults import FaultKind, FaultPlan
from repro.errors import ProtocolError
from repro.obs import MetricRegistry
from repro.transport.codec import read_frame, write_frame

logger = logging.getLogger(__name__)


class _Severed(Exception):
    """The plan ordered this connection cut."""


class ChaosProxy:
    """Interpose on the TCP link in front of one server node.

    ``link`` names the link in the plan (the cluster uses the server id);
    ``upstream`` is the real node's ``(host, port)``.
    """

    def __init__(self, link: str, upstream: Tuple[str, int], plan: FaultPlan,
                 host: str = "127.0.0.1", port: int = 0,
                 registry: Optional[MetricRegistry] = None) -> None:
        self.link = link
        self.upstream = upstream
        self.plan = plan
        self.host = host
        self.port = port
        self.registry = registry if registry is not None else MetricRegistry()
        #: Per-direction frames relayed; verdicts land in
        #: ``proxy_faults_total{link,kind}`` (mirroring ``plan.counts``
        #: but scrapeable alongside everything else).
        self._frames = {
            direction: self.registry.counter(
                "proxy_frames_total", link=link, direction=direction)
            for direction in ("c2s", "s2c")
        }
        self._severed = self.registry.counter(
            "proxy_severed_total", link=link)
        self._server: Optional[asyncio.AbstractServer] = None
        self._writers: Set[asyncio.StreamWriter] = set()
        self._pipes: Set[asyncio.Task] = set()

    # -- lifecycle -------------------------------------------------------
    async def start(self) -> None:
        """Bind the proxy listener; fills in ``self.port`` when it was 0."""
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        logger.info("chaos proxy for %s listening on %s:%d -> %s:%d",
                    self.link, self.host, self.port, *self.upstream)

    async def stop(self) -> None:
        """Close the listener and every live pipe."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.sever_all()
        for task in list(self._pipes):
            try:
                await task
            except (asyncio.CancelledError, Exception):  # pragma: no cover
                pass

    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` clients should dial instead of the node."""
        return (self.host, self.port)

    # -- connection-level faults ----------------------------------------
    def sever_all(self) -> int:
        """Cut every live connection through this proxy; returns the count."""
        count = len(self._writers)
        if count:
            self._severed.inc(count)
        for writer in list(self._writers):
            writer.close()
        return count

    def blackhole(self) -> None:
        """Swallow all traffic on this link until :meth:`heal`."""
        self.plan.blackhole(self.link)

    def heal(self) -> None:
        """Restore this link to the plan's default policy."""
        self.plan.heal(self.link)

    # -- data path -------------------------------------------------------
    async def _serve_connection(self, client_reader: asyncio.StreamReader,
                                client_writer: asyncio.StreamWriter) -> None:
        try:
            upstream_reader, upstream_writer = await asyncio.open_connection(
                *self.upstream)
        except OSError:
            # Node down (crashed / restarting): refuse, so the client's
            # backoff takes over.
            client_writer.close()
            return
        self._writers.add(client_writer)
        self._writers.add(upstream_writer)
        pipes = [
            asyncio.ensure_future(
                self._pipe(client_reader, upstream_writer, "c2s")),
            asyncio.ensure_future(
                self._pipe(upstream_reader, client_writer, "s2c")),
        ]
        self._pipes.update(pipes)
        try:
            # Either direction ending (EOF, reset, sever verdict) tears
            # down the whole connection, like a real broken TCP link.
            await asyncio.wait(pipes, return_when=asyncio.FIRST_COMPLETED)
        finally:
            for pipe in pipes:
                pipe.cancel()
                self._pipes.discard(pipe)
            for writer in (client_writer, upstream_writer):
                self._writers.discard(writer)
                writer.close()
            for writer in (client_writer, upstream_writer):
                try:
                    await writer.wait_closed()
                except (ConnectionResetError, BrokenPipeError):
                    pass

    async def _pipe(self, reader: asyncio.StreamReader,
                    writer: asyncio.StreamWriter, direction: str) -> None:
        loop = asyncio.get_running_loop()
        try:
            while True:
                frame = await read_frame(reader)
                decision = self.plan.decide(self.link, direction)
                self._frames[direction].inc()
                if decision.kind is not FaultKind.DELIVER:
                    self.registry.counter(
                        "proxy_faults_total", link=self.link,
                        kind=decision.kind.value).inc()
                if decision.kind in (FaultKind.DROP, FaultKind.BLACKHOLE):
                    continue
                if decision.kind is FaultKind.SEVER:
                    raise _Severed()
                if decision.delay > 0.0:
                    # Pacing/jitter holds the pump: frames behind this
                    # one wait their turn (a service-time bound).
                    await asyncio.sleep(decision.delay)
                copies = 2 if decision.kind is FaultKind.DUPLICATE else 1
                if decision.latency > 0.0:
                    # Propagation delay: delivery is scheduled, the pump
                    # moves on.  The latency is constant per link, so
                    # timer order preserves the link's FIFO.
                    loop.call_later(decision.latency, self._deliver_late,
                                    writer, frame, copies)
                    continue
                for _ in range(copies):
                    write_frame(writer, frame)
                await writer.drain()
        except (asyncio.IncompleteReadError, ConnectionResetError,
                BrokenPipeError, ProtocolError, _Severed,
                asyncio.CancelledError):
            return

    def _deliver_late(self, writer: asyncio.StreamWriter, frame: bytes,
                      copies: int) -> None:
        """Timer callback: deliver a latency-delayed frame (best effort)."""
        if writer.is_closing():
            return  # link died while the frame was in flight
        try:
            for _ in range(copies):
                write_frame(writer, frame)
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
