"""Runtime fault injection for the asyncio TCP deployment.

The simulator owns *modelled* faults (:mod:`repro.sim.failures`,
:mod:`repro.sim.partitions`); this package owns *real* ones.  It breaks
live TCP links the way production networks do -- dropped frames, delays,
duplicates, severed connections, blackholed links -- and crash-restarts
server processes, so the runtime's liveness claim (clients wait for
``n - f`` replies, Lemma 6) and safety claim (up to ``f`` misbehaving
servers) can be demonstrated outside the simulator.

Three layers:

* :class:`~repro.chaos.faults.FaultPlan` -- a deterministic, seeded
  per-link policy deciding the fate of every frame (drop / delay /
  duplicate / sever / blackhole / throttle / deliver).
* :class:`~repro.chaos.proxy.ChaosProxy` -- an asyncio TCP interposer
  that :class:`~repro.runtime.cluster.LocalCluster` places in front of
  each server node and that applies the plan frame-by-frame.
* :class:`~repro.chaos.nemesis.Nemesis` -- a scheduler that runs a timed
  fault schedule (partitions, crash-restarts, severs, link degradation)
  concurrently with a workload; :func:`~repro.chaos.soak.run_soak` ties
  a schedule and a mixed read/write workload together and checks the
  result against the paper's safety definition.
"""

from repro.chaos.faults import Decision, FaultKind, FaultPlan, LinkPolicy
from repro.chaos.nemesis import (
    PROCESS_SCHEDULES,
    SCHEDULES,
    Nemesis,
    NemesisStep,
    build_schedule,
)
from repro.chaos.proxy import ChaosProxy
from repro.chaos.soak import SoakResult, run_soak

__all__ = [
    "ChaosProxy",
    "Decision",
    "FaultKind",
    "FaultPlan",
    "LinkPolicy",
    "Nemesis",
    "NemesisStep",
    "PROCESS_SCHEDULES",
    "SCHEDULES",
    "SoakResult",
    "build_schedule",
    "run_soak",
]
