"""Open-loop arrival processes for the load rig.

A *closed-loop* driver (``apply_schedule_async``, the soak client loops)
submits the next operation only after the previous one finished, so when
the system slows down the driver slows down with it and the recorded
latencies silently exclude the queueing delay a real open population
would have suffered -- the *coordinated omission* problem.  An
*open-loop* driver decides every operation's submission instant ahead of
time from an arrival process and measures each operation from that
intended instant, whether or not the system was ready for it.

This module is the schedule half of that driver: :func:`generate_arrivals`
turns a rate, duration and mix into a deterministic list of
:class:`Arrival` records (Poisson interarrivals, Zipf key popularity,
Bernoulli read/write choice -- all drawn from one :class:`SimRng`, so a
seed pins the byte-exact offered load).  The execution half lives in
:mod:`repro.load.worker`, which replays the arrivals against live
clients and records honest latency; it extends the closed-loop session
model of :func:`repro.workloads.generator.apply_schedule_async` with the
scheduled-start measurement discipline.

Warm-up / measure / cool-down windows are part of the schedule too
(:class:`Windows`): classifying an operation by its *scheduled* offset --
never by when it actually ran -- keeps a backlogged run from smuggling
late warm-up operations into the measured window or vice versa.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.keys import key_name
from repro.sim.rng import SimRng
from repro.workloads.generator import ZipfSampler

#: Window labels, in schedule order.
WARMUP, MEASURE, COOLDOWN = "warmup", "measure", "cooldown"


@dataclass(frozen=True)
class Arrival:
    """One scheduled operation of an open-loop run.

    ``offset`` is seconds since the run's epoch -- the instant the
    operation is *due*, which is also the instant latency is measured
    from.  ``key`` is ``None`` for single-register workloads.
    """

    offset: float
    kind: str                 # "read" | "write"
    key: Optional[str] = None


@dataclass(frozen=True)
class Windows:
    """Warm-up / measure / cool-down phases of an open-loop schedule."""

    warmup: float
    measure: float
    cooldown: float = 0.0

    def __post_init__(self) -> None:
        if self.warmup < 0 or self.measure <= 0 or self.cooldown < 0:
            raise ValueError(
                "warmup/cooldown must be >= 0 and measure > 0")

    @property
    def total(self) -> float:
        """Seconds from epoch to the last scheduled arrival."""
        return self.warmup + self.measure + self.cooldown

    @property
    def measure_start(self) -> float:
        return self.warmup

    @property
    def measure_end(self) -> float:
        return self.warmup + self.measure

    def label(self, offset: float) -> str:
        """Which window a *scheduled* offset belongs to."""
        if offset < self.warmup:
            return WARMUP
        if offset < self.measure_end:
            return MEASURE
        return COOLDOWN


def poisson_offsets(rate: float, duration: float, rng: SimRng) -> List[float]:
    """Arrival offsets of a Poisson process of ``rate`` per second.

    Exponential interarrivals drawn from ``rng`` until ``duration`` is
    exceeded; deterministic for a given rng state.  Returns offsets in
    ``[0, duration)``, strictly increasing.
    """
    if rate <= 0:
        raise ValueError("rate must be positive")
    if duration <= 0:
        raise ValueError("duration must be positive")
    offsets: List[float] = []
    now = 0.0
    mean = 1.0 / rate
    while True:
        now += rng.expovariate(1.0 / mean)
        if now >= duration:
            return offsets
        offsets.append(now)


def generate_arrivals(rate: float, windows: Windows, read_ratio: float,
                      rng: SimRng, num_keys: int = 1,
                      zipf_s: float = 0.99) -> List[Arrival]:
    """A deterministic open-loop schedule covering every window.

    Draws Poisson(``rate``) arrival offsets over ``windows.total``
    seconds, then a Bernoulli(``read_ratio``) read/write choice and --
    when ``num_keys > 1`` -- a Zipf(``zipf_s``) key per arrival, all from
    the one ``rng`` so the whole offered load replays byte-for-byte
    under a fixed seed.
    """
    if not 0.0 <= read_ratio <= 1.0:
        raise ValueError("read_ratio must be within [0, 1]")
    if num_keys < 1:
        raise ValueError("num_keys must be >= 1")
    sampler = ZipfSampler(num_keys, zipf_s) if num_keys > 1 else None
    arrivals: List[Arrival] = []
    for offset in poisson_offsets(rate, windows.total, rng):
        kind = "read" if rng.random() < read_ratio else "write"
        key = sampler.key(rng) if sampler is not None else None
        arrivals.append(Arrival(offset=offset, kind=kind, key=key))
    return arrivals


def sample_key_ranks(num_keys: int, samples: int) -> List[int]:
    """Popularity ranks whose keys get full trace sampling.

    A handful of ranks spread from the warm head to the cold tail so the
    sampled consistency trace sees contended and quiet keys alike,
    without drowning in the hottest key's traffic.  Rank 0 (the hottest
    key) is deliberately excluded for that reason.
    """
    if num_keys <= 1 or samples <= 0:
        return []
    ranks = []
    for i in range(samples):
        # Geometric-ish spread over (0, num_keys): 1/8, 1/4, 1/2 ... of
        # the keyspace, clamped and deduplicated.
        rank = max(1, num_keys >> (samples - i))
        rank = min(rank, num_keys - 1)
        if rank not in ranks:
            ranks.append(rank)
    return ranks


def sample_keys(num_keys: int, samples: int) -> List[str]:
    """Key names for :func:`sample_key_ranks` (``key-<rank>``)."""
    return [key_name(rank) for rank in sample_key_ranks(num_keys, samples)]
