"""Reproducible operation schedules.

A :class:`WorkloadSpec` describes the statistical shape of a workload;
:func:`generate_schedule` turns it into a concrete list of
:class:`ScheduledOp` (deterministic given the RNG), and
:func:`apply_schedule` replays that list onto a register system.  Keeping
the three stages separate lets one schedule drive *different algorithms* in
a comparison experiment -- same operations, same instants, same values.

Written values are unique (a sequence number embedded in the payload) so
the consistency checkers can map every read back to the write that produced
its value.
"""

from __future__ import annotations

import asyncio
import bisect
from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence

from repro.core.keys import key_name
from repro.sim.rng import SimRng
from repro.types import ProcessId

#: Read share measured across Facebook's TAO workloads (paper, fn. 1).
TAO_READ_RATIO = 0.998


class ZipfSampler:
    """Zipf(s) key-popularity sampler with a precomputed CDF.

    Rank ``i`` (0-based) is drawn with probability proportional to
    ``1 / (i + 1) ** s`` -- rank 0 is the hottest key.  ``s = 0`` is
    uniform.  Each :meth:`sample` is one ``rng.random()`` draw plus a
    binary search, so sampling is O(log n) per op instead of the O(n)
    of :meth:`repro.sim.rng.SimRng.zipf_index` -- the difference between
    instant and minutes when generating 10k-key schedules.
    """

    def __init__(self, num_keys: int, s: float) -> None:
        if num_keys < 1:
            raise ValueError("num_keys must be >= 1")
        if s < 0:
            raise ValueError("zipf exponent must be >= 0")
        self.num_keys = num_keys
        self.s = s
        cdf: List[float] = []
        total = 0.0
        for rank in range(1, num_keys + 1):
            total += 1.0 / rank ** s
            cdf.append(total)
        self._cdf = [mass / total for mass in cdf]

    def sample(self, rng: SimRng) -> int:
        """Draw a key index in ``[0, num_keys)`` (0 = hottest)."""
        return bisect.bisect_left(self._cdf, rng.random())

    def key(self, rng: SimRng) -> str:
        """Draw a key *name* (``key-<i>``, see :func:`key_name`)."""
        return key_name(self.sample(rng))


@dataclass(frozen=True)
class ScheduledOp:
    """One operation of a concrete schedule."""

    kind: str              # "read" | "write"
    client_index: int      # index into the system's readers or writers
    at: float              # invocation time (simulated seconds)
    value: Optional[bytes] = None  # writes only
    register: Optional[str] = None  # named register (namespaced systems)


@dataclass
class WorkloadSpec:
    """Statistical description of a workload.

    Parameters
    ----------
    num_ops:
        Total operations to schedule.
    read_ratio:
        Fraction of operations that are reads (0..1).
    value_size:
        Payload size of written values in bytes.  Values are padded to this
        size around a unique sequence header.
    mean_interarrival:
        Mean gap between consecutive operation *submissions* (exponential),
        in simulated seconds.  Note that a client busy with a previous
        operation queues the next one (clients are sequential).
    num_writers / num_readers:
        Client pool sizes operations are spread over (round-robin by
        default, random with ``randomize_clients``).
    randomize_clients:
        Pick the issuing client uniformly at random instead of round-robin.
    num_keys / key_skew:
        When ``num_keys > 1`` each operation targets a named register
        ``key-<i>`` drawn Zipf(key_skew) via :class:`ZipfSampler` -- the
        hot-key pattern of KV workloads.  Requires a namespaced (or
        sharded-keyspace) system to take effect.
    keys / zipf_s:
        Aliases for ``num_keys`` / ``key_skew`` matching the CLI flags
        (``--keys`` / ``--zipf-s``); when given they override the
        aliased field.
    concurrency:
        In-flight operations per client when the schedule is replayed
        onto live clients with :func:`apply_schedule_async` (the
        simulator replay ignores it -- simulated clients are sequential).
    """

    num_ops: int = 200
    read_ratio: float = 0.9
    value_size: int = 64
    mean_interarrival: float = 1.0
    num_writers: int = 2
    num_readers: int = 4
    randomize_clients: bool = True
    num_keys: int = 1
    key_skew: float = 0.99
    concurrency: int = 1
    keys: Optional[int] = None
    zipf_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.keys is not None:
            self.num_keys = self.keys
        self.keys = self.num_keys
        if self.zipf_s is not None:
            self.key_skew = self.zipf_s
        self.zipf_s = self.key_skew
        if not 0.0 <= self.read_ratio <= 1.0:
            raise ValueError("read_ratio must be within [0, 1]")
        if self.num_ops < 0 or self.value_size < 0:
            raise ValueError("num_ops and value_size must be non-negative")
        if self.mean_interarrival <= 0:
            raise ValueError("mean_interarrival must be positive")
        if self.num_writers < 1 or self.num_readers < 1:
            raise ValueError("need at least one writer and one reader")
        if self.num_keys < 1 or self.key_skew < 0:
            raise ValueError("num_keys must be >= 1 and key_skew >= 0")
        if self.concurrency < 1:
            raise ValueError("concurrency must be at least 1")


def make_value(sequence: int, size: int) -> bytes:
    """A unique payload of (at least) ``size`` bytes for write ``sequence``.

    The sequence number leads the payload and is never truncated --
    uniqueness is what lets the consistency checkers map a read back to the
    write that produced its value, so it takes priority over exact sizing
    for very small ``size`` values.
    """
    header = f"{sequence:010d}-".encode()
    if size <= len(header):
        return header
    return header + b"x" * (size - len(header))


def generate_schedule(spec: WorkloadSpec, rng: SimRng,
                      start_at: float = 0.0) -> List[ScheduledOp]:
    """Produce a deterministic schedule from ``spec`` and ``rng``."""
    schedule: List[ScheduledOp] = []
    now = start_at
    write_seq = 0
    next_writer = 0
    next_reader = 0
    sampler = (ZipfSampler(spec.num_keys, spec.key_skew)
               if spec.num_keys > 1 else None)
    for _ in range(spec.num_ops):
        now += rng.expovariate(1.0 / spec.mean_interarrival)
        register = None
        if sampler is not None:
            register = sampler.key(rng)
        if rng.random() < spec.read_ratio:
            if spec.randomize_clients:
                client = rng.randint(0, spec.num_readers - 1)
            else:
                client, next_reader = next_reader, (next_reader + 1) % spec.num_readers
            schedule.append(ScheduledOp(kind="read", client_index=client,
                                        at=now, register=register))
        else:
            if spec.randomize_clients:
                client = rng.randint(0, spec.num_writers - 1)
            else:
                client, next_writer = next_writer, (next_writer + 1) % spec.num_writers
            value = make_value(write_seq, spec.value_size)
            write_seq += 1
            schedule.append(ScheduledOp(kind="write", client_index=client,
                                        at=now, value=value, register=register))
    return schedule


def apply_schedule(system, schedule: Sequence[ScheduledOp]) -> List:
    """Submit every scheduled op to ``system``; returns the handles.

    ``system`` is any object with ``write(value, writer=..., at=...)`` and
    ``read(reader=..., at=...)`` -- in practice a
    :class:`repro.core.register.RegisterSystem`.
    """
    handles = []
    for op in schedule:
        kwargs = {}
        if op.register is not None:
            kwargs["register"] = op.register
        if op.kind == "write":
            handles.append(system.write(op.value, writer=op.client_index,
                                        at=op.at, **kwargs))
        else:
            handles.append(system.read(reader=op.client_index, at=op.at,
                                       **kwargs))
    return handles


async def apply_schedule_async(writers: Sequence[Any], readers: Sequence[Any],
                               schedule: Sequence[ScheduledOp],
                               concurrency: int = 1) -> List[Any]:
    """Replay a schedule onto live clients, up to ``concurrency`` at once.

    ``writers`` and ``readers`` are connected
    :class:`~repro.runtime.client.AsyncRegisterClient` pools indexed by
    each op's ``client_index`` (modulo pool size).  Submission is
    open-loop -- as fast as the concurrency cap admits, ignoring the
    schedule's simulated instants -- and results come back in schedule
    order (the committed tag for writes, the value for reads).  Per-op
    exceptions are returned in place rather than raised, so one timed-out
    operation does not hide the rest of the replay.
    """
    if concurrency < 1:
        raise ValueError("concurrency must be at least 1")
    limit = asyncio.Semaphore(concurrency)
    results: List[Any] = [None] * len(schedule)

    async def run_one(index: int, op: ScheduledOp) -> None:
        kwargs = {"register": op.register} if op.register is not None else {}
        async with limit:
            try:
                if op.kind == "write":
                    pool = writers
                    client = pool[op.client_index % len(pool)]
                    results[index] = await client.write(op.value, **kwargs)
                else:
                    pool = readers
                    client = pool[op.client_index % len(pool)]
                    results[index] = await client.read(**kwargs)
            except Exception as exc:
                results[index] = exc

    await asyncio.gather(*(run_one(index, op)
                           for index, op in enumerate(schedule)))
    return results
