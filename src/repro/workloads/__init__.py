"""Workload generation for throughput/latency experiments.

The paper motivates semi-fast registers with read-dominated workloads
(Section I-A cites Facebook's ~99.8 % read share).  This package produces
reproducible operation schedules -- op mix, arrival process, value sizes --
that drivers replay against any :class:`repro.core.register.RegisterSystem`.
"""

from repro.workloads.arrivals import (
    Arrival,
    Windows,
    generate_arrivals,
    poisson_offsets,
    sample_keys,
)
from repro.workloads.generator import (
    ScheduledOp,
    WorkloadSpec,
    ZipfSampler,
    apply_schedule,
    apply_schedule_async,
    generate_schedule,
    TAO_READ_RATIO,
)

__all__ = [
    "Arrival",
    "WorkloadSpec",
    "ScheduledOp",
    "Windows",
    "ZipfSampler",
    "generate_arrivals",
    "generate_schedule",
    "apply_schedule",
    "apply_schedule_async",
    "poisson_offsets",
    "sample_keys",
    "TAO_READ_RATIO",
]
