"""Workload generation for throughput/latency experiments.

The paper motivates semi-fast registers with read-dominated workloads
(Section I-A cites Facebook's ~99.8 % read share).  This package produces
reproducible operation schedules -- op mix, arrival process, value sizes --
that drivers replay against any :class:`repro.core.register.RegisterSystem`.
"""

from repro.workloads.generator import (
    ScheduledOp,
    WorkloadSpec,
    ZipfSampler,
    apply_schedule,
    apply_schedule_async,
    generate_schedule,
    TAO_READ_RATIO,
)

__all__ = [
    "WorkloadSpec",
    "ScheduledOp",
    "ZipfSampler",
    "generate_schedule",
    "apply_schedule",
    "apply_schedule_async",
    "TAO_READ_RATIO",
]
