"""Arithmetic in the finite field GF(2^8).

Elements are integers 0..255.  Addition is XOR; multiplication is polynomial
multiplication modulo the primitive polynomial x^8 + x^4 + x^3 + x^2 + 1
(0x11D).  Multiplication and inversion go through exponential/logarithm
tables built once at import time, giving O(1) field operations.

The field size caps Reed-Solomon codeword length at 255 coded elements,
which is ample: the paper's systems have tens of servers.
"""

from __future__ import annotations

from typing import List

#: Primitive polynomial for GF(2^8): x^8 + x^4 + x^3 + x^2 + 1.
PRIMITIVE_POLY = 0x11D

#: Multiplicative order of the field's generator.
ORDER = 255


def _build_tables() -> tuple:
    exp: List[int] = [0] * (2 * ORDER)
    log: List[int] = [0] * 256
    x = 1
    for i in range(ORDER):
        exp[i] = x
        log[x] = i
        x <<= 1
        if x & 0x100:
            x ^= PRIMITIVE_POLY
    for i in range(ORDER, 2 * ORDER):
        exp[i] = exp[i - ORDER]
    return exp, log


_EXP, _LOG = _build_tables()


class GF256:
    """Namespace of GF(2^8) field operations on plain ints.

    All methods are static; the class exists purely to group the operations
    and their shared tables under one importable name.
    """

    order = ORDER
    size = 256

    @staticmethod
    def validate(a: int) -> int:
        """Check that ``a`` is a field element; returns it unchanged."""
        if not isinstance(a, int) or not 0 <= a <= 255:
            raise ValueError(f"{a!r} is not a GF(256) element")
        return a

    @staticmethod
    def add(a: int, b: int) -> int:
        """Field addition (XOR).  Subtraction is identical in GF(2^8)."""
        return a ^ b

    #: Subtraction equals addition in characteristic-2 fields.
    sub = add

    @staticmethod
    def mul(a: int, b: int) -> int:
        """Field multiplication via log/exp tables."""
        if a == 0 or b == 0:
            return 0
        return _EXP[_LOG[a] + _LOG[b]]

    @staticmethod
    def div(a: int, b: int) -> int:
        """Field division; raises ZeroDivisionError for b == 0."""
        if b == 0:
            raise ZeroDivisionError("division by zero in GF(256)")
        if a == 0:
            return 0
        return _EXP[(_LOG[a] - _LOG[b]) % ORDER]

    @staticmethod
    def inv(a: int) -> int:
        """Multiplicative inverse; raises ZeroDivisionError for 0."""
        if a == 0:
            raise ZeroDivisionError("0 has no inverse in GF(256)")
        return _EXP[ORDER - _LOG[a]]

    @staticmethod
    def pow(a: int, exponent: int) -> int:
        """``a`` raised to an integer power (negative powers allowed)."""
        if a == 0:
            if exponent > 0:
                return 0
            if exponent == 0:
                return 1
            raise ZeroDivisionError("0 to a negative power in GF(256)")
        return _EXP[(_LOG[a] * exponent) % ORDER]

    @staticmethod
    def generator_power(i: int) -> int:
        """The ``i``-th power of the field generator (0x02)."""
        return _EXP[i % ORDER]

    @staticmethod
    def mul_row(c: int) -> List[int]:
        """One row of the multiplication table: ``[c * x for x in 0..255]``.

        Feeds the ``bytes.translate`` kernels in
        :mod:`repro.erasure.kernels`; computed directly from the log/exp
        tables so building a row costs one addition per entry.
        """
        GF256.validate(c)
        if c == 0:
            return [0] * 256
        log_c = _LOG[c]
        return [0] + [_EXP[log_c + _LOG[x]] for x in range(1, 256)]
