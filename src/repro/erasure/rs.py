"""Systematic [n, k] Reed-Solomon code with error-and-erasure decoding.

Encoding: the ``k`` message symbols are interpolated into the unique
polynomial ``p`` of degree < k with ``p(x_i) = m_i`` for the first ``k``
evaluation points, and the codeword is ``(p(x_1), ..., p(x_n))``.  The code
is *systematic* (the first ``k`` coded elements are the message) and *MDS*
(any ``k`` correct elements reconstruct ``p``).

Decoding uses the Berlekamp-Welch algorithm: given ``N`` received points of
which at most ``e`` are wrong, it recovers ``p`` whenever ``N >= k + 2e``.
Missing points (erasures) simply reduce ``N``.  This is the decoder contract
Section IV-A of the paper assumes with ``k = n - f - 2e``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.erasure import kernels
from repro.erasure.gf256 import GF256
from repro.erasure.poly import Poly
from repro.errors import ConfigurationError, DecodingError


def solve_linear_system(matrix: List[List[int]], rhs: List[int]) -> Optional[List[int]]:
    """Solve ``matrix . x = rhs`` over GF(256) by Gaussian elimination.

    Returns one solution (free variables set to 0) or ``None`` when the
    system is inconsistent.  ``matrix`` is modified in place; callers pass
    fresh copies.
    """
    rows = len(matrix)
    cols = len(matrix[0]) if rows else 0
    pivot_of_col: List[Optional[int]] = [None] * cols
    row = 0
    for col in range(cols):
        pivot = next((r for r in range(row, rows) if matrix[r][col] != 0), None)
        if pivot is None:
            continue
        matrix[row], matrix[pivot] = matrix[pivot], matrix[row]
        rhs[row], rhs[pivot] = rhs[pivot], rhs[row]
        inv = GF256.inv(matrix[row][col])
        matrix[row] = [GF256.mul(v, inv) for v in matrix[row]]
        rhs[row] = GF256.mul(rhs[row], inv)
        for r in range(rows):
            if r != row and matrix[r][col] != 0:
                factor = matrix[r][col]
                matrix[r] = [
                    GF256.add(a, GF256.mul(factor, b))
                    for a, b in zip(matrix[r], matrix[row])
                ]
                rhs[r] = GF256.add(rhs[r], GF256.mul(factor, rhs[row]))
        pivot_of_col[col] = row
        row += 1
        if row == rows:
            break
    # Inconsistency: a zero row with non-zero RHS.
    for r in range(row, rows):
        if rhs[r] != 0 and all(v == 0 for v in matrix[r]):
            return None
    solution = [0] * cols
    for col, pivot_row in enumerate(pivot_of_col):
        if pivot_row is not None:
            solution[col] = rhs[pivot_row]
    return solution


#: Recovery-matrix LRU capacity per ``[n, k]`` shape.
_RECOVERY_CACHE_SIZE = 64


class _CodeTables:
    """Tables shared by every :class:`ReedSolomon` instance of one shape.

    Keyed by ``(n, k)`` in :data:`_TABLES_BY_SHAPE`, so short-lived codec
    objects (one per operation in the simulator) never rebuild the parity
    matrix or the recovery matrices; the per-multiplier translation tables
    live process-wide in :mod:`repro.erasure.kernels` already.
    """

    __slots__ = ("parity", "recovery")

    def __init__(self) -> None:
        self.parity: Optional[List[List[int]]] = None
        #: position-tuple -> (recovery matrix, verification matrix), an LRU
        #: ordered oldest-first; see ReedSolomon._recovery_for.
        self.recovery: "OrderedDict[Tuple[int, ...], tuple]" = OrderedDict()


_TABLES_BY_SHAPE: Dict[Tuple[int, int], _CodeTables] = {}


class ReedSolomon:
    """A systematic ``[n, k]`` Reed-Solomon code over GF(2^8)."""

    def __init__(self, n: int, k: int) -> None:
        if not 1 <= k <= n:
            raise ConfigurationError(f"need 1 <= k <= n, got [n={n}, k={k}]")
        if n > GF256.order:
            raise ConfigurationError(
                f"GF(256) supports codewords up to {GF256.order} symbols, got n={n}"
            )
        self.n = n
        self.k = k
        #: Distinct non-zero evaluation points, one per coded element.
        self.points: Tuple[int, ...] = tuple(range(1, n + 1))
        self._tables = _TABLES_BY_SHAPE.setdefault((n, k), _CodeTables())
        #: Alias kept for introspection/tests; the LRU itself is shared.
        self._recovery_cache = self._tables.recovery

    def _parity(self) -> List[List[int]]:
        """``(n-k) x k`` generator columns for the parity positions.

        ``parity[j][i] = l_i(x_{k+j})`` where ``l_i`` is the i-th Lagrange
        basis polynomial over the first ``k`` points.  Computed once per
        shape, so encoding a stripe is a plain matrix-vector product instead
        of a fresh interpolation -- the hot path when striping large values.
        """
        if self._tables.parity is None:
            basis = Poly.lagrange_basis(list(self.points[: self.k]))
            self._tables.parity = [
                [basis[i].evaluate(self.points[j]) for i in range(self.k)]
                for j in range(self.k, self.n)
            ]
        return self._tables.parity

    # -- encoding ----------------------------------------------------------
    def message_polynomial(self, message: Sequence[int]) -> Poly:
        """Interpolate the degree-<k polynomial encoding ``message``."""
        if len(message) != self.k:
            raise ValueError(f"message must have k={self.k} symbols, got {len(message)}")
        return Poly.interpolate(list(zip(self.points[: self.k], message)))

    def encode(self, message: Sequence[int]) -> List[int]:
        """Encode ``k`` symbols into ``n`` coded elements (systematic)."""
        if len(message) != self.k:
            raise ValueError(f"message must have k={self.k} symbols, got {len(message)}")
        codeword = list(message[: self.k])
        for row in self._parity():
            acc = 0
            for coeff, symbol in zip(row, message):
                if coeff and symbol:
                    acc = GF256.add(acc, GF256.mul(coeff, symbol))
            codeword.append(acc)
        return codeword

    def encode_columns(self, cols: Sequence[bytes]) -> List[bytes]:
        """Encode ``k`` equal-length byte columns into ``n`` coded columns.

        Column ``i`` holds message symbol ``i`` of every stripe, so this is
        :meth:`encode` applied to all stripes at once: the systematic
        columns pass through and each parity column is one row of the
        cached parity matrix applied to the message columns via the bulk
        kernels.  Produces bytes identical to the per-stripe scalar path.
        """
        if len(cols) != self.k:
            raise ValueError(f"need k={self.k} columns, got {len(cols)}")
        return [bytes(col) for col in cols] + kernels.matvec(self._parity(), cols)

    @property
    def max_correctable_errors(self) -> int:
        """Errors correctable from a full codeword: ``(n - k) // 2``."""
        return (self.n - self.k) // 2

    # -- decoding ------------------------------------------------------------
    def decode(self, received: Sequence[Tuple[int, int]],
               max_errors: Optional[int] = None) -> List[int]:
        """Recover the message from ``(position, symbol)`` pairs.

        ``received`` holds distinct zero-based codeword positions with their
        (possibly corrupted) symbols.  At most
        ``max_errors`` (default ``(N - k) // 2``) of them may be wrong.
        Raises :class:`DecodingError` when no consistent codeword exists
        within the error budget.
        """
        received = list(received)
        positions = [pos for pos, _ in received]
        if len(set(positions)) != len(positions):
            raise ValueError("received positions must be distinct")
        for pos in positions:
            if not 0 <= pos < self.n:
                raise ValueError(f"position {pos} outside codeword of length {self.n}")
        n_received = len(received)
        if n_received < self.k:
            raise DecodingError(
                f"need at least k={self.k} coded elements, got {n_received}"
            )
        budget = (n_received - self.k) // 2
        if max_errors is not None:
            budget = min(budget, max_errors)
        points = [(self.points[pos], symbol) for pos, symbol in received]
        # Ascending error counts: the clean/e=0 case is a cheap Lagrange
        # interpolation and dominates in practice.  Correctness is kept by
        # the agreement check inside each attempt -- a candidate accepted at
        # error count e agrees with >= N - e points, and with N >= k + 2e'
        # for the budget e' two distinct degree-<k codewords cannot both
        # clear that bar, so the first accepted candidate is the codeword.
        for e in range(0, budget + 1):
            p = self._berlekamp_welch(points, e)
            if p is not None:
                return [p.evaluate(x) for x in self.points[: self.k]]
        raise DecodingError(
            f"cannot decode: {n_received} elements with error budget {budget} "
            f"admit no consistent degree-<{self.k} codeword"
        )

    def decode_value(self, received: Sequence[Tuple[int, int]],
                     max_errors: Optional[int] = None) -> List[int]:
        """Alias of :meth:`decode` kept for API symmetry with encoders."""
        return self.decode(received, max_errors=max_errors)

    def _berlekamp_welch(self, points: Sequence[Tuple[int, int]], e: int) -> Optional[Poly]:
        """One Berlekamp-Welch attempt assuming at most ``e`` errors.

        Finds ``E`` (monic, degree e) and ``Q`` (degree < k+e) with
        ``Q(x_i) = y_i * E(x_i)`` for every received point, then returns
        ``Q / E`` if it is a clean degree-<k polynomial agreeing with all but
        at most ``e`` points.
        """
        k = self.k
        if e == 0:
            candidate = Poly.interpolate(list(points[:k]))
            if candidate.degree >= k:
                return None
            if all(candidate.evaluate(x) == y for x, y in points):
                return candidate
            return None
        return self._berlekamp_welch_with_errors(points, e)

    def _recovery_for(self, positions: Tuple[int, ...]):
        """Cached matrices for the errorless decode of a position set.

        ``recover[i][j]``: contribution of received symbol ``j`` (of the
        first ``k``) to message symbol ``i``.  ``verify[v][j]``: predicted
        symbol at extra received position ``v`` from the same inputs.  The
        cache is keyed by the exact received-position tuple -- constant
        across the stripes of one value, which is the hot path -- and kept
        as an LRU shared by every instance of this ``[n, k]`` shape.
        """
        cache = self._tables.recovery
        cached = cache.get(positions)
        if cached is not None:
            cache.move_to_end(positions)
            return cached
        base_points = [self.points[p] for p in positions[: self.k]]
        extra_points = [self.points[p] for p in positions[self.k:]]
        basis = Poly.lagrange_basis(base_points)
        recover = [[basis[j].evaluate(self.points[i]) for j in range(self.k)]
                   for i in range(self.k)]
        verify = [[basis[j].evaluate(x) for j in range(self.k)]
                  for x in extra_points]
        entry = (recover, verify)
        cache[positions] = entry
        while len(cache) > _RECOVERY_CACHE_SIZE:
            cache.popitem(last=False)
        return entry

    def decode_fast(self, positions: Tuple[int, ...],
                    symbols: Sequence[int]) -> Optional[List[int]]:
        """Errorless decode of one stripe using cached matrices.

        Returns the message if every received symbol is consistent with a
        single codeword, else ``None`` (caller falls back to
        :meth:`decode`).  ``positions`` are distinct codeword positions,
        ``symbols`` the received symbols in the same order.
        """
        if len(positions) < self.k:
            return None
        recover, verify = self._recovery_for(tuple(positions))
        base = symbols[: self.k]
        message = []
        for row in recover:
            acc = 0
            for coeff, symbol in zip(row, base):
                if coeff and symbol:
                    acc = GF256.add(acc, GF256.mul(coeff, symbol))
            message.append(acc)
        for v, row in enumerate(verify):
            acc = 0
            for coeff, symbol in zip(row, base):
                if coeff and symbol:
                    acc = GF256.add(acc, GF256.mul(coeff, symbol))
            if acc != symbols[self.k + v]:
                return None
        return message

    def decode_fast_columns(self, positions: Tuple[int, ...],
                            cols: Sequence[bytes]) -> Tuple[List[bytes], Set[int]]:
        """Errorless decode of every stripe at once using cached matrices.

        ``cols[j]`` holds the symbol received at codeword position
        ``positions[j]`` for every stripe.  Returns ``(message_cols, bad)``:
        the recovered message columns plus the set of stripe indices where
        some extra received symbol disagrees with the reconstruction --
        exactly the stripes :meth:`decode_fast` would return ``None`` for.
        Message columns are only trustworthy at stripes outside ``bad``.
        """
        if len(positions) < self.k:
            raise DecodingError(
                f"need at least k={self.k} coded elements, got {len(positions)}"
            )
        recover, verify = self._recovery_for(tuple(positions))
        base = list(cols[: self.k])
        message = kernels.matvec(recover, base)
        bad: Set[int] = set()
        stripe_count = len(cols[0]) if cols else 0
        if verify:
            predicted = kernels.matvec(verify, base)
            for pred, actual in zip(predicted, cols[self.k:]):
                bad.update(kernels.diff_indices(pred, actual))
                if len(bad) == stripe_count:
                    break
        return message, bad

    def _berlekamp_welch_with_errors(self, points: Sequence[Tuple[int, int]],
                                     e: int) -> Optional[Poly]:
        k = self.k
        num_q = k + e
        matrix: List[List[int]] = []
        rhs: List[int] = []
        for x, y in points:
            row = [GF256.pow(x, j) for j in range(num_q)]
            row.extend(GF256.mul(y, GF256.pow(x, l)) for l in range(e))
            matrix.append(row)
            rhs.append(GF256.mul(y, GF256.pow(x, e)))
        solution = solve_linear_system(matrix, rhs)
        if solution is None:
            return None
        q = Poly(solution[:num_q])
        locator = Poly(list(solution[num_q:]) + [1])  # monic degree e
        quotient, remainder = q.divmod(locator)
        if not remainder.is_zero() or quotient.degree >= k:
            return None
        disagreements = sum(1 for x, y in points if quotient.evaluate(x) != y)
        if disagreements > e:
            return None
        return quotient
