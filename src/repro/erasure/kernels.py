"""Bulk GF(256) kernels: whole-column field arithmetic in C.

The scalar codec in :mod:`repro.erasure.rs` processes one byte per Python
bytecode loop iteration, which dominates every coded-storage experiment.
These kernels instead operate on *columns*: a column is a ``bytes`` object
holding one codeword symbol position across every stripe of a value (the
exact layout a server's coded element already has).  Field operations then
run over the entire column inside CPython's C core:

* multiplication by a constant ``c`` is a 256-byte translation table applied
  with :meth:`bytes.translate` (one table per multiplier, built lazily and
  shared process-wide);
* addition (XOR) runs word-at-a-time through arbitrary-precision integers
  via :func:`int.from_bytes`;
* equality checks and mismatch location use C-level ``bytes`` comparison,
  falling back to per-byte scans only inside chunks that actually differ.

A matrix-vector product over columns (:func:`matvec`) is the building block
for both encoding (parity matrix x message columns) and the errorless
decode fast path (recovery matrix x received columns).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.erasure.gf256 import GF256

#: Lazily-built translation tables, one per multiplier.  Table ``c`` maps
#: byte ``x`` to ``c * x`` in GF(256); tables are immutable and shared by
#: every code shape in the process.
_TABLES: List[Optional[bytes]] = [None] * 256
_TABLES[0] = bytes(256)
_TABLES[1] = bytes(range(256))


def mul_table(c: int) -> bytes:
    """The 256-byte ``bytes.translate`` table for multiplication by ``c``."""
    table = _TABLES[c]
    if table is None:
        table = bytes(GF256.mul_row(c))
        _TABLES[c] = table
    return table


def mul_column(c: int, column: bytes) -> bytes:
    """Multiply every byte of ``column`` by the constant ``c``."""
    if c == 0:
        return bytes(len(column))
    if c == 1:
        return bytes(column)
    return bytes(column).translate(mul_table(c))


def xor_columns(a: bytes, b: bytes) -> bytes:
    """Byte-wise XOR (GF(256) addition) of two equal-length columns."""
    if len(a) != len(b):
        raise ValueError(f"column lengths differ: {len(a)} != {len(b)}")
    return (int.from_bytes(a, "little")
            ^ int.from_bytes(b, "little")).to_bytes(len(a), "little")


def matvec(rows: Sequence[Sequence[int]], cols: Sequence[bytes]) -> List[bytes]:
    """Matrix-vector product where every vector entry is a whole column.

    ``rows`` is an ``m x len(cols)`` matrix of field constants; the result
    is ``m`` columns, ``out[r] = XOR_j mul(rows[r][j], cols[j])``.  Each
    term is one ``translate`` plus one wide XOR, so the Python-level work is
    proportional to the matrix size, not the column length.
    """
    length = len(cols[0]) if cols else 0
    for col in cols:
        if len(col) != length:
            raise ValueError("columns must all have the same length")
    out: List[bytes] = []
    for row in rows:
        acc = 0
        for coeff, col in zip(row, cols):
            if coeff == 0:
                continue
            term = col if coeff == 1 else col.translate(mul_table(coeff))
            acc ^= int.from_bytes(term, "little")
        out.append(acc.to_bytes(length, "little"))
    return out


#: Chunk width for :func:`diff_indices`: equal chunks are skipped with one
#: C-level compare, so the per-byte scan only runs where corruption lives.
_DIFF_CHUNK = 256


def diff_indices(a: bytes, b: bytes) -> List[int]:
    """Positions where two equal-length columns differ, in ascending order."""
    if len(a) != len(b):
        raise ValueError(f"column lengths differ: {len(a)} != {len(b)}")
    if a == b:
        return []
    out: List[int] = []
    for off in range(0, len(a), _DIFF_CHUNK):
        chunk_a = a[off:off + _DIFF_CHUNK]
        chunk_b = b[off:off + _DIFF_CHUNK]
        if chunk_a == chunk_b:
            continue
        out.extend(off + i for i, (x, y) in enumerate(zip(chunk_a, chunk_b))
                   if x != y)
    return out


def deinterleave(buf: bytes, k: int) -> List[bytes]:
    """Split a stripe-major buffer into its ``k`` columns.

    Byte ``s*k + i`` of ``buf`` (symbol ``i`` of stripe ``s``) lands at
    position ``s`` of column ``i`` -- a strided slice, taken in C.
    """
    if len(buf) % k:
        raise ValueError(f"buffer length {len(buf)} is not a multiple of k={k}")
    return [bytes(buf[i::k]) for i in range(k)]


def interleave(cols: Sequence[bytes]) -> bytearray:
    """Inverse of :func:`deinterleave`: merge columns back stripe-major."""
    k = len(cols)
    length = len(cols[0]) if cols else 0
    out = bytearray(length * k)
    for i, col in enumerate(cols):
        if len(col) != length:
            raise ValueError("columns must all have the same length")
        out[i::k] = col
    return out
