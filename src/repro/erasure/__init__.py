"""MDS erasure-coding substrate (Section IV-A of the paper).

Implements an ``[n, k]`` Reed-Solomon code over GF(2^8) with a
Berlekamp-Welch decoder that corrects both *erasures* (missing coded
elements, e.g. slow or crashed servers) and *errors* (wrong coded elements,
e.g. Byzantine corruption or stale versions).  Reed-Solomon codes are MDS:
any ``k`` correct coded elements determine the value, and a decoder given
``N`` elements of which at most ``e`` are erroneous succeeds whenever
``N >= k + 2e`` -- exactly the property Lemma 4 of the paper relies on with
``k = n - 5f``, ``N = n - f`` and ``e = 2f``.
"""

from repro.erasure import kernels
from repro.erasure.gf256 import GF256
from repro.erasure.poly import Poly
from repro.erasure.rs import ReedSolomon
from repro.erasure.striping import CodedElement, StripedCodec

__all__ = ["GF256", "Poly", "ReedSolomon", "StripedCodec", "CodedElement",
           "kernels"]
