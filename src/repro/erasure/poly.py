"""Polynomial algebra over GF(2^8).

Polynomials are immutable and stored as coefficient tuples in *ascending*
power order (``coeffs[i]`` multiplies ``x**i``).  The zero polynomial is the
empty tuple and has degree -1 by convention.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.erasure.gf256 import GF256


class Poly:
    """An immutable polynomial over GF(256)."""

    __slots__ = ("coeffs",)

    def __init__(self, coeffs: Iterable[int] = ()) -> None:
        trimmed: List[int] = list(coeffs)
        while trimmed and trimmed[-1] == 0:
            trimmed.pop()
        for c in trimmed:
            GF256.validate(c)
        self.coeffs: Tuple[int, ...] = tuple(trimmed)

    # -- constructors ------------------------------------------------------
    @classmethod
    def zero(cls) -> "Poly":
        """The zero polynomial (degree -1)."""
        return cls(())

    @classmethod
    def constant(cls, c: int) -> "Poly":
        """The constant polynomial ``c``."""
        return cls((c,))

    @classmethod
    def monomial(cls, degree: int, coeff: int = 1) -> "Poly":
        """``coeff * x**degree``."""
        if degree < 0:
            raise ValueError("degree must be non-negative")
        return cls([0] * degree + [coeff])

    @classmethod
    def lagrange_basis(cls, xs: Sequence[int]) -> List["Poly"]:
        """All Lagrange basis polynomials over distinct points ``xs``.

        ``basis[i]`` has degree ``len(xs) - 1`` with ``basis[i](xs[i]) == 1``
        and ``basis[i](xs[j]) == 0`` for ``j != i``.  Built by dividing the
        master polynomial ``prod(x - xj)`` once per point instead of
        re-multiplying ``k - 1`` linear factors per basis -- O(k^2) field
        operations total instead of O(k^3), which keeps (re)building the
        codec's parity and recovery matrices cheap.
        """
        if len(set(xs)) != len(xs):
            raise ValueError("basis points must have distinct x")
        master = cls.constant(1)
        for xj in xs:
            master = master * cls((xj, 1))  # (x - xj) == (x + xj) in GF(2^8)
        basis: List[Poly] = []
        for xi in xs:
            # xi is a root of master, so the division is exact.
            quotient, _ = master.divmod(cls((xi, 1)))
            basis.append(quotient.scale(GF256.inv(quotient.evaluate(xi))))
        return basis

    @classmethod
    def interpolate(cls, points: Sequence[Tuple[int, int]]) -> "Poly":
        """Lagrange interpolation through ``(x, y)`` points with distinct x.

        Returns the unique polynomial of degree < len(points) passing through
        all the points.  O(k^2) field operations.
        """
        xs = [x for x, _ in points]
        if len(set(xs)) != len(xs):
            raise ValueError("interpolation points must have distinct x")
        result = cls.zero()
        for i, (xi, yi) in enumerate(points):
            if yi == 0:
                continue
            # Build the Lagrange basis polynomial l_i with l_i(xi)=1.
            basis = cls.constant(1)
            denom = 1
            for j, (xj, _) in enumerate(points):
                if i == j:
                    continue
                basis = basis * cls((xj, 1))  # (x - xj) == (x + xj) in GF(2^8)
                denom = GF256.mul(denom, GF256.add(xi, xj))
            scale = GF256.div(yi, denom)
            result = result + basis.scale(scale)
        return result

    # -- basic queries -------------------------------------------------------
    @property
    def degree(self) -> int:
        """Degree; -1 for the zero polynomial."""
        return len(self.coeffs) - 1

    def is_zero(self) -> bool:
        """True for the zero polynomial."""
        return not self.coeffs

    def coefficient(self, power: int) -> int:
        """Coefficient of ``x**power`` (0 beyond the stored degree)."""
        if 0 <= power < len(self.coeffs):
            return self.coeffs[power]
        return 0

    def evaluate(self, x: int) -> int:
        """Evaluate at ``x`` by Horner's rule."""
        acc = 0
        for c in reversed(self.coeffs):
            acc = GF256.add(GF256.mul(acc, x), c)
        return acc

    # -- arithmetic -----------------------------------------------------------
    def __add__(self, other: "Poly") -> "Poly":
        longer, shorter = (self.coeffs, other.coeffs)
        if len(shorter) > len(longer):
            longer, shorter = shorter, longer
        summed = list(longer)
        for i, c in enumerate(shorter):
            summed[i] = GF256.add(summed[i], c)
        return Poly(summed)

    #: Subtraction equals addition in characteristic 2.
    __sub__ = __add__

    def __mul__(self, other: "Poly") -> "Poly":
        if self.is_zero() or other.is_zero():
            return Poly.zero()
        product = [0] * (len(self.coeffs) + len(other.coeffs) - 1)
        for i, a in enumerate(self.coeffs):
            if a == 0:
                continue
            for j, b in enumerate(other.coeffs):
                if b:
                    product[i + j] = GF256.add(product[i + j], GF256.mul(a, b))
        return Poly(product)

    def scale(self, factor: int) -> "Poly":
        """Multiply every coefficient by the scalar ``factor``."""
        if factor == 0:
            return Poly.zero()
        return Poly([GF256.mul(c, factor) for c in self.coeffs])

    def divmod(self, divisor: "Poly") -> Tuple["Poly", "Poly"]:
        """Polynomial long division; returns ``(quotient, remainder)``."""
        if divisor.is_zero():
            raise ZeroDivisionError("polynomial division by zero")
        remainder = list(self.coeffs)
        dd = divisor.degree
        lead_inv = GF256.inv(divisor.coeffs[-1])
        quotient = [0] * max(len(remainder) - dd, 0)
        for shift in range(len(remainder) - dd - 1, -1, -1):
            coeff = GF256.mul(remainder[shift + dd], lead_inv)
            if coeff == 0:
                continue
            quotient[shift] = coeff
            for i, dc in enumerate(divisor.coeffs):
                remainder[shift + i] = GF256.add(
                    remainder[shift + i], GF256.mul(dc, coeff)
                )
        return Poly(quotient), Poly(remainder)

    def __floordiv__(self, divisor: "Poly") -> "Poly":
        return self.divmod(divisor)[0]

    def __mod__(self, divisor: "Poly") -> "Poly":
        return self.divmod(divisor)[1]

    # -- dunder plumbing -------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return isinstance(other, Poly) and self.coeffs == other.coeffs

    def __hash__(self) -> int:
        return hash(self.coeffs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.is_zero():
            return "Poly(0)"
        terms = [f"{c}*x^{i}" if i else str(c)
                 for i, c in enumerate(self.coeffs) if c]
        return "Poly(" + " + ".join(terms) + ")"
