"""Encoding arbitrary byte strings with an [n, k] code.

A register value is an arbitrary ``bytes`` object; the field only holds
single bytes, so values are processed in *stripes* of ``k`` bytes.  Stripe
``s`` of the value encodes into codeword ``s``, and server ``i`` stores the
concatenation of symbol ``i`` from every codeword -- its *coded element*.

The element each server stores (and each PUT-DATA message carries) therefore
has size ``ceil(len(value') / k)`` bytes where ``value'`` is the padded
value, realising the ``1/k`` per-server storage/bandwidth cost of
Section I-C.

Framing: a 4-byte big-endian length prefix precedes the value so padding can
be stripped after decoding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.erasure.rs import ReedSolomon
from repro.errors import DecodingError

_LENGTH_PREFIX = 4


@dataclass(frozen=True)
class CodedElement:
    """One server's share of an encoded value."""

    index: int
    data: bytes

    def __len__(self) -> int:
        return len(self.data)


class StripedCodec:
    """Encode/decode byte values through an ``[n, k]`` Reed-Solomon code."""

    def __init__(self, n: int, k: int) -> None:
        self.code = ReedSolomon(n, k)
        self.n = n
        self.k = k

    # -- encoding ------------------------------------------------------------
    def _frame(self, value: bytes) -> bytes:
        framed = len(value).to_bytes(_LENGTH_PREFIX, "big") + value
        if len(framed) % self.k:
            framed += b"\x00" * (self.k - len(framed) % self.k)
        return framed

    def encode(self, value: bytes) -> List[CodedElement]:
        """Split ``value`` into ``n`` coded elements of ``~len(value)/k`` bytes."""
        if not isinstance(value, (bytes, bytearray)):
            raise TypeError(f"values must be bytes, got {type(value).__name__}")
        framed = self._frame(bytes(value))
        stripes = [framed[off:off + self.k] for off in range(0, len(framed), self.k)]
        shares: List[bytearray] = [bytearray() for _ in range(self.n)]
        for stripe in stripes:
            codeword = self.code.encode(list(stripe))
            for i, symbol in enumerate(codeword):
                shares[i].append(symbol)
        return [CodedElement(index=i, data=bytes(share))
                for i, share in enumerate(shares)]

    def element_size(self, value_len: int) -> int:
        """Size in bytes of each coded element for a value of ``value_len``."""
        framed_len = value_len + _LENGTH_PREFIX
        stripes = (framed_len + self.k - 1) // self.k
        return stripes

    # -- decoding ------------------------------------------------------------
    def decode(self, elements: Sequence[CodedElement],
               max_errors: Optional[int] = None) -> bytes:
        """Reconstruct the value from coded elements.

        Tolerates missing elements (erasures) and corrupted/stale elements
        (errors) within the Berlekamp-Welch budget
        ``#errors <= (#received - k) // 2`` per stripe.  Raises
        :class:`DecodingError` when reconstruction is impossible.
        """
        by_index: Dict[int, bytes] = {}
        for element in elements:
            if not 0 <= element.index < self.n:
                raise ValueError(f"element index {element.index} out of range")
            if element.index in by_index:
                raise ValueError(f"duplicate coded element for index {element.index}")
            by_index[element.index] = element.data
        if len(by_index) < self.k:
            raise DecodingError(
                f"need at least k={self.k} coded elements, got {len(by_index)}"
            )
        lengths = {len(data) for data in by_index.values()}
        if len(lengths) != 1:
            # Corrupt elements may have bogus lengths; keep only the majority
            # length so honest stripes still line up.
            majority = max(lengths, key=lambda ln: sum(
                1 for d in by_index.values() if len(d) == ln))
            by_index = {i: d for i, d in by_index.items() if len(d) == majority}
            if len(by_index) < self.k:
                raise DecodingError("too few equal-length coded elements to decode")
        stripe_count = len(next(iter(by_index.values())))
        framed = bytearray()
        # Fixed position order across stripes lets the errorless fast path
        # reuse its cached recovery matrices.
        ordered = sorted(by_index.items())
        positions = tuple(index for index, _ in ordered)
        error_budget = ((len(positions) - self.k) // 2 if max_errors is None
                        else min(max_errors, (len(positions) - self.k) // 2))
        #: Corruption is per *element* (per server), so positions found
        #: erroneous in one stripe are prime suspects in every stripe:
        #: excluding them turns the expensive error correction back into a
        #: cheap erasure decode.  Sound because if all remaining positions
        #: agree on one codeword, at least k of them are honest
        #: (|remaining| - budget >= k by the [n, k] arithmetic), which pins
        #: the codeword uniquely.
        suspected: set = set()
        for stripe in range(stripe_count):
            symbols = [data[stripe] for _, data in ordered]
            fast = self.code.decode_fast(positions, symbols)
            if fast is not None:
                framed.extend(fast)
                continue
            if suspected and len(positions) - len(suspected) - error_budget >= self.k:
                kept = [(p, s) for p, s in zip(positions, symbols)
                        if p not in suspected]
                reduced = self.code.decode_fast(
                    tuple(p for p, _ in kept), [s for _, s in kept])
                if reduced is not None:
                    framed.extend(reduced)
                    continue
            received = list(zip(positions, symbols))
            message = self.code.decode(received, max_errors=max_errors)
            codeword = self.code.encode(message)
            suspected.update(p for p, s in received if codeword[p] != s)
            framed.extend(message)
        if len(framed) < _LENGTH_PREFIX:
            raise DecodingError("decoded frame shorter than its length prefix")
        value_len = int.from_bytes(framed[:_LENGTH_PREFIX], "big")
        if value_len > len(framed) - _LENGTH_PREFIX:
            raise DecodingError(
                f"decoded length prefix {value_len} exceeds frame size; "
                "the element set is inconsistent"
            )
        return bytes(framed[_LENGTH_PREFIX:_LENGTH_PREFIX + value_len])
