"""Encoding arbitrary byte strings with an [n, k] code.

A register value is an arbitrary ``bytes`` object; the field only holds
single bytes, so values are processed in *stripes* of ``k`` bytes.  Stripe
``s`` of the value encodes into codeword ``s``, and server ``i`` stores the
concatenation of symbol ``i`` from every codeword -- its *coded element*.

The element each server stores (and each PUT-DATA message carries) therefore
has size ``ceil(len(value') / k)`` bytes where ``value'`` is the padded
value, realising the ``1/k`` per-server storage/bandwidth cost of
Section I-C.

Framing: a 4-byte big-endian length prefix precedes the value so padding can
be stripped after decoding.

Layout note: a coded element *is* one column of the codeword matrix
(symbol ``i`` across all stripes), which is what lets the default
``kernels=True`` paths hand whole elements to the bulk GF(256) kernels in
:mod:`repro.erasure.kernels` -- encoding is a parity-matrix x column product
and the errorless decode recovers and verifies entire columns at once,
falling back to per-stripe Berlekamp-Welch only for the few stripe indices a
C-level compare flags as inconsistent.  ``kernels=False`` keeps the original
byte-at-a-time implementation as a differential-testing reference; both
paths produce bit-identical output and raise identical errors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.erasure import kernels
from repro.erasure.rs import ReedSolomon
from repro.errors import DecodingError

_LENGTH_PREFIX = 4

#: Bytes a compact wire encoding spends on one coded element beyond its
#: data: a 4-byte codeword index plus a 4-byte length prefix.
_ELEMENT_OVERHEAD = 8


@dataclass(frozen=True)
class CodedElement:
    """One server's share of an encoded value."""

    index: int
    data: bytes

    def __len__(self) -> int:
        return len(self.data)

    def wire_size(self) -> int:
        """Actual encoded length on the wire: index + length + data."""
        return _ELEMENT_OVERHEAD + len(self.data)


class StripedCodec:
    """Encode/decode byte values through an ``[n, k]`` Reed-Solomon code.

    ``kernels`` selects the column-oriented bulk-GF(256) paths (the
    default); ``kernels=False`` runs the scalar per-byte reference
    implementation, kept for differential testing.
    """

    def __init__(self, n: int, k: int, kernels: bool = True) -> None:
        self.code = ReedSolomon(n, k)
        self.n = n
        self.k = k
        self.kernels = bool(kernels)

    # -- encoding ------------------------------------------------------------
    def _frame(self, value: bytes) -> bytes:
        framed = len(value).to_bytes(_LENGTH_PREFIX, "big") + value
        if len(framed) % self.k:
            framed += b"\x00" * (self.k - len(framed) % self.k)
        return framed

    def encode(self, value: bytes) -> List[CodedElement]:
        """Split ``value`` into ``n`` coded elements of ``~len(value)/k`` bytes."""
        if not isinstance(value, (bytes, bytearray)):
            raise TypeError(f"values must be bytes, got {type(value).__name__}")
        framed = self._frame(bytes(value))
        if self.kernels:
            shares: Sequence[bytes] = self.code.encode_columns(
                kernels.deinterleave(framed, self.k))
        else:
            shares = self._encode_scalar(framed)
        return [CodedElement(index=i, data=bytes(share))
                for i, share in enumerate(shares)]

    def _encode_scalar(self, framed: bytes) -> List[bytearray]:
        """Reference path: one :meth:`ReedSolomon.encode` per stripe."""
        stripes = [framed[off:off + self.k] for off in range(0, len(framed), self.k)]
        shares: List[bytearray] = [bytearray() for _ in range(self.n)]
        for stripe in stripes:
            codeword = self.code.encode(list(stripe))
            for i, symbol in enumerate(codeword):
                shares[i].append(symbol)
        return shares

    def element_size(self, value_len: int) -> int:
        """Size in bytes of each coded element for a value of ``value_len``."""
        framed_len = value_len + _LENGTH_PREFIX
        stripes = (framed_len + self.k - 1) // self.k
        return stripes

    # -- decoding ------------------------------------------------------------
    def decode(self, elements: Sequence[CodedElement],
               max_errors: Optional[int] = None) -> bytes:
        """Reconstruct the value from coded elements.

        Tolerates missing elements (erasures) and corrupted/stale elements
        (errors) within the Berlekamp-Welch budget
        ``#errors <= (#received - k) // 2`` per stripe.  Raises
        :class:`DecodingError` when reconstruction is impossible.
        """
        positions, cols = self._received_columns(elements)
        error_budget = ((len(positions) - self.k) // 2 if max_errors is None
                        else min(max_errors, (len(positions) - self.k) // 2))
        if self.kernels:
            framed = self._decode_columns(positions, cols, error_budget, max_errors)
        else:
            framed = self._decode_stripes(positions, cols, error_budget, max_errors)
        return self._unframe(framed)

    def _received_columns(self, elements: Sequence[CodedElement]
                          ) -> Tuple[Tuple[int, ...], List[bytes]]:
        """Validate received elements into position-ordered columns.

        Applies the majority-length filter: corrupt elements may report
        bogus lengths, so only the most common length is kept (ties broken
        deterministically in favour of the larger length).
        """
        by_index: Dict[int, bytes] = {}
        for element in elements:
            if not 0 <= element.index < self.n:
                raise ValueError(f"element index {element.index} out of range")
            if element.index in by_index:
                raise ValueError(f"duplicate coded element for index {element.index}")
            by_index[element.index] = element.data
        if len(by_index) < self.k:
            raise DecodingError(
                f"need at least k={self.k} coded elements, got {len(by_index)}"
            )
        lengths = {len(data) for data in by_index.values()}
        if len(lengths) != 1:
            majority = max(lengths, key=lambda ln: (sum(
                1 for d in by_index.values() if len(d) == ln), ln))
            by_index = {i: d for i, d in by_index.items() if len(d) == majority}
            if len(by_index) < self.k:
                raise DecodingError("too few equal-length coded elements to decode")
        # Fixed position order across stripes lets the errorless fast path
        # reuse its cached recovery matrices.
        ordered = sorted(by_index.items())
        return (tuple(index for index, _ in ordered),
                [bytes(data) for _, data in ordered])

    def _decode_columns(self, positions: Tuple[int, ...], cols: List[bytes],
                        error_budget: int, max_errors: Optional[int]) -> bytearray:
        """Kernel path: recover and verify whole columns at once.

        The bulk pass handles every stripe a single codeword explains; only
        the stripe indices its C-level compare flags as inconsistent fall
        back to per-stripe Berlekamp-Welch.  Corruption is per *element*
        (per server), so positions found erroneous in one stripe are prime
        suspects in every stripe: once suspects are known, the remaining bad
        stripes are retried with one more bulk pass over the non-suspect
        columns (sound for the same counting reason as the scalar path --
        ``|kept| - budget >= k`` pins the codeword uniquely).
        """
        message_cols, bad = self.code.decode_fast_columns(positions, cols)
        framed = kernels.interleave(message_cols)
        if not bad:
            return framed
        k = self.k
        suspected: Set[int] = set()
        unresolved = sorted(bad)
        retry_columns = False
        while unresolved:
            if retry_columns:
                retry_columns = False
                if len(positions) - len(suspected) - error_budget >= k:
                    kept = [j for j, p in enumerate(positions)
                            if p not in suspected]
                    kept_cols, kept_bad = self.code.decode_fast_columns(
                        tuple(positions[j] for j in kept),
                        [cols[j] for j in kept])
                    fixed = [s for s in unresolved if s not in kept_bad]
                    for s in fixed:
                        for i in range(k):
                            framed[s * k + i] = kept_cols[i][s]
                    unresolved = [s for s in unresolved if s in kept_bad]
                    if not unresolved:
                        break
            stripe = unresolved.pop(0)
            received = [(p, col[stripe]) for p, col in zip(positions, cols)]
            message = self.code.decode(received, max_errors=max_errors)
            codeword = self.code.encode(message)
            erroneous = {p for p, symbol in received if codeword[p] != symbol}
            if not erroneous <= suspected:
                suspected |= erroneous
                retry_columns = True
            framed[stripe * k:(stripe + 1) * k] = bytes(message)
        return framed

    def _decode_stripes(self, positions: Tuple[int, ...], cols: List[bytes],
                        error_budget: int, max_errors: Optional[int]) -> bytearray:
        """Reference path: decode one stripe of symbols at a time."""
        stripe_count = len(cols[0]) if cols else 0
        framed = bytearray()
        #: Corruption is per *element* (per server), so positions found
        #: erroneous in one stripe are prime suspects in every stripe:
        #: excluding them turns the expensive error correction back into a
        #: cheap erasure decode.  Sound because if all remaining positions
        #: agree on one codeword, at least k of them are honest
        #: (|remaining| - budget >= k by the [n, k] arithmetic), which pins
        #: the codeword uniquely.
        suspected: Set[int] = set()
        for stripe in range(stripe_count):
            symbols = [col[stripe] for col in cols]
            fast = self.code.decode_fast(positions, symbols)
            if fast is not None:
                framed.extend(fast)
                continue
            if suspected and len(positions) - len(suspected) - error_budget >= self.k:
                kept = [(p, s) for p, s in zip(positions, symbols)
                        if p not in suspected]
                reduced = self.code.decode_fast(
                    tuple(p for p, _ in kept), [s for _, s in kept])
                if reduced is not None:
                    framed.extend(reduced)
                    continue
            received = list(zip(positions, symbols))
            message = self.code.decode(received, max_errors=max_errors)
            codeword = self.code.encode(message)
            suspected.update(p for p, s in received if codeword[p] != s)
            framed.extend(message)
        return framed

    def _unframe(self, framed: bytearray) -> bytes:
        if len(framed) < _LENGTH_PREFIX:
            raise DecodingError("decoded frame shorter than its length prefix")
        value_len = int.from_bytes(framed[:_LENGTH_PREFIX], "big")
        if value_len > len(framed) - _LENGTH_PREFIX:
            raise DecodingError(
                f"decoded length prefix {value_len} exceeds frame size; "
                "the element set is inconsistent"
            )
        return bytes(framed[_LENGTH_PREFIX:_LENGTH_PREFIX + value_len])
