"""Consistent-hash placement of keys onto overlapping quorum groups.

A production keyspace cannot give every key its own ``n`` servers, and it
cannot send every key to *all* servers either (that caps throughput at one
group's capacity).  The middle ground -- the one the register-composition
results build on -- is to place each key on a fixed-size *group* of
servers and run the paper's protocol inside that group: safety and
liveness are per key, so each group only has to satisfy the per-register
bounds (``n >= 4f + 1`` for BSR, etc.) with respect to its own size.

:class:`HashRing` implements the classic consistent-hash construction:
every node owns ``vnodes`` pseudo-random points on a 64-bit ring (derived
from a deterministic seed, so every party -- client, server, simulator,
tooling -- computes the identical ring from the same spec), a key hashes
to a point, and its group is the next ``group_size`` *distinct* nodes
clockwise.  Groups overlap, which is what spreads load: two keys landing
one vnode apart share most of their group but not all of it.

Group members are returned **sorted by node id**, not in ring order.
Ring order is an artifact of the walk; sorting makes the group a
canonical set, lets index-aligned protocols (the MDS-coded BCSR) work in
the degenerate ``group_size == n`` case, and makes placement trivially
comparable across implementations (the determinism lint hashes it).

:class:`KeyspaceConfig` is the serializable description (group size,
vnode count, seed, residency bounds) embedded in a
:class:`~repro.deploy.spec.ClusterSpec` so one file pins the placement
for the whole deployment.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.keys import MAX_KEY_LENGTH, key_error
from repro.errors import ConfigurationError
from repro.types import ProcessId


def __getattr__(name: str):
    # Lazy compatibility view over the protocol registry (importing it
    # eagerly here would be circular: protocols -> obs is fine, but this
    # module is imported by the client before protocols exists).  Each
    # group is a self-contained deployment of the per-register protocol,
    # so the paper's bounds apply to the *group*, not the whole fleet.
    if name == "GROUP_FLOORS":
        from repro.protocols import specs
        return {spec.name: spec.min_servers for spec in specs()
                if spec.namespaced_ok}
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

#: Default vnodes per physical node: enough for <2% load imbalance at
#: tens of nodes while keeping ring construction trivially cheap.
DEFAULT_VNODES = 64

#: How many resolved key -> group entries a :class:`Placement` caches.
_GROUP_CACHE = 65536


def _point(seed: int, label: str) -> int:
    """A node's (or key's) deterministic 64-bit ring position."""
    digest = hashlib.sha256(f"{seed}:{label}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass(frozen=True)
class KeyspaceConfig:
    """Serializable description of a sharded keyspace.

    Parameters
    ----------
    group_size:
        Servers per key.  Must satisfy the hosted algorithm's
        per-register bound for the deployment's ``f`` (validated by
        :meth:`validate`).
    vnodes:
        Virtual nodes per physical node on the ring.
    seed:
        Ring seed.  Every party hashing the same ``(seed, node)`` pairs
        computes the identical placement -- change it only by rolling the
        whole deployment.
    max_resident:
        Per-node cap on fully materialised per-key register states
        (``None`` = unbounded).  Beyond the cap the node's
        :class:`~repro.sharding.table.RegisterTable` evicts the
        longest-idle key to a compact archived record.
    max_key_len:
        Longest accepted key name (defense against key-space DoS).
    """

    group_size: int
    vnodes: int = DEFAULT_VNODES
    seed: int = 0
    max_resident: Optional[int] = None
    max_key_len: int = MAX_KEY_LENGTH

    def __post_init__(self) -> None:
        if self.group_size < 1:
            raise ConfigurationError(
                f"group_size must be at least 1, got {self.group_size}")
        if self.vnodes < 1:
            raise ConfigurationError(
                f"vnodes must be at least 1, got {self.vnodes}")
        if self.max_resident is not None and self.max_resident < 1:
            raise ConfigurationError(
                f"max_resident must be at least 1, got {self.max_resident}")
        if self.max_key_len < 1:
            raise ConfigurationError(
                f"max_key_len must be at least 1, got {self.max_key_len}")

    def validate(self, algorithm: str, f: int, n: int) -> None:
        """Check the paper's bounds hold *per group* for this deployment.

        ``n`` is the fleet size; every group must fit in it, and every
        group must itself satisfy the algorithm's ``n``-vs-``f`` bound
        (e.g. BSR's ``4f + 1 > 3f``) so each key's register is safe and
        semi-fast against ``f`` Byzantine servers.
        """
        from repro.protocols import get_spec
        spec = get_spec(algorithm)
        if not spec.namespaced_ok:
            raise ConfigurationError(
                f"algorithm {algorithm!r} does not support sharded "
                "keyspaces")
        if self.group_size < spec.min_servers(f):
            raise ConfigurationError(
                f"{algorithm} groups need >= {spec.min_servers(f)} servers "
                f"for f={f}, got group_size={self.group_size}")
        if self.group_size > n:
            raise ConfigurationError(
                f"group_size {self.group_size} exceeds the fleet size {n}")
        if spec.group_spans_fleet and self.group_size != n:
            raise ConfigurationError(
                f"{algorithm} shards require group_size == n: coded chunks "
                "are index-aligned to the server list, which only the full "
                "fleet preserves")

    # -- serialisation -----------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Spec-embeddable dict; ``None`` fields are omitted."""
        out: Dict[str, Any] = {
            "group_size": self.group_size,
            "vnodes": self.vnodes,
            "seed": self.seed,
            "max_key_len": self.max_key_len,
        }
        if self.max_resident is not None:
            out["max_resident"] = self.max_resident
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "KeyspaceConfig":
        known = {"group_size", "vnodes", "seed", "max_resident",
                 "max_key_len"}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown keyspace keys: {sorted(unknown)}")
        if "group_size" not in data:
            raise ConfigurationError("keyspace requires a group_size")
        return cls(**data)

    def ring(self, nodes: Sequence[ProcessId]) -> "HashRing":
        """The ring this config describes over ``nodes``."""
        return HashRing(nodes, vnodes=self.vnodes, seed=self.seed)

    def placement(self, nodes: Sequence[ProcessId]) -> "Placement":
        """A cached key -> group resolver over ``nodes``."""
        return Placement(self.ring(nodes), self.group_size)


class HashRing:
    """A deterministic consistent-hash ring over a fixed node set."""

    def __init__(self, nodes: Sequence[ProcessId], vnodes: int = DEFAULT_VNODES,
                 seed: int = 0) -> None:
        if not nodes:
            raise ConfigurationError("a hash ring needs at least one node")
        if len(set(nodes)) != len(nodes):
            raise ConfigurationError("ring nodes must be distinct")
        self.nodes: Tuple[ProcessId, ...] = tuple(sorted(nodes))
        self.vnodes = vnodes
        self.seed = seed
        points: List[Tuple[int, ProcessId]] = []
        for node in self.nodes:
            for replica in range(vnodes):
                points.append((_point(seed, f"{node}/{replica}"), node))
        # Sorting by (position, node) breaks position collisions -- which
        # sha256 makes absurdly unlikely -- the same way everywhere.
        points.sort()
        self._points = points
        self._positions = [pos for pos, _ in points]
        self._owners = [node for _, node in points]

    def key_point(self, key: str) -> int:
        """The key's position on the ring."""
        return _point(self.seed, f"key:{key}")

    def group(self, key: str, size: int) -> Tuple[ProcessId, ...]:
        """The ``size`` distinct nodes owning ``key``, sorted by id."""
        if size > len(self.nodes):
            raise ConfigurationError(
                f"group size {size} exceeds the {len(self.nodes)}-node ring")
        start = bisect_right(self._positions, self.key_point(key))
        owners = self._owners
        total = len(owners)
        picked: List[ProcessId] = []
        seen = set()
        for step in range(total):
            node = owners[(start + step) % total]
            if node not in seen:
                seen.add(node)
                picked.append(node)
                if len(picked) == size:
                    break
        return tuple(sorted(picked))

    def primary(self, key: str) -> ProcessId:
        """The first node clockwise of ``key`` (its group anchor)."""
        start = bisect_right(self._positions, self.key_point(key))
        return self._owners[start % len(self._owners)]

    # -- analysis ----------------------------------------------------------
    def load_share(self, keys: Iterable[str], size: int) -> Dict[ProcessId, int]:
        """How many of ``keys`` each node serves (group membership count)."""
        share: Dict[ProcessId, int] = {node: 0 for node in self.nodes}
        for key in keys:
            for node in self.group(key, size):
                share[node] += 1
        return share

    def moved_keys(self, other: "HashRing", keys: Iterable[str],
                   size: int) -> List[str]:
        """Keys whose group differs between this ring and ``other``.

        The consistent-hash selling point, made measurable: adding or
        removing one node should move roughly ``1/n`` of the keyspace,
        not reshuffle it wholesale.
        """
        return [key for key in keys
                if self.group(key, min(size, len(self.nodes)))
                != other.group(key, min(size, len(other.nodes)))]

    def fingerprint(self, keys: Iterable[str], size: int) -> str:
        """A stable digest of the placement of ``keys``.

        Equal fingerprints mean byte-identical placement; the
        ring-determinism lint pins one so accidental changes to the hash
        or the walk cannot slip in as silent data reshuffles.
        """
        digest = hashlib.sha256()
        for key in keys:
            digest.update(key.encode())
            digest.update(b"=")
            digest.update(",".join(str(n) for n in self.group(key, size)).encode())
            digest.update(b";")
        return digest.hexdigest()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"HashRing(nodes={len(self.nodes)}, vnodes={self.vnodes}, "
                f"seed={self.seed})")


class Placement:
    """A cached key -> quorum-group resolver clients and tools share."""

    def __init__(self, ring: HashRing, group_size: int) -> None:
        if group_size > len(ring.nodes):
            raise ConfigurationError(
                f"group size {group_size} exceeds the "
                f"{len(ring.nodes)}-node ring")
        self.ring = ring
        self.group_size = group_size
        self._cache: "OrderedDict[str, Tuple[ProcessId, ...]]" = OrderedDict()

    def servers_for(self, key: str) -> Tuple[ProcessId, ...]:
        """The key's quorum group (validated name, LRU-cached resolve)."""
        cached = self._cache.get(key)
        if cached is not None:
            self._cache.move_to_end(key)
            return cached
        reason = key_error(key)
        if reason is not None:
            raise ConfigurationError(f"invalid key {key!r}: {reason}")
        group = self.ring.group(key, self.group_size)
        self._cache[key] = group
        if len(self._cache) > _GROUP_CACHE:
            self._cache.popitem(last=False)
        return group

    def group_label(self, group: Tuple[ProcessId, ...]) -> str:
        """Metric-label form of a group (members joined by ``+``)."""
        return "+".join(str(node) for node in group)
