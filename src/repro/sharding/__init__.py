"""Sharded multi-register keyspace: placement, per-key state, routing.

The paper gives one semi-fast Byzantine-tolerant register; a production
store serves millions.  The composition results (Hu--Toueg 2022,
Kshemkalyani et al. 2024 -- see PAPERS.md) justify building bigger
objects out of many registers; this package is the systems counterpart:

* :mod:`repro.sharding.ring` -- a deterministic consistent-hash ring
  (:class:`HashRing`) placing each key on an overlapping quorum *group*
  of servers, with per-group validation of the paper's ``n``-vs-``f``
  bounds, plus the serializable :class:`KeyspaceConfig` every party
  (client, node, simulator, CLI) derives the identical placement from.
* :mod:`repro.sharding.table` -- :class:`RegisterTable`, the bounded
  lazy per-key state table servers host (LRU demotion of idle cold keys
  to compact archived records, key validation before allocation).

Key-name validation itself lives in :mod:`repro.core.keys` (the core
layer uses it too); it is re-exported here for convenience.
"""

from repro.core.keys import MAX_KEY_LENGTH, key_error, key_name, valid_key
from repro.sharding.ring import (
    DEFAULT_VNODES,
    HashRing,
    KeyspaceConfig,
    Placement,
)
from repro.sharding.table import RegisterTable


def __getattr__(name: str):
    # GROUP_FLOORS is a lazy registry view in repro.sharding.ring;
    # forward the laziness so importing this package never drags the
    # protocol registry in eagerly.
    if name == "GROUP_FLOORS":
        from repro.sharding import ring
        return ring.GROUP_FLOORS
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "DEFAULT_VNODES",
    "GROUP_FLOORS",
    "HashRing",
    "KeyspaceConfig",
    "MAX_KEY_LENGTH",
    "Placement",
    "RegisterTable",
    "key_error",
    "key_name",
    "valid_key",
]
