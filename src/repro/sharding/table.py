"""Lazy per-key register table: bounded-memory server state for a keyspace.

The namespaced wrapper of :mod:`repro.core.namespace` materialises one
protocol state machine per register name and keeps it forever -- fine for
a handful of named registers, fatal for a keyspace of millions where most
keys are cold at any instant.  :class:`RegisterTable` is the production
replacement:

* **Lazy**: per-key state (tag, value, history -- the protocol instance)
  is created on first touch, from the same ``factory(name)`` contract the
  namespaced wrapper uses.
* **Validated**: the key name is checked (:mod:`repro.core.keys`) before
  anything is allocated, so garbage names cannot exhaust memory.
* **Bounded**: at most ``max_resident`` keys hold a live protocol
  instance.  Beyond the cap the longest-idle key is *demoted*: its
  durable essence (the history list, via
  :mod:`repro.core.persistence`) is archived as a compact byte record
  and the heavy state machine is dropped.  The next touch rehydrates it,
  so demotion is invisible to the protocol -- the rehydrated server
  re-adopts the archived tags and the per-key register stays safe
  (an archived-then-restored key behaves like an honestly-slow server,
  which the algorithms already tolerate).

Archived records are two orders of magnitude smaller than live state
machines (bytes of JSON vs objects + dict overhead), which is what keeps
a million-key node affordable; bound each key's history (``max_history``)
to bound the archive too.

The table speaks the exact protocol surface the runtimes and the
simulator expect from a server (``handle(sender, message) -> envelopes``)
and the compatibility surface of the namespaced wrapper (``registers``,
``register_server``, ``storage_bytes``), so it drops into
:class:`~repro.runtime.node.RegisterServerNode`, the process-per-node
deployment and the simulator unchanged.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Set

from repro.core.keys import MAX_KEY_LENGTH, key_error
from repro.core.namespace import NamespacedMessage
from repro.errors import ProtocolError
from repro.types import Envelope, ProcessId


class RegisterTable:
    """Route namespaced messages to bounded, lazily created per-key state.

    ``factory(key)`` builds a fresh per-key server protocol; ``behavior``
    (optional) is applied per key, exactly as in the namespaced wrapper.
    ``max_resident`` caps live per-key state machines (``None`` =
    unbounded, i.e. the legacy behaviour plus validation); ``max_key_len``
    tightens the global key-length bound per deployment.

    Metrics land in ``registry`` when one is bound (the node's shared
    registry, via :meth:`bind_registry`): ``table_keys_resident``,
    ``table_keys_archived``, ``table_evictions_total``,
    ``table_rehydrations_total`` and ``table_keys_rejected_total``,
    all labeled by node.
    """

    def __init__(self, server_id: ProcessId,
                 factory: Callable[[str], Any],
                 behavior: Optional[Any] = None,
                 max_resident: Optional[int] = None,
                 max_key_len: int = MAX_KEY_LENGTH,
                 registry: Optional[Any] = None) -> None:
        if max_resident is not None and max_resident < 1:
            raise ValueError("max_resident must be at least 1")
        self.server_id = server_id
        self._factory = factory
        self.behavior = behavior
        self.max_resident = max_resident
        self.max_key_len = max_key_len
        #: key -> live protocol instance, least-recently-touched first.
        self.registers: "OrderedDict[str, Any]" = OrderedDict()
        #: key -> compact archived state of demoted cold keys.
        self._archive: Dict[str, bytes] = {}
        #: Keys whose protocol cannot snapshot (never demoted).
        self._pinned: Set[str] = set()
        #: Codec handed to rehydration (captured from the first coded
        #: server evicted; ``None`` for replicated protocols).
        self._codec: Optional[Any] = None
        self._gauge_resident = None
        self._gauge_archived = None
        self._c_evictions = None
        self._c_rehydrations = None
        self._c_rejected = None
        if registry is not None:
            self.bind_registry(registry)

    def bind_registry(self, registry: Any) -> None:
        """Record table metrics into ``registry`` from now on.

        Separate from ``__init__`` because the process-per-node path
        builds the protocol before the node (whose registry the table
        should share) exists.
        """
        node = str(self.server_id)
        self._gauge_resident = registry.gauge("table_keys_resident", node=node)
        self._gauge_archived = registry.gauge("table_keys_archived", node=node)
        self._c_evictions = registry.counter("table_evictions_total", node=node)
        self._c_rehydrations = registry.counter(
            "table_rehydrations_total", node=node)
        self._c_rejected = registry.counter(
            "table_keys_rejected_total", node=node)
        self._gauge_resident.set(len(self.registers))
        self._gauge_archived.set(len(self._archive))

    # -- state inspection --------------------------------------------------
    @property
    def resident_keys(self) -> List[str]:
        """Keys currently holding live state, least-recently-used first."""
        return list(self.registers)

    @property
    def archived_keys(self) -> List[str]:
        """Keys demoted to compact archived records."""
        return sorted(self._archive)

    def storage_bytes(self) -> int:
        """Bytes of user data in live state plus archived records."""
        live = sum(server.storage_bytes()
                   for server in self.registers.values()
                   if hasattr(server, "storage_bytes"))
        return live + sum(len(blob) for blob in self._archive.values())

    # -- key lifecycle -----------------------------------------------------
    def key_error(self, name: Any) -> Optional[str]:
        """Why ``name`` is rejected by this table, or ``None``."""
        reason = key_error(name)
        if reason is not None:
            return reason
        if len(name) > self.max_key_len:
            return (f"key length {len(name)} exceeds this table's "
                    f"{self.max_key_len}-char bound")
        return None

    def register_server(self, name: str) -> Any:
        """The live per-key server for ``name`` (created or rehydrated).

        Touching a key marks it most-recently-used; the touch may demote
        another key to stay within ``max_resident``.
        """
        server = self.registers.get(name)
        if server is not None:
            if self.max_resident is not None:
                # LRU order only matters when a cap can evict; skip the
                # per-touch reorder on unbounded tables (the hot path).
                self.registers.move_to_end(name)
            return server
        blob = self._archive.pop(name, None)
        if blob is not None:
            server = self._rehydrate(name, blob)
            if self._c_rehydrations is not None:
                self._c_rehydrations.inc()
                self._gauge_archived.set(len(self._archive))
        else:
            server = self._factory(name)
        self.registers[name] = server
        self._shed()
        if self._gauge_resident is not None:
            self._gauge_resident.set(len(self.registers))
        return server

    def _rehydrate(self, name: str, blob: bytes) -> Any:
        from repro.core.persistence import restore_server
        try:
            return restore_server(blob, codec=self._codec)
        except ProtocolError:  # archived by an older build; start fresh
            return self._factory(name)

    def _shed(self) -> None:
        """Demote longest-idle keys until the residency cap holds."""
        if self.max_resident is None:
            return
        while len(self.registers) > self.max_resident:
            victim = None
            for key in self.registers:
                if key not in self._pinned:
                    victim = key
                    break
            if victim is None:
                return  # everything resident is unevictable
            if not self._demote(victim):
                # Cannot snapshot this protocol: pin it and retry with
                # the next-oldest key (the cap may overshoot by the
                # pinned count, never by unbounded garbage).
                self._pinned.add(victim)

    def _demote(self, key: str) -> bool:
        from repro.core.persistence import snapshot_server
        server = self.registers[key]
        try:
            blob = snapshot_server(server)
        except ProtocolError:
            return False
        if self._codec is None:
            self._codec = getattr(server, "codec", None)
        del self.registers[key]
        self._archive[key] = blob
        if self._c_evictions is not None:
            self._c_evictions.inc()
            self._gauge_archived.set(len(self._archive))
        return True

    # -- message flow ------------------------------------------------------
    def handle(self, sender: ProcessId, message: Any) -> List[Envelope]:
        """Validate, route to the key's server, re-wrap the replies."""
        if not isinstance(message, NamespacedMessage):
            return []
        if (message.register not in self.registers
                and message.register not in self._archive
                and self.key_error(message.register) is not None):
            if self._c_rejected is not None:
                self._c_rejected.inc()
            return []
        server = self.register_server(message.register)
        replies = server.handle(sender, message.inner)
        if self.behavior is not None:
            replies = self.behavior.on_message(
                server, sender, message.inner, replies)
        return [
            (dest, NamespacedMessage(register=message.register, inner=reply))
            for dest, reply in replies
        ]
