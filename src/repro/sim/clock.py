"""Virtual time for the discrete-event simulator.

Simulated time is a non-negative float in abstract "seconds".  The clock only
moves forward, and only the simulator advances it (when it pops the next
event).  Processes read the clock but never set it, which mirrors the paper's
asynchrony assumption: processes cannot rely on real-time bounds, they merely
observe that time passes.
"""

from __future__ import annotations

from repro.errors import SimulationError


class VirtualClock:
    """A monotonically non-decreasing simulated clock."""

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"clock cannot start at negative time {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    def advance_to(self, t: float) -> None:
        """Move the clock forward to time ``t``.

        Raises :class:`SimulationError` if ``t`` lies in the past; the event
        queue guarantees events are popped in time order, so a backwards jump
        indicates a simulator bug rather than a user error.
        """
        if t < self._now:
            raise SimulationError(
                f"attempted to move clock backwards: {self._now} -> {t}"
            )
        self._now = float(t)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VirtualClock(now={self._now:.6f})"
