"""Network partitions: block traffic between process groups, then heal.

A :class:`PartitionManager` wraps a simulator's delay model.  While a
partition is active, messages crossing between its groups are *held* (not
dropped -- the model's channels are reliable, so healing releases them).
This matches how the paper's asynchrony bounds behave in practice: a
partition is indistinguishable from very slow links until it heals.

Usage::

    partitions = PartitionManager.install(system.sim)
    partitions.partition_at(10.0, [{"s000", "s001"}, {"s002", "s003", "s004"}])
    partitions.heal_at(50.0)

Clients not mentioned in any group can reach every side (the common
"clients keep multi-homed connectivity" deployment); put a client in a
group to strand it on that side.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence, Set

from repro.sim.delays import DelayModel, HOLD, ConstantDelay
from repro.types import ProcessId


class _PartitionedDelays(DelayModel):
    """Delay wrapper that holds cross-partition messages."""

    def __init__(self, inner: DelayModel, manager: "PartitionManager") -> None:
        self.inner = inner
        self.manager = manager

    def sample(self, src, dst, message, now, rng):
        if self.manager.separated(src, dst):
            return HOLD
        return self.inner.sample(src, dst, message, now, rng)

    def describe(self) -> str:
        return f"partitionable({self.inner.describe()})"


class PartitionManager:
    """Schedule partitions and heals on a simulator."""

    def __init__(self, simulator) -> None:
        self._simulator = simulator
        self._groups: List[Set[ProcessId]] = []

    @classmethod
    def install(cls, simulator) -> "PartitionManager":
        """Wrap the simulator's delay model with partition awareness."""
        manager = cls(simulator)
        simulator.network.delay_model = _PartitionedDelays(
            simulator.network.delay_model or ConstantDelay(1.0), manager,
        )
        return manager

    # -- state -----------------------------------------------------------
    @property
    def active(self) -> bool:
        """Whether a partition is currently in force."""
        return bool(self._groups)

    def separated(self, src: ProcessId, dst: ProcessId) -> bool:
        """Whether the active partition blocks ``src`` -> ``dst``.

        Processes in no group are multi-homed: they reach everyone.
        """
        if not self._groups:
            return False
        src_group = self._group_of(src)
        dst_group = self._group_of(dst)
        if src_group is None or dst_group is None:
            return False
        return src_group != dst_group

    def _group_of(self, pid: ProcessId) -> Optional[int]:
        for index, group in enumerate(self._groups):
            if pid in group:
                return index
        return None

    # -- control ------------------------------------------------------------
    def partition_now(self, groups: Sequence[Iterable[ProcessId]]) -> None:
        """Split the network into ``groups`` immediately."""
        materialized = [set(group) for group in groups if group]
        if len(materialized) < 2:
            raise ValueError("a partition needs at least two non-empty groups")
        seen: Set[ProcessId] = set()
        for group in materialized:
            overlap = seen & group
            if overlap:
                raise ValueError(f"processes {overlap} appear in two groups")
            seen |= group
        self._groups = materialized

    def heal_now(self) -> int:
        """Remove the partition and release every held cross-group message."""
        self._groups = []
        return self._simulator.network.release_held()

    def partition_at(self, time: float,
                     groups: Sequence[Iterable[ProcessId]]) -> None:
        """Schedule :meth:`partition_now` at simulated ``time``."""
        materialized = [list(group) for group in groups]
        self._simulator.schedule_at(
            time, lambda: self.partition_now(materialized),
            label="partition",
        )

    def heal_at(self, time: float) -> None:
        """Schedule :meth:`heal_now` at simulated ``time``."""
        self._simulator.schedule_at(time, self.heal_now, label="heal")
