"""Deterministic discrete-event simulation substrate.

This subpackage provides the asynchronous message-passing system of the
paper's model (Section II-A): asynchronous processes, reliable bidirectional
channels that may reorder messages arbitrarily, unbounded (but finite) message
delays, and crash/Byzantine failure injection.

The simulator is deterministic given a seed, which makes the adversarial
executions of Theorems 3, 5 and 6 exactly reproducible.
"""

from repro.sim.clock import VirtualClock
from repro.sim.events import Event, EventQueue
from repro.sim.rng import SimRng
from repro.sim.delays import (
    ConstantDelay,
    DelayModel,
    DelayRule,
    ExponentialDelay,
    HOLD,
    LogNormalDelay,
    RuleBasedDelays,
    SizeDependentDelay,
    TopologyDelay,
    UniformDelay,
)
from repro.sim.process import Process, ProcessContext
from repro.sim.network import Network, NetworkStats
from repro.sim.simulator import Simulator
from repro.sim.trace import OpKind, OperationRecord, Trace

__all__ = [
    "VirtualClock",
    "Event",
    "EventQueue",
    "SimRng",
    "DelayModel",
    "ConstantDelay",
    "UniformDelay",
    "ExponentialDelay",
    "LogNormalDelay",
    "SizeDependentDelay",
    "TopologyDelay",
    "DelayRule",
    "RuleBasedDelays",
    "HOLD",
    "Process",
    "ProcessContext",
    "Network",
    "NetworkStats",
    "Simulator",
    "Trace",
    "OperationRecord",
    "OpKind",
]
