"""Failure schedules: when and how processes fail during a run.

A :class:`FailureSchedule` is a declarative list of failure injections that a
driver applies to a simulator before the run starts.  Two kinds exist:

* **Crash** at a given time (clients and servers).
* **Byzantine from the start** (servers only) -- the server process is
  replaced by a Byzantine wrapper from :mod:`repro.byzantine`.

Random schedules are generated with a seeded RNG so failure experiments are
reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.sim.rng import SimRng
from repro.types import FailureMode, ProcessId


@dataclass(frozen=True)
class FailureEvent:
    """One scheduled failure."""

    pid: ProcessId
    mode: FailureMode
    at_time: float = 0.0
    behavior: Optional[str] = None  # Byzantine behaviour name, if applicable


@dataclass
class FailureSchedule:
    """A set of failures to inject into one execution."""

    events: List[FailureEvent] = field(default_factory=list)

    def crash(self, pid: ProcessId, at_time: float) -> "FailureSchedule":
        """Crash ``pid`` at simulated time ``at_time``."""
        self.events.append(FailureEvent(pid=pid, mode=FailureMode.CRASH, at_time=at_time))
        return self

    def byzantine(self, pid: ProcessId, behavior: str = "silent") -> "FailureSchedule":
        """Make server ``pid`` Byzantine with the named behaviour."""
        self.events.append(
            FailureEvent(pid=pid, mode=FailureMode.BYZANTINE, behavior=behavior)
        )
        return self

    @property
    def byzantine_ids(self) -> List[ProcessId]:
        """IDs of all servers marked Byzantine."""
        return [e.pid for e in self.events if e.mode is FailureMode.BYZANTINE]

    @property
    def crash_events(self) -> List[FailureEvent]:
        """All crash injections, in schedule order."""
        return [e for e in self.events if e.mode is FailureMode.CRASH]

    def validate(self, f: int) -> None:
        """Ensure the schedule respects the fault budget ``f`` for servers."""
        byz = self.byzantine_ids
        if len(byz) > f:
            raise ValueError(
                f"schedule marks {len(byz)} servers Byzantine but f={f}"
            )


def random_failure_schedule(servers: Sequence[ProcessId], f: int, rng: SimRng,
                            behaviors: Sequence[str] = ("silent", "stale", "forge_tag"),
                            byzantine_count: Optional[int] = None) -> FailureSchedule:
    """Pick up to ``f`` random servers and assign each a random behaviour.

    ``byzantine_count=None`` draws the count uniformly from ``[0, f]``.
    """
    if f > len(servers):
        raise ValueError("f cannot exceed the number of servers")
    count = rng.randint(0, f) if byzantine_count is None else byzantine_count
    if count > f:
        raise ValueError("byzantine_count cannot exceed f")
    schedule = FailureSchedule()
    for pid in rng.sample(list(servers), count):
        schedule.byzantine(pid, rng.choice(list(behaviors)))
    return schedule
