"""The discrete-event simulator tying clock, queue, network and processes.

Typical use::

    sim = Simulator(seed=7, delay_model=UniformDelay(0.5, 2.0))
    sim.add_process(server)
    sim.add_process(client)
    sim.run()          # until quiescence or the horizon

Determinism: with a fixed seed and fixed process registration order, two runs
execute byte-identical event sequences.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.errors import SimulationError
from repro.sim.clock import VirtualClock
from repro.sim.delays import DelayModel
from repro.sim.events import Event, EventQueue
from repro.sim.network import Network
from repro.sim.process import Process, ProcessContext
from repro.sim.rng import SimRng
from repro.sim.trace import Trace
from repro.types import ProcessId


class Simulator:
    """Deterministic discrete-event simulation of one distributed execution."""

    def __init__(self, seed: int = 0, delay_model: Optional[DelayModel] = None,
                 horizon: float = 1_000_000.0) -> None:
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        self.rng = SimRng(seed)
        self.clock = VirtualClock()
        self.queue = EventQueue()
        self.network = Network(self, delay_model=delay_model, rng=self.rng.fork("network"))
        self.processes: Dict[ProcessId, Process] = {}
        self.trace = Trace()
        self.horizon = horizon
        self._started = False
        self._events_executed = 0

    # -- construction ----------------------------------------------------
    def add_process(self, process: Process) -> Process:
        """Register a process; its ``on_start`` runs when the sim starts."""
        if process.pid in self.processes:
            raise SimulationError(f"duplicate process id {process.pid!r}")
        process.bind(ProcessContext(self, process.pid))
        self.processes[process.pid] = process
        if self._started:
            process.on_start()
        return process

    # -- scheduling primitives (used by network/process context) ---------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.clock.now

    def schedule(self, delay: float, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self.queue.schedule(self.now + delay, callback, label=label)

    def schedule_at(self, time: float, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule ``callback`` at an absolute simulated time."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past ({time} < {self.now})")
        return self.queue.schedule(time, callback, label=label)

    def cancel(self, event: Event) -> None:
        """Cancel a scheduled event."""
        self.queue.cancel(event)

    # -- failure injection -------------------------------------------------
    def crash(self, pid: ProcessId) -> None:
        """Crash a process: it stops handling messages immediately."""
        process = self.processes.get(pid)
        if process is None:
            raise SimulationError(f"no such process {pid!r}")
        process.crash()

    # -- the run loop ------------------------------------------------------
    def _start_processes(self) -> None:
        if not self._started:
            self._started = True
            for process in self.processes.values():
                process.on_start()

    def step(self) -> bool:
        """Execute the next event; returns False when the queue is empty."""
        self._start_processes()
        event = self.queue.pop()
        if event is None:
            return False
        if event.time > self.horizon:
            raise SimulationError(
                f"event {event.label!r} at t={event.time} exceeds horizon "
                f"{self.horizon}; likely a livelock or an unreleased HOLD"
            )
        self.clock.advance_to(event.time)
        event.callback()
        self._events_executed += 1
        return True

    def run(self, until: Optional[Callable[[], bool]] = None,
            max_events: int = 10_000_000, release_held_at_end: bool = True) -> int:
        """Run to quiescence (or until ``until()`` is true).

        ``release_held_at_end``: after quiescence, flush messages parked by
        HOLD rules and continue, so that channel reliability ("eventual
        delivery") holds over the whole execution.  Returns the number of
        events executed by this call.
        """
        executed_before = self._events_executed
        self._start_processes()
        while True:
            while self.queue:
                if until is not None and until():
                    return self._events_executed - executed_before
                if not self.step():
                    break
                if self._events_executed - executed_before > max_events:
                    raise SimulationError(
                        f"exceeded {max_events} events; likely a message storm"
                    )
            if release_held_at_end and self.network.held_count:
                self.network.release_held()
                continue
            break
        return self._events_executed - executed_before

    def run_for(self, duration: float) -> None:
        """Run all events scheduled within the next ``duration`` seconds."""
        deadline = self.now + duration
        self._start_processes()
        while True:
            next_time = self.queue.peek_time()
            if next_time is None or next_time > deadline:
                break
            self.step()
        self.clock.advance_to(deadline)

    @property
    def events_executed(self) -> int:
        """Total events executed so far."""
        return self._events_executed
