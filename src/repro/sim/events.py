"""Event queue for the discrete-event simulator.

Events are ``(time, sequence, callback)`` triples kept in a binary heap.  The
monotonically increasing sequence number breaks ties between events scheduled
for the same instant, which makes execution order fully deterministic: two
runs with the same seed produce byte-identical traces.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional


@dataclass(order=True, frozen=True)
class Event:
    """A scheduled callback.

    Ordering is by ``(time, seq)``; the callback itself never participates in
    comparisons (``compare=False``) so non-comparable callables are fine.
    """

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects.

    Cancellation is lazy: cancelled events stay in the heap but are skipped
    when popped, which keeps both ``schedule`` and ``cancel`` O(log n) / O(1).
    """

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._counter = itertools.count()
        self._cancelled: set = set()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def schedule(self, time: float, callback: Callable[[], None], label: str = "") -> Event:
        """Insert a callback to fire at simulated ``time``; returns the event."""
        if time < 0:
            raise ValueError(f"cannot schedule event at negative time {time}")
        event = Event(time=time, seq=next(self._counter), callback=callback, label=label)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event (idempotent)."""
        key = (event.time, event.seq)
        if key not in self._cancelled:
            self._cancelled.add(key)
            self._live -= 1

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` if the queue is empty."""
        self._drop_cancelled()
        return self._heap[0].time if self._heap else None

    def pop(self) -> Optional[Event]:
        """Remove and return the next live event (``None`` if empty)."""
        self._drop_cancelled()
        if not self._heap:
            return None
        event = heapq.heappop(self._heap)
        self._live -= 1
        return event

    def _drop_cancelled(self) -> None:
        while self._heap and (self._heap[0].time, self._heap[0].seq) in self._cancelled:
            dead = heapq.heappop(self._heap)
            self._cancelled.discard((dead.time, dead.seq))
