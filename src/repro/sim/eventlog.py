"""Message-flow logging: see exactly what an execution did.

An :class:`EventLog` taps the network and records every send and delivery
with its simulated timestamp.  Use it to debug protocol issues, to render
the adversarial schedules of the theorem scenarios, or to assert message
patterns in tests::

    log = EventLog.attach(system.sim)
    system.run()
    print(log.render())
    assert log.count(kind="send", message_type="PutData") == 5

Filtering is by direction ("send"/"deliver"), endpoints and message type.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

from repro.types import ProcessId


@dataclass(frozen=True)
class LoggedEvent:
    """One send or delivery."""

    time: float
    kind: str                      # "send" | "deliver"
    src: ProcessId
    dst: ProcessId
    message_type: str
    op_id: Optional[int]
    detail: str

    def format(self) -> str:
        """One human-readable line."""
        arrow = "->" if self.kind == "send" else "=>"
        op = f"#{self.op_id}" if self.op_id is not None else ""
        return (f"{self.time:10.3f}  {self.src:>6} {arrow} {self.dst:<6} "
                f"{self.message_type}{op} {self.detail}")


def _describe(message: Any) -> str:
    parts = []
    tag = getattr(message, "tag", None)
    if tag is not None:
        parts.append(f"tag={tag}")
    payload = getattr(message, "payload", None)
    if isinstance(payload, (bytes, bytearray)):
        shown = bytes(payload[:16])
        suffix = "..." if len(payload) > 16 else ""
        parts.append(f"payload={shown!r}{suffix}")
    elif payload is not None:
        parts.append(f"payload={type(payload).__name__}")
    register = getattr(message, "register", None)
    if isinstance(register, str):
        parts.append(f"register={register!r}")
    return " ".join(parts)


class EventLog:
    """A chronological record of every message send and delivery."""

    def __init__(self) -> None:
        self.events: List[LoggedEvent] = []
        self._clock = None

    @classmethod
    def attach(cls, simulator) -> "EventLog":
        """Create a log wired into ``simulator``'s network."""
        log = cls()
        log._clock = simulator.clock

        def on_send(src, dst, message):
            log._record("send", src, dst, message)

        def on_deliver(src, dst, message):
            log._record("deliver", src, dst, message)

        simulator.network.add_tap(on_send)
        simulator.network.add_delivery_tap(on_deliver)
        return log

    def _record(self, kind: str, src: ProcessId, dst: ProcessId,
                message: Any) -> None:
        self.events.append(LoggedEvent(
            time=self._clock.now if self._clock else 0.0,
            kind=kind, src=src, dst=dst,
            message_type=type(message).__name__,
            op_id=getattr(message, "op_id", None),
            detail=_describe(message),
        ))

    # -- querying -----------------------------------------------------------
    def filter(self, kind: Optional[str] = None, src: Optional[ProcessId] = None,
               dst: Optional[ProcessId] = None,
               message_type: Optional[str] = None) -> List[LoggedEvent]:
        """Events matching every given criterion."""
        return [
            event for event in self.events
            if (kind is None or event.kind == kind)
            and (src is None or event.src == src)
            and (dst is None or event.dst == dst)
            and (message_type is None or event.message_type == message_type)
        ]

    def count(self, **criteria) -> int:
        """Number of events matching :meth:`filter` criteria."""
        return len(self.filter(**criteria))

    def __len__(self) -> int:
        return len(self.events)

    def render(self, limit: Optional[int] = None, **criteria) -> str:
        """Multi-line textual log (optionally filtered and truncated)."""
        selected = self.filter(**criteria) if criteria else list(self.events)
        if limit is not None:
            selected = selected[:limit]
        header = f"{'time':>10}  {'from':>6}    {'to':<6} message"
        return "\n".join([header] + [event.format() for event in selected])
