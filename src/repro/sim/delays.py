"""Message-delay models and scripted delay rules.

The paper's channels are reliable but asynchronous: messages are never lost
or forged, yet delays are unbounded and delivery order is arbitrary
(Section II-A).  Two kinds of delay control live here:

* **Stochastic models** (:class:`ConstantDelay`, :class:`UniformDelay`,
  :class:`ExponentialDelay`, :class:`LogNormalDelay`) for throughput and
  latency experiments.
* **Rule-based scripting** (:class:`RuleBasedDelays`) for the adversarial
  executions of Theorems 3, 5 and 6, where specific messages must be "fast"
  and others "slow" or held until the adversary releases them.  Holding a
  message indefinitely is allowed while the run lasts because asynchrony puts
  no bound on delay; the simulator flushes held messages at the end of a run
  so that channel reliability is never actually violated.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from repro.sim.rng import SimRng
from repro.types import ProcessId

#: Sentinel returned by a delay rule to hold a message until released.
HOLD = object()


class DelayModel(abc.ABC):
    """Strategy deciding how long each message spends in flight."""

    @abc.abstractmethod
    def sample(self, src: ProcessId, dst: ProcessId, message: Any, now: float, rng: SimRng):
        """Return the in-flight delay in seconds, or :data:`HOLD`."""

    def describe(self) -> str:
        """Human-readable one-liner for reports."""
        return type(self).__name__


class ConstantDelay(DelayModel):
    """Every message takes exactly ``delay`` seconds."""

    def __init__(self, delay: float = 1.0) -> None:
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.delay = float(delay)

    def sample(self, src, dst, message, now, rng):
        return self.delay

    def describe(self) -> str:
        return f"constant({self.delay}s)"


class UniformDelay(DelayModel):
    """Delay uniformly distributed in ``[low, high]``."""

    def __init__(self, low: float, high: float) -> None:
        if low < 0 or high < low:
            raise ValueError(f"need 0 <= low <= high, got [{low}, {high}]")
        self.low = float(low)
        self.high = float(high)

    def sample(self, src, dst, message, now, rng):
        return rng.uniform(self.low, self.high)

    def describe(self) -> str:
        return f"uniform[{self.low}, {self.high}]s"


class ExponentialDelay(DelayModel):
    """Exponentially distributed delay with the given mean, plus a floor.

    The floor models the propagation component of latency that no packet can
    beat; the exponential tail models queueing.
    """

    def __init__(self, mean: float, floor: float = 0.0) -> None:
        if mean <= 0:
            raise ValueError("mean must be positive")
        if floor < 0:
            raise ValueError("floor must be non-negative")
        self.mean = float(mean)
        self.floor = float(floor)

    def sample(self, src, dst, message, now, rng):
        return self.floor + rng.expovariate(1.0 / self.mean)

    def describe(self) -> str:
        return f"exponential(mean={self.mean}s, floor={self.floor}s)"


class LogNormalDelay(DelayModel):
    """Log-normally distributed delay -- a common fit for WAN latencies."""

    def __init__(self, mu: float, sigma: float, floor: float = 0.0) -> None:
        if sigma < 0 or floor < 0:
            raise ValueError("sigma and floor must be non-negative")
        self.mu = float(mu)
        self.sigma = float(sigma)
        self.floor = float(floor)

    def sample(self, src, dst, message, now, rng):
        return self.floor + rng.lognormvariate(self.mu, self.sigma)

    def describe(self) -> str:
        return f"lognormal(mu={self.mu}, sigma={self.sigma}, floor={self.floor}s)"


class TopologyDelay(DelayModel):
    """Region-aware latencies for geo-replicated deployments.

    Each process is assigned to a region; the delay of a message is the
    (symmetric) base latency between the endpoint regions, plus uniform
    jitter.  Unassigned processes fall into ``default_region``.

    Example::

        TopologyDelay(
            regions={"s000": "us", "s001": "eu", "w000": "us"},
            latency={("us", "us"): 0.02, ("us", "eu"): 0.12,
                     ("eu", "eu"): 0.02},
        )
    """

    def __init__(self, regions: dict, latency: dict,
                 jitter: float = 0.1, default_region: str = "local") -> None:
        if not 0 <= jitter < 1:
            raise ValueError("jitter must be in [0, 1)")
        self.regions = dict(regions)
        self.latency = dict(latency)
        self.jitter = float(jitter)
        self.default_region = default_region

    def region_of(self, pid: ProcessId) -> str:
        """The region a process lives in."""
        return self.regions.get(pid, self.default_region)

    def base_latency(self, a: str, b: str) -> float:
        """Symmetric region-to-region base latency."""
        if (a, b) in self.latency:
            return self.latency[(a, b)]
        if (b, a) in self.latency:
            return self.latency[(b, a)]
        raise KeyError(f"no latency configured between {a!r} and {b!r}")

    def sample(self, src, dst, message, now, rng):
        base = self.base_latency(self.region_of(src), self.region_of(dst))
        if self.jitter:
            base *= 1.0 + rng.uniform(-self.jitter, self.jitter)
        return base

    def describe(self) -> str:
        regions = sorted({region for pair in self.latency for region in pair})
        return f"topology({', '.join(regions)}, jitter={self.jitter})"


class SizeDependentDelay(DelayModel):
    """Latency = propagation + serialization: ``base + size / bandwidth``.

    Makes message delay grow with payload size, which is what gives
    erasure coding its latency edge for large values (Section I-C: smaller
    coded elements serialize faster on a bandwidth-limited network).  An
    optional jitter fraction adds uniform noise.
    """

    def __init__(self, base: float = 0.5, bytes_per_second: float = 1_000_000.0,
                 jitter: float = 0.0,
                 sizer: Callable[[Any], int] = None) -> None:
        if base < 0 or bytes_per_second <= 0 or not 0 <= jitter < 1:
            raise ValueError(
                "need base >= 0, bytes_per_second > 0 and 0 <= jitter < 1"
            )
        self.base = float(base)
        self.bytes_per_second = float(bytes_per_second)
        self.jitter = float(jitter)
        self._sizer = sizer

    def _size_of(self, message: Any) -> int:
        if self._sizer is not None:
            return self._sizer(message)
        if hasattr(message, "wire_size"):
            return int(message.wire_size())
        return 16 + len(repr(message))

    def sample(self, src, dst, message, now, rng):
        delay = self.base + self._size_of(message) / self.bytes_per_second
        if self.jitter:
            delay *= 1.0 + rng.uniform(-self.jitter, self.jitter)
        return delay

    def describe(self) -> str:
        return (f"size-dependent(base={self.base}s, "
                f"{self.bytes_per_second:.0f} B/s, jitter={self.jitter})")


@dataclass
class DelayRule:
    """One scripted rule: if ``matches`` accepts the message, apply ``delay``.

    ``delay`` is either a float (seconds) or :data:`HOLD`.  Rules fire at most
    ``max_uses`` times each (``None`` = unlimited), letting a script say
    "the *first* PUT-DATA to s3 is slow" precisely.
    """

    matches: Callable[[ProcessId, ProcessId, Any], bool]
    delay: Any
    max_uses: Optional[int] = None
    label: str = ""
    _uses: int = field(default=0, repr=False)

    def applies(self, src: ProcessId, dst: ProcessId, message: Any) -> bool:
        if self.max_uses is not None and self._uses >= self.max_uses:
            return False
        return bool(self.matches(src, dst, message))

    def consume(self):
        self._uses += 1
        return self.delay


class RuleBasedDelays(DelayModel):
    """First-match rule list with a fallback model.

    Used to script the exact adversarial schedules of the paper's proofs,
    e.g. Theorem 3: "the PUT-DATA of write ``w_i`` reaches server ``s_i``
    quickly; every other PUT-DATA copy is held until after the read".
    """

    def __init__(self, rules: Optional[List[DelayRule]] = None,
                 fallback: Optional[DelayModel] = None) -> None:
        self.rules: List[DelayRule] = list(rules or [])
        self.fallback = fallback or ConstantDelay(1.0)

    def add_rule(self, matches: Callable[[ProcessId, ProcessId, Any], bool],
                 delay: Any, max_uses: Optional[int] = None, label: str = "") -> DelayRule:
        """Append a rule; later rules only fire if earlier ones do not match."""
        rule = DelayRule(matches=matches, delay=delay, max_uses=max_uses, label=label)
        self.rules.append(rule)
        return rule

    def hold(self, matches: Callable[[ProcessId, ProcessId, Any], bool],
             label: str = "") -> DelayRule:
        """Shorthand for a rule that holds matching messages."""
        return self.add_rule(matches, HOLD, label=label)

    def sample(self, src, dst, message, now, rng):
        for rule in self.rules:
            if rule.applies(src, dst, message):
                return rule.consume()
        return self.fallback.sample(src, dst, message, now, rng)

    def describe(self) -> str:
        return f"rules({len(self.rules)}) + {self.fallback.describe()}"
