"""Process model for the simulator.

A :class:`Process` is a deterministic reactive state machine: it receives
messages (and timer callbacks) and emits messages through its
:class:`ProcessContext`.  All protocol implementations in :mod:`repro.core`
are written against this interface, so the exact same algorithm code runs in
the simulator and -- via an adapter -- on the asyncio runtime.
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Iterable, Optional, TYPE_CHECKING

from repro.types import Envelope, ProcessId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.simulator import Simulator


class ProcessContext:
    """Capabilities the simulator hands to each process.

    Processes use the context to read the clock, send messages, and set
    timers.  They never touch the simulator directly, which keeps protocol
    code portable between the simulated and real runtimes.
    """

    def __init__(self, simulator: "Simulator", pid: ProcessId) -> None:
        self._simulator = simulator
        self.pid = pid

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._simulator.now

    def send(self, dst: ProcessId, message: Any) -> None:
        """Send ``message`` to process ``dst`` over the reliable channel."""
        self._simulator.network.send(self.pid, dst, message)

    def send_all(self, envelopes: Iterable[Envelope]) -> None:
        """Send a batch of ``(dst, message)`` pairs."""
        for dst, message in envelopes:
            self.send(dst, message)

    def set_timer(self, delay: float, callback: Callable[[], None], label: str = ""):
        """Schedule ``callback`` to run after ``delay`` simulated seconds."""
        return self._simulator.schedule(delay, callback, label=label or f"timer@{self.pid}")

    def cancel_timer(self, event) -> None:
        """Cancel a timer previously created with :meth:`set_timer`."""
        self._simulator.cancel(event)


class Process(abc.ABC):
    """Base class for all simulated processes."""

    def __init__(self, pid: ProcessId) -> None:
        self.pid = pid
        self.ctx: Optional[ProcessContext] = None
        self.crashed = False

    def bind(self, ctx: ProcessContext) -> None:
        """Attach the simulator-provided context (called once at setup)."""
        self.ctx = ctx

    def on_start(self) -> None:
        """Hook invoked when the simulation starts (default: nothing)."""

    @abc.abstractmethod
    def on_message(self, sender: ProcessId, message: Any) -> None:
        """Handle one delivered message."""

    def crash(self) -> None:
        """Mark the process crashed; the network stops delivering to/from it."""
        self.crashed = True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        status = "crashed" if self.crashed else "up"
        return f"{type(self).__name__}({self.pid}, {status})"
