"""Execution traces: invocation/response records for consistency checking.

The consistency definitions of the paper (Definitions 1 and 2) are stated
over *complete operations in an execution*.  A :class:`Trace` is exactly that
execution record: every operation's invocation time, response time (or None
if the client crashed mid-operation), kind, value and tag.

Checkers in :mod:`repro.consistency` consume traces; simulation drivers
produce them.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Iterator, List, Optional

from repro.types import ProcessId


class OpKind(enum.Enum):
    """Kind of register operation."""

    READ = "read"
    WRITE = "write"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class OperationRecord:
    """One operation's lifetime in an execution.

    ``value`` is the value written (for writes) or returned (for reads).
    ``tag`` is the protocol tag associated with the operation when the
    algorithm exposes one; checkers never rely on it for correctness, only
    for diagnostics.
    """

    op_id: int
    client: ProcessId
    kind: OpKind
    invoked_at: float
    responded_at: Optional[float] = None
    value: Any = None
    tag: Any = None
    rounds: int = 0
    meta: dict = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        """Whether the operation has a matching response event."""
        return self.responded_at is not None

    @property
    def latency(self) -> Optional[float]:
        """Response minus invocation time, or ``None`` if incomplete."""
        if self.responded_at is None:
            return None
        return self.responded_at - self.invoked_at

    def precedes(self, other: "OperationRecord") -> bool:
        """Real-time precedence: this op's response before the other's invoke."""
        return self.complete and self.responded_at <= other.invoked_at

    def concurrent_with(self, other: "OperationRecord") -> bool:
        """Neither operation precedes the other."""
        return not self.precedes(other) and not other.precedes(self)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        end = f"{self.responded_at:.3f}" if self.complete else "…"
        return (f"{self.kind}#{self.op_id}@{self.client}"
                f"[{self.invoked_at:.3f},{end}] value={self.value!r}")


class Trace:
    """Mutable collection of operation records for one execution."""

    def __init__(self) -> None:
        self._ops: List[OperationRecord] = []
        self._ids = itertools.count()

    def begin(self, client: ProcessId, kind: OpKind, invoked_at: float,
              value: Any = None) -> OperationRecord:
        """Record an invocation; returns the (open) record."""
        record = OperationRecord(
            op_id=next(self._ids), client=client, kind=kind,
            invoked_at=invoked_at, value=value,
        )
        self._ops.append(record)
        return record

    def complete(self, record: OperationRecord, responded_at: float,
                 value: Any = None, tag: Any = None, rounds: int = 0) -> None:
        """Record the matching response for ``record``."""
        record.responded_at = responded_at
        if record.kind is OpKind.READ:
            record.value = value
        if tag is not None:
            record.tag = tag
        record.rounds = rounds

    def __iter__(self) -> Iterator[OperationRecord]:
        return iter(self._ops)

    def __len__(self) -> int:
        return len(self._ops)

    @property
    def operations(self) -> List[OperationRecord]:
        """All records, in invocation order."""
        return list(self._ops)

    @property
    def completed(self) -> List[OperationRecord]:
        """Only records with a matching response."""
        return [op for op in self._ops if op.complete]

    def reads(self, completed_only: bool = True) -> List[OperationRecord]:
        """All read records (complete ones by default)."""
        return [op for op in self._ops if op.kind is OpKind.READ
                and (op.complete or not completed_only)]

    def writes(self, completed_only: bool = False) -> List[OperationRecord]:
        """All write records; incomplete writes are included by default
        because safety quantifies over writes that *began*."""
        return [op for op in self._ops if op.kind is OpKind.WRITE
                and (op.complete or not completed_only)]

    def format(self) -> str:
        """Multi-line human-readable dump of the execution."""
        return "\n".join(str(op) for op in self._ops)
