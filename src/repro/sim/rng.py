"""Seeded randomness for simulations.

A single root seed fans out into independent child streams (one per concern:
network delays, workload generation, Byzantine behaviour, ...) so that adding
one more random draw in the network code does not perturb workload generation
in unrelated experiments.  Child streams are derived by hashing the parent
seed with a stable label.
"""

from __future__ import annotations

import hashlib
import random
from typing import Optional


class SimRng:
    """A labelled, forkable pseudo-random stream.

    Wraps :class:`random.Random` and adds :meth:`fork`, which derives an
    independent child stream from ``(seed, label)``.  Equal seeds and labels
    always yield the same stream, so every experiment is reproducible from a
    single integer.
    """

    def __init__(self, seed: int = 0, label: str = "root") -> None:
        self.seed = int(seed)
        self.label = label
        self._random = random.Random(self._derive(seed, label))

    @staticmethod
    def _derive(seed: int, label: str) -> int:
        digest = hashlib.sha256(f"{seed}:{label}".encode()).digest()
        return int.from_bytes(digest[:8], "big")

    def fork(self, label: str) -> "SimRng":
        """Create an independent child stream named ``label``."""
        return SimRng(self.seed, f"{self.label}/{label}")

    # -- thin delegation to random.Random -------------------------------
    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._random.random()

    def uniform(self, a: float, b: float) -> float:
        """Uniform float in [a, b]."""
        return self._random.uniform(a, b)

    def expovariate(self, lambd: float) -> float:
        """Exponential variate with rate ``lambd``."""
        return self._random.expovariate(lambd)

    def lognormvariate(self, mu: float, sigma: float) -> float:
        """Log-normal variate with parameters ``mu`` and ``sigma``."""
        return self._random.lognormvariate(mu, sigma)

    def randint(self, a: int, b: int) -> int:
        """Uniform integer in [a, b]."""
        return self._random.randint(a, b)

    def randbytes(self, n: int) -> bytes:
        """``n`` uniformly random bytes."""
        return bytes(self._random.getrandbits(8) for _ in range(n))

    def choice(self, seq):
        """Uniformly random element of ``seq``."""
        return self._random.choice(seq)

    def sample(self, population, k: int):
        """``k`` distinct elements sampled from ``population``."""
        return self._random.sample(population, k)

    def shuffle(self, seq) -> None:
        """Shuffle ``seq`` in place."""
        self._random.shuffle(seq)

    def zipf_index(self, n: int, skew: float) -> int:
        """An index in ``[0, n)`` drawn from a (truncated) Zipf distribution.

        ``skew = 0`` degenerates to uniform.  Used by workload generators to
        model hot keys.
        """
        if n <= 0:
            raise ValueError("population must be positive")
        if skew <= 0:
            return self.randint(0, n - 1)
        weights = [1.0 / ((i + 1) ** skew) for i in range(n)]
        total = sum(weights)
        target = self.random() * total
        acc = 0.0
        for i, w in enumerate(weights):
            acc += w
            if target < acc:
                return i
        return n - 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimRng(seed={self.seed}, label={self.label!r})"


def default_rng(seed: Optional[int] = None) -> SimRng:
    """Root stream for a simulation; ``seed=None`` means seed 0."""
    return SimRng(0 if seed is None else seed)
