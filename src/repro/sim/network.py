"""Reliable, reordering point-to-point network.

Implements the channel model of Section II-A:

* **Reliable**: messages are neither lost, duplicated, nor created.  Delivery
  depends only on the destination being non-faulty -- a sender may crash
  after the message is in the channel and delivery still happens.
* **Reordering**: delays are per-message, so two messages on the same channel
  may be delivered in either order.
* **Authenticated**: the simulator always reports the true sender, modelling
  the digital-signature assumption (a Byzantine server cannot impersonate
  another process).

The network also keeps byte/message accounting for the communication-cost
experiments (E4) and supports *holds*: scripted adversarial schedules may
park a message until explicitly released.  Holds model unbounded asynchrony,
not loss -- :meth:`release_held` re-injects them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, TYPE_CHECKING

from repro.sim.delays import DelayModel, ConstantDelay, HOLD
from repro.sim.rng import SimRng
from repro.types import ProcessId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.simulator import Simulator


@dataclass
class NetworkStats:
    """Aggregate traffic counters, used by the cost experiments."""

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_held: int = 0
    bytes_sent: int = 0
    per_type_count: Dict[str, int] = field(default_factory=dict)
    per_type_bytes: Dict[str, int] = field(default_factory=dict)

    def record(self, message: Any, size: int) -> None:
        self.messages_sent += 1
        self.bytes_sent += size
        kind = type(message).__name__
        self.per_type_count[kind] = self.per_type_count.get(kind, 0) + 1
        self.per_type_bytes[kind] = self.per_type_bytes.get(kind, 0) + size


@dataclass
class _HeldMessage:
    src: ProcessId
    dst: ProcessId
    message: Any


def default_sizer(message: Any) -> int:
    """Approximate wire size of a message in bytes.

    Messages may override this by exposing a ``wire_size()`` method; the
    fallback charges a fixed small header plus the repr length, which is a
    stable, implementation-independent proxy adequate for *relative*
    communication-cost comparisons (replication vs MDS coding).
    """
    if hasattr(message, "wire_size"):
        return int(message.wire_size())
    return 16 + len(repr(message))


class Network:
    """The message fabric connecting all simulated processes."""

    def __init__(self, simulator: "Simulator", delay_model: Optional[DelayModel] = None,
                 rng: Optional[SimRng] = None,
                 sizer: Callable[[Any], int] = default_sizer) -> None:
        self._simulator = simulator
        self.delay_model = delay_model or ConstantDelay(1.0)
        self._rng = rng or SimRng(0, "network")
        self._sizer = sizer
        self.stats = NetworkStats()
        self._held: List[_HeldMessage] = []
        self._taps: List[Callable[[ProcessId, ProcessId, Any], None]] = []
        self._delivery_taps: List[Callable[[ProcessId, ProcessId, Any], None]] = []

    def add_tap(self, tap: Callable[[ProcessId, ProcessId, Any], None]) -> None:
        """Register an observer called for every sent message (for tests)."""
        self._taps.append(tap)

    def add_delivery_tap(self, tap: Callable[[ProcessId, ProcessId, Any], None]) -> None:
        """Register an observer called for every *delivered* message."""
        self._delivery_taps.append(tap)

    def send(self, src: ProcessId, dst: ProcessId, message: Any) -> None:
        """Put ``message`` on the channel from ``src`` to ``dst``.

        The message is scheduled for delivery after a delay drawn from the
        delay model, or parked if the model returns :data:`HOLD`.
        """
        self.stats.record(message, self._sizer(message))
        for tap in self._taps:
            tap(src, dst, message)
        delay = self.delay_model.sample(src, dst, message, self._simulator.now, self._rng)
        if delay is HOLD:
            self.stats.messages_held += 1
            self._held.append(_HeldMessage(src, dst, message))
            return
        if delay < 0:
            raise ValueError(f"delay model produced negative delay {delay}")
        self._simulator.schedule(
            delay,
            lambda: self._deliver(src, dst, message),
            label=f"deliver {type(message).__name__} {src}->{dst}",
        )

    @property
    def held_count(self) -> int:
        """Number of messages currently parked by HOLD rules."""
        return len(self._held)

    def release_held(self, predicate: Optional[Callable[[ProcessId, ProcessId, Any], bool]] = None,
                     delay: float = 0.0) -> int:
        """Re-inject held messages matching ``predicate`` (default: all).

        Returns the number of messages released.  Channels stay reliable:
        every held message is eventually releasable, and
        :meth:`Simulator.run` flushes remaining holds at the horizon when
        asked to.
        """
        released, kept = [], []
        for held in self._held:
            if predicate is None or predicate(held.src, held.dst, held.message):
                released.append(held)
            else:
                kept.append(held)
        self._held = kept
        for held in released:
            self._simulator.schedule(
                delay,
                lambda h=held: self._deliver(h.src, h.dst, h.message),
                label=f"release {type(held.message).__name__} {held.src}->{held.dst}",
            )
        return len(released)

    def _deliver(self, src: ProcessId, dst: ProcessId, message: Any) -> None:
        process = self._simulator.processes.get(dst)
        if process is None or process.crashed:
            # Delivery "depends only on whether the destination is non-faulty";
            # a crashed destination silently absorbs the message.
            return
        self.stats.messages_delivered += 1
        for tap in self._delivery_taps:
            tap(src, dst, message)
        process.on_message(src, message)
