"""The prior-work baseline: a register built on reliable broadcast.

Models the design family the paper contrasts itself with (Section I-B;
Kanjani et al. [15]): ``n >= 3f + 1`` servers -- *f fewer machines than BSR*
-- but writes are disseminated with Bracha reliable broadcast among the
servers, and servers *relay* newly delivered values to readers with pending
queries.  The consequences the experiments measure:

* A write's ``put-data`` phase costs one client-to-server hop **plus** the
  ECHO and READY server-to-server hops before any server acks -- the
  "1.5 rounds" blow-up of Section I-B.
* A read cannot always terminate on its first ``n - f`` replies; it waits
  until some pair is witnessed by ``f + 1`` servers *and* is at least as
  fresh as the ``(f+1)``-th highest tag seen.  Relay guarantees this
  eventually happens, but "eventually" may span extra server hops.

The RB layer gives the register regularity-grade freshness with fewer
servers; the price is latency, which is exactly the trade-off of the paper.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.broadcast.bracha import BrachaInstance
from repro.core.messages import (
    DataReply,
    PushData,
    PutAck,
    PutData,
    QueryData,
    QueryTag,
    RBEcho,
    RBReady,
    RBSend,
    TagReply,
    stored_size,
)
from repro.core.operation import ClientOperation, ReplyCollector
from repro.core.quorum import kth_highest, validate_rb_config, witness_threshold
from repro.core.tags import TAG_ZERO, Tag, TaggedValue
from repro.types import Envelope, ProcessId


class RBRegisterServer:
    """A baseline server: BSR-like storage + Bracha participation + relay."""

    def __init__(self, server_id: ProcessId, peers: Sequence[ProcessId], f: int,
                 initial_value: Any = b"") -> None:
        validate_rb_config(len(peers), f)
        self.server_id = server_id
        self.peers = list(peers)
        self.f = f
        self.history: List[TaggedValue] = [TaggedValue(TAG_ZERO, initial_value)]
        self.bracha = BrachaInstance(server_id, self.peers, f)
        #: reader -> op_id of its most recent (assumed pending) query.
        self._pending_readers: Dict[ProcessId, int] = {}
        #: broadcast instances we already acked, to dedupe deliveries.
        self._acked: Set[Any] = set()

    @property
    def latest(self) -> TaggedValue:
        """The stored pair with the highest tag."""
        return self.history[-1]

    @property
    def max_tag(self) -> Tag:
        """The highest stored tag."""
        return self.history[-1].tag

    def storage_bytes(self) -> int:
        """Bytes of user data stored (full replication, like BSR)."""
        return stored_size(self.latest.value)

    # -- message handling ---------------------------------------------------
    def handle(self, sender: ProcessId, message: Any) -> List[Envelope]:
        """Dispatch one incoming message; returns outgoing envelopes."""
        if isinstance(message, QueryTag):
            return [(sender, TagReply(op_id=message.op_id, tag=self.max_tag))]
        if isinstance(message, QueryData):
            self._pending_readers[sender] = message.op_id
            latest = self.latest
            return [(sender, DataReply(op_id=message.op_id, tag=latest.tag,
                                       payload=latest.value))]
        if isinstance(message, RBSend):
            return self._rb_outputs(
                message, self.bracha.on_send(self._key(message),
                                             (message.tag, message.payload)))
        if isinstance(message, RBEcho):
            return self._rb_outputs(
                message, self.bracha.on_echo(self._key(message),
                                             (message.tag, message.payload), sender))
        if isinstance(message, RBReady):
            return self._rb_outputs(
                message, self.bracha.on_ready(self._key(message),
                                              (message.tag, message.payload), sender))
        return []

    @staticmethod
    def _key(message: Any) -> Tuple[str, int]:
        return (message.source, message.op_id)

    def _rb_outputs(self, message: Any, outputs) -> List[Envelope]:
        envelopes: List[Envelope] = []
        for action, arg1, arg2 in outputs:
            if action == "broadcast":
                phase, payload = arg1, arg2
                cls = RBEcho if phase == "echo" else RBReady
                relayed = cls(op_id=message.op_id, tag=payload[0], payload=payload[1],
                              source=message.source)
                envelopes.extend((peer, relayed) for peer in self.peers)
            elif action == "deliver":
                tag, value = arg1
                envelopes.extend(self._deliver(message, tag, value))
        return envelopes

    def _deliver(self, message: Any, tag: Tag, value: Any) -> List[Envelope]:
        envelopes: List[Envelope] = []
        if tag > self.max_tag:
            self.history.append(TaggedValue(tag, value))
            # Relay: push the fresh pair to every reader with a pending query
            # so stuck reads can converge on f + 1 witnesses.
            for reader, read_op_id in self._pending_readers.items():
                envelopes.append(
                    (reader, PushData(op_id=read_op_id, tag=tag, payload=value))
                )
        key = self._key(message)
        if key not in self._acked:
            self._acked.add(key)
            envelopes.append(
                (message.source, PutAck(op_id=message.op_id, tag=tag))
            )
        return envelopes


class RBWriteOperation(ClientOperation):
    """Baseline write: ``get-tag`` like BSR, then reliable-broadcast the data."""

    kind = "write"

    def __init__(self, client_id: ProcessId, servers: Sequence[ProcessId], f: int,
                 value: Any) -> None:
        super().__init__(client_id, servers, f)
        validate_rb_config(self.n, f)
        self.value = value
        self._phase = "idle"
        self._tag_replies = ReplyCollector(self.servers)
        self._acks = ReplyCollector(self.servers)
        self._tag: Optional[Tag] = None

    def start(self) -> List[Envelope]:
        self._phase = "get-tag"
        self.rounds = 1
        return self.broadcast(QueryTag(op_id=self.op_id))

    def on_reply(self, sender: ProcessId, message: Any) -> List[Envelope]:
        if not self.accepts(message) or self.done:
            return []
        if self._phase == "get-tag" and isinstance(message, TagReply):
            if not isinstance(message.tag, Tag):
                return []
            self._tag_replies.add(sender, message)
            if len(self._tag_replies) < self.quorum:
                return []
            tags = [reply.tag for reply in self._tag_replies.values()]
            self._tag = kth_highest(tags, self.f + 1).next_for(self.client_id)
            self._phase = "put-data"
            # The RB dissemination happens server-side; from the client's
            # point of view this is still its second round, but acks only
            # come back after ECHO + READY complete.
            self.rounds = 2
            return self.broadcast(RBSend(op_id=self.op_id, tag=self._tag,
                                         payload=self.value, source=self.client_id))
        if self._phase == "put-data" and isinstance(message, PutAck):
            if message.tag == self._tag:
                self._acks.add(sender, message)
                if len(self._acks) >= self.quorum:
                    self._complete(self._tag)
        return []


class RBReadOperation(ClientOperation):
    """Baseline read: wait for a witnessed pair at least as fresh as the
    ``(f+1)``-th highest tag; relayed pushes may be needed to get there."""

    kind = "read"

    def __init__(self, client_id: ProcessId, servers: Sequence[ProcessId], f: int,
                 initial_value: Any = b"") -> None:
        super().__init__(client_id, servers, f)
        validate_rb_config(self.n, f)
        self.initial_value = initial_value
        #: server -> freshest (tag, value) heard from it (query reply or push)
        self._latest: Dict[ProcessId, TaggedValue] = {}

    def start(self) -> List[Envelope]:
        self.rounds = 1
        return self.broadcast(QueryData(op_id=self.op_id))

    def on_reply(self, sender: ProcessId, message: Any) -> List[Envelope]:
        if self.done or not self.accepts(message):
            return []
        if not isinstance(message, (DataReply, PushData)):
            return []
        if not isinstance(message.tag, Tag) or sender not in self.servers:
            return []
        pair = TaggedValue(message.tag, message.payload)
        current = self._latest.get(sender)
        if current is None or pair.tag > current.tag:
            self._latest[sender] = pair
        self._try_finish()
        return []

    def _try_finish(self) -> None:
        if len(self._latest) < self.quorum:
            return
        # Freshness bar: the (f+1)-th highest tag cannot be Byzantine-forged.
        tags = [pair.tag for pair in self._latest.values()]
        bar = kth_highest(tags, self.f + 1)
        counts: Counter = Counter()
        for pair in self._latest.values():
            try:
                counts[pair] += 1
            except TypeError:
                continue
        threshold = witness_threshold(self.f)
        witnessed = [pair for pair, count in counts.items()
                     if count >= threshold and pair.tag >= bar]
        if witnessed:
            best = max(witnessed, key=lambda tv: tv.tag)
            self._tag = best.tag
            self._complete(best.value)
