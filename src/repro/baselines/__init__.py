"""Baseline register emulations the paper compares against.

* :mod:`repro.baselines.rb_register`: the prior-work design (Section I-B,
  e.g. Kanjani et al. [15]) -- ``n >= 3f + 1`` servers, writes disseminated
  through Bracha reliable broadcast with server-to-server relay.  Fewer
  servers than BSR, but every write pays ~1.5 extra rounds and reads may
  have to wait out the relay.
* :mod:`repro.baselines.abd`: the classic crash-tolerant ABD atomic register
  (``n >= 2f + 1``, two-round reads and writes) as a non-Byzantine sanity
  baseline for the workload experiments.
"""

from repro.baselines.abd import ABDReadOperation, ABDServer, ABDWriteOperation
from repro.baselines.rb_register import (
    RBRegisterServer,
    RBReadOperation,
    RBWriteOperation,
)

__all__ = [
    "RBRegisterServer",
    "RBWriteOperation",
    "RBReadOperation",
    "ABDServer",
    "ABDWriteOperation",
    "ABDReadOperation",
]
