"""ABD: the classic crash-tolerant atomic register [Attiya-Bar-Noy-Dolev].

Multi-writer variant with ``n >= 2f + 1`` servers, tolerating ``f`` *crash*
failures only (no Byzantine defence whatsoever -- a single lying server
breaks it, which experiment E6 uses as a reference point for what Byzantine
tolerance costs).

* Write: query a majority for tags, pick ``max + 1``, put to a majority.
* Read: query a majority for ``(tag, value)``, pick the max pair,
  *write it back* to a majority (the write-back is what upgrades regularity
  to atomicity), then return.  Both operations take two rounds.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from repro.core.bsr import BSRServer
from repro.core.messages import (
    DataReply,
    PutAck,
    PutData,
    QueryData,
    QueryTag,
    TagReply,
)
from repro.core.operation import ClientOperation, ReplyCollector
from repro.core.quorum import abd_min_servers
from repro.core.tags import Tag, TaggedValue
from repro.errors import QuorumError
from repro.types import Envelope, ProcessId


def validate_abd_config(n: int, f: int) -> None:
    """Raise :class:`QuorumError` unless ``n >= 2f + 1``."""
    if n < abd_min_servers(f):
        raise QuorumError(
            f"ABD requires n >= 2f + 1 = {abd_min_servers(f)} servers, "
            f"got n={n} with f={f}"
        )


class ABDServer(BSRServer):
    """An ABD server.

    State and message handling are identical to a BSR server (store the
    highest-tagged pair, answer tag and data queries); the algorithms differ
    purely on the client side, so we inherit.
    """


class ABDWriteOperation(ClientOperation):
    """Two-phase ABD write: max tag + 1, then put to a majority."""

    kind = "write"

    def __init__(self, client_id: ProcessId, servers: Sequence[ProcessId], f: int,
                 value: Any) -> None:
        super().__init__(client_id, servers, f)
        validate_abd_config(self.n, f)
        self.value = value
        self._phase = "idle"
        self._tag_replies = ReplyCollector(self.servers)
        self._acks = ReplyCollector(self.servers)
        self._tag: Optional[Tag] = None

    def start(self) -> List[Envelope]:
        self._phase = "get-tag"
        self.rounds = 1
        return self.broadcast(QueryTag(op_id=self.op_id))

    def on_reply(self, sender: ProcessId, message: Any) -> List[Envelope]:
        if not self.accepts(message) or self.done:
            return []
        if self._phase == "get-tag" and isinstance(message, TagReply):
            self._tag_replies.add(sender, message)
            if len(self._tag_replies) < self.quorum:
                return []
            # Crash-only model: the plain maximum is trustworthy.
            top = max(reply.tag for reply in self._tag_replies.values())
            self._tag = top.next_for(self.client_id)
            self._phase = "put-data"
            self.rounds = 2
            return self.broadcast(PutData(op_id=self.op_id, tag=self._tag,
                                          payload=self.value))
        if self._phase == "put-data" and isinstance(message, PutAck):
            if message.tag == self._tag:
                self._acks.add(sender, message)
                if len(self._acks) >= self.quorum:
                    self._complete(self._tag)
        return []


class ABDReadOperation(ClientOperation):
    """Two-phase ABD read: query a majority, write the max pair back."""

    kind = "read"

    def __init__(self, client_id: ProcessId, servers: Sequence[ProcessId], f: int) -> None:
        super().__init__(client_id, servers, f)
        validate_abd_config(self.n, f)
        self._phase = "idle"
        self._replies = ReplyCollector(self.servers)
        self._acks = ReplyCollector(self.servers)
        self._chosen: Optional[TaggedValue] = None

    def start(self) -> List[Envelope]:
        self._phase = "get-data"
        self.rounds = 1
        return self.broadcast(QueryData(op_id=self.op_id))

    def on_reply(self, sender: ProcessId, message: Any) -> List[Envelope]:
        if not self.accepts(message) or self.done:
            return []
        if self._phase == "get-data" and isinstance(message, DataReply):
            self._replies.add(sender, message)
            if len(self._replies) < self.quorum:
                return []
            best = max(self._replies.values(), key=lambda reply: reply.tag)
            self._chosen = TaggedValue(best.tag, best.payload)
            self._phase = "write-back"
            self.rounds = 2
            return self.broadcast(PutData(op_id=self.op_id, tag=self._chosen.tag,
                                          payload=self._chosen.value))
        if self._phase == "write-back" and isinstance(message, PutAck):
            if message.tag == self._chosen.tag:
                self._acks.add(sender, message)
                if len(self._acks) >= self.quorum:
                    self._tag = self._chosen.tag
                    self._complete(self._chosen.value)
        return []
