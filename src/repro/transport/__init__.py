"""Wire formats shared by the simulator and the asyncio runtime.

* :mod:`repro.transport.codec` -- JSON serialization of every protocol
  message, with length-prefixed framing for TCP streams.
* :mod:`repro.transport.auth` -- HMAC-SHA256 message authentication,
  realising the model's "digital signatures" assumption (Section II-A): a
  Byzantine server cannot impersonate another process.
"""

from repro.transport.auth import Authenticator, KeyChain
from repro.transport.codec import (
    decode_message,
    encode_message,
    read_frame,
    write_frame,
)

__all__ = [
    "encode_message",
    "decode_message",
    "read_frame",
    "write_frame",
    "Authenticator",
    "KeyChain",
]
