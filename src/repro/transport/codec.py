"""Message serialization and stream framing.

Every protocol message (a frozen dataclass from
:mod:`repro.core.messages`) round-trips through JSON:

* ``Tag`` -> ``[num, writer]``
* ``bytes`` -> ``{"__b64__": ...}``
* ``TaggedValue`` -> ``{"__tv__": [tag, value]}``
* ``CodedElement`` -> ``{"__ce__": [index, data]}``

Frames on a TCP stream are a 4-byte big-endian length followed by the JSON
payload.  The frame size is capped to keep a malicious peer from forcing an
unbounded allocation.
"""

from __future__ import annotations

import base64
import dataclasses
import json
from typing import Any, Dict

from repro.core import messages as message_module
from repro.core.namespace import NamespacedMessage
from repro.core.tags import Tag, TaggedValue
from repro.erasure.striping import CodedElement
from repro.errors import ProtocolError

#: Upper bound on a single frame (16 MiB).
MAX_FRAME_BYTES = 16 * 1024 * 1024

#: name -> message dataclass, discovered from the messages module.
MESSAGE_TYPES: Dict[str, type] = {
    name: obj for name, obj in vars(message_module).items()
    if isinstance(obj, type) and dataclasses.is_dataclass(obj)
    and issubclass(obj, message_module.BaseMessage)
}
MESSAGE_TYPES["NamespacedMessage"] = NamespacedMessage


def _to_jsonable(value: Any) -> Any:
    if dataclasses.is_dataclass(value) and type(value).__name__ in MESSAGE_TYPES:
        # Nested protocol message (e.g. inside a NamespacedMessage).
        return {"__msg__": json.loads(encode_message(value).decode())}
    if isinstance(value, Tag):
        return {"__tag__": [value.num, value.writer]}
    if isinstance(value, (bytes, bytearray)):
        return {"__b64__": base64.b64encode(bytes(value)).decode("ascii")}
    if isinstance(value, TaggedValue):
        return {"__tv__": [_to_jsonable(value.tag), _to_jsonable(value.value)]}
    if isinstance(value, CodedElement):
        return {"__ce__": [value.index, _to_jsonable(value.data)]}
    if isinstance(value, (list, tuple)):
        return [_to_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {key: _to_jsonable(item) for key, item in value.items()}
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    raise ProtocolError(f"cannot serialize {type(value).__name__}: {value!r}")


def _from_jsonable(value: Any) -> Any:
    if isinstance(value, dict):
        if "__msg__" in value:
            return decode_message(json.dumps(value["__msg__"]).encode())
        if "__tag__" in value:
            num, writer = value["__tag__"]
            return Tag(int(num), str(writer))
        if "__b64__" in value:
            return base64.b64decode(value["__b64__"])
        if "__tv__" in value:
            tag, inner = value["__tv__"]
            return TaggedValue(_from_jsonable(tag), _from_jsonable(inner))
        if "__ce__" in value:
            index, data = value["__ce__"]
            return CodedElement(int(index), _from_jsonable(data))
        return {key: _from_jsonable(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_from_jsonable(item) for item in value]
    return value


def encode_message(message: Any) -> bytes:
    """Serialize one protocol message to JSON bytes."""
    cls_name = type(message).__name__
    if cls_name not in MESSAGE_TYPES:
        raise ProtocolError(f"{cls_name} is not a registered message type")
    fields = {
        f.name: _to_jsonable(getattr(message, f.name))
        for f in dataclasses.fields(message)
    }
    return json.dumps({"type": cls_name, "fields": fields},
                      separators=(",", ":")).encode()


def decode_message(data: bytes) -> Any:
    """Inverse of :func:`encode_message`; raises ProtocolError on garbage."""
    try:
        parsed = json.loads(data.decode())
        cls = MESSAGE_TYPES[parsed["type"]]
        raw_fields = parsed["fields"]
        fields = {key: _from_jsonable(value) for key, value in raw_fields.items()}
        decoded = cls(**fields)
    except ProtocolError:
        raise
    except Exception as exc:
        raise ProtocolError(f"malformed message: {exc}") from exc
    # Tuples flatten to lists in JSON; restore for frozen-dataclass equality.
    for field in dataclasses.fields(decoded):
        value = getattr(decoded, field.name)
        if isinstance(value, list):
            object.__setattr__(decoded, field.name, tuple(value))
    return decoded


async def read_frame(reader) -> bytes:
    """Read one length-prefixed frame from an asyncio StreamReader."""
    header = await reader.readexactly(4)
    length = int.from_bytes(header, "big")
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds the cap")
    return await reader.readexactly(length)


def write_frame(writer, payload: bytes) -> None:
    """Write one length-prefixed frame to an asyncio StreamWriter."""
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(payload)} bytes exceeds the cap")
    writer.write(len(payload).to_bytes(4, "big") + payload)


def write_frames(writer, payloads) -> None:
    """Write many frames as one contiguous burst (one transport write).

    Batching frames that were queued in the same event-loop tick halves
    the per-frame overhead on the hot path: one ``writer.write`` call and
    one ``drain()`` serve the whole burst.
    """
    parts = []
    for payload in payloads:
        if len(payload) > MAX_FRAME_BYTES:
            raise ProtocolError(
                f"frame of {len(payload)} bytes exceeds the cap")
        parts.append(len(payload).to_bytes(4, "big"))
        parts.append(payload)
    if parts:
        writer.write(b"".join(parts))


class FrameAssembler:
    """Incremental frame decoder over raw stream chunks.

    Feeding arbitrary byte chunks (``reader.read(...)``) yields every
    *complete* length-prefixed frame they contain; partial frames stay
    buffered until the next chunk.  This is what lets a connection loop
    batch-decode consecutive frames from one read syscall instead of
    paying two ``readexactly`` waits per frame.
    """

    __slots__ = ("_buffer",)

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list:
        """Absorb ``data``; return the list of completed frame payloads."""
        self._buffer += data
        frames = []
        while True:
            if len(self._buffer) < 4:
                break
            length = int.from_bytes(self._buffer[:4], "big")
            if length > MAX_FRAME_BYTES:
                raise ProtocolError(
                    f"frame of {length} bytes exceeds the cap")
            if len(self._buffer) < 4 + length:
                break
            frames.append(bytes(self._buffer[4:4 + length]))
            del self._buffer[:4 + length]
        return frames

    def __len__(self) -> int:
        """Bytes currently buffered (incomplete trailing frame)."""
        return len(self._buffer)
