"""Message serialization and stream framing.

Two payload encodings share one frame format:

* **v1 (JSON)** -- every protocol message (a frozen dataclass from
  :mod:`repro.core.messages`) round-trips through JSON:

  * ``Tag`` -> ``[num, writer]``
  * ``bytes`` -> ``{"__b64__": ...}``
  * ``TaggedValue`` -> ``{"__tv__": [tag, value]}``
  * ``CodedElement`` -> ``{"__ce__": [index, data]}``

* **v2 (binary)** -- the compact tagged-binary codec in
  :mod:`repro.transport.codec2`; payloads start with the magic byte
  ``0xB2``, which no JSON document can, so :func:`decode_message`
  auto-detects the version per payload and mixed-version peers
  interoperate without negotiation.

Frames on a TCP stream are a 4-byte big-endian length followed by the
payload.  The frame size is capped to keep a malicious peer from forcing
an unbounded allocation, and :class:`FrameAssembler` additionally bounds
the bytes it will buffer for an incomplete frame.
"""

from __future__ import annotations

import base64
import dataclasses
import json
from struct import Struct
from typing import Any, Dict, List, Optional

from repro.core import messages as message_module
from repro.core.namespace import NamespacedMessage
from repro.core.tags import Tag, TaggedValue
from repro.erasure.striping import CodedElement
from repro.errors import ProtocolError

#: Upper bound on a single frame (16 MiB).
MAX_FRAME_BYTES = 16 * 1024 * 1024

#: name -> message dataclass, discovered from the messages module.
MESSAGE_TYPES: Dict[str, type] = {
    name: obj for name, obj in vars(message_module).items()
    if isinstance(obj, type) and dataclasses.is_dataclass(obj)
    and issubclass(obj, message_module.BaseMessage)
}
MESSAGE_TYPES["NamespacedMessage"] = NamespacedMessage

#: Cached frame-header packer (one C call instead of ``int.to_bytes``).
_PACK_HEADER = Struct(">I").pack
_UNPACK_HEADER = Struct(">I").unpack_from

#: Lazily bound v2 entry points (codec2 imports this module's registry,
#: so importing it eagerly here would be circular).
_DECODE_V2 = None


def _to_jsonable(value: Any) -> Any:
    if dataclasses.is_dataclass(value) and type(value).__name__ in MESSAGE_TYPES:
        # Nested protocol message (e.g. inside a NamespacedMessage).
        return {"__msg__": json.loads(encode_message(value).decode())}
    if isinstance(value, Tag):
        return {"__tag__": [value.num, value.writer]}
    if isinstance(value, (bytes, bytearray)):
        return {"__b64__": base64.b64encode(bytes(value)).decode("ascii")}
    if isinstance(value, TaggedValue):
        return {"__tv__": [_to_jsonable(value.tag), _to_jsonable(value.value)]}
    if isinstance(value, CodedElement):
        return {"__ce__": [value.index, _to_jsonable(value.data)]}
    if isinstance(value, (list, tuple)):
        return [_to_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {key: _to_jsonable(item) for key, item in value.items()}
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    raise ProtocolError(f"cannot serialize {type(value).__name__}: {value!r}")


def _from_jsonable(value: Any) -> Any:
    if isinstance(value, dict):
        if "__msg__" in value:
            return decode_message(json.dumps(value["__msg__"]).encode())
        if "__tag__" in value:
            num, writer = value["__tag__"]
            return Tag(int(num), str(writer))
        if "__b64__" in value:
            return base64.b64decode(value["__b64__"])
        if "__tv__" in value:
            tag, inner = value["__tv__"]
            return TaggedValue(_from_jsonable(tag), _from_jsonable(inner))
        if "__ce__" in value:
            index, data = value["__ce__"]
            return CodedElement(int(index), _from_jsonable(data))
        return {key: _from_jsonable(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_from_jsonable(item) for item in value]
    return value


def encode_message(message: Any) -> bytes:
    """Serialize one protocol message to JSON bytes (wire v1)."""
    cls_name = type(message).__name__
    if cls_name not in MESSAGE_TYPES:
        raise ProtocolError(f"{cls_name} is not a registered message type")
    fields = {
        f.name: _to_jsonable(getattr(message, f.name))
        for f in dataclasses.fields(message)
    }
    return json.dumps({"type": cls_name, "fields": fields},
                      separators=(",", ":")).encode()


def decode_message(data) -> Any:
    """Decode one payload of either wire version; raises ProtocolError.

    Dispatches on the first byte: v2 payloads carry the ``0xB2`` magic,
    everything else is treated as v1 JSON.  ``data`` may be ``bytes``
    or a ``memoryview`` into a receive buffer (v2 decoding slices fields
    straight out of it; the JSON path copies once).
    """
    if len(data) and data[0] == 0xB2:
        global _DECODE_V2
        if _DECODE_V2 is None:
            from repro.transport.codec2 import decode_message_v2
            _DECODE_V2 = decode_message_v2
        return _DECODE_V2(data)
    try:
        parsed = json.loads(bytes(data).decode())
        cls = MESSAGE_TYPES[parsed["type"]]
        raw_fields = parsed["fields"]
        fields = {key: _from_jsonable(value) for key, value in raw_fields.items()}
        decoded = cls(**fields)
    except ProtocolError:
        raise
    except Exception as exc:
        raise ProtocolError(f"malformed message: {exc}") from exc
    # Tuples flatten to lists in JSON; restore for frozen-dataclass equality.
    for field in dataclasses.fields(decoded):
        value = getattr(decoded, field.name)
        if isinstance(value, list):
            object.__setattr__(decoded, field.name, tuple(value))
    return decoded


async def read_frame(reader) -> bytes:
    """Read one length-prefixed frame from an asyncio StreamReader."""
    header = await reader.readexactly(4)
    length = int.from_bytes(header, "big")
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds the cap")
    return await reader.readexactly(length)


def write_frame(writer, payload: bytes) -> None:
    """Write one length-prefixed frame to an asyncio StreamWriter."""
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(payload)} bytes exceeds the cap")
    writer.write(_PACK_HEADER(len(payload)) + payload)


def write_frames(writer, payloads) -> None:
    """Write many frames as one contiguous burst (one transport write).

    Batching frames that were queued in the same event-loop tick halves
    the per-frame overhead on the hot path: one ``writer.write`` call and
    one ``drain()`` serve the whole burst.
    """
    parts = []
    for payload in payloads:
        if len(payload) > MAX_FRAME_BYTES:
            raise ProtocolError(
                f"frame of {len(payload)} bytes exceeds the cap")
        parts.append(_PACK_HEADER(len(payload)))
        parts.append(payload)
    if parts:
        writer.write(b"".join(parts))


class FrameAssembler:
    """Incremental zero-copy frame decoder over raw stream chunks.

    Feeding arbitrary byte chunks (``reader.read(...)``) yields every
    *complete* length-prefixed frame they contain; partial frames stay
    buffered until the next chunk.  This is what lets a connection loop
    batch-decode consecutive frames from one read syscall instead of
    paying two ``readexactly`` waits per frame.

    Completed frames are returned as ``memoryview`` slices into the
    assembler's internal buffer -- no per-frame copy.  The views are
    valid until the **next** :meth:`feed` call (the buffer is compacted
    and recycled in place); callers must finish with, or copy, each
    batch of frames before feeding the next chunk, which is exactly how
    the runtime's read loops behave.

    Safety: the declared length of a frame is validated the moment its
    4-byte header is complete, and the total number of buffered bytes is
    additionally capped at ``max_frame_bytes + 4`` between feeds -- a
    peer drip-feeding a giant bogus length kills the connection at the
    header, before any allocation, and no parser state can grow the
    buffer past one maximum-size frame.
    """

    __slots__ = ("_buf", "_start", "_end", "_max")

    #: Initial capacity of the receive buffer (grows on demand, bounded
    #: by the frame cap plus one header).
    INITIAL_CAPACITY = 64 * 1024

    def __init__(self, max_frame_bytes: Optional[int] = None) -> None:
        self._max = (MAX_FRAME_BYTES if max_frame_bytes is None
                     else max_frame_bytes)
        self._buf = bytearray(min(self.INITIAL_CAPACITY, self._max + 4))
        self._start = 0
        self._end = 0

    def feed(self, data) -> List[memoryview]:
        """Absorb ``data``; return the completed frame payload views.

        The returned ``memoryview`` slices alias the internal buffer and
        are invalidated by the next ``feed`` call.
        """
        buf = self._buf
        start, end = self._start, self._end
        n = len(data)
        if end + n > len(buf):
            pending = end - start
            if pending + n <= len(buf):
                # Compact in place: slide the partial frame to the front.
                buf[:pending] = buf[start:end]
            else:
                capacity = max(len(buf) * 2, pending + n)
                grown = bytearray(capacity)
                grown[:pending] = buf[start:end]
                self._buf = buf = grown
            start, end = 0, pending
        buf[end:end + n] = data
        end += n

        frames: List[memoryview] = []
        view = memoryview(buf)
        while end - start >= 4:
            length = _UNPACK_HEADER(buf, start)[0]
            if length > self._max:
                self._start, self._end = start, end
                raise ProtocolError(
                    f"frame of {length} bytes exceeds the cap")
            if end - start < 4 + length:
                break
            frames.append(view[start + 4:start + 4 + length])
            start += 4 + length
        if start == end:
            start = end = 0
        self._start, self._end = start, end
        if end - start > self._max + 4:
            # Unreachable while the header check above holds; kept as a
            # hard invariant so no parser bug can buffer unboundedly.
            raise ProtocolError(
                f"{end - start} buffered bytes exceed the frame cap")
        return frames

    def __len__(self) -> int:
        """Bytes currently buffered (incomplete trailing frame)."""
        return self._end - self._start
